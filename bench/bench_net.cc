// End-to-end wire benchmarks: a real WireServer (epoll reactor) on a
// loopback socket, measured from the client side of the socket — TCP,
// framing, batching and the service all included. Two families:
//
// BM_Net_ClosedLoop — Args({fastpath, batch}): one closed-loop client.
//   batch=1 sends one kCheckRequest and waits (pure RTT: syscalls + wire
//   codec + one reactor sweep + one service batch); batch=32 pipelines 32
//   frames before the first read, which the reactor folds into one
//   CheckAccessBatch call — amortizing the per-sweep cost exactly the way
//   the protocol is designed to. The fastpath arm turns the PR-6 zero-hop
//   cache on underneath, showing how much of the wire RTT the service
//   decision itself was. p50_us/p99_us are percentiles of per-request RTT
//   samples (RTT is tens of microseconds; the clock reads around each call
//   are noise).
//
// BM_Net_SaturatedShard — Args({policy}): the overload contract observed
//   *through the wire*. The reactor itself is a single service producer
//   that blocks inline on each folded batch, so wire traffic alone cannot
//   overfill a mailbox — instead 8 in-process producer threads saturate
//   the one-shard service (the PR-5 regime) while a wire client pipelines
//   bursts through the reactor and tallies what comes back. policy 0 =
//   unbounded mailbox + 500us deadline (block-style: wire batches queue
//   behind the stampede and expire when late); policy 1 = capacity-4
//   mailbox, kShed (the wire batch's envelope is refused at admission and
//   the whole chunk comes back kOverloaded). decided/overloaded fractions
//   and the burst RTT percentiles show a remote caller seeing exactly the
//   typed kOverloaded verdicts an in-process caller would.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "net/client.h"
#include "net/server.h"

namespace sentinel {
namespace {

constexpr int kUsers = 16;

Policy FlatPolicy() {
  Policy policy("net-bench");
  RoleSpec role;
  role.name = "worker";
  role.permissions.insert(Permission{"read", "ledger"});
  (void)policy.AddRole(std::move(role));
  for (int u = 0; u < kUsers; ++u) {
    UserSpec user;
    user.name = SyntheticUserName(u);
    user.assignments.insert("worker");
    (void)policy.AddUser(std::move(user));
  }
  return policy;
}

std::string SessionOf(int user) { return "sess" + std::to_string(user); }

struct Harness {
  std::unique_ptr<AuthorizationService> service;
  std::unique_ptr<net::WireServer> server;

  explicit Harness(ServiceConfig config) {
    service = std::make_unique<AuthorizationService>(config);
    if (!service->LoadPolicy(FlatPolicy()).ok()) std::abort();
    for (int u = 0; u < kUsers; ++u) {
      if (!service->CreateSession(SyntheticUserName(u), SessionOf(u)).ok() ||
          !service->AddActiveRole(SyntheticUserName(u), SessionOf(u), "worker")
               .ok()) {
        std::abort();
      }
    }
    server = std::make_unique<net::WireServer>(service.get(),
                                               net::ServerConfig{});
    if (!server->Start().ok()) std::abort();
  }
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void BM_Net_ClosedLoop(benchmark::State& state) {
  const bool fastpath = state.range(0) != 0;
  const int batch = static_cast<int>(state.range(1));

  ServiceConfig config;
  config.num_shards = 1;
  config.synchronous = false;
  config.start_time = benchutil::Noon();
  if (fastpath) {
    config.decision_cache_capacity = 1024;
    config.decision_cache_fastpath = true;
  }
  Harness harness(config);
  auto connected =
      net::WireClient::Connect("127.0.0.1", harness.server->port());
  if (!connected.ok()) std::abort();
  auto client = std::move(connected).value();

  std::vector<AccessRequest> window(
      static_cast<size_t>(batch),
      AccessRequest{SyntheticUserName(0), SessionOf(0), "read", "ledger",
                    ""});
  // Warm the decision cache so the fastpath arm measures hits.
  if (!client->CheckBatch(window).ok()) std::abort();

  std::vector<double> rtt_us;
  int64_t answered = 0;
  for (auto _ : state) {
    const int64_t before = NowUs();
    if (batch == 1) {
      auto decision = client->Check(window[0]);
      if (!decision.ok() || !decision.value().allowed) std::abort();
    } else {
      auto decisions = client->CheckBatch(window);
      if (!decisions.ok()) std::abort();
    }
    const double rtt =
        static_cast<double>(NowUs() - before) / static_cast<double>(batch);
    rtt_us.push_back(rtt);
    answered += batch;
  }
  std::sort(rtt_us.begin(), rtt_us.end());
  state.counters["p50_us"] = Percentile(rtt_us, 50.0);
  state.counters["p99_us"] = Percentile(rtt_us, 99.0);
  state.SetItemsProcessed(answered);
}
BENCHMARK(BM_Net_ClosedLoop)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 32})
    ->Args({1, 32})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_Net_SaturatedShard(benchmark::State& state) {
  const bool shed = state.range(0) != 0;
  constexpr int kSaturators = 8;
  constexpr int kBurst = 64;
  constexpr int kBurstsPerEpisode = 40;

  ServiceConfig config;
  config.num_shards = 1;
  config.synchronous = false;
  config.start_time = benchutil::Noon();
  if (shed) {
    config.mailbox_capacity = 4;
    config.overload_policy = OverloadPolicy::kShed;
  } else {
    config.default_deadline = 500;  // us; block-style with bounded waiting
  }
  Harness harness(config);

  // In-process stampede keeping the shard mailbox at its bound for the
  // whole run; its own verdicts are not the measurement.
  std::atomic<bool> stop_saturators{false};
  std::vector<std::thread> saturators;
  for (int s = 0; s < kSaturators; ++s) {
    saturators.emplace_back([&, s] {
      const int u = s % kUsers;
      const AccessRequest request{SyntheticUserName(u), SessionOf(u), "read",
                                  "ledger", ""};
      while (!stop_saturators.load(std::memory_order_acquire)) {
        (void)harness.service->CheckAccess(request);
      }
    });
  }

  auto connected =
      net::WireClient::Connect("127.0.0.1", harness.server->port());
  if (!connected.ok()) std::abort();
  auto client = std::move(connected).value();
  std::vector<AccessRequest> burst(
      kBurst, AccessRequest{SyntheticUserName(0), SessionOf(0), "read",
                            "ledger", ""});

  uint64_t decided = 0, overloaded = 0;
  std::vector<double> burst_rtt_us;
  for (auto _ : state) {
    for (int b = 0; b < kBurstsPerEpisode; ++b) {
      const int64_t before = NowUs();
      auto decisions = client->CheckBatch(burst);
      burst_rtt_us.push_back(static_cast<double>(NowUs() - before));
      if (!decisions.ok()) std::abort();
      for (const AccessDecision& decision : decisions.value()) {
        if (decision.outcome == AccessOutcome::kDecided) {
          ++decided;
        } else {
          ++overloaded;
        }
      }
    }
  }
  stop_saturators.store(true, std::memory_order_release);
  for (std::thread& thread : saturators) thread.join();

  std::sort(burst_rtt_us.begin(), burst_rtt_us.end());
  const double answered = static_cast<double>(decided + overloaded);
  state.counters["decided_frac"] =
      answered > 0 ? static_cast<double>(decided) / answered : 0.0;
  state.counters["overloaded_frac"] =
      answered > 0 ? static_cast<double>(overloaded) / answered : 0.0;
  state.counters["burst_p50_us"] = Percentile(burst_rtt_us, 50.0);
  state.counters["burst_p99_us"] = Percentile(burst_rtt_us, 99.0);
  state.SetItemsProcessed(static_cast<int64_t>(answered));
}
BENCHMARK(BM_Net_SaturatedShard)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
