// E1 — Figure 1 / Section 5: enterprise XYZ policy instantiation.
//
// Prints the generated rule inventory for the XYZ access-specification
// graph (the reproduction of the paper's only figure), then benchmarks the
// full policy-load (instantiate + generate) path.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "tests/test_util.h"

namespace sentinel {
namespace {

void PrintInventory() {
  benchutil::EngineUnderTest sut(testutil::EnterpriseXyzPolicy());
  const RuleManager& rules = sut.engine->rule_manager();

  std::printf("=== E1: enterprise XYZ (Figure 1) generated rule pool ===\n");
  std::printf("%-20s %-18s %-12s %s\n", "rule", "class", "granularity",
              "ON event");
  std::map<std::string, int> by_class;
  for (const Rule* rule : rules.rules()) {
    std::printf("%-20s %-18s %-12s %s\n", rule->name().c_str(),
                RuleClassToString(rule->rule_class()),
                RuleGranularityToString(rule->granularity()),
                sut.engine->detector().name(rule->event()).c_str());
    by_class[RuleClassToString(rule->rule_class())]++;
  }
  std::printf("---\ntotal rules: %zu  events defined: %d\n",
              rules.rule_count(), sut.engine->detector().registry().size());
  for (const auto& [cls, count] : by_class) {
    std::printf("  %-18s %d\n", cls.c_str(), count);
  }
  std::printf("==========================================================\n");
}

void BM_Fig1_LoadXyzPolicy(benchmark::State& state) {
  const Policy policy = testutil::EnterpriseXyzPolicy();
  for (auto _ : state) {
    SimulatedClock clock(benchutil::Noon());
    AuthorizationEngine engine(&clock);
    benchmark::DoNotOptimize(engine.LoadPolicy(policy));
  }
}
BENCHMARK(BM_Fig1_LoadXyzPolicy);

void BM_Fig1_XyzScenarioRoundTrip(benchmark::State& state) {
  benchutil::EngineUnderTest sut(testutil::EnterpriseXyzPolicy());
  (void)sut.engine->CreateSession("alice", "s1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sut.engine->AddActiveRole("alice", "s1", "PC"));
    benchmark::DoNotOptimize(
        sut.engine->CheckAccess("s1", "write", "purchase-order"));
    benchmark::DoNotOptimize(
        sut.engine->DropActiveRole("alice", "s1", "PC"));
  }
}
BENCHMARK(BM_Fig1_XyzScenarioRoundTrip);

}  // namespace
}  // namespace sentinel

int main(int argc, char** argv) {
  sentinel::PrintInventory();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
