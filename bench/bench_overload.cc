// Overload behavior under saturated offered load — 16 closed-loop producer
// threads hammering a single shard, so the mailbox always holds (roughly)
// one envelope per producer. Three arms, selected by Args({capacity,
// deadline_us}):
//
//   {0, 0}    unbounded mailbox, no deadline — the pre-overload-protection
//             semantics: every request queues and waits its full turn.
//   {4, 0}    capacity 4, shed policy — requests beyond the bound are
//             answered immediately with AccessOutcome::kOverloaded.
//   {0, 500}  unbounded with a 500us deadline — requests that wait longer
//             than the budget are expired at dequeue instead of decided.
//
// items_per_second counts *answered* requests (decided + shed + expired):
// overload protection trades decided throughput for bounded latency and
// bounded memory. The decided/shed/expired fractions and the peak mailbox
// depth counters make that trade directly readable.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace sentinel {
namespace {

constexpr int kUsers = 16;
constexpr int kProducers = 16;
constexpr int kPerProducer = 400;

Policy FlatPolicy() {
  Policy policy("overload-bench");
  RoleSpec role;
  role.name = "worker";
  role.permissions.insert(Permission{"read", "ledger"});
  (void)policy.AddRole(std::move(role));
  for (int u = 0; u < kUsers; ++u) {
    UserSpec user;
    user.name = SyntheticUserName(u);
    user.assignments.insert("worker");
    (void)policy.AddUser(std::move(user));
  }
  return policy;
}

std::string SessionOf(int user) { return "sess" + std::to_string(user); }

void BM_Service_SaturatedOfferedLoad(benchmark::State& state) {
  const size_t capacity = static_cast<size_t>(state.range(0));
  const Duration deadline_us = state.range(1);

  ServiceConfig config;
  config.num_shards = 1;
  config.synchronous = false;
  config.start_time = benchutil::Noon();
  config.mailbox_capacity = capacity;
  config.overload_policy =
      capacity > 0 ? OverloadPolicy::kShed : OverloadPolicy::kBlock;
  config.default_deadline = deadline_us;
  auto service = std::make_unique<AuthorizationService>(config);
  if (!service->LoadPolicy(FlatPolicy()).ok()) std::abort();
  for (int u = 0; u < kUsers; ++u) {
    (void)service->CreateSession(SyntheticUserName(u), SessionOf(u));
    (void)service->AddActiveRole(SyntheticUserName(u), SessionOf(u),
                                 "worker");
  }
  std::vector<AccessRequest> requests;
  requests.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    const int u = p % kUsers;
    requests.push_back(AccessRequest{SyntheticUserName(u), SessionOf(u),
                                     "read", "ledger", ""});
  }

  std::atomic<uint64_t> decided{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> expired{0};
  for (auto _ : state) {
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        uint64_t ok = 0, dropped = 0, late = 0;
        for (int i = 0; i < kPerProducer; ++i) {
          const AccessDecision decision = service->CheckAccess(requests[p]);
          if (decision.outcome == AccessOutcome::kDecided) {
            ++ok;
          } else if (decision.reason.find("shed") != std::string::npos) {
            ++dropped;
          } else {
            ++late;
          }
        }
        decided.fetch_add(ok);
        shed.fetch_add(dropped);
        expired.fetch_add(late);
      });
    }
    for (std::thread& thread : producers) thread.join();
  }

  const double total =
      static_cast<double>(state.iterations()) * kProducers * kPerProducer;
  state.SetItemsProcessed(static_cast<int64_t>(total));
  state.counters["decided_frac"] = total == 0 ? 0.0 : decided.load() / total;
  state.counters["shed_frac"] = total == 0 ? 0.0 : shed.load() / total;
  state.counters["expired_frac"] = total == 0 ? 0.0 : expired.load() / total;
  state.counters["peak_depth"] =
      static_cast<double>(service->MailboxPeakDepth(0));
}
BENCHMARK(BM_Service_SaturatedOfferedLoad)
    ->Args({0, 0})    // Unbounded, no deadline: pre-PR behavior.
    ->Args({4, 0})    // Bounded + shed.
    ->Args({0, 500})  // Unbounded + 500us deadline.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
