// E3 — Policy-change regeneration (§5): when a constraint on one role
// changes, only that role's rules are regenerated. Compares incremental
// regeneration against a full reload across policy sizes, and reports how
// many rules were touched (the proxy for the paper's "thousands of rules
// edited manually").

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace sentinel {
namespace {

PolicyGenParams RichParams(int roles) {
  PolicyGenParams params;
  params.seed = 7;
  params.num_roles = roles;
  params.num_users = roles * 2;
  params.hierarchy_prob = 0.7;
  params.ssd_sets = roles / 10 + 1;
  params.dsd_sets = roles / 10 + 1;
  params.cardinality_frac = 0.3;
  params.duration_frac = 0.2;
  return params;
}

/// Flips one role's cardinality — the paper's "shift time changed" class
/// of edit.
Policy OneRoleEdit(const Policy& base, int salt) {
  Policy updated = base;
  auto role = updated.MutableRole(SyntheticRoleName(1));
  if (role.ok()) {
    (*role)->activation_cardinality = 3 + (salt % 5);
  }
  return updated;
}

void BM_Regen_Incremental(benchmark::State& state) {
  const int roles = static_cast<int>(state.range(0));
  const Policy base = GeneratePolicy(RichParams(roles));
  benchutil::EngineUnderTest sut(base);
  int salt = 0;
  int rules_touched = 0;
  size_t pool = 0;
  for (auto _ : state) {
    const Policy updated = OneRoleEdit(base, ++salt);
    auto report = sut.engine->ApplyPolicyUpdate(updated);
    benchmark::DoNotOptimize(report);
    if (report.ok()) {
      rules_touched = report->rules_removed + report->rules_added;
    }
    pool = sut.engine->rule_manager().rule_count();
  }
  state.counters["roles"] = roles;
  state.counters["rules_touched"] = rules_touched;
  state.counters["pool_size"] = static_cast<double>(pool);
}
BENCHMARK(BM_Regen_Incremental)->Arg(50)->Arg(100)->Arg(200)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

void BM_Regen_FullReload(benchmark::State& state) {
  const int roles = static_cast<int>(state.range(0));
  const Policy base = GeneratePolicy(RichParams(roles));
  int salt = 0;
  for (auto _ : state) {
    const Policy updated = OneRoleEdit(base, ++salt);
    SimulatedClock clock(benchutil::Noon());
    AuthorizationEngine engine(&clock);
    benchmark::DoNotOptimize(engine.LoadPolicy(updated));
  }
  state.counters["roles"] = roles;
}
BENCHMARK(BM_Regen_FullReload)->Arg(50)->Arg(100)->Arg(200)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

// Wider edits: a changed SoD set touches all member roles.
void BM_Regen_SodSetEdit(benchmark::State& state) {
  const int roles = static_cast<int>(state.range(0));
  const Policy base = GeneratePolicy(RichParams(roles));
  benchutil::EngineUnderTest sut(base);
  bool flip = false;
  for (auto _ : state) {
    Policy updated = base;
    if (flip) {
      SodSet set;
      set.name = "DSDextra";
      set.roles = {SyntheticRoleName(2), SyntheticRoleName(3),
                   SyntheticRoleName(4)};
      set.n = 2;
      (void)updated.AddDsd(std::move(set));
    }
    flip = !flip;
    benchmark::DoNotOptimize(sut.engine->ApplyPolicyUpdate(updated));
  }
  state.counters["roles"] = roles;
}
BENCHMARK(BM_Regen_SodSetEdit)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
