// E5 — checkAccess latency (Rule 5 / CA1): the globalized check-access
// rule walks the session's active role set and the permission inheritance
// closure. Sweeps the number of active roles per session and permissions
// per role; engine vs DirectEnforcer.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace sentinel {
namespace {

/// Flat policy: `roles` roles, each granted `perms` permissions, one user
/// assigned to all of them.
Policy FlatPolicy(int roles, int perms) {
  Policy policy("flat");
  UserSpec user;
  user.name = "u";
  for (int r = 0; r < roles; ++r) {
    RoleSpec role;
    role.name = SyntheticRoleName(r);
    for (int p = 0; p < perms; ++p) {
      role.permissions.insert(
          Permission{"op" + std::to_string(p),
                     SyntheticObjectName(r * perms + p)});
    }
    user.assignments.insert(role.name);
    (void)policy.AddRole(std::move(role));
  }
  (void)policy.AddUser(std::move(user));
  return policy;
}

void ActivateAll(AuthorizationEngine& engine, int roles) {
  (void)engine.CreateSession("u", "s1");
  for (int r = 0; r < roles; ++r) {
    (void)engine.AddActiveRole("u", "s1", SyntheticRoleName(r));
  }
}

void ActivateAllBaseline(DirectEnforcer& enforcer, int roles) {
  (void)enforcer.CreateSession("u", "s1");
  for (int r = 0; r < roles; ++r) {
    (void)enforcer.AddActiveRole("u", "s1", SyntheticRoleName(r));
  }
}

void BM_CheckAccess_Engine_ActiveRoles(benchmark::State& state) {
  const int roles = static_cast<int>(state.range(0));
  benchutil::EngineUnderTest sut(FlatPolicy(roles, 4));
  ActivateAll(*sut.engine, roles);
  // Worst case: the permission held only by the last-ordered role.
  const std::string obj = SyntheticObjectName((roles - 1) * 4 + 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sut.engine->CheckAccess("s1", "op3", obj));
  }
  state.counters["active_roles"] = roles;
}
BENCHMARK(BM_CheckAccess_Engine_ActiveRoles)->Arg(1)->Arg(4)->Arg(16)
    ->Arg(64);

void BM_CheckAccess_Baseline_ActiveRoles(benchmark::State& state) {
  const int roles = static_cast<int>(state.range(0));
  benchutil::BaselineUnderTest sut(FlatPolicy(roles, 4));
  ActivateAllBaseline(*sut.enforcer, roles);
  const std::string obj = SyntheticObjectName((roles - 1) * 4 + 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sut.enforcer->CheckAccess("s1", "op3", obj));
  }
  state.counters["active_roles"] = roles;
}
BENCHMARK(BM_CheckAccess_Baseline_ActiveRoles)->Arg(1)->Arg(4)->Arg(16)
    ->Arg(64);

void BM_CheckAccess_Engine_PermsPerRole(benchmark::State& state) {
  const int perms = static_cast<int>(state.range(0));
  benchutil::EngineUnderTest sut(FlatPolicy(4, perms));
  ActivateAll(*sut.engine, 4);
  const std::string obj = SyntheticObjectName(3 * perms + perms - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sut.engine->CheckAccess("s1", "op" + std::to_string(perms - 1), obj));
  }
  state.counters["perms_per_role"] = perms;
}
BENCHMARK(BM_CheckAccess_Engine_PermsPerRole)->Arg(2)->Arg(8)->Arg(32)
    ->Arg(128);

void BM_CheckAccess_Engine_Denied(benchmark::State& state) {
  benchutil::EngineUnderTest sut(FlatPolicy(8, 4));
  ActivateAll(*sut.engine, 8);
  for (auto _ : state) {
    // Known op/object, but no grant matches: full scan, then deny.
    benchmark::DoNotOptimize(
        sut.engine->CheckAccess("s1", "op0", SyntheticObjectName(1)));
  }
}
BENCHMARK(BM_CheckAccess_Engine_Denied);

void BM_CheckAccess_Baseline_Denied(benchmark::State& state) {
  benchutil::BaselineUnderTest sut(FlatPolicy(8, 4));
  ActivateAllBaseline(*sut.enforcer, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sut.enforcer->CheckAccess("s1", "op0", SyntheticObjectName(1)));
  }
}
BENCHMARK(BM_CheckAccess_Baseline_Denied);

// Deep hierarchy: permission only at the bottom; the active role is the
// top. CheckAccess walks the junior closure.
void BM_CheckAccess_Engine_HierarchyDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Policy policy("deep");
  RoleSpec bottom;
  bottom.name = "L0";
  bottom.permissions.insert(Permission{"read", "leaf"});
  (void)policy.AddRole(std::move(bottom));
  for (int i = 1; i <= depth; ++i) {
    RoleSpec role;
    role.name = "L" + std::to_string(i);
    role.juniors.insert("L" + std::to_string(i - 1));
    (void)policy.AddRole(std::move(role));
  }
  UserSpec user;
  user.name = "u";
  user.assignments.insert("L" + std::to_string(depth));
  (void)policy.AddUser(std::move(user));

  benchutil::EngineUnderTest sut(policy);
  (void)sut.engine->CreateSession("u", "s1");
  (void)sut.engine->AddActiveRole("u", "s1", "L" + std::to_string(depth));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sut.engine->CheckAccess("s1", "read", "leaf"));
  }
  state.counters["depth"] = depth;
}
BENCHMARK(BM_CheckAccess_Engine_HierarchyDepth)->Arg(1)->Arg(4)->Arg(16)
    ->Arg(64);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
