// E5 — checkAccess latency (Rule 5 / CA1): the globalized check-access
// rule walks the session's active role set and the permission inheritance
// closure. Sweeps the number of active roles per session and permissions
// per role; engine (behind the AuthorizationService facade, submitted via
// CheckAccessBatch so bulk callers pay one boundary hop per batch) vs
// DirectEnforcer.

#include <benchmark/benchmark.h>

#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace sentinel {
namespace {

constexpr size_t kBatch = 64;

/// Flat policy: `roles` roles, each granted `perms` permissions, one user
/// assigned to all of them.
Policy FlatPolicy(int roles, int perms) {
  Policy policy("flat");
  UserSpec user;
  user.name = "u";
  for (int r = 0; r < roles; ++r) {
    RoleSpec role;
    role.name = SyntheticRoleName(r);
    for (int p = 0; p < perms; ++p) {
      role.permissions.insert(
          Permission{"op" + std::to_string(p),
                     SyntheticObjectName(r * perms + p)});
    }
    user.assignments.insert(role.name);
    (void)policy.AddRole(std::move(role));
  }
  (void)policy.AddUser(std::move(user));
  return policy;
}

void ActivateAll(AuthorizationService& service, int roles) {
  (void)service.CreateSession("u", "s1");
  for (int r = 0; r < roles; ++r) {
    (void)service.AddActiveRole("u", "s1", SyntheticRoleName(r));
  }
}

void ActivateAllBaseline(DirectEnforcer& enforcer, int roles) {
  (void)enforcer.CreateSession("u", "s1");
  for (int r = 0; r < roles; ++r) {
    (void)enforcer.AddActiveRole("u", "s1", SyntheticRoleName(r));
  }
}

/// A batch of identical worst-case requests; per-request cost is the
/// reported metric (items_processed).
std::vector<AccessRequest> RepeatRequest(const std::string& op,
                                         const std::string& obj) {
  return std::vector<AccessRequest>(kBatch,
                                    AccessRequest{"u", "s1", op, obj, ""});
}

void RunBatches(benchmark::State& state, AuthorizationService& service,
                const std::vector<AccessRequest>& batch) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        service.CheckAccessBatch(std::span<const AccessRequest>(batch)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
  // The engine's own sampled latency histogram, scraped once at the end —
  // percentile counters ride along in the benchmark's JSON output.
  const TelemetrySnapshot snap = service.Snapshot();
  const telemetry::HistogramSnapshot* latency =
      snap.metrics.FindHistogram("decision_latency_us");
  if (latency != nullptr && latency->TotalCount() > 0) {
    state.counters["lat_p50_us"] = latency->Percentile(50);
    state.counters["lat_p99_us"] = latency->Percentile(99);
    state.counters["lat_samples"] = static_cast<double>(latency->TotalCount());
  }
}

void BM_CheckAccess_Engine_ActiveRoles(benchmark::State& state) {
  const int roles = static_cast<int>(state.range(0));
  benchutil::ServiceUnderTest sut(FlatPolicy(roles, 4));
  ActivateAll(*sut.service, roles);
  // Worst case: the permission held only by the last-ordered role.
  const std::string obj = SyntheticObjectName((roles - 1) * 4 + 3);
  RunBatches(state, *sut.service, RepeatRequest("op3", obj));
  state.counters["active_roles"] = roles;
}
BENCHMARK(BM_CheckAccess_Engine_ActiveRoles)->Arg(1)->Arg(4)->Arg(16)
    ->Arg(64);

void BM_CheckAccess_Baseline_ActiveRoles(benchmark::State& state) {
  const int roles = static_cast<int>(state.range(0));
  benchutil::BaselineUnderTest sut(FlatPolicy(roles, 4));
  ActivateAllBaseline(*sut.enforcer, roles);
  const std::string obj = SyntheticObjectName((roles - 1) * 4 + 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sut.enforcer->CheckAccess("s1", "op3", obj));
  }
  state.counters["active_roles"] = roles;
}
BENCHMARK(BM_CheckAccess_Baseline_ActiveRoles)->Arg(1)->Arg(4)->Arg(16)
    ->Arg(64);

void BM_CheckAccess_Engine_PermsPerRole(benchmark::State& state) {
  const int perms = static_cast<int>(state.range(0));
  benchutil::ServiceUnderTest sut(FlatPolicy(4, perms));
  ActivateAll(*sut.service, 4);
  const std::string obj = SyntheticObjectName(3 * perms + perms - 1);
  RunBatches(state, *sut.service,
             RepeatRequest("op" + std::to_string(perms - 1), obj));
  state.counters["perms_per_role"] = perms;
}
BENCHMARK(BM_CheckAccess_Engine_PermsPerRole)->Arg(2)->Arg(8)->Arg(32)
    ->Arg(128);

void BM_CheckAccess_Engine_Denied(benchmark::State& state) {
  benchutil::ServiceUnderTest sut(FlatPolicy(8, 4));
  ActivateAll(*sut.service, 8);
  // Known op/object, but no grant matches: full scan, then deny.
  RunBatches(state, *sut.service,
             RepeatRequest("op0", SyntheticObjectName(1)));
}
BENCHMARK(BM_CheckAccess_Engine_Denied);

void BM_CheckAccess_Baseline_Denied(benchmark::State& state) {
  benchutil::BaselineUnderTest sut(FlatPolicy(8, 4));
  ActivateAllBaseline(*sut.enforcer, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sut.enforcer->CheckAccess("s1", "op0", SyntheticObjectName(1)));
  }
}
BENCHMARK(BM_CheckAccess_Baseline_Denied);

// Repeat-heavy workload: a small working set of distinct (op, obj) pairs
// cycled through every batch — the access pattern the decision cache is
// built for. Arg is the cache capacity (0 = cache off), so consecutive
// rows are the uncached/cached A/B at identical request streams.
void BM_CheckAccess_Engine_RepeatHeavy(benchmark::State& state) {
  const size_t capacity = static_cast<size_t>(state.range(0));
  constexpr int kRoles = 16;
  constexpr int kPerms = 4;
  benchutil::ServiceUnderTest sut(FlatPolicy(kRoles, kPerms), 1,
                                  /*synchronous=*/true, benchutil::Noon(),
                                  capacity);
  ActivateAll(*sut.service, kRoles);
  // 16 distinct requests spread across the role set, repeated to kBatch.
  std::vector<AccessRequest> batch;
  batch.reserve(kBatch);
  for (size_t i = 0; i < kBatch; ++i) {
    const int slot = static_cast<int>(i % 16);
    const int role = slot * kRoles / 16;
    const int perm = slot % kPerms;
    batch.push_back(AccessRequest{
        "u", "s1", "op" + std::to_string(perm),
        SyntheticObjectName(role * kPerms + perm), ""});
  }
  RunBatches(state, *sut.service, batch);
  state.counters["cache_capacity"] = static_cast<double>(capacity);
  const ServiceStats stats = sut.service->Stats();
  const uint64_t lookups = stats.cache_hits + stats.cache_misses;
  state.counters["cache_hit_rate"] =
      lookups == 0 ? 0.0
                   : static_cast<double>(stats.cache_hits) /
                         static_cast<double>(lookups);
}
BENCHMARK(BM_CheckAccess_Engine_RepeatHeavy)->Arg(0)->Arg(1024);

// Deep hierarchy: permission only at the bottom; the active role is the
// top. CheckAccess walks the junior closure.
void BM_CheckAccess_Engine_HierarchyDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Policy policy("deep");
  RoleSpec bottom;
  bottom.name = "L0";
  bottom.permissions.insert(Permission{"read", "leaf"});
  (void)policy.AddRole(std::move(bottom));
  for (int i = 1; i <= depth; ++i) {
    RoleSpec role;
    role.name = "L" + std::to_string(i);
    role.juniors.insert("L" + std::to_string(i - 1));
    (void)policy.AddRole(std::move(role));
  }
  UserSpec user;
  user.name = "u";
  user.assignments.insert("L" + std::to_string(depth));
  (void)policy.AddUser(std::move(user));

  benchutil::ServiceUnderTest sut(policy);
  (void)sut.service->CreateSession("u", "s1");
  (void)sut.service->AddActiveRole("u", "s1", "L" + std::to_string(depth));
  RunBatches(state, *sut.service, RepeatRequest("read", "leaf"));
  state.counters["depth"] = depth;
}
BENCHMARK(BM_CheckAccess_Engine_HierarchyDepth)->Arg(1)->Arg(4)->Arg(16)
    ->Arg(64);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
