// E11 — End-to-end enforcement throughput on full random workloads:
// the OWTE engine versus the hand-coded DirectEnforcer running the same
// request stream. The ratio is the total price of the paper's uniform
// event/rule machinery; the differential test guarantees the decisions
// are identical.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace sentinel {
namespace {

PolicyGenParams WorkloadPolicyParams(int roles) {
  PolicyGenParams params;
  params.seed = 21;
  params.num_roles = roles;
  params.num_users = roles * 2;
  params.hierarchy_prob = 0.6;
  params.ssd_sets = roles / 10 + 1;
  params.dsd_sets = roles / 10 + 1;
  params.cardinality_frac = 0.2;
  params.duration_frac = 0.1;
  params.user_cap_frac = 0.1;
  return params;
}

std::vector<Request> MakeStream(const Policy& policy, int n) {
  RequestGenParams params;
  params.seed = 1234;
  params.num_requests = n;
  return RequestGenerator(policy, params).Generate();
}

void BM_Workload_Engine(benchmark::State& state) {
  const int roles = static_cast<int>(state.range(0));
  const Policy policy = GeneratePolicy(WorkloadPolicyParams(roles));
  const std::vector<Request> stream = MakeStream(policy, 2000);
  for (auto _ : state) {
    state.PauseTiming();
    benchutil::EngineUnderTest sut(policy);
    state.ResumeTiming();
    for (const Request& request : stream) {
      benchmark::DoNotOptimize(ApplyRequest(*sut.engine, request));
    }
  }
  state.counters["roles"] = roles;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_Workload_Engine)->Arg(25)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_Workload_Baseline(benchmark::State& state) {
  const int roles = static_cast<int>(state.range(0));
  const Policy policy = GeneratePolicy(WorkloadPolicyParams(roles));
  const std::vector<Request> stream = MakeStream(policy, 2000);
  for (auto _ : state) {
    state.PauseTiming();
    benchutil::BaselineUnderTest sut(policy);
    state.ResumeTiming();
    for (const Request& request : stream) {
      benchmark::DoNotOptimize(ApplyRequest(*sut.enforcer, request));
    }
  }
  state.counters["roles"] = roles;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_Workload_Baseline)->Arg(25)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
