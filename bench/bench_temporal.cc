// E7 — Temporal machinery scalability (Rules 2 and 7): many outstanding
// PLUS expiries, firing them by advancing simulated time, and the
// engine-level duration chain (activation -> PLUS -> forced deactivation)
// against the DirectEnforcer's expiry heap.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "event/event_detector.h"

namespace sentinel {
namespace {

void BM_Temporal_PlusScheduleAndFire(benchmark::State& state) {
  const int pending = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SimulatedClock clock(benchutil::Noon());
    EventDetector detector(&clock);
    const EventId a = *detector.DefinePrimitive("a");
    const EventId plus = *detector.DefinePlus("plus", a, kMinute);
    uint64_t fired = 0;
    detector.Subscribe(plus, [&fired](const Occurrence&) { ++fired; });
    state.ResumeTiming();

    for (int i = 0; i < pending; ++i) {
      clock.Advance(3);  // Offset expiries; odd microsecond spacing.
      benchmark::DoNotOptimize(
          detector.Raise(a, {{"n", Value(int64_t{i})}}));
    }
    detector.AdvanceTo(clock.Now() + 2 * kMinute, &clock);
    if (fired != static_cast<uint64_t>(pending)) {
      state.SkipWithError("missed expiries");
    }
  }
  state.counters["pending"] = pending;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          pending);
}
BENCHMARK(BM_Temporal_PlusScheduleAndFire)->Arg(100)->Arg(1000)->Arg(10000)
    ->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_Temporal_CancelHalf(benchmark::State& state) {
  const int pending = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SimulatedClock clock(benchutil::Noon());
    EventDetector detector(&clock);
    const EventId a = *detector.DefinePrimitive("a");
    const EventId plus = *detector.DefinePlus("plus", a, kMinute);
    for (int i = 0; i < pending; ++i) {
      clock.Advance(3);
      (void)detector.Raise(
          a, {{"parity", Value(int64_t{i % 2})}});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        detector.CancelPendingPlus(plus, {{"parity", Value(int64_t{0})}}));
    detector.AdvanceTo(clock.Now() + 2 * kMinute, &clock);
  }
  state.counters["pending"] = pending;
}
BENCHMARK(BM_Temporal_CancelHalf)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// Engine-level duration chain: N activations with a 30min bound, then one
// AdvanceTo that expires all of them (rule-driven forced deactivation).
Policy DurationPolicy(int users) {
  Policy policy("durations");
  RoleSpec role;
  role.name = "OnCall";
  role.max_activation = 30 * kMinute;
  (void)policy.AddRole(std::move(role));
  for (int i = 0; i < users; ++i) {
    UserSpec user;
    user.name = SyntheticUserName(i);
    user.assignments.insert("OnCall");
    (void)policy.AddUser(std::move(user));
  }
  return policy;
}

void BM_Temporal_EngineDurationExpiryWave(benchmark::State& state) {
  const int users = static_cast<int>(state.range(0));
  const Policy policy = DurationPolicy(users);
  for (auto _ : state) {
    state.PauseTiming();
    benchutil::EngineUnderTest sut(policy);
    for (int i = 0; i < users; ++i) {
      const std::string name = SyntheticUserName(i);
      (void)sut.engine->CreateSession(name, "s" + std::to_string(i));
      sut.clock->Advance(3);
      (void)sut.engine->AddActiveRole(name, "s" + std::to_string(i),
                                      "OnCall");
    }
    state.ResumeTiming();
    sut.engine->AdvanceBy(31 * kMinute);
    if (sut.engine->rbac().db().ActiveSessionCount("OnCall") != 0) {
      state.SkipWithError("expiries missed");
    }
  }
  state.counters["activations"] = users;
}
BENCHMARK(BM_Temporal_EngineDurationExpiryWave)->Arg(100)->Arg(1000)
    ->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_Temporal_BaselineDurationExpiryWave(benchmark::State& state) {
  const int users = static_cast<int>(state.range(0));
  const Policy policy = DurationPolicy(users);
  for (auto _ : state) {
    state.PauseTiming();
    benchutil::BaselineUnderTest sut(policy);
    for (int i = 0; i < users; ++i) {
      const std::string name = SyntheticUserName(i);
      (void)sut.enforcer->CreateSession(name, "s" + std::to_string(i));
      sut.clock->Advance(3);
      (void)sut.enforcer->AddActiveRole(name, "s" + std::to_string(i),
                                        "OnCall");
    }
    state.ResumeTiming();
    sut.enforcer->AdvanceTo(sut.enforcer->Now() + 31 * kMinute);
    if (sut.enforcer->rbac().db().ActiveSessionCount("OnCall") != 0) {
      state.SkipWithError("expiries missed");
    }
  }
  state.counters["activations"] = users;
}
BENCHMARK(BM_Temporal_BaselineDurationExpiryWave)->Arg(100)->Arg(1000)
    ->Arg(5000)->Unit(benchmark::kMillisecond);

// Absolute (calendar) events: advance a month with k daily shift roles.
void BM_Temporal_ShiftBoundariesMonth(benchmark::State& state) {
  const int roles = static_cast<int>(state.range(0));
  PolicyGenParams params;
  params.seed = 3;
  params.num_roles = roles;
  params.num_users = 1;
  params.shift_frac = 1.0;
  params.assignments_per_user = 0;
  const Policy policy = GeneratePolicy(params);
  for (auto _ : state) {
    state.PauseTiming();
    benchutil::EngineUnderTest sut(policy);
    state.ResumeTiming();
    sut.engine->AdvanceBy(30 * kDay);
  }
  state.counters["shift_roles"] = roles;
  state.counters["boundaries"] = roles * 30.0 * 2;
}
BENCHMARK(BM_Temporal_ShiftBoundariesMonth)->Arg(10)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
