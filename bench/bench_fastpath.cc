// Cached-hit A/B: the same warm (session, op, object) key answered through
// the two hit paths, one closed-loop caller against one shard:
//
//   {0}  mailbox hit — the envelope crosses the MPSC ring, the shard thread
//        wakes, its private cache replays the verdict, the reply latch
//        wakes the caller. Two scheduler hops per verdict.
//   {1}  zero-hop hit — the caller probes the shard's published seqlock
//        snapshot and reconstructs the verdict in place. No hop, no lock.
//
// Latency is what this path exists for, so besides google-benchmark's own
// per-iteration timing the inner loop records ns/op per 64-call batch
// (batching keeps the clock reads out of the measured ops) and reports the
// p50/p99 of those samples as counters — the numbers BENCH_PR6.json quotes.
// hit_frac keeps the arms honest: both must replay from a cache, not
// re-derive.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace sentinel {
namespace {

constexpr int kBatch = 64;

Policy HotKeyPolicy() {
  Policy policy("fastpath-bench");
  RoleSpec role;
  role.name = "reader";
  role.permissions.insert(Permission{"read", "ledger"});
  (void)policy.AddRole(std::move(role));
  UserSpec user;
  user.name = "alice";
  user.assignments.insert("reader");
  (void)policy.AddUser(std::move(user));
  return policy;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

void BM_Service_CachedHit(benchmark::State& state) {
  const bool fastpath = state.range(0) != 0;

  ServiceConfig config;
  config.num_shards = 1;
  config.synchronous = false;
  config.start_time = benchutil::Noon();
  config.decision_cache_capacity = 1024;
  config.decision_cache_fastpath = fastpath;
  auto service = std::make_unique<AuthorizationService>(config);
  if (!service->LoadPolicy(HotKeyPolicy()).ok()) std::abort();
  (void)service->CreateSession("alice", "s1");
  (void)service->AddActiveRole("alice", "s1", "reader");

  const AccessRequest request{"alice", "s1", "read", "ledger", ""};
  // Warm: the first call misses and fills, the second proves the replay.
  if (!service->CheckAccess(request).allowed) std::abort();
  if (!service->CheckAccess(request).allowed) std::abort();

  std::vector<double> samples;
  samples.reserve(1 << 16);
  for (auto _ : state) {
    const auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < kBatch; ++i) {
      benchmark::DoNotOptimize(service->CheckAccess(request));
    }
    const auto end = std::chrono::steady_clock::now();
    samples.push_back(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                .count()) /
        kBatch);
  }

  const double total = static_cast<double>(state.iterations()) * kBatch;
  state.SetItemsProcessed(static_cast<int64_t>(total));
  std::sort(samples.begin(), samples.end());
  state.counters["p50_ns"] = Percentile(samples, 50);
  state.counters["p99_ns"] = Percentile(samples, 99);
  // Replays answered from a cache (either one), as a fraction of the
  // measured calls. Both arms must sit at ~1.0 for the A/B to mean
  // anything; the fast arm's hits must be *fast-path* hits specifically.
  ServiceStats stats = service->Stats();
  const uint64_t cached = fastpath ? stats.fastpath_hits : stats.cache_hits;
  state.counters["hit_frac"] =
      total == 0 ? 0.0 : static_cast<double>(cached) / total;
}
BENCHMARK(BM_Service_CachedHit)
    ->Arg(0)  // Mailbox hit: ring + shard thread + reply latch.
    ->Arg(1)  // Zero-hop hit: caller-side snapshot probe.
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
