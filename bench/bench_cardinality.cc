// E8 — Cardinality constraints (Rule 4 / CC): contention on a role with a
// concurrent-activation limit. The engine's compensating post-check (add,
// cascaded CC rule, forced rollback on breach) versus the baseline's
// inline check, on both the admit and the reject path.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace sentinel {
namespace {

Policy CardinalityPolicy(int limit, int users) {
  Policy policy("cardinality");
  RoleSpec role;
  role.name = "Limited";
  role.activation_cardinality = limit;
  (void)policy.AddRole(std::move(role));
  for (int i = 0; i < users; ++i) {
    UserSpec user;
    user.name = SyntheticUserName(i);
    user.assignments.insert("Limited");
    (void)policy.AddUser(std::move(user));
  }
  return policy;
}

// Admit path: activate/drop below the limit.
void BM_Cardinality_EngineAdmit(benchmark::State& state) {
  benchutil::EngineUnderTest sut(CardinalityPolicy(8, 1));
  (void)sut.engine->CreateSession(SyntheticUserName(0), "s0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sut.engine->AddActiveRole(SyntheticUserName(0), "s0", "Limited"));
    benchmark::DoNotOptimize(
        sut.engine->DropActiveRole(SyntheticUserName(0), "s0", "Limited"));
  }
}
BENCHMARK(BM_Cardinality_EngineAdmit);

void BM_Cardinality_BaselineAdmit(benchmark::State& state) {
  benchutil::BaselineUnderTest sut(CardinalityPolicy(8, 1));
  (void)sut.enforcer->CreateSession(SyntheticUserName(0), "s0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sut.enforcer->AddActiveRole(SyntheticUserName(0), "s0", "Limited"));
    benchmark::DoNotOptimize(sut.enforcer->DropActiveRole(
        SyntheticUserName(0), "s0", "Limited"));
  }
}
BENCHMARK(BM_Cardinality_BaselineAdmit);

// Reject path: the limit is saturated; every attempt triggers the CC
// rule's compensating rollback (engine) / inline reject (baseline).
void BM_Cardinality_EngineReject(benchmark::State& state) {
  const int limit = static_cast<int>(state.range(0));
  benchutil::EngineUnderTest sut(CardinalityPolicy(limit, limit + 1));
  for (int i = 0; i < limit; ++i) {
    const std::string user = SyntheticUserName(i);
    (void)sut.engine->CreateSession(user, "s" + std::to_string(i));
    (void)sut.engine->AddActiveRole(user, "s" + std::to_string(i),
                                    "Limited");
  }
  const std::string extra = SyntheticUserName(limit);
  (void)sut.engine->CreateSession(extra, "sx");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sut.engine->AddActiveRole(extra, "sx", "Limited"));
  }
  state.counters["limit"] = limit;
}
BENCHMARK(BM_Cardinality_EngineReject)->Arg(1)->Arg(8)->Arg(64);

void BM_Cardinality_BaselineReject(benchmark::State& state) {
  const int limit = static_cast<int>(state.range(0));
  benchutil::BaselineUnderTest sut(CardinalityPolicy(limit, limit + 1));
  for (int i = 0; i < limit; ++i) {
    const std::string user = SyntheticUserName(i);
    (void)sut.enforcer->CreateSession(user, "s" + std::to_string(i));
    (void)sut.enforcer->AddActiveRole(user, "s" + std::to_string(i),
                                      "Limited");
  }
  const std::string extra = SyntheticUserName(limit);
  (void)sut.enforcer->CreateSession(extra, "sx");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sut.enforcer->AddActiveRole(extra, "sx", "Limited"));
  }
  state.counters["limit"] = limit;
}
BENCHMARK(BM_Cardinality_BaselineReject)->Arg(1)->Arg(8)->Arg(64);

// Ablation — the paper's design choice for Rule 4: cardinality as a
// *compensating post-check* (activate, cascaded CC rule, rollback on
// breach — what the paper describes and the generator emits) versus the
// alternative of checking the count as a pre-condition inside the
// activation rule itself. Both variants are hand-built on the raw
// substrate so the comparison isolates the pattern, not the generator.
struct AblationRig {
  SimulatedClock clock{benchutil::Noon()};
  EventDetector detector{&clock};
  RuleManager rules{&detector};
  int active = 0;
  int limit = 1;
  EventId request = kInvalidEventId;
  EventId added = kInvalidEventId;

  explicit AblationRig(bool precheck) {
    request = *detector.DefinePrimitive("request");
    added = *detector.DefinePrimitive("added");
    if (precheck) {
      Rule rule("AAR.pre", request);
      rule.When("cardinality as pre-condition",
                [this](RuleContext&) { return active < limit; })
          .Then("activate",
                [this](RuleContext& c) {
                  ++active;
                  AllowOutcome(c);
                })
          .Else("deny", [](RuleContext& c) {
            if (c.decision) c.decision->Deny("AAR.pre", "max");
          });
      (void)rules.AddRule(std::move(rule));
    } else {
      Rule aar("AAR.post", request);
      aar.Then("activate then cascade", [this](RuleContext& c) {
        ++active;
        AllowOutcome(c);
        (void)detector.Raise(added, {});
      });
      (void)rules.AddRule(std::move(aar));
      Rule cc("CC.post", added);
      cc.When("cardinality ok", [this](RuleContext&) {
          return active <= limit;
        }).Else("undo", [this](RuleContext& c) {
        --active;
        if (c.decision) c.decision->Deny("CC.post", "max");
      });
      (void)rules.AddRule(std::move(cc));
    }
  }

  static void AllowOutcome(RuleContext& c) {
    if (c.decision) c.decision->Allow("AAR");
  }

  Decision Request() {
    Decision decision;
    ScopedDecision scope(&rules, &decision);
    (void)detector.Raise(request, {});
    return decision;
  }
};

void BM_Ablation_PrecheckAdmitReject(benchmark::State& state) {
  AblationRig rig(/*precheck=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.Request());  // Admit (0 -> 1).
    benchmark::DoNotOptimize(rig.Request());  // Reject at the limit.
    rig.active = 0;
  }
}
BENCHMARK(BM_Ablation_PrecheckAdmitReject);

void BM_Ablation_CompensateAdmitReject(benchmark::State& state) {
  AblationRig rig(/*precheck=*/false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.Request());  // Admit.
    benchmark::DoNotOptimize(rig.Request());  // Overshoot + rollback.
    rig.active = 0;
  }
}
BENCHMARK(BM_Ablation_CompensateAdmitReject);

// Churn at the limit: the slot is contended; each iteration one drop
// admits exactly one of two waiting users.
void BM_Cardinality_EngineChurn(benchmark::State& state) {
  benchutil::EngineUnderTest sut(CardinalityPolicy(1, 2));
  const std::string u0 = SyntheticUserName(0);
  const std::string u1 = SyntheticUserName(1);
  (void)sut.engine->CreateSession(u0, "s0");
  (void)sut.engine->CreateSession(u1, "s1");
  (void)sut.engine->AddActiveRole(u0, "s0", "Limited");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sut.engine->AddActiveRole(u1, "s1", "Limited"));  // Rejected.
    benchmark::DoNotOptimize(
        sut.engine->DropActiveRole(u0, "s0", "Limited"));
    benchmark::DoNotOptimize(
        sut.engine->AddActiveRole(u1, "s1", "Limited"));  // Admitted.
    benchmark::DoNotOptimize(
        sut.engine->DropActiveRole(u1, "s1", "Limited"));
    benchmark::DoNotOptimize(
        sut.engine->AddActiveRole(u0, "s0", "Limited"));  // Back to start.
  }
}
BENCHMARK(BM_Cardinality_EngineChurn);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
