// E10 — Active security (§1, §4.3.3): (a) the monitoring overhead that
// threshold directives impose on the normal request path, and (b) the
// alert path itself (a denial burst that trips the window, raises the
// alert and disables rules).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/logging.h"

namespace sentinel {
namespace {

Policy MonitoredPolicy(int directives) {
  Policy policy("monitored");
  RoleSpec role;
  role.name = "Analyst";
  role.permissions.insert(Permission{"read", "report"});
  (void)policy.AddRole(std::move(role));
  UserSpec user;
  user.name = "u";
  user.assignments.insert("Analyst");
  (void)policy.AddUser(std::move(user));
  for (int i = 0; i < directives; ++i) {
    ThresholdDirective directive;
    directive.name = "guard" + std::to_string(i);
    directive.threshold = 1000000;  // Never trips during the overhead runs.
    directive.window = kMinute;
    (void)policy.AddThreshold(std::move(directive));
  }
  return policy;
}

// Denied checkAccess feeds every SEC rule: overhead vs directive count.
void BM_Security_DeniedAccessOverhead(benchmark::State& state) {
  const int directives = static_cast<int>(state.range(0));
  benchutil::EngineUnderTest sut(MonitoredPolicy(directives));
  (void)sut.engine->CreateSession("u", "s1");
  for (auto _ : state) {
    sut.clock->Advance(3);
    benchmark::DoNotOptimize(
        sut.engine->CheckAccess("s1", "write", "report"));
  }
  state.counters["directives"] = directives;
}
BENCHMARK(BM_Security_DeniedAccessOverhead)->Arg(0)->Arg(1)->Arg(4)
    ->Arg(16);

// Allowed accesses never raise rbac.accessDenied: monitoring must be free.
void BM_Security_AllowedAccessOverhead(benchmark::State& state) {
  const int directives = static_cast<int>(state.range(0));
  benchutil::EngineUnderTest sut(MonitoredPolicy(directives));
  (void)sut.engine->CreateSession("u", "s1");
  (void)sut.engine->AddActiveRole("u", "s1", "Analyst");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sut.engine->CheckAccess("s1", "read", "report"));
  }
  state.counters["directives"] = directives;
}
BENCHMARK(BM_Security_AllowedAccessOverhead)->Arg(0)->Arg(16);

// Full alert path: N-1 denials prime the window, the Nth trips it
// (alert + window reset), measured as a whole burst.
void BM_Security_AlertBurst(benchmark::State& state) {
  const int threshold = static_cast<int>(state.range(0));
  Policy policy("alerting");
  RoleSpec role;
  role.name = "Analyst";
  (void)policy.AddRole(std::move(role));
  UserSpec user;
  user.name = "u";
  user.assignments.insert("Analyst");
  (void)policy.AddUser(std::move(user));
  ThresholdDirective directive;
  directive.name = "guard";
  directive.threshold = threshold;
  directive.window = kMinute;
  (void)policy.AddThreshold(std::move(directive));

  Logger::Global().SetSink([](LogLevel, const std::string&) {});
  benchutil::EngineUnderTest sut(policy);
  (void)sut.engine->CreateSession("u", "s1");
  int alerts_before = 0;
  for (auto _ : state) {
    alerts_before = sut.engine->security().alert_count();
    for (int i = 0; i < threshold; ++i) {
      sut.clock->Advance(3);
      benchmark::DoNotOptimize(
          sut.engine->CheckAccess("s1", "write", "x"));
    }
    if (sut.engine->security().alert_count() != alerts_before + 1) {
      state.SkipWithError("alert did not fire");
    }
  }
  Logger::Global().SetSink(nullptr);
  state.counters["threshold"] = threshold;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          threshold);
}
BENCHMARK(BM_Security_AlertBurst)->Arg(5)->Arg(50);

// Transaction-activation window churn (Rule 9): manager on/off with a
// junior activation per cycle.
void BM_Security_TransactionCycle(benchmark::State& state) {
  Policy policy("tx");
  for (const char* name : {"Manager", "JuniorEmp"}) {
    RoleSpec role;
    role.name = name;
    (void)policy.AddRole(std::move(role));
  }
  UserSpec mgr;
  mgr.name = "mgr";
  mgr.assignments.insert("Manager");
  (void)policy.AddUser(std::move(mgr));
  UserSpec junior;
  junior.name = "jr";
  junior.assignments.insert("JuniorEmp");
  (void)policy.AddUser(std::move(junior));
  (void)policy.AddTransaction(
      TransactionActivation{"t", "Manager", "JuniorEmp"});

  benchutil::EngineUnderTest sut(policy);
  (void)sut.engine->CreateSession("mgr", "sm");
  (void)sut.engine->CreateSession("jr", "sj");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sut.engine->AddActiveRole("mgr", "sm", "Manager"));
    benchmark::DoNotOptimize(
        sut.engine->AddActiveRole("jr", "sj", "JuniorEmp"));
    benchmark::DoNotOptimize(
        sut.engine->DropActiveRole("mgr", "sm", "Manager"));
    // The cascade dropped the junior too; state is back to the start.
  }
}
BENCHMARK(BM_Security_TransactionCycle);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
