// E6 — Composite event detection throughput per operator (§3): raise rates
// through each Snoop operator, per consumption mode, and versus DAG depth.
// The numbers bound what any rule built from these operators can sustain.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "event/event_detector.h"

namespace sentinel {
namespace {

struct Rig {
  SimulatedClock clock{benchutil::Noon()};
  EventDetector detector{&clock};
  uint64_t detections = 0;

  void Count(EventId event) {
    detector.Subscribe(event,
                       [this](const Occurrence&) { ++detections; });
  }
};

void BM_Op_PrimitiveRaise(benchmark::State& state) {
  Rig rig;
  const EventId a = *rig.detector.DefinePrimitive("a");
  rig.Count(a);
  for (auto _ : state) {
    rig.clock.Advance(1);
    benchmark::DoNotOptimize(rig.detector.Raise(a, {}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Op_PrimitiveRaise);

void BM_Op_Filter(benchmark::State& state) {
  Rig rig;
  const EventId a = *rig.detector.DefinePrimitive("a");
  const EventId f =
      *rig.detector.DefineFilter("f", a, {{"role", Value("R1")}});
  rig.Count(f);
  ParamMap hit = {{"role", Value("R1")}};
  for (auto _ : state) {
    rig.clock.Advance(1);
    benchmark::DoNotOptimize(rig.detector.Raise(a, hit));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Op_Filter);

void BM_Op_Or(benchmark::State& state) {
  Rig rig;
  const EventId a = *rig.detector.DefinePrimitive("a");
  const EventId b = *rig.detector.DefinePrimitive("b");
  const EventId or_ev = *rig.detector.DefineOr("or", {a, b});
  rig.Count(or_ev);
  for (auto _ : state) {
    rig.clock.Advance(1);
    benchmark::DoNotOptimize(rig.detector.Raise(a, {}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Op_Or);

void PairwiseOp(benchmark::State& state, EventKind kind,
                ConsumptionMode mode) {
  Rig rig;
  const EventId a = *rig.detector.DefinePrimitive("a");
  const EventId b = *rig.detector.DefinePrimitive("b");
  EventId composite = kInvalidEventId;
  switch (kind) {
    case EventKind::kAnd:
      composite = *rig.detector.DefineAnd("op", a, b, mode);
      break;
    case EventKind::kSeq:
      composite = *rig.detector.DefineSeq("op", a, b, mode);
      break;
    default:
      state.SkipWithError("unsupported");
      return;
  }
  rig.Count(composite);
  for (auto _ : state) {
    rig.clock.Advance(1);
    benchmark::DoNotOptimize(rig.detector.Raise(a, {}));
    rig.clock.Advance(1);
    benchmark::DoNotOptimize(rig.detector.Raise(b, {}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
  state.SetLabel(ConsumptionModeToString(mode));
}

void BM_Op_And(benchmark::State& state) {
  PairwiseOp(state, EventKind::kAnd,
             static_cast<ConsumptionMode>(state.range(0)));
}
BENCHMARK(BM_Op_And)->DenseRange(0, 3);

void BM_Op_Seq(benchmark::State& state) {
  PairwiseOp(state, EventKind::kSeq,
             static_cast<ConsumptionMode>(state.range(0)));
}
BENCHMARK(BM_Op_Seq)->DenseRange(0, 3);

void BM_Op_Not(benchmark::State& state) {
  Rig rig;
  const EventId a = *rig.detector.DefinePrimitive("a");
  const EventId b = *rig.detector.DefinePrimitive("b");
  const EventId c = *rig.detector.DefinePrimitive("c");
  const EventId not_ev = *rig.detector.DefineNot("not", a, b, c);
  rig.Count(not_ev);
  for (auto _ : state) {
    rig.clock.Advance(1);
    benchmark::DoNotOptimize(rig.detector.Raise(a, {}));
    rig.clock.Advance(1);
    benchmark::DoNotOptimize(rig.detector.Raise(c, {}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_Op_Not);

void BM_Op_Aperiodic(benchmark::State& state) {
  Rig rig;
  const EventId a = *rig.detector.DefinePrimitive("a");
  const EventId b = *rig.detector.DefinePrimitive("b");
  const EventId c = *rig.detector.DefinePrimitive("c");
  const EventId ap = *rig.detector.DefineAperiodic("ap", a, b, c);
  rig.Count(ap);
  (void)rig.detector.Raise(a, {});  // Open the window once.
  for (auto _ : state) {
    rig.clock.Advance(1);
    benchmark::DoNotOptimize(rig.detector.Raise(b, {}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Op_Aperiodic);

void BM_Op_Plus(benchmark::State& state) {
  Rig rig;
  const EventId a = *rig.detector.DefinePrimitive("a");
  const EventId plus = *rig.detector.DefinePlus("plus", a, 10);
  rig.Count(plus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.detector.Raise(a, {}));
    // Fire the expiry immediately: schedule + fire per iteration.
    rig.detector.AdvanceTo(rig.clock.Now() + 11, &rig.clock);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Op_Plus);

// Linear SEQ chains: detection must climb `depth` operator nodes.
void BM_Op_SeqChainDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Rig rig;
  std::vector<EventId> prims;
  for (int i = 0; i <= depth; ++i) {
    prims.push_back(
        *rig.detector.DefinePrimitive("p" + std::to_string(i)));
  }
  EventId chain = prims[0];
  for (int i = 1; i <= depth; ++i) {
    chain = *rig.detector.DefineSeq("seq" + std::to_string(i), chain,
                                    prims[i], ConsumptionMode::kRecent);
  }
  rig.Count(chain);
  for (auto _ : state) {
    for (int i = 0; i <= depth; ++i) {
      rig.clock.Advance(1);
      benchmark::DoNotOptimize(rig.detector.Raise(prims[i], {}));
    }
  }
  state.counters["depth"] = depth;
  state.counters["detections"] = static_cast<double>(rig.detections);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          (depth + 1));
}
BENCHMARK(BM_Op_SeqChainDepth)->Arg(1)->Arg(4)->Arg(16);

// Fan-out: one primitive feeding N filter nodes (the shape generated
// per-role rules create on rbac.addActiveRole).
void BM_Op_FilterFanout(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  Rig rig;
  const EventId a = *rig.detector.DefinePrimitive("a");
  for (int i = 0; i < fanout; ++i) {
    const EventId f = *rig.detector.DefineFilter(
        "f" + std::to_string(i), a, {{"role", Value("R" + std::to_string(i))}});
    rig.Count(f);
  }
  ParamMap params = {{"role", Value("R0")}};
  for (auto _ : state) {
    rig.clock.Advance(1);
    benchmark::DoNotOptimize(rig.detector.Raise(a, params));
  }
  state.counters["fanout"] = fanout;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Op_FilterFanout)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
