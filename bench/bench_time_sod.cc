// E9 — Time-based SoD (Rule 6 / TSOD): role disabling adjudicated by the
// APERIODIC-window rule inside (I,P) and by the plain GLOB rule outside.
// Measures both paths and the baseline mirror, plus scaling in the number
// of time-SoD constraints guarding the role.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "event/time_pattern.h"
#include "gtrbac/periodic_expression.h"

namespace sentinel {
namespace {

Policy TsodPolicy(int constraints) {
  Policy policy("tsod");
  RoleSpec doctor;
  doctor.name = "Doctor";
  (void)policy.AddRole(std::move(doctor));
  for (int i = 0; i < constraints; ++i) {
    RoleSpec counter;
    counter.name = "Counter" + std::to_string(i);
    (void)policy.AddRole(std::move(counter));
    TimeSod constraint;
    constraint.name = "avail" + std::to_string(i);
    constraint.kind = TimeSodKind::kDisabling;
    constraint.roles = {"Doctor", "Counter" + std::to_string(i)};
    constraint.period = *PeriodicExpression::Create(
        TimePattern(10, 0, 0, TimePattern::kAny, TimePattern::kAny,
                    TimePattern::kAny),
        TimePattern(17, 0, 0, TimePattern::kAny, TimePattern::kAny,
                    TimePattern::kAny));
    (void)policy.AddTimeSod(std::move(constraint));
  }
  return policy;
}

// Inside the window (noon): disable/enable cycle through the TSOD rule.
void BM_TimeSod_EngineInsideWindow(benchmark::State& state) {
  const int constraints = static_cast<int>(state.range(0));
  benchutil::EngineUnderTest sut(TsodPolicy(constraints));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sut.engine->DisableRole("Doctor"));
    benchmark::DoNotOptimize(sut.engine->EnableRole("Doctor"));
  }
  state.counters["constraints"] = constraints;
}
BENCHMARK(BM_TimeSod_EngineInsideWindow)->Arg(1)->Arg(4)->Arg(16);

void BM_TimeSod_BaselineInsideWindow(benchmark::State& state) {
  const int constraints = static_cast<int>(state.range(0));
  benchutil::BaselineUnderTest sut(TsodPolicy(constraints));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sut.enforcer->DisableRole("Doctor"));
    benchmark::DoNotOptimize(sut.enforcer->EnableRole("Doctor"));
  }
  state.counters["constraints"] = constraints;
}
BENCHMARK(BM_TimeSod_BaselineInsideWindow)->Arg(1)->Arg(4)->Arg(16);

// Outside the window (18:00): the plain GLOB.disable path.
void BM_TimeSod_EngineOutsideWindow(benchmark::State& state) {
  benchutil::EngineUnderTest sut(TsodPolicy(1));
  sut.engine->AdvanceTo(MakeTime(2026, 7, 6, 18, 0, 0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sut.engine->DisableRole("Doctor"));
    benchmark::DoNotOptimize(sut.engine->EnableRole("Doctor"));
  }
}
BENCHMARK(BM_TimeSod_EngineOutsideWindow);

// Denied path: the counter-role is already down; every attempt is
// adjudicated and denied by the TSOD rule.
void BM_TimeSod_EngineDenied(benchmark::State& state) {
  benchutil::EngineUnderTest sut(TsodPolicy(1));
  (void)sut.engine->DisableRole("Counter0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sut.engine->DisableRole("Doctor"));
  }
}
BENCHMARK(BM_TimeSod_EngineDenied);

void BM_TimeSod_BaselineDenied(benchmark::State& state) {
  benchutil::BaselineUnderTest sut(TsodPolicy(1));
  (void)sut.enforcer->DisableRole("Counter0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sut.enforcer->DisableRole("Doctor"));
  }
}
BENCHMARK(BM_TimeSod_BaselineDenied);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
