// E2 — Rule-generation scaling: "large enterprises have hundreds of roles,
// which requires thousands of rules" (§1/§7). Measures full policy-load
// time and reports generated rule/event counts as the role count grows,
// for plain and constraint-rich policies.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace sentinel {
namespace {

PolicyGenParams ParamsFor(int roles, bool rich) {
  PolicyGenParams params;
  params.seed = 42;
  params.num_roles = roles;
  params.num_users = roles * 2;
  if (rich) {
    params.hierarchy_prob = 0.7;
    params.ssd_sets = roles / 10 + 1;
    params.dsd_sets = roles / 10 + 1;
    params.cardinality_frac = 0.3;
    params.duration_frac = 0.2;
    params.user_cap_frac = 0.2;
  }
  return params;
}

void RunGeneration(benchmark::State& state, bool rich) {
  const int roles = static_cast<int>(state.range(0));
  const Policy policy = GeneratePolicy(ParamsFor(roles, rich));
  size_t rule_count = 0;
  int event_count = 0;
  for (auto _ : state) {
    SimulatedClock clock(benchutil::Noon());
    AuthorizationEngine engine(&clock);
    const Status status = engine.LoadPolicy(policy);
    benchmark::DoNotOptimize(status);
    rule_count = engine.rule_manager().rule_count();
    event_count = engine.detector().registry().size();
  }
  state.counters["roles"] = roles;
  state.counters["rules"] = static_cast<double>(rule_count);
  state.counters["events"] = static_cast<double>(event_count);
  state.counters["rules_per_role"] =
      static_cast<double>(rule_count) / roles;
}

void BM_Generate_Plain(benchmark::State& state) {
  RunGeneration(state, /*rich=*/false);
}
BENCHMARK(BM_Generate_Plain)->Arg(10)->Arg(50)->Arg(100)->Arg(200)->Arg(500)
    ->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_Generate_Rich(benchmark::State& state) {
  RunGeneration(state, /*rich=*/true);
}
BENCHMARK(BM_Generate_Rich)->Arg(10)->Arg(50)->Arg(100)->Arg(200)->Arg(500)
    ->Arg(1000)->Unit(benchmark::kMillisecond);

// The baseline has no rules to generate: its "load" is pure base-state
// instantiation. The gap is the cost of the paper's automation.
void BM_Generate_BaselineLoad(benchmark::State& state) {
  const int roles = static_cast<int>(state.range(0));
  const Policy policy = GeneratePolicy(ParamsFor(roles, true));
  for (auto _ : state) {
    SimulatedClock clock(benchutil::Noon());
    DirectEnforcer enforcer(&clock);
    benchmark::DoNotOptimize(enforcer.LoadPolicy(policy));
  }
  state.counters["roles"] = roles;
}
BENCHMARK(BM_Generate_BaselineLoad)->Arg(100)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
