// Fairness under saturation: a 9:1 abusive/well-behaved producer mix against
// a single shard with a small shed-mode mailbox (capacity 8). Nine producers
// hammer one principal (u0000); one producer issues requests as u0001 at the
// same closed-loop pace. Two arms, selected by Arg(0):
//
//   0  no quotas — shedding is indiscriminate, so the well-behaved producer
//      loses whenever the abusive flood happens to hold the mailbox.
//   1  u0000 pinned to 50 tokens/s (burst 4), kOnOverload — over-quota
//      envelopes are refused against the reduced bound (capacity minus the
//      reserved quarter), so the well-behaved principal keeps headroom.
//
// The counters make the fairness claim directly readable: good_decided_rps
// and good_decided_p99_us (latency of well-behaved requests that got a real
// verdict — refusals return instantly and would flatter the unfair arm)
// should improve from arm 0 to arm 1, and in arm 1 the abusive principal
// should absorb >=90% of all refusals (abusive_refusal_share).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace sentinel {
namespace {

constexpr int kUsers = 2;
constexpr int kAbusiveProducers = 9;
constexpr int kPerProducer = 400;

Policy FlatPolicy() {
  Policy policy("policer-bench");
  RoleSpec role;
  role.name = "worker";
  role.permissions.insert(Permission{"read", "ledger"});
  (void)policy.AddRole(std::move(role));
  for (int u = 0; u < kUsers; ++u) {
    UserSpec user;
    user.name = SyntheticUserName(u);
    user.assignments.insert("worker");
    (void)policy.AddUser(std::move(user));
  }
  return policy;
}

std::string SessionOf(int user) { return "sess" + std::to_string(user); }

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void BM_Service_WeightedShedFairness(benchmark::State& state) {
  const bool quota_on = state.range(0) != 0;

  ServiceConfig config;
  config.num_shards = 1;
  config.synchronous = false;
  config.start_time = benchutil::Noon();
  config.mailbox_capacity = 8;
  config.overload_policy = OverloadPolicy::kShed;
  if (quota_on) {
    config.quota_overrides.push_back(PrincipalQuota{"u0000", 50.0, 4});
    config.quota_enforcement = QuotaEnforcement::kOnOverload;
  }
  auto service = std::make_unique<AuthorizationService>(config);
  if (!service->init_status().ok()) std::abort();
  if (!service->LoadPolicy(FlatPolicy()).ok()) std::abort();
  for (int u = 0; u < kUsers; ++u) {
    (void)service->CreateSession(SyntheticUserName(u), SessionOf(u));
    (void)service->AddActiveRole(SyntheticUserName(u), SessionOf(u),
                                 "worker");
  }
  const AccessRequest abusive{SyntheticUserName(0), SessionOf(0), "read",
                              "ledger", ""};
  const AccessRequest good{SyntheticUserName(1), SessionOf(1), "read",
                           "ledger", ""};

  std::atomic<uint64_t> abusive_refused{0};
  std::atomic<uint64_t> good_decided{0};
  std::atomic<uint64_t> good_refused{0};
  std::vector<int64_t> good_latencies_us;
  std::mutex latencies_mu;
  double good_elapsed_s = 0;

  for (auto _ : state) {
    std::vector<std::thread> producers;
    producers.reserve(kAbusiveProducers + 1);
    for (int p = 0; p < kAbusiveProducers; ++p) {
      producers.emplace_back([&] {
        uint64_t refused = 0;
        for (int i = 0; i < kPerProducer; ++i) {
          if (service->CheckAccess(abusive).outcome !=
              AccessOutcome::kDecided) {
            ++refused;
          }
        }
        abusive_refused.fetch_add(refused);
      });
    }
    producers.emplace_back([&] {
      uint64_t decided = 0, refused = 0;
      std::vector<int64_t> latencies;
      latencies.reserve(kPerProducer);
      const int64_t t0 = NowUs();
      for (int i = 0; i < kPerProducer; ++i) {
        const int64_t before = NowUs();
        const AccessDecision decision = service->CheckAccess(good);
        if (decision.outcome == AccessOutcome::kDecided) {
          latencies.push_back(NowUs() - before);
          ++decided;
        } else {
          ++refused;
        }
      }
      const int64_t elapsed = NowUs() - t0;
      good_decided.fetch_add(decided);
      good_refused.fetch_add(refused);
      std::lock_guard<std::mutex> lock(latencies_mu);
      good_elapsed_s += static_cast<double>(elapsed) / 1e6;
      good_latencies_us.insert(good_latencies_us.end(), latencies.begin(),
                               latencies.end());
    });
    for (std::thread& thread : producers) thread.join();
  }

  const double total = static_cast<double>(state.iterations()) *
                       (kAbusiveProducers + 1) * kPerProducer;
  state.SetItemsProcessed(static_cast<int64_t>(total));
  std::sort(good_latencies_us.begin(), good_latencies_us.end());
  const size_t n = good_latencies_us.size();
  const int64_t p99 =
      n == 0 ? 0
             : good_latencies_us[std::min(
                   n - 1, static_cast<size_t>(0.99 * (n - 1)))];
  const uint64_t refusals = abusive_refused.load() + good_refused.load();
  const uint64_t good_answered = good_decided.load() + good_refused.load();
  state.counters["good_decided_rps"] =
      good_elapsed_s == 0 ? 0.0 : good_decided.load() / good_elapsed_s;
  state.counters["good_decided_p99_us"] = static_cast<double>(p99);
  state.counters["good_refused_frac"] =
      good_answered == 0
          ? 0.0
          : static_cast<double>(good_refused.load()) / good_answered;
  state.counters["abusive_refusal_share"] =
      refusals == 0
          ? 0.0
          : static_cast<double>(abusive_refused.load()) / refusals;
  const ServiceStats stats = service->Stats();
  state.counters["policer_refused"] =
      static_cast<double>(stats.policer_refused);
}
BENCHMARK(BM_Service_WeightedShedFairness)
    ->Arg(0)  // Indiscriminate shedding.
    ->Arg(1)  // Weighted: u0000 over-quota, refused first.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
