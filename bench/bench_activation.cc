// E4 — Activation latency by role property (§4.3.1, AAR1..AAR4): the same
// activate/drop round-trip on a role that takes part in (a) nothing (core),
// (b) hierarchies, (c) a DSD relation, (d) both — on the OWTE engine and on
// the hand-coded DirectEnforcer. The per-variant deltas show the cost of
// each additional generated condition; engine-vs-baseline shows the price
// of event/rule dispatch (the paper's uniformity tax).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/policy_parser.h"

namespace sentinel {
namespace {

// One policy per AAR variant; the role under test is always "Target".
const char* PolicyFor(const std::string& variant) {
  if (variant == "core") {
    return R"(
policy "aar1"
role Target {}
user u { assign: Target }
)";
  }
  if (variant == "hierarchy") {
    return R"(
policy "aar2"
role Junior {}
role Target { senior-of: Junior }
role Senior { senior-of: Target }
user u { assign: Senior }
)";
  }
  if (variant == "dsd") {
    return R"(
policy "aar3"
role Target {}
role Other {}
user u { assign: Target, Other }
dsd D { roles: Target, Other  n: 2 }
)";
  }
  // hierarchy + dsd (AAR4).
  return R"(
policy "aar4"
role Junior {}
role Target { senior-of: Junior }
role Senior { senior-of: Target }
role Other {}
user u { assign: Senior, Other }
dsd D { roles: Target, Other  n: 2 }
)";
}

const char* kVariants[] = {"core", "hierarchy", "dsd", "hierarchy_dsd"};

void BM_Activation_Engine(benchmark::State& state) {
  const std::string variant = kVariants[state.range(0)];
  auto policy = PolicyParser::Parse(PolicyFor(variant));
  benchutil::EngineUnderTest sut(*policy);
  (void)sut.engine->CreateSession("u", "s1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sut.engine->AddActiveRole("u", "s1", "Target"));
    benchmark::DoNotOptimize(
        sut.engine->DropActiveRole("u", "s1", "Target"));
  }
  state.SetLabel(variant);
}
BENCHMARK(BM_Activation_Engine)->DenseRange(0, 3);

void BM_Activation_Baseline(benchmark::State& state) {
  const std::string variant = kVariants[state.range(0)];
  auto policy = PolicyParser::Parse(PolicyFor(variant));
  benchutil::BaselineUnderTest sut(*policy);
  (void)sut.enforcer->CreateSession("u", "s1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sut.enforcer->AddActiveRole("u", "s1", "Target"));
    benchmark::DoNotOptimize(
        sut.enforcer->DropActiveRole("u", "s1", "Target"));
  }
  state.SetLabel(variant);
}
BENCHMARK(BM_Activation_Baseline)->DenseRange(0, 3);

// Denied activations exercise the ELSE path (conditions fail early).
void BM_Activation_EngineDenied(benchmark::State& state) {
  auto policy = PolicyParser::Parse(PolicyFor("core"));
  benchutil::EngineUnderTest sut(*policy);
  (void)sut.engine->CreateSession("u", "s1");
  for (auto _ : state) {
    // "ghost" is unknown: the first condition fails.
    benchmark::DoNotOptimize(
        sut.engine->AddActiveRole("ghost", "s1", "Target"));
  }
}
BENCHMARK(BM_Activation_EngineDenied);

void BM_Activation_BaselineDenied(benchmark::State& state) {
  auto policy = PolicyParser::Parse(PolicyFor("core"));
  benchutil::BaselineUnderTest sut(*policy);
  (void)sut.enforcer->CreateSession("u", "s1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sut.enforcer->AddActiveRole("ghost", "s1", "Target"));
  }
}
BENCHMARK(BM_Activation_BaselineDenied);

// Scaling with hierarchy depth: the checkAuthorization condition walks
// seniors of the target role.
void BM_Activation_EngineHierarchyDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Policy policy("deep");
  RoleSpec target;
  target.name = "Target";
  (void)policy.AddRole(std::move(target));
  std::string junior = "Target";
  for (int i = 0; i < depth; ++i) {
    RoleSpec senior;
    senior.name = "L" + std::to_string(i);
    senior.juniors.insert(junior);
    junior = senior.name;
    (void)policy.AddRole(std::move(senior));
  }
  UserSpec user;
  user.name = "u";
  user.assignments.insert(junior);  // Topmost senior.
  (void)policy.AddUser(std::move(user));

  benchutil::EngineUnderTest sut(policy);
  (void)sut.engine->CreateSession("u", "s1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sut.engine->AddActiveRole("u", "s1", "Target"));
    benchmark::DoNotOptimize(
        sut.engine->DropActiveRole("u", "s1", "Target"));
  }
  state.counters["depth"] = depth;
}
BENCHMARK(BM_Activation_EngineHierarchyDepth)->Arg(1)->Arg(4)->Arg(16)
    ->Arg(64);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
