// E12 — Related-work comparator: periodic role enabling/disabling via
// OWTE rules (ABSOLUTE events + generated SH rules) versus a TRBAC-style
// flat role-trigger table. TRBAC does less (no parameters, no composite
// events, no alternative actions), so it bounds the cost from below; the
// gap quantifies what the richer OWTE machinery pays per boundary.

#include <benchmark/benchmark.h>

#include "baseline/trbac_baseline.h"
#include "bench/bench_util.h"
#include "event/time_pattern.h"

namespace sentinel {
namespace {

PeriodicExpression ShiftFor(int i) {
  const int start = 6 + (i % 4);
  return *PeriodicExpression::Create(
      TimePattern(start, (i * 7) % 60, 0, TimePattern::kAny,
                  TimePattern::kAny, TimePattern::kAny),
      TimePattern(start + 8, (i * 11) % 60, 0, TimePattern::kAny,
                  TimePattern::kAny, TimePattern::kAny));
}

Policy ShiftPolicy(int roles) {
  Policy policy("shifts");
  for (int i = 0; i < roles; ++i) {
    RoleSpec role;
    role.name = SyntheticRoleName(i);
    role.enabling_window = ShiftFor(i);
    (void)policy.AddRole(std::move(role));
  }
  return policy;
}

void BM_Trbac_EngineWeekOfShifts(benchmark::State& state) {
  const int roles = static_cast<int>(state.range(0));
  const Policy policy = ShiftPolicy(roles);
  for (auto _ : state) {
    state.PauseTiming();
    benchutil::EngineUnderTest sut(policy);
    state.ResumeTiming();
    sut.engine->AdvanceBy(7 * kDay);
  }
  state.counters["roles"] = roles;
  state.counters["boundaries"] = roles * 7.0 * 2;
}
BENCHMARK(BM_Trbac_EngineWeekOfShifts)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMillisecond);

void BM_Trbac_TriggerTableWeekOfShifts(benchmark::State& state) {
  const int roles = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SimulatedClock clock(benchutil::Noon());
    TrbacBaseline trbac(&clock);
    for (int i = 0; i < roles; ++i) {
      trbac.AddEnablingTrigger(SyntheticRoleName(i), ShiftFor(i));
    }
    state.ResumeTiming();
    trbac.AdvanceTo(clock.Now() + 7 * kDay);
  }
  state.counters["roles"] = roles;
  state.counters["boundaries"] = roles * 7.0 * 2;
}
BENCHMARK(BM_Trbac_TriggerTableWeekOfShifts)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMillisecond);

// Steady-state query cost: IsEnabled is a set lookup in both systems, but
// the engine answers through the same RoleStateTable the generated rules
// maintain. (Included for completeness; expected to coincide.)
void BM_Trbac_EngineIsEnabledQuery(benchmark::State& state) {
  const Policy policy = ShiftPolicy(100);
  benchutil::EngineUnderTest sut(policy);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sut.engine->role_state().IsEnabled(SyntheticRoleName(50)));
  }
}
BENCHMARK(BM_Trbac_EngineIsEnabledQuery);

void BM_Trbac_TriggerTableIsEnabledQuery(benchmark::State& state) {
  SimulatedClock clock(benchutil::Noon());
  TrbacBaseline trbac(&clock);
  for (int i = 0; i < 100; ++i) {
    trbac.AddEnablingTrigger(SyntheticRoleName(i), ShiftFor(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(trbac.IsEnabled(SyntheticRoleName(50)));
  }
}
BENCHMARK(BM_Trbac_TriggerTableIsEnabledQuery);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
