// Update-churn A/B: CheckAccess latency on a warm key while a sustained
// stream of policy updates lands, through the two update disciplines:
//
//   {0}  no churn — the baseline the 2x acceptance bound is measured from.
//   {1}  barrier churn — pauseless_updates=false: every update is a
//        stop-the-world epoch broadcast; all shards stall while each one
//        re-validates + re-diffs the whole policy, and the bumped cache
//        epoch wipes every warm verdict. The update-correlated p99 cliff.
//   {2}  RCU churn — pauseless swaps: the update is prepared once off the
//        shard threads and committed as one small envelope per shard (flip
//        + affected-rule regenerate); warm verdicts for untouched keys
//        keep their stamps and keep hitting.
//   {3}  wake-only control — a thread wakes at the same cadence and does
//        NOTHING. On few-core hosts every wake evicts the measured thread
//        for a scheduler timeslice, so this arm is the latency floor for
//        ANY concurrent admin activity; the swap-correlated overhead of
//        arm 2 is its p99 minus this arm's, not minus the idle baseline.
//
// The churn thread applies alternating permission-toggle updates to a role
// the measured key never touches, at a steady ~500 updates/s (2ms cadence)
// — orders of magnitude beyond any real admin stream, but paced, so the
// measurement reads update-correlated LATENCY, not CPU starvation from a
// busy-spinning admin loop. Reported like bench_fastpath: ns/op per
// 64-call batch, p50/p99 as counters (the numbers BENCH_PR9.json quotes),
// plus the observed swap count and hit fraction.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "workload/scenario_gen.h"

namespace sentinel {
namespace {

constexpr int kBatch = 64;

/// The default synthetic enterprise (50 roles, 100 users, hierarchy, SoD)
/// plus a dedicated `reader` role for the measured key — realistic policy
/// bulk, so the barrier arm pays its real full-re-validate + full-re-diff
/// cost per update. The churn stream toggles a permission on a synthetic
/// role the measured key never touches (WithToggledPermission picks the
/// first role in name order: "R0000" sorts before "reader").
Policy ChurnPolicy() {
  PolicyGenParams params;
  Policy policy = GeneratePolicy(params);
  RoleSpec reader;
  reader.name = "reader";
  reader.permissions.insert(Permission{"read", "ledger"});
  (void)policy.AddRole(std::move(reader));
  UserSpec user;
  user.name = "alice";
  user.assignments.insert("reader");
  (void)policy.AddUser(std::move(user));
  return policy;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

void BM_CheckAccess_UnderUpdateChurn(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const bool churn = mode == 1 || mode == 2;
  const bool wake_only = mode == 3;
  const bool pauseless = mode == 2;

  ServiceConfig config;
  config.num_shards = 2;
  config.synchronous = false;
  config.start_time = benchutil::Noon();
  config.decision_cache_capacity = 1024;
  config.decision_cache_fastpath = false;
  config.pauseless_updates = pauseless;
  auto service = std::make_unique<AuthorizationService>(config);
  const Policy base = ChurnPolicy();
  if (!service->LoadPolicy(base).ok()) std::abort();
  (void)service->CreateSession("alice", "s1");
  (void)service->AddActiveRole("alice", "s1", "reader");

  const AccessRequest request{"alice", "s1", "read", "ledger", ""};
  if (!service->CheckAccess(request).allowed) std::abort();
  if (!service->CheckAccess(request).allowed) std::abort();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> updates{0};
  std::thread churner;
  if (churn) {
    churner = std::thread([&] {
      const Policy a = base;
      auto toggled = WithToggledPermission(base, /*salt=*/0);
      if (!toggled.ok()) std::abort();
      const Policy b = *std::move(toggled);
      bool flip = true;
      while (!stop.load(std::memory_order_acquire)) {
        if (service->ApplyPolicyUpdate(flip ? b : a).ok()) {
          updates.fetch_add(1, std::memory_order_relaxed);
        }
        flip = !flip;
        // Steady cadence (~500 updates/s — orders of magnitude beyond any
        // real admin stream): a sustained stream, not a busy-spinning admin
        // saturating the shard threads (which would measure CPU contention,
        // not the update discipline).
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  } else if (wake_only) {
    churner = std::thread([&] {
      while (!stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  std::vector<double> samples;
  samples.reserve(1 << 16);
  for (auto _ : state) {
    const auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < kBatch; ++i) {
      benchmark::DoNotOptimize(service->CheckAccess(request));
    }
    const auto end = std::chrono::steady_clock::now();
    samples.push_back(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                .count()) /
        kBatch);
  }

  stop.store(true, std::memory_order_release);
  if (churner.joinable()) churner.join();

  const double total = static_cast<double>(state.iterations()) * kBatch;
  state.SetItemsProcessed(static_cast<int64_t>(total));
  std::sort(samples.begin(), samples.end());
  state.counters["p50_ns"] = Percentile(samples, 50);
  state.counters["p99_ns"] = Percentile(samples, 99);
  state.counters["updates"] = static_cast<double>(updates.load());
  // The RCU arm's warm key must KEEP hitting across swaps (its stamp only
  // moves when the pool generation does — and then one miss refills it);
  // the barrier arm re-misses after every epoch wipe.
  ServiceStats stats = service->Stats();
  state.counters["hit_frac"] =
      total == 0 ? 0.0 : static_cast<double>(stats.cache_hits) / total;
  state.counters["swaps"] = static_cast<double>(stats.policy_swaps);
  // Where the RCU arm's swap time goes: build (off the shard threads —
  // free on multi-core hosts) vs commit (one envelope per shard, the only
  // part that ever queues in front of a decision).
  const telemetry::RegistrySnapshot metrics = service->Snapshot().metrics;
  const telemetry::HistogramSnapshot* build =
      metrics.FindHistogram("policy_swap_build_us");
  const telemetry::HistogramSnapshot* commit =
      metrics.FindHistogram("policy_swap_commit_us");
  if (build != nullptr && build->TotalCount() > 0) {
    state.counters["build_us_p50"] = build->Percentile(50);
  }
  if (commit != nullptr && commit->TotalCount() > 0) {
    state.counters["commit_us_p50"] = commit->Percentile(50);
  }
}
BENCHMARK(BM_CheckAccess_UnderUpdateChurn)
    ->Arg(0)  // Baseline: no update stream.
    ->Arg(1)  // Barrier churn: epoch broadcast per update (legacy).
    ->Arg(2)  // RCU churn: pauseless swap per update.
    ->Arg(3)  // Wake-only control: same cadence, no updates.
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
