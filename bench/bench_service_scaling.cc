// Service scaling — aggregate CheckAccess throughput of the sharded
// AuthorizationService at 1/2/4/8 shard threads, driven through the
// batch API (one mailbox hop per involved shard per batch). The per-shard
// engines never share request-path state, so on a machine with enough
// cores throughput scales with the shard count; the `shards` counter and
// items_per_second make the scaling curve directly readable. A synchronous
// single-shard run is included as the no-thread reference.

#include <benchmark/benchmark.h>

#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace sentinel {
namespace {

constexpr int kUsers = 64;
constexpr int kRoles = 12;
constexpr int kPerms = 6;
constexpr int kActiveRoles = 8;
constexpr size_t kBatch = 1024;

/// Every user is assigned all roles; each role holds kPerms permissions.
Policy ScalingPolicy() {
  Policy policy("service-scaling");
  for (int r = 0; r < kRoles; ++r) {
    RoleSpec role;
    role.name = SyntheticRoleName(r);
    for (int p = 0; p < kPerms; ++p) {
      role.permissions.insert(Permission{
          "op" + std::to_string(p), SyntheticObjectName(r * kPerms + p)});
    }
    (void)policy.AddRole(std::move(role));
  }
  for (int u = 0; u < kUsers; ++u) {
    UserSpec user;
    user.name = SyntheticUserName(u);
    for (int r = 0; r < kRoles; ++r) {
      user.assignments.insert(SyntheticRoleName(r));
    }
    (void)policy.AddUser(std::move(user));
  }
  return policy;
}

std::string SessionOf(int user) { return "sess" + std::to_string(user); }

/// One session per user with kActiveRoles activations — the per-shard
/// working set the check path walks.
void ActivateSessions(AuthorizationService& service) {
  for (int u = 0; u < kUsers; ++u) {
    const std::string user = SyntheticUserName(u);
    (void)service.CreateSession(user, SessionOf(u));
    for (int r = 0; r < kActiveRoles; ++r) {
      (void)service.AddActiveRole(user, SessionOf(u), SyntheticRoleName(r));
    }
  }
}

/// Round-robin request pool: every batch mixes all users (and so touches
/// every shard); the target permission is held by the last activated role —
/// the worst-case scan.
std::vector<AccessRequest> BuildRequestPool() {
  std::vector<AccessRequest> pool;
  pool.reserve(kBatch);
  const std::string op = "op" + std::to_string(kPerms - 1);
  const std::string obj =
      SyntheticObjectName((kActiveRoles - 1) * kPerms + kPerms - 1);
  for (size_t i = 0; i < kBatch; ++i) {
    const int u = static_cast<int>(i % kUsers);
    pool.push_back(
        AccessRequest{SyntheticUserName(u), SessionOf(u), op, obj, ""});
  }
  return pool;
}

void RunBatches(benchmark::State& state, AuthorizationService& service) {
  ActivateSessions(service);
  const std::vector<AccessRequest> pool = BuildRequestPool();
  uint64_t allowed = 0;
  for (auto _ : state) {
    const std::vector<AccessDecision> decisions =
        service.CheckAccessBatch(std::span<const AccessRequest>(pool));
    for (const AccessDecision& decision : decisions) {
      allowed += decision.allowed ? 1 : 0;
    }
    benchmark::DoNotOptimize(allowed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBatch));
  state.counters["allowed_frac"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(allowed) /
                static_cast<double>(state.iterations() * kBatch);
}

void BM_Service_Sharded(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  benchutil::ServiceUnderTest sut(ScalingPolicy(), shards,
                                  /*synchronous=*/false);
  RunBatches(state, *sut.service);
  state.counters["shards"] = shards;
}
BENCHMARK(BM_Service_Sharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_Service_Synchronous(benchmark::State& state) {
  benchutil::ServiceUnderTest sut(ScalingPolicy(), 1, /*synchronous=*/true);
  RunBatches(state, *sut.service);
  state.counters["shards"] = 0;  // No threads: inline reference.
}
BENCHMARK(BM_Service_Synchronous)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
