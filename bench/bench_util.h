#ifndef SENTINELPP_BENCH_BENCH_UTIL_H_
#define SENTINELPP_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>

#include "api/sentinelpp.h"
#include "common/calendar.h"
#include "common/clock.h"
#include "core/engine.h"
#include "baseline/direct_enforcer.h"
#include "core/policy_parser.h"
#include "workload/policy_gen.h"
#include "workload/request_gen.h"

namespace sentinel {
namespace benchutil {

/// Benchmarks anchor simulated time here: 2026-07-06 12:00:00 UTC.
inline Time Noon() { return MakeTime(2026, 7, 6, 12, 0, 0); }

/// Engine + its clock, policy loaded; aborts on failure (bench setup).
struct EngineUnderTest {
  std::unique_ptr<SimulatedClock> clock;
  std::unique_ptr<AuthorizationEngine> engine;

  explicit EngineUnderTest(const Policy& policy, Time start = Noon()) {
    clock = std::make_unique<SimulatedClock>(start);
    engine = std::make_unique<AuthorizationEngine>(clock.get());
    const Status status = engine->LoadPolicy(policy);
    if (!status.ok()) {
      std::fprintf(stderr, "bench setup failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
  }
};

/// AuthorizationService with policy loaded; synchronous single-shard by
/// default (the engine-equivalent mode), or `num_shards` threaded shards.
struct ServiceUnderTest {
  std::unique_ptr<AuthorizationService> service;

  explicit ServiceUnderTest(const Policy& policy, int num_shards = 1,
                            bool synchronous = true, Time start = Noon(),
                            size_t decision_cache_capacity = 0) {
    ServiceConfig config;
    config.num_shards = num_shards;
    config.synchronous = synchronous;
    config.start_time = start;
    config.decision_cache_capacity = decision_cache_capacity;
    service = std::make_unique<AuthorizationService>(config);
    const Status status = service->LoadPolicy(policy);
    if (!status.ok()) {
      std::fprintf(stderr, "bench setup failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
  }
};

/// DirectEnforcer + its clock, policy loaded.
struct BaselineUnderTest {
  std::unique_ptr<SimulatedClock> clock;
  std::unique_ptr<DirectEnforcer> enforcer;

  explicit BaselineUnderTest(const Policy& policy, Time start = Noon()) {
    clock = std::make_unique<SimulatedClock>(start);
    enforcer = std::make_unique<DirectEnforcer>(clock.get());
    const Status status = enforcer->LoadPolicy(policy);
    if (!status.ok()) {
      std::fprintf(stderr, "bench setup failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
  }
};

}  // namespace benchutil
}  // namespace sentinel

#endif  // SENTINELPP_BENCH_BENCH_UTIL_H_
