// Audit exporter overhead A/B: the same CheckAccess stream through one
// concurrent shard, with the durable JSONL export tap off ({0}) and on
// ({1}). The contract under test: the exporter must never stall the
// decision path — its cost on the shard thread is building one
// DecisionRecord, draining the ring tail, and a queue push; serialization
// and I/O happen on the dedicated writer thread.
//
// Like bench_fastpath, ns/op is sampled per 64-call batch and reported as
// p50/p99 counters — the numbers BENCH_PR8.json quotes (acceptance: the
// audit-on arm's p50 within 10% of off). drop_frac must be 0.0 for the
// A/B to mean anything: a dropping exporter would be "fast" by shedding.
//
// BM_Exporter_Offer isolates the producer-side cost the shard thread
// actually pays per record (queue push under the hand-off mutex), with the
// writer thread consuming concurrently.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "audit/exporter.h"
#include "bench/bench_util.h"

namespace sentinel {
namespace {

constexpr int kBatch = 64;

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

void BM_Service_CheckAccess_Audit(benchmark::State& state) {
  const bool audit = state.range(0) != 0;
  const std::string path = "/tmp/sentinelpp_bench_audit.jsonl";
  std::remove(path.c_str());

  // A realistic evaluation depth: the default synthetic enterprise (50
  // roles, hierarchy, SoD), one user's granted permission as the hot
  // request — a full dispatch per call, no decision cache.
  const Policy policy = GeneratePolicy(PolicyGenParams{});
  ServiceConfig config;
  config.num_shards = 1;
  config.synchronous = false;
  config.start_time = benchutil::Noon();
  if (audit) config.audit_path = path;
  auto service = std::make_unique<AuthorizationService>(config);
  if (!service->LoadPolicy(policy).ok()) std::abort();

  // First user with an assignment; their first role's first permission.
  AccessRequest request;
  for (const auto& [name, user] : policy.users()) {
    if (user.assignments.empty()) continue;
    const RoleSpec& role = policy.roles().at(*user.assignments.begin());
    if (role.permissions.empty()) continue;
    request.user = name;
    request.session = "s-bench";
    request.operation = role.permissions.begin()->operation;
    request.object = role.permissions.begin()->object;
    (void)service->CreateSession(name, "s-bench");
    (void)service->AddActiveRole(name, "s-bench", role.name);
    break;
  }
  if (request.user.empty()) std::abort();

  std::vector<double> samples;
  samples.reserve(1 << 16);
  for (auto _ : state) {
    const auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < kBatch; ++i) {
      benchmark::DoNotOptimize(service->CheckAccess(request));
    }
    const auto end = std::chrono::steady_clock::now();
    samples.push_back(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                .count()) /
        kBatch);
  }

  const double total = static_cast<double>(state.iterations()) * kBatch;
  state.SetItemsProcessed(static_cast<int64_t>(total));
  std::sort(samples.begin(), samples.end());
  state.counters["p50_ns"] = Percentile(samples, 50);
  state.counters["p99_ns"] = Percentile(samples, 99);
  service->Shutdown();
  if (audit) {
    const ServiceStats stats = service->Stats();
    state.counters["drop_frac"] =
        total == 0 ? 0.0
                   : static_cast<double>(stats.audit_drops) / total;
    state.counters["exported"] = static_cast<double>(stats.audit_records);
  } else {
    state.counters["drop_frac"] = 0.0;
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_Service_CheckAccess_Audit)
    ->Arg(0)  // Export tap off: the PR-7 decision path.
    ->Arg(1)  // Export tap on: ring drain + hand-off per decision.
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_Exporter_Offer(benchmark::State& state) {
  const std::string path = "/tmp/sentinelpp_bench_offer.jsonl";
  std::remove(path.c_str());
  audit::AuditExporter::Options options;
  options.path = path;
  audit::AuditExporter exporter(options);

  audit::AuditRecord record;
  record.seq = 1;
  record.kind = "rbac.checkAccess";
  record.user = "u0042";
  record.session = "s-bench";
  record.op = "read";
  record.object = "obj13";
  record.allowed = true;
  record.rule = "CA.global";

  for (auto _ : state) {
    audit::AuditRecord copy = record;
    exporter.Offer(std::move(copy));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  exporter.Close();
  const auto counters = exporter.counters();
  state.counters["drop_frac"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(counters.drops) /
                static_cast<double>(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_Exporter_Offer)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace sentinel

BENCHMARK_MAIN();
