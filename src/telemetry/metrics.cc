#include "telemetry/metrics.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace sentinel {
namespace telemetry {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ----------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  assert(!bounds_.empty());
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end());
}

void Histogram::Record(int64_t v) {
  // First bound >= v, i.e. the inclusive-upper-bound bucket; past-the-end
  // means the overflow bucket.
  const size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  auto& slot = counts_[i];
  slot.store(slot.load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
  sum_.store(sum_.load(std::memory_order_relaxed) + v,
             std::memory_order_relaxed);
}

void Histogram::RecordShared(int64_t v) {
  const size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

std::vector<int64_t> Histogram::ExponentialBounds(int64_t start, double factor,
                                                  int count) {
  assert(start > 0 && factor > 1.0 && count > 0);
  std::vector<int64_t> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double bound = static_cast<double>(start);
  for (int i = 0; i < count; ++i) {
    const auto v = static_cast<int64_t>(bound);
    // Guard against rounding collapse for tiny starts/factors.
    if (bounds.empty() || v > bounds.back()) bounds.push_back(v);
    bound *= factor;
  }
  return bounds;
}

uint64_t HistogramSnapshot::TotalCount() const {
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  return total;
}

bool HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (bounds != other.bounds || counts.size() != other.counts.size()) {
    return false;
  }
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  sum += other.sum;
  return true;
}

double HistogramSnapshot::Percentile(double p) const {
  const uint64_t total = TotalCount();
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target observation (1-based, ceil), then walk buckets.
  const double rank = std::max(1.0, p / 100.0 * static_cast<double>(total));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (static_cast<double>(seen + counts[i]) < rank) {
      seen += counts[i];
      continue;
    }
    // Target falls in bucket i: interpolate between its edges.
    const double lower = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
    if (i == counts.size() - 1) {
      // Overflow bucket has no upper edge; clamp to its lower bound.
      return std::max(lower, static_cast<double>(bounds.back()));
    }
    const double upper = static_cast<double>(bounds[i]);
    const double fraction =
        (rank - static_cast<double>(seen)) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
  }
  return static_cast<double>(bounds.back());
}

// ------------------------------------------------------------------ Registry

Counter* Registry::AddCounter(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Meta& meta : counter_meta_) {
    if (meta.name == name) return &counter_slots_[meta.slot];
  }
  counter_meta_.push_back({name, help, counter_slots_.size()});
  return &counter_slots_.emplace_back();
}

Gauge* Registry::AddGauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Meta& meta : gauge_meta_) {
    if (meta.name == name) return &gauge_slots_[meta.slot];
  }
  gauge_meta_.push_back({name, help, gauge_slots_.size()});
  return &gauge_slots_.emplace_back();
}

Histogram* Registry::AddHistogram(const std::string& name,
                                  const std::string& help,
                                  std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : histograms_) {
    if (entry.name == name) return &entry.instrument;
  }
  return &histograms_.emplace_back(name, help, std::move(bounds)).instrument;
}

RegistrySnapshot Registry::Snapshot() const {
  // No lock: registration finished before concurrent use (see class
  // comment), so the deques are structurally stable and the instrument
  // reads are atomic loads.
  RegistrySnapshot snap;
  snap.counters.reserve(counter_meta_.size());
  for (const Meta& meta : counter_meta_) {
    snap.counters.push_back(
        {meta.name, meta.help, counter_slots_[meta.slot].value()});
  }
  snap.gauges.reserve(gauge_meta_.size());
  for (const Meta& meta : gauge_meta_) {
    snap.gauges.push_back(
        {meta.name, meta.help, gauge_slots_[meta.slot].value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& entry : histograms_) {
    HistogramSnapshot h = entry.instrument.Snapshot();
    h.name = entry.name;
    h.help = entry.help;
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

// ---------------------------------------------------------- Snapshot merging

namespace {

template <typename Series>
Series* FindByName(std::vector<Series>& list, const std::string& name) {
  for (Series& s : list) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

template <typename Series>
const Series* FindByName(const std::vector<Series>& list,
                         const std::string& name) {
  for (const Series& s : list) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace

void RegistrySnapshot::MergeFrom(const RegistrySnapshot& other) {
  for (const CounterSnapshot& c : other.counters) {
    if (CounterSnapshot* mine = FindByName(counters, c.name)) {
      mine->value += c.value;
    } else {
      counters.push_back(c);
    }
  }
  for (const GaugeSnapshot& g : other.gauges) {
    if (GaugeSnapshot* mine = FindByName(gauges, g.name)) {
      mine->value += g.value;
    } else {
      gauges.push_back(g);
    }
  }
  for (const HistogramSnapshot& h : other.histograms) {
    if (HistogramSnapshot* mine = FindByName(histograms, h.name)) {
      (void)mine->MergeFrom(h);  // Layout mismatch: keep ours, skip theirs.
    } else {
      histograms.push_back(h);
    }
  }
}

const CounterSnapshot* RegistrySnapshot::FindCounter(
    const std::string& name) const {
  return FindByName(counters, name);
}

const GaugeSnapshot* RegistrySnapshot::FindGauge(
    const std::string& name) const {
  return FindByName(gauges, name);
}

const HistogramSnapshot* RegistrySnapshot::FindHistogram(
    const std::string& name) const {
  return FindByName(histograms, name);
}

}  // namespace telemetry
}  // namespace sentinel
