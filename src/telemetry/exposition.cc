#include "telemetry/exposition.h"

#include <sstream>

namespace sentinel {
namespace telemetry {
namespace {

/// Escapes a string for a JSON literal (quotes, backslashes, control chars).
void AppendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string RenderPrometheus(const RegistrySnapshot& snapshot,
                             const std::string& prefix) {
  std::ostringstream os;
  for (const CounterSnapshot& c : snapshot.counters) {
    os << "# HELP " << prefix << c.name << ' ' << c.help << '\n';
    os << "# TYPE " << prefix << c.name << " counter\n";
    os << prefix << c.name << ' ' << c.value << '\n';
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    os << "# HELP " << prefix << g.name << ' ' << g.help << '\n';
    os << "# TYPE " << prefix << g.name << " gauge\n";
    os << prefix << g.name << ' ' << g.value << '\n';
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    os << "# HELP " << prefix << h.name << ' ' << h.help << '\n';
    os << "# TYPE " << prefix << h.name << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      os << prefix << h.name << "_bucket{le=\"" << h.bounds[i] << "\"} "
         << cumulative << '\n';
    }
    cumulative += h.counts.back();
    os << prefix << h.name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
    os << prefix << h.name << "_sum " << h.sum << '\n';
    os << prefix << h.name << "_count " << cumulative << '\n';
  }
  return os.str();
}

std::string RenderJson(const RegistrySnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) os << ',';
    AppendJsonString(os, snapshot.counters[i].name);
    os << ':' << snapshot.counters[i].value;
  }
  os << "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) os << ',';
    AppendJsonString(os, snapshot.gauges[i].name);
    os << ':' << snapshot.gauges[i].value;
  }
  os << "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    if (i > 0) os << ',';
    AppendJsonString(os, h.name);
    os << ":{\"bounds\":[";
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) os << ',';
      os << h.bounds[b];
    }
    os << "],\"counts\":[";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) os << ',';
      os << h.counts[b];
    }
    os << "],\"sum\":" << h.sum << ",\"count\":" << h.TotalCount() << '}';
  }
  os << "}}";
  return os.str();
}

std::string RenderSpansJson(const std::vector<DecisionSpan>& spans) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < spans.size(); ++i) {
    const DecisionSpan& span = spans[i];
    if (i > 0) os << ',';
    os << "{\"seq\":" << span.seq << ",\"shard\":" << span.shard
       << ",\"when\":" << span.when << ",\"operation\":";
    AppendJsonString(os, span.operation);
    os << ",\"allowed\":" << (span.allowed ? "true" : "false") << ",\"rule\":";
    AppendJsonString(os, span.rule);
    os << ",\"cached\":" << (span.cached ? "true" : "false")
       << ",\"wall_ns\":" << span.wall_ns << ",\"dropped_steps\":"
       << span.dropped_steps << ",\"steps\":[";
    for (size_t s = 0; s < span.steps.size(); ++s) {
      const TraceStep& step = span.steps[s];
      if (s > 0) os << ',';
      os << "{\"kind\":\""
         << (step.kind == TraceStep::Kind::kEvent ? "event" : "rule")
         << "\",\"name\":";
      AppendJsonString(os, step.name);
      if (step.kind == TraceStep::Kind::kRule) {
        os << ",\"priority\":" << step.priority << ",\"branch\":\""
           << (step.else_branch ? "else" : "then") << "\",\"class\":";
        AppendJsonString(os,
                         std::string(step.rule_class) + "/" + step.granularity);
      }
      os << '}';
    }
    os << "]}";
  }
  os << ']';
  return os.str();
}

}  // namespace telemetry
}  // namespace sentinel
