#ifndef SENTINELPP_TELEMETRY_EXPOSITION_H_
#define SENTINELPP_TELEMETRY_EXPOSITION_H_

#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace sentinel {
namespace telemetry {

/// \brief Renders a merged snapshot in the Prometheus text exposition
/// format (text/plain; version 0.0.4): `# HELP` / `# TYPE` preambles,
/// histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
/// `_count`. Every series name gets `prefix` prepended.
std::string RenderPrometheus(const RegistrySnapshot& snapshot,
                             const std::string& prefix = "sentinelpp_");

/// \brief Renders a snapshot as a JSON object:
/// {"counters":{name:value,...},"gauges":{...},
///  "histograms":{name:{"bounds":[...],"counts":[...],"sum":N,"count":N}}}.
std::string RenderJson(const RegistrySnapshot& snapshot);

/// \brief Renders sampled decision spans as a JSON array (steps inline).
std::string RenderSpansJson(const std::vector<DecisionSpan>& spans);

}  // namespace telemetry
}  // namespace sentinel

#endif  // SENTINELPP_TELEMETRY_EXPOSITION_H_
