#include "telemetry/trace.h"

#include <sstream>

namespace sentinel {
namespace telemetry {

std::string DescribeSpan(const DecisionSpan& span) {
  std::ostringstream os;
  os << "span#" << span.seq << " shard=" << span.shard << " t=" << span.when
     << ' ' << span.operation << " -> "
     << (span.allowed ? "ALLOW" : "DENY") << " by "
     << (span.rule.empty() ? "(default)" : span.rule)
     << (span.cached ? " [cached]" : "") << " in "
     << span.wall_ns / 1000 << "us:";
  for (const TraceStep& step : span.steps) {
    if (step.kind == TraceStep::Kind::kEvent) {
      os << " ev:" << step.name;
    } else {
      os << " rule:" << step.name << "(p" << step.priority << ','
         << (step.else_branch ? "ELSE" : "THEN") << ')';
    }
  }
  if (span.dropped_steps > 0) os << " +" << span.dropped_steps << " dropped";
  return os.str();
}

bool TraceCollector::BeginSampled(Time now, const std::string& operation) {
  if (options_.capacity == 0) return false;
  current_ = DecisionSpan{};
  current_.steps.reserve(8);  // Typical cascade; avoids regrow churn.
  current_.seq = spans_recorded_;
  current_.when = now;
  current_.operation = operation;
  active_ = true;
  return true;
}

void TraceCollector::AddEventStep(const std::string& name) {
  if (!active_) return;
  if (current_.steps.size() >= options_.max_steps) {
    ++current_.dropped_steps;
    return;
  }
  TraceStep step;
  step.kind = TraceStep::Kind::kEvent;
  step.name = name;
  current_.steps.push_back(std::move(step));
}

void TraceCollector::AddRuleStep(const std::string& name, int priority,
                                 bool else_branch, const char* rule_class,
                                 const char* granularity) {
  if (!active_) return;
  if (current_.steps.size() >= options_.max_steps) {
    ++current_.dropped_steps;
    return;
  }
  TraceStep step;
  step.kind = TraceStep::Kind::kRule;
  step.name = name;
  step.priority = priority;
  step.else_branch = else_branch;
  step.rule_class = rule_class;
  step.granularity = granularity;
  current_.steps.push_back(std::move(step));
}

void TraceCollector::End(bool allowed, const std::string& rule,
                         int64_t wall_ns) {
  if (!active_) return;
  active_ = false;
  current_.allowed = allowed;
  current_.rule = rule;
  current_.wall_ns = wall_ns;
  ++spans_recorded_;
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(current_));
    return;
  }
  ring_[head_] = std::move(current_);
  head_ = (head_ + 1) % options_.capacity;
}

std::vector<DecisionSpan> TraceCollector::Spans() const {
  std::vector<DecisionSpan> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

}  // namespace telemetry
}  // namespace sentinel
