#include "telemetry/reporter.h"

#include <sstream>
#include <utility>

#include "common/calendar.h"
#include "common/logging.h"
#include "core/engine.h"
#include "telemetry/exposition.h"

namespace sentinel {

Status InstallPeriodicMetricsReporter(AuthorizationEngine& engine,
                                      Duration interval,
                                      telemetry::ReportSink sink) {
  if (interval <= 0) {
    return Status::InvalidArgument("telemetry report interval must be > 0");
  }
  EventDetector& detector = engine.detector();
  if (detector.Lookup("telemetry.boot").ok()) {
    return Status::AlreadyExists("periodic metrics reporter already installed");
  }
  SENTINEL_ASSIGN_OR_RETURN(boot, detector.DefinePrimitive("telemetry.boot"));
  SENTINEL_ASSIGN_OR_RETURN(stop, detector.DefinePrimitive("telemetry.stop"));
  SENTINEL_ASSIGN_OR_RETURN(
      tick, detector.DefinePeriodic("telemetry.tick", boot, interval, stop));

  AuthorizationEngine* eng = &engine;
  Rule rule("TEL.report", tick,
            Rule::Options{0, true, RuleClass::kActiveSecurity,
                          RuleGranularity::kGlobalized});
  rule.Then("emit metrics report", [eng, sink = std::move(sink)](
                                       RuleContext& c) {
    (void)c;
    std::ostringstream os;
    os << "# sentinelpp telemetry report @ " << FormatTime(eng->Now()) << '\n'
       << telemetry::RenderPrometheus(eng->metrics().Snapshot());
    if (sink) {
      sink(os.str());
    } else {
      SENTINEL_LOG(kInfo) << os.str();
    }
  });
  SENTINEL_ASSIGN_OR_RETURN(added, engine.rule_manager().AddRule(
                                       std::move(rule)));
  (void)added;
  // Boot the periodic stream: the first tick lands one interval from now.
  return detector.Raise(boot, {});
}

}  // namespace sentinel
