#ifndef SENTINELPP_TELEMETRY_TRACE_H_
#define SENTINELPP_TELEMETRY_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace sentinel {
namespace telemetry {

/// One step inside a sampled decision span.
struct TraceStep {
  enum class Kind { kEvent, kRule };

  Kind kind = Kind::kEvent;
  /// Event name ("rbac.checkAccess", "flt.role.PM") or rule name ("CA.global").
  std::string name;
  // Rule steps only:
  int priority = 0;
  bool else_branch = false;  // Which OWTE branch the firing took.
  /// Classification ("activity-control") and granularity ("globalized").
  /// Coupling is always immediate in this engine (cascades drain
  /// synchronously), so this pair is the discriminating rule metadata.
  /// Static-storage strings (RuleClassToString and friends) — pointers, not
  /// copies, so recording a rule step never allocates.
  const char* rule_class = "";
  const char* granularity = "";
};

/// \brief One sampled request, end to end: the triggering operation, every
/// occurrence the composite-event detector dispatched for it, every rule
/// firing in the cascade (priority, branch), and the final verdict.
struct DecisionSpan {
  uint64_t seq = 0;          // Collector-local, monotonic.
  uint32_t shard = 0;        // Filled in by the service when gathering.
  Time when = 0;             // Simulated time at dispatch.
  std::string operation;     // The request's primitive event name.
  bool allowed = false;
  std::string rule;          // Rule that produced the final verdict.
  /// Verdict replayed from the shard's decision cache: no event was raised
  /// and no rule fired, so the span has no steps and wall_ns 0.
  bool cached = false;
  int64_t wall_ns = 0;       // Real elapsed time for the whole cascade.
  std::vector<TraceStep> steps;
  uint32_t dropped_steps = 0;  // Steps past max_steps_per_span.
};

/// Compact single-line rendering (exposition comments, log sinks).
std::string DescribeSpan(const DecisionSpan& span);

/// \brief Per-shard span recorder: sampling decision, in-flight step
/// accumulation, fixed-capacity ring of finished spans.
///
/// Single-threaded by design, like the engine that owns it: Begin/Add*/End
/// run on the shard thread inside Dispatch; readers copy the ring via the
/// service's Inspect (which runs on the shard thread too). Nothing here is
/// atomic and nothing needs to be.
class TraceCollector {
 public:
  struct Options {
    /// Record every Nth request (1 = every request, 0 = tracing off). The
    /// very first request is always sampled so a fresh service has a span
    /// to show.
    uint32_t sample_every = 256;
    /// Finished spans retained (oldest evicted first).
    size_t capacity = 64;
    /// Steps kept per span; the rest are counted in dropped_steps.
    size_t max_steps = 48;
  };

  // Two constructors instead of a defaulted argument: GCC rejects a nested
  // class with member initializers as a default argument in its encloser.
  TraceCollector() = default;
  explicit TraceCollector(Options options)
      : options_(options),
        until_next_sample_(options.sample_every == 0 ? 0 : 1) {}

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  const Options& options() const { return options_; }
  void set_sample_every(uint32_t n) {
    options_.sample_every = n;
    until_next_sample_ = n == 0 ? 0 : 1;  // Next request re-seeds the sample.
  }

  /// Starts a span for the request beginning now iff it is sampled;
  /// returns whether it was. Nested Begins (a cascade re-entering the
  /// engine) attach to the outer span rather than opening a new one.
  ///
  /// Inline countdown instead of `seen % every`: the not-sampled path —
  /// nearly every dispatch — is a decrement and two branches, no division
  /// and no call. until_next_sample_ == 0 means tracing is off.
  bool Begin(Time now, const std::string& operation) {
    if (active_) return false;  // Cascade re-entry: keep the outer span.
    ++requests_seen_;
    if (until_next_sample_ == 0 || --until_next_sample_ != 0) return false;
    until_next_sample_ = options_.sample_every;
    return BeginSampled(now, operation);
  }
  bool active() const { return active_; }

  void AddEventStep(const std::string& name);
  /// `rule_class` / `granularity` must point at static storage (the
  /// *ToString helpers); the step keeps the pointers.
  void AddRuleStep(const std::string& name, int priority, bool else_branch,
                   const char* rule_class, const char* granularity);

  /// Finishes the active span with the verdict and pushes it to the ring.
  void End(bool allowed, const std::string& rule, int64_t wall_ns);

  /// End() for a decision-cache replay: marks the span cached (it has no
  /// steps — nothing was raised or fired) and records zero wall time.
  void EndCached(bool allowed, const std::string& rule) {
    if (!active_) return;
    current_.cached = true;
    End(allowed, rule, 0);
  }

  /// Finished spans, oldest first (a copy — callers hold no ring refs).
  std::vector<DecisionSpan> Spans() const;

  uint64_t requests_seen() const { return requests_seen_; }
  uint64_t spans_recorded() const { return spans_recorded_; }
  size_t ring_size() const { return ring_.size(); }

 private:
  /// Opens the span once the countdown elected this request.
  bool BeginSampled(Time now, const std::string& operation);

  Options options_ = Options();
  /// Requests until the next sampled span; 0 = tracing off. Starts at 1 so
  /// the very first request is always sampled.
  uint32_t until_next_sample_ = 1;
  std::vector<DecisionSpan> ring_;  // Ring once full; head_ = oldest.
  size_t head_ = 0;
  DecisionSpan current_;
  bool active_ = false;
  uint64_t requests_seen_ = 0;
  uint64_t spans_recorded_ = 0;
};

}  // namespace telemetry
}  // namespace sentinel

#endif  // SENTINELPP_TELEMETRY_TRACE_H_
