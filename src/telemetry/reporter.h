#ifndef SENTINELPP_TELEMETRY_REPORTER_H_
#define SENTINELPP_TELEMETRY_REPORTER_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "common/value.h"

namespace sentinel {

class AuthorizationEngine;

namespace telemetry {

/// Receives one rendered report per tick. Reports are emitted from the
/// thread advancing the engine's clock (the shard thread in a concurrent
/// service), so a shared sink must be thread-safe.
using ReportSink = std::function<void(const std::string&)>;

}  // namespace telemetry

/// \brief Installs the periodic metrics reporter on an engine.
///
/// This is the paper's own machinery turned on the enforcement mechanism
/// itself: a PERIODIC composite event (boot, interval, stop — exactly how
/// audit directives are compiled) drives a "TEL.report" OWTE rule whose
/// action renders the engine's metrics registry in the Prometheus text
/// format and hands it to `sink` (default: the INFO log). Ticks fire on the
/// engine's simulated clock, so reports are deterministic under AdvanceTo.
///
/// One reporter per engine; a second install returns AlreadyExists.
Status InstallPeriodicMetricsReporter(AuthorizationEngine& engine,
                                      Duration interval,
                                      telemetry::ReportSink sink = nullptr);

}  // namespace sentinel

#endif  // SENTINELPP_TELEMETRY_REPORTER_H_
