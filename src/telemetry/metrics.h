#ifndef SENTINELPP_TELEMETRY_METRICS_H_
#define SENTINELPP_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace sentinel {
namespace telemetry {

/// Wall-clock nanoseconds (steady, monotonic) — the latency timebase.
/// Distinct from the engine's simulated `Time`: latencies are real elapsed
/// time even when the policy clock is simulated.
int64_t NowNanos();

/// \brief Monotonic event counter.
///
/// Threading contract: `Inc` is the single-writer fast path — a relaxed
/// load+store pair with no lock prefix, valid only when exactly one thread
/// ever writes the counter (each engine shard owns its registry). `Add` is
/// a full atomic RMW for multi-writer counters (service-level metrics
/// bumped from arbitrary caller threads). `value` may be read from any
/// thread at any time; scrapes never block writers.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    v_.store(v_.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
  }
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// \brief Settable instantaneous value (same threading contract: `Set` from
/// one writer or under the owner's own serialization; reads from anywhere).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Point-in-time copy of one histogram, mergeable across shards.
///
/// `bounds` are ascending inclusive upper bounds; `counts` has
/// `bounds.size() + 1` entries — counts[i] holds observations `v` with
/// `bounds[i-1] < v <= bounds[i]`. counts[0] is the underflow bucket (every
/// observation `<= bounds[0]`, however negative) and counts.back() the
/// overflow bucket (`> bounds.back()`, the "+Inf" bucket).
struct HistogramSnapshot {
  std::string name;
  std::string help;
  std::vector<int64_t> bounds;
  std::vector<uint64_t> counts;
  int64_t sum = 0;

  uint64_t TotalCount() const;
  /// Adds `other`'s buckets and sum into this snapshot. Merging is
  /// commutative and associative (pure element-wise addition), so shard
  /// order never changes the merged result. Returns false (and leaves this
  /// snapshot untouched) when the bucket layouts differ.
  bool MergeFrom(const HistogramSnapshot& other);
  /// Estimated p-th percentile (p in [0,100]), linearly interpolated
  /// within the owning bucket; 0 when empty. The overflow bucket clamps to
  /// its lower bound (there is no upper edge to interpolate toward).
  double Percentile(double p) const;
};

/// \brief Fixed-bucket histogram; Record is the single-writer fast path.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<int64_t> bounds);

  void Record(int64_t v);
  /// Multi-writer Record (full RMWs) for series bumped from arbitrary
  /// caller threads — the service-boundary analog of Counter::Add.
  void RecordShared(int64_t v);
  HistogramSnapshot Snapshot() const;

  /// `count` bounds starting at `start`, each `factor`× the previous —
  /// the standard latency-bucket shape.
  static std::vector<int64_t> ExponentialBounds(int64_t start, double factor,
                                                int count);

 private:
  std::vector<int64_t> bounds_;
  std::vector<std::atomic<uint64_t>> counts_;  // bounds_.size() + 1.
  std::atomic<int64_t> sum_{0};
};

struct CounterSnapshot {
  std::string name;
  std::string help;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::string help;
  int64_t value = 0;
};

/// \brief Point-in-time copy of a whole registry; the unit of cross-shard
/// merging and of exposition rendering.
struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Adds `other` into this snapshot, matching series by name; names absent
  /// here are appended. Gauges sum (the merged view of per-shard gauges is
  /// their total, e.g. pending timers across shards). Histograms with
  /// mismatched bucket layouts are skipped.
  void MergeFrom(const RegistrySnapshot& other);

  const CounterSnapshot* FindCounter(const std::string& name) const;
  const GaugeSnapshot* FindGauge(const std::string& name) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
};

/// \brief Named-metric registry: one per engine shard plus one for the
/// service boundary.
///
/// Registration (Add*) happens during construction wiring — engine ctor,
/// service ctor — strictly before any concurrent scrape exists, and returns
/// stable pointers the instrumented code keeps. After that the registry
/// structure is immutable; `Snapshot` only loads atomics, so scraping a
/// shard's registry from another thread never takes a lock and never
/// perturbs the shard's request path.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Add* returns the existing instrument when `name` was already
  /// registered (idempotent re-wiring), so callers can share series.
  Counter* AddCounter(const std::string& name, const std::string& help);
  Gauge* AddGauge(const std::string& name, const std::string& help);
  Histogram* AddHistogram(const std::string& name, const std::string& help,
                          std::vector<int64_t> bounds);

  RegistrySnapshot Snapshot() const;

 private:
  /// Name/help for one counter or gauge; `slot` indexes the value deque.
  struct Meta {
    std::string name;
    std::string help;
    size_t slot;
  };

  template <typename T>
  struct Entry {
    std::string name;
    std::string help;
    T instrument;
    template <typename... Args>
    Entry(std::string n, std::string h, Args&&... args)
        : name(std::move(n)),
          help(std::move(h)),
          instrument(std::forward<Args>(args)...) {}
  };

  mutable std::mutex mu_;  // Guards registration only; scrapes are lock-free.
  /// Counter/gauge values live apart from their metadata, packed in deque
  /// chunks (stable addresses, 8 per cache line): a dispatch bumps half a
  /// dozen series, and interleaving each 8-byte atomic with 64 bytes of
  /// cold strings would spread those bumps over six cache lines.
  std::deque<Counter> counter_slots_;
  std::deque<Gauge> gauge_slots_;
  std::vector<Meta> counter_meta_;
  std::vector<Meta> gauge_meta_;
  std::deque<Entry<Histogram>> histograms_;
};

}  // namespace telemetry
}  // namespace sentinel

#endif  // SENTINELPP_TELEMETRY_METRICS_H_
