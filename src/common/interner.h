#ifndef SENTINELPP_COMMON_INTERNER_H_
#define SENTINELPP_COMMON_INTERNER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/symbol.h"
#include "common/value.h"

namespace sentinel {

/// \brief Maps strings to dense 32-bit Symbol ids, with stable reverse lookup.
///
/// Each engine owns one SymbolTable and shares it with its detector, RBAC
/// database and role-state table, so a name interned once at policy-load time
/// is an integer everywhere on the request path. Interned strings are never
/// released; NameOf references stay valid for the table's lifetime.
///
/// Concurrency: Intern is single-writer (the owning shard thread). Find,
/// NameOf and size are lock-free and may run on any thread concurrently with
/// Intern — the service's zero-hop read path resolves request names on
/// caller threads while the shard keeps interning. A concurrent reader may
/// miss a symbol whose Intern has not fully published yet (Find returns the
/// invalid symbol, NameOf the empty string — both conservative), but it can
/// never observe a torn or dangling name. Publish order: write the string,
/// release-store size_, release-store the index slot.
class SymbolTable {
 public:
  SymbolTable() = default;
  ~SymbolTable();
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the symbol for `name`, interning it if new. O(1) amortized.
  /// Single-writer: only the thread that owns the table may call this.
  Symbol Intern(std::string_view name);

  /// Returns the symbol for `name`, or an invalid symbol if never interned.
  /// Safe from any thread.
  Symbol Find(std::string_view name) const;

  /// Reverse lookup. Invalid/out-of-range symbols map to the empty string.
  /// Safe from any thread.
  const std::string& NameOf(Symbol s) const;

  size_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  // Names live in fixed-size blocks behind atomic pointers: a string, once
  // written, never moves, so NameOf references stay valid for the table's
  // lifetime and readers never chase a reallocating container.
  static constexpr size_t kBlockShift = 12;               // 4096 names/block.
  static constexpr size_t kBlockSize = size_t{1} << kBlockShift;
  static constexpr size_t kMaxBlocks = size_t{1} << kBlockShift;  // ~16.7M.

  /// Open-addressed lookup index. Each slot packs (hash tag << 32 | id + 1);
  /// 0 marks an empty slot. Grown tables are built aside and published
  /// whole; the outgrown ones are retired, not freed, so an in-flight
  /// reader keeps probing a valid — merely stale — view.
  struct IndexTable {
    explicit IndexTable(size_t capacity)
        : mask(capacity - 1), slots(new std::atomic<uint64_t>[capacity]()) {}
    const size_t mask;
    std::unique_ptr<std::atomic<uint64_t>[]> slots;
  };

  static uint64_t HashName(std::string_view name);
  /// The stored name for a published id (no bounds/validity checks).
  const std::string& NameUnchecked(uint32_t id) const {
    const std::string* block =
        blocks_[id >> kBlockShift].load(std::memory_order_acquire);
    return block[id & (kBlockSize - 1)];
  }
  static void InsertSlot(IndexTable* table, uint64_t hash, uint32_t id);
  void GrowIndex(size_t min_live);

  std::array<std::atomic<std::string*>, kMaxBlocks> blocks_{};
  std::atomic<uint32_t> size_{0};
  std::atomic<IndexTable*> index_{nullptr};
  std::vector<std::unique_ptr<IndexTable>> tables_;  // Current + retired.
};

/// \brief A small sorted flat map from Symbol to Value.
///
/// Replaces `std::map<std::string, Value>` for event occurrence parameters.
/// Param maps carry at most a handful of entries (user/session/role/...), so
/// a sorted inline vector beats a node-based map on every raise, merge and
/// compare; entries spill to the heap only past kInlineCapacity. Keys are
/// unique and kept sorted by symbol id, which makes equality and subset
/// checks a linear merge.
///
/// The inline slots are raw storage: only the `size_` live entries are ever
/// constructed, so default construction, destruction and copies of the
/// mostly-small maps that ride on every Occurrence cost exactly what their
/// content costs. After a spill every entry lives in `heap_` and no inline
/// slot is constructed; entries never move back inline.
class FlatParamMap {
 public:
  struct Entry {
    Symbol key;
    Value value;

    friend bool operator==(const Entry& a, const Entry& b) {
      return a.key == b.key && a.value == b.value;
    }
  };

  static constexpr size_t kInlineCapacity = 6;

  FlatParamMap() = default;
  FlatParamMap(std::initializer_list<Entry> entries) {
    for (const Entry& e : entries) Set(e.key, e.value);
  }

  FlatParamMap(const FlatParamMap& other) { CopyFrom(other); }
  FlatParamMap& operator=(const FlatParamMap& other) {
    if (this != &other) {
      Reset();
      CopyFrom(other);
    }
    return *this;
  }
  FlatParamMap(FlatParamMap&& other) noexcept { MoveFrom(std::move(other)); }
  FlatParamMap& operator=(FlatParamMap&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  ~FlatParamMap() {
    if (!spilled()) DestroyInline(size_);
  }

  /// Inserts or overwrites (latest write wins, as with std::map::operator[]).
  void Set(Symbol key, Value value);

  /// Returns the entry for `key`, or nullptr.
  const Value* Find(Symbol key) const;

  /// Returns the value for `key`, or a null Value if absent.
  const Value& Get(Symbol key) const;

  bool Contains(Symbol key) const { return Find(key) != nullptr; }

  /// True when every entry of `sub` is present here with an equal value.
  bool ContainsAll(const FlatParamMap& sub) const;

  /// Overlays `overlay` onto this map; on key conflicts the overlay wins.
  /// Matches the seed's MergeParams semantics (later constituent wins).
  void MergeFrom(const FlatParamMap& overlay);

  /// Replaces every string-typed value with its interned symbol. The engine
  /// canonicalizes params at the raise boundary so that inside the detector
  /// and rule layers a name is always a Symbol, never a std::string.
  void InternStringValues(SymbolTable& symbols);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const Entry* begin() const { return data(); }
  const Entry* end() const { return data() + size_; }

  friend bool operator==(const FlatParamMap& a, const FlatParamMap& b) {
    if (a.size_ != b.size_) return false;
    const Entry* pa = a.data();
    const Entry* pb = b.data();
    for (size_t i = 0; i < a.size_; ++i) {
      if (!(pa[i] == pb[i])) return false;
    }
    return true;
  }

  /// String-keyed conveniences for tests and debugging (resolve through the
  /// table; absent or never-interned keys yield the null-Value fallbacks).
  const Value& Get(const SymbolTable& symbols, std::string_view key) const;
  /// Returns the string form of a string/symbol value, or "" if absent.
  const std::string& GetString(const SymbolTable& symbols,
                               std::string_view key) const;

  /// Renders as `{a=1, b="x"}` with entries sorted by key name and symbol
  /// values resolved, matching ParamMapToString output for equal content.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  bool spilled() const { return size_ > kInlineCapacity; }
  Entry* inline_data() {
    return std::launder(reinterpret_cast<Entry*>(inline_storage_));
  }
  const Entry* inline_data() const {
    return std::launder(reinterpret_cast<const Entry*>(inline_storage_));
  }
  const Entry* data() const { return spilled() ? heap_.data() : inline_data(); }
  Entry* data() { return spilled() ? heap_.data() : inline_data(); }

  void DestroyInline(size_t count) {
    Entry* p = inline_data();
    for (size_t i = 0; i < count; ++i) p[i].~Entry();
  }
  /// Destroys all content; leaves *this empty (heap capacity retained).
  void Reset() {
    if (!spilled()) DestroyInline(size_);
    heap_.clear();
    size_ = 0;
  }
  /// Requires *this empty.
  void CopyFrom(const FlatParamMap& other) {
    if (other.spilled()) {
      heap_ = other.heap_;
    } else {
      Entry* dst = inline_data();
      const Entry* src = other.inline_data();
      for (size_t i = 0; i < other.size_; ++i) new (dst + i) Entry(src[i]);
    }
    size_ = other.size_;
  }
  /// Requires *this empty; leaves `other` empty.
  void MoveFrom(FlatParamMap&& other) noexcept {
    if (other.spilled()) {
      heap_ = std::move(other.heap_);
      other.heap_.clear();
    } else {
      Entry* dst = inline_data();
      Entry* src = other.inline_data();
      for (size_t i = 0; i < other.size_; ++i) {
        new (dst + i) Entry(std::move(src[i]));
        src[i].~Entry();
      }
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  alignas(Entry) unsigned char inline_storage_[kInlineCapacity * sizeof(Entry)];
  std::vector<Entry> heap_;
  size_t size_ = 0;
};

/// Interns a string-keyed ParamMap: keys become symbols and string values
/// become symbol values. The boundary conversion for definition-time filters
/// and test raises.
FlatParamMap InternParams(SymbolTable& symbols, const ParamMap& params);

/// Converts back to a string-keyed map, resolving symbol values to string
/// values. For introspection and tests only; never on the request path.
ParamMap ExternParams(const SymbolTable& symbols, const FlatParamMap& params);

}  // namespace sentinel

#endif  // SENTINELPP_COMMON_INTERNER_H_
