#ifndef SENTINELPP_COMMON_CALENDAR_H_
#define SENTINELPP_COMMON_CALENDAR_H_

#include <cstdint>
#include <string>

#include "common/value.h"

namespace sentinel {

/// \brief A broken-down UTC civil time. GTRBAC periodic expressions
/// ("24h:mi:ss/mm/dd/yyyy" with wildcards, paper footnote 10) are matched
/// against this representation.
struct CivilTime {
  int year = 1970;    // e.g. 2026
  int month = 1;      // 1..12
  int day = 1;        // 1..31
  int hour = 0;       // 0..23
  int minute = 0;     // 0..59
  int second = 0;     // 0..59
  int64_t microsecond = 0;  // 0..999999

  friend bool operator==(const CivilTime&, const CivilTime&) = default;
};

/// Converts a Time (microseconds since the Unix epoch, UTC) to civil fields.
CivilTime ToCivil(Time t);

/// Converts civil fields to a Time. Fields outside their canonical ranges
/// are normalized by carrying (e.g. hour 24 rolls into the next day).
Time FromCivil(const CivilTime& c);

/// Day of week for a Time: 0 = Sunday ... 6 = Saturday.
int DayOfWeek(Time t);

/// True iff `year` is a Gregorian leap year.
bool IsLeapYear(int year);

/// Number of days in `month` (1..12) of `year`.
int DaysInMonth(int year, int month);

/// Convenience constructor: builds a Time from Y/M/D h:m:s UTC.
Time MakeTime(int year, int month, int day, int hour = 0, int minute = 0,
              int second = 0, int64_t microsecond = 0);

/// Renders as "YYYY-MM-DD hh:mm:ss" (microseconds omitted when zero).
std::string FormatTime(Time t);

}  // namespace sentinel

#endif  // SENTINELPP_COMMON_CALENDAR_H_
