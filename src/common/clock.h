#ifndef SENTINELPP_COMMON_CLOCK_H_
#define SENTINELPP_COMMON_CLOCK_H_

#include "common/value.h"

namespace sentinel {

/// \brief Time source abstraction.
///
/// All components read time through a Clock so that temporal semantics
/// (PLUS expiry, periodic windows, durations) are fully deterministic under
/// test: inject a SimulatedClock and advance it explicitly. A wall-clock
/// implementation is provided for interactive use.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds since the Unix epoch, UTC.
  virtual Time Now() const = 0;
};

/// \brief Manually-advanced clock for deterministic tests and benchmarks.
///
/// Advancing the clock does not by itself fire timers; the TimerService
/// owning component (EventDetector) drains due timers when asked. Use
/// `EventDetector::AdvanceTo` which couples the two.
class SimulatedClock final : public Clock {
 public:
  explicit SimulatedClock(Time start = 0) : now_(start) {}

  Time Now() const override { return now_; }

  /// Moves time forward to `t`; moving backwards is a programming error
  /// and is ignored.
  void SetTime(Time t) {
    if (t > now_) now_ = t;
  }

  /// Moves time forward by `d` microseconds.
  void Advance(Duration d) {
    if (d > 0) now_ += d;
  }

 private:
  Time now_;
};

/// \brief Real wall-clock time (CLOCK_REALTIME), microsecond resolution.
class SystemClock final : public Clock {
 public:
  Time Now() const override;
};

/// The current real wall-clock instant (microseconds since the Unix epoch).
/// The audit trail stamps every record with this alongside the simulated
/// time, so durable decision streams correlate with external logs.
Time WallTimeMicros();

}  // namespace sentinel

#endif  // SENTINELPP_COMMON_CLOCK_H_
