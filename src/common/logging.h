#ifndef SENTINELPP_COMMON_LOGGING_H_
#define SENTINELPP_COMMON_LOGGING_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace sentinel {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kAlert = 4,  // Active-security alerts destined for administrators.
};

const char* LogLevelToString(LogLevel level);

/// \brief Minimal leveled logger with a pluggable sink.
///
/// Active-security rules emit administrator alerts through this logger; the
/// test suite installs a capturing sink to assert on alert content. The
/// default sink writes WARNING and above to stderr.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Process-wide logger instance.
  static Logger& Global();

  /// Replaces the sink; pass nullptr to restore the default stderr sink.
  void SetSink(Sink sink);

  /// Minimum level that reaches the sink (default: kWarning). Atomic so
  /// the early-out level check in Log stays lock-free: shard threads log
  /// concurrently with tests (or admins) adjusting the level.
  void SetMinLevel(LogLevel level) {
    min_level_.store(level, std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return min_level_.load(std::memory_order_relaxed);
  }

  void Log(LogLevel level, const std::string& message);

 private:
  Logger();

  std::mutex mu_;
  Sink sink_;
  std::atomic<LogLevel> min_level_;
};

/// \brief RAII sink that records every message at or above `level`;
/// restores the previous behaviour on destruction. For tests.
class CapturingLogSink {
 public:
  explicit CapturingLogSink(LogLevel level = LogLevel::kDebug);
  ~CapturingLogSink();

  CapturingLogSink(const CapturingLogSink&) = delete;
  CapturingLogSink& operator=(const CapturingLogSink&) = delete;

  struct Entry {
    LogLevel level;
    std::string message;
  };

  const std::vector<Entry>& entries() const { return entries_; }

  /// Number of captured messages at exactly `level`.
  int CountAt(LogLevel level) const;

  /// True iff any captured message contains `needle`.
  bool Contains(const std::string& needle) const;

 private:
  std::vector<Entry> entries_;
  LogLevel prev_min_;
};

namespace internal {
/// Stream-style builder used by the SENTINEL_LOG macro.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Global().Log(level_, os_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace internal

}  // namespace sentinel

#define SENTINEL_LOG(level) \
  ::sentinel::internal::LogMessage(::sentinel::LogLevel::level)

#endif  // SENTINELPP_COMMON_LOGGING_H_
