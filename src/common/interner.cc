#include "common/interner.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace sentinel {

namespace {
const std::string kEmptyString;
const Value kNullValue;

/// High 32 bits of the name hash, stored alongside the id so a probing
/// reader only touches the string on a likely match.
constexpr uint64_t kTagMask = 0xffffffff00000000ull;
}  // namespace

SymbolTable::~SymbolTable() {
  for (std::atomic<std::string*>& block : blocks_) {
    delete[] block.load(std::memory_order_relaxed);
  }
}

uint64_t SymbolTable::HashName(std::string_view name) {
  // FNV-1a, 64-bit: deterministic across runs (symbol placement must not
  // depend on platform hash seeds) and cheap for the short names RBAC uses.
  uint64_t hash = 1469598103934665603ull;
  for (const char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

void SymbolTable::InsertSlot(IndexTable* table, uint64_t hash, uint32_t id) {
  const uint64_t value = (hash & kTagMask) | (static_cast<uint64_t>(id) + 1);
  size_t pos = static_cast<size_t>(hash) & table->mask;
  while (table->slots[pos].load(std::memory_order_relaxed) != 0) {
    pos = (pos + 1) & table->mask;
  }
  table->slots[pos].store(value, std::memory_order_release);
}

void SymbolTable::GrowIndex(size_t min_live) {
  size_t capacity = 256;
  while (capacity < min_live * 2) capacity <<= 1;
  auto grown = std::make_unique<IndexTable>(capacity);
  // Rehash from the outgoing table's slots: exactly the published ids (the
  // id being interned right now is inserted by the caller, after this).
  if (const IndexTable* old = index_.load(std::memory_order_relaxed)) {
    for (size_t i = 0; i <= old->mask; ++i) {
      const uint64_t slot = old->slots[i].load(std::memory_order_relaxed);
      if (slot == 0) continue;
      const uint32_t id = static_cast<uint32_t>(slot) - 1;
      InsertSlot(grown.get(), HashName(NameUnchecked(id)), id);
    }
  }
  index_.store(grown.get(), std::memory_order_release);
  tables_.push_back(std::move(grown));
}

Symbol SymbolTable::Intern(std::string_view name) {
  const Symbol existing = Find(name);
  if (existing.valid()) return existing;
  const uint32_t id = size_.load(std::memory_order_relaxed);
  const size_t block_index = id >> kBlockShift;
  if (block_index >= kMaxBlocks) return Symbol();  // ~16.7M names: cap out.
  std::string* block = blocks_[block_index].load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new std::string[kBlockSize];
    blocks_[block_index].store(block, std::memory_order_release);
  }
  // Publish order matters: the string must be fully written before either
  // size_ (covers NameOf) or the index slot (covers Find) can expose the id
  // to a concurrent reader.
  block[id & (kBlockSize - 1)].assign(name.data(), name.size());
  size_.store(id + 1, std::memory_order_release);

  IndexTable* table = index_.load(std::memory_order_relaxed);
  const size_t live = static_cast<size_t>(id) + 1;
  if (table == nullptr || live * 4 >= (table->mask + 1) * 3) {
    GrowIndex(live);
    table = index_.load(std::memory_order_relaxed);
  }
  InsertSlot(table, HashName(name), id);
  return Symbol(id);
}

Symbol SymbolTable::Find(std::string_view name) const {
  const IndexTable* table = index_.load(std::memory_order_acquire);
  if (table == nullptr) return Symbol();
  const uint64_t hash = HashName(name);
  const uint64_t tag = hash & kTagMask;
  size_t pos = static_cast<size_t>(hash) & table->mask;
  for (size_t i = 0; i <= table->mask; ++i, pos = (pos + 1) & table->mask) {
    const uint64_t slot = table->slots[pos].load(std::memory_order_acquire);
    // Slots fill in probe order and never empty, so an empty slot proves
    // the name is absent (from this reader's view of the table).
    if (slot == 0) return Symbol();
    if ((slot & kTagMask) != tag) continue;
    const uint32_t id = static_cast<uint32_t>(slot) - 1;
    if (NameUnchecked(id) == name) return Symbol(id);
  }
  return Symbol();
}

const std::string& SymbolTable::NameOf(Symbol s) const {
  if (!s.valid() || s.id() >= size_.load(std::memory_order_acquire)) {
    return kEmptyString;
  }
  return NameUnchecked(s.id());
}

void FlatParamMap::Set(Symbol key, Value value) {
  Entry* base = data();
  Entry* pos = std::lower_bound(
      base, base + size_, key,
      [](const Entry& e, Symbol k) { return e.key < k; });
  if (pos != base + size_ && pos->key == key) {
    pos->value = std::move(value);
    return;
  }
  size_t idx = static_cast<size_t>(pos - base);
  if (size_ < kInlineCapacity) {
    Entry* p = inline_data();
    if (idx == size_) {
      new (p + size_) Entry{key, std::move(value)};
    } else {
      // Open the gap: construct the new tail slot from the old last entry,
      // shift the middle, then overwrite the vacated slot.
      new (p + size_) Entry(std::move(p[size_ - 1]));
      for (size_t i = size_ - 1; i > idx; --i) p[i] = std::move(p[i - 1]);
      p[idx] = Entry{key, std::move(value)};
    }
  } else {
    if (size_ == kInlineCapacity) {
      Entry* p = inline_data();
      heap_.reserve(kInlineCapacity + 1);
      heap_.assign(std::make_move_iterator(p),
                   std::make_move_iterator(p + kInlineCapacity));
      DestroyInline(kInlineCapacity);
    }
    heap_.insert(heap_.begin() + static_cast<ptrdiff_t>(idx),
                 Entry{key, std::move(value)});
  }
  ++size_;
}

const Value* FlatParamMap::Find(Symbol key) const {
  const Entry* base = data();
  const Entry* pos = std::lower_bound(
      base, base + size_, key,
      [](const Entry& e, Symbol k) { return e.key < k; });
  if (pos != base + size_ && pos->key == key) return &pos->value;
  return nullptr;
}

const Value& FlatParamMap::Get(Symbol key) const {
  const Value* v = Find(key);
  return v ? *v : kNullValue;
}

bool FlatParamMap::ContainsAll(const FlatParamMap& sub) const {
  // Both sides are sorted by key: a single merge pass suffices.
  const Entry* mine = begin();
  const Entry* mine_end = end();
  for (const Entry& want : sub) {
    while (mine != mine_end && mine->key < want.key) ++mine;
    if (mine == mine_end || !(mine->key == want.key) ||
        !(mine->value == want.value)) {
      return false;
    }
  }
  return true;
}

void FlatParamMap::MergeFrom(const FlatParamMap& overlay) {
  for (const Entry& e : overlay) Set(e.key, e.value);
}

void FlatParamMap::InternStringValues(SymbolTable& symbols) {
  Entry* base = data();
  for (size_t i = 0; i < size_; ++i) {
    if (base[i].value.is_string()) {
      base[i].value = Value(symbols.Intern(base[i].value.AsString()));
    }
  }
}

const Value& FlatParamMap::Get(const SymbolTable& symbols,
                               std::string_view key) const {
  Symbol k = symbols.Find(key);
  if (!k.valid()) return kNullValue;
  return Get(k);
}

const std::string& FlatParamMap::GetString(const SymbolTable& symbols,
                                           std::string_view key) const {
  const Value& v = Get(symbols, key);
  if (v.is_symbol()) return symbols.NameOf(v.AsSymbol());
  return v.AsString();
}

std::string FlatParamMap::ToString(const SymbolTable& symbols) const {
  // Render sorted by key *name* so the output matches ParamMapToString for
  // the same logical content regardless of intern order.
  std::map<std::string_view, const Value*> by_name;
  for (const Entry& e : *this) by_name[symbols.NameOf(e.key)] = &e.value;
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [name, value] : by_name) {
    if (!first) os << ", ";
    first = false;
    os << name << '=';
    if (value->is_symbol()) {
      os << '"' << symbols.NameOf(value->AsSymbol()) << '"';
    } else {
      os << value->ToString();
    }
  }
  os << '}';
  return os.str();
}

FlatParamMap InternParams(SymbolTable& symbols, const ParamMap& params) {
  FlatParamMap out;
  for (const auto& [key, value] : params) {
    if (value.is_string()) {
      out.Set(symbols.Intern(key), Value(symbols.Intern(value.AsString())));
    } else {
      out.Set(symbols.Intern(key), value);
    }
  }
  return out;
}

ParamMap ExternParams(const SymbolTable& symbols, const FlatParamMap& params) {
  ParamMap out;
  for (const auto& e : params) {
    if (e.value.is_symbol()) {
      out[symbols.NameOf(e.key)] = Value(symbols.NameOf(e.value.AsSymbol()));
    } else {
      out[symbols.NameOf(e.key)] = e.value;
    }
  }
  return out;
}

}  // namespace sentinel
