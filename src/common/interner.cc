#include "common/interner.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace sentinel {

namespace {
const std::string kEmptyString;
const Value kNullValue;
}  // namespace

Symbol SymbolTable::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return Symbol(it->second);
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return Symbol(id);
}

Symbol SymbolTable::Find(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? Symbol() : Symbol(it->second);
}

const std::string& SymbolTable::NameOf(Symbol s) const {
  if (!s.valid() || s.id() >= names_.size()) return kEmptyString;
  return names_[s.id()];
}

void FlatParamMap::Set(Symbol key, Value value) {
  Entry* base = data();
  Entry* pos = std::lower_bound(
      base, base + size_, key,
      [](const Entry& e, Symbol k) { return e.key < k; });
  if (pos != base + size_ && pos->key == key) {
    pos->value = std::move(value);
    return;
  }
  size_t idx = static_cast<size_t>(pos - base);
  if (size_ < kInlineCapacity) {
    Entry* p = inline_data();
    if (idx == size_) {
      new (p + size_) Entry{key, std::move(value)};
    } else {
      // Open the gap: construct the new tail slot from the old last entry,
      // shift the middle, then overwrite the vacated slot.
      new (p + size_) Entry(std::move(p[size_ - 1]));
      for (size_t i = size_ - 1; i > idx; --i) p[i] = std::move(p[i - 1]);
      p[idx] = Entry{key, std::move(value)};
    }
  } else {
    if (size_ == kInlineCapacity) {
      Entry* p = inline_data();
      heap_.reserve(kInlineCapacity + 1);
      heap_.assign(std::make_move_iterator(p),
                   std::make_move_iterator(p + kInlineCapacity));
      DestroyInline(kInlineCapacity);
    }
    heap_.insert(heap_.begin() + static_cast<ptrdiff_t>(idx),
                 Entry{key, std::move(value)});
  }
  ++size_;
}

const Value* FlatParamMap::Find(Symbol key) const {
  const Entry* base = data();
  const Entry* pos = std::lower_bound(
      base, base + size_, key,
      [](const Entry& e, Symbol k) { return e.key < k; });
  if (pos != base + size_ && pos->key == key) return &pos->value;
  return nullptr;
}

const Value& FlatParamMap::Get(Symbol key) const {
  const Value* v = Find(key);
  return v ? *v : kNullValue;
}

bool FlatParamMap::ContainsAll(const FlatParamMap& sub) const {
  // Both sides are sorted by key: a single merge pass suffices.
  const Entry* mine = begin();
  const Entry* mine_end = end();
  for (const Entry& want : sub) {
    while (mine != mine_end && mine->key < want.key) ++mine;
    if (mine == mine_end || !(mine->key == want.key) ||
        !(mine->value == want.value)) {
      return false;
    }
  }
  return true;
}

void FlatParamMap::MergeFrom(const FlatParamMap& overlay) {
  for (const Entry& e : overlay) Set(e.key, e.value);
}

void FlatParamMap::InternStringValues(SymbolTable& symbols) {
  Entry* base = data();
  for (size_t i = 0; i < size_; ++i) {
    if (base[i].value.is_string()) {
      base[i].value = Value(symbols.Intern(base[i].value.AsString()));
    }
  }
}

const Value& FlatParamMap::Get(const SymbolTable& symbols,
                               std::string_view key) const {
  Symbol k = symbols.Find(key);
  if (!k.valid()) return kNullValue;
  return Get(k);
}

const std::string& FlatParamMap::GetString(const SymbolTable& symbols,
                                           std::string_view key) const {
  const Value& v = Get(symbols, key);
  if (v.is_symbol()) return symbols.NameOf(v.AsSymbol());
  return v.AsString();
}

std::string FlatParamMap::ToString(const SymbolTable& symbols) const {
  // Render sorted by key *name* so the output matches ParamMapToString for
  // the same logical content regardless of intern order.
  std::map<std::string_view, const Value*> by_name;
  for (const Entry& e : *this) by_name[symbols.NameOf(e.key)] = &e.value;
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [name, value] : by_name) {
    if (!first) os << ", ";
    first = false;
    os << name << '=';
    if (value->is_symbol()) {
      os << '"' << symbols.NameOf(value->AsSymbol()) << '"';
    } else {
      os << value->ToString();
    }
  }
  os << '}';
  return os.str();
}

FlatParamMap InternParams(SymbolTable& symbols, const ParamMap& params) {
  FlatParamMap out;
  for (const auto& [key, value] : params) {
    if (value.is_string()) {
      out.Set(symbols.Intern(key), Value(symbols.Intern(value.AsString())));
    } else {
      out.Set(symbols.Intern(key), value);
    }
  }
  return out;
}

ParamMap ExternParams(const SymbolTable& symbols, const FlatParamMap& params) {
  ParamMap out;
  for (const auto& e : params) {
    if (e.value.is_symbol()) {
      out[symbols.NameOf(e.key)] = Value(symbols.NameOf(e.value.AsSymbol()));
    } else {
      out[symbols.NameOf(e.key)] = e.value;
    }
  }
  return out;
}

}  // namespace sentinel
