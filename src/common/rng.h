#ifndef SENTINELPP_COMMON_RNG_H_
#define SENTINELPP_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sentinel {

/// \brief Deterministic 64-bit PRNG (xoshiro256**), seeded via SplitMix64.
///
/// Workload generators use this instead of <random> engines so that a seed
/// yields the identical policy/request stream on every platform and standard
/// library. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (std::size_t i = items->size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBounded(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace sentinel

#endif  // SENTINELPP_COMMON_RNG_H_
