#ifndef SENTINELPP_COMMON_SYMBOL_H_
#define SENTINELPP_COMMON_SYMBOL_H_

#include <cstdint>
#include <functional>

namespace sentinel {

/// \brief A dense interned-string id.
///
/// Symbols are handed out by a SymbolTable: the first distinct string interned
/// gets id 0, the next id 1, and so on. They are cheap to copy, hash and
/// compare, which makes them the key type for every hot-path map in the
/// engine (occurrence parameters, the filter fast-path index, RBAC relation
/// lookups). A default-constructed Symbol is invalid and never equal to any
/// interned symbol.
class Symbol {
 public:
  static constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

  constexpr Symbol() : id_(kInvalidId) {}
  constexpr explicit Symbol(uint32_t id) : id_(id) {}

  constexpr uint32_t id() const { return id_; }
  constexpr bool valid() const { return id_ != kInvalidId; }

  friend constexpr bool operator==(Symbol a, Symbol b) {
    return a.id_ == b.id_;
  }
  friend constexpr bool operator!=(Symbol a, Symbol b) {
    return a.id_ != b.id_;
  }
  friend constexpr bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

 private:
  uint32_t id_;
};

}  // namespace sentinel

template <>
struct std::hash<sentinel::Symbol> {
  size_t operator()(sentinel::Symbol s) const noexcept {
    return std::hash<uint32_t>()(s.id());
  }
};

#endif  // SENTINELPP_COMMON_SYMBOL_H_
