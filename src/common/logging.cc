#include "common/logging.h"

#include <iostream>

namespace sentinel {

const char* LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kAlert:
      return "ALERT";
  }
  return "UNKNOWN";
}

Logger::Logger() : sink_(nullptr), min_level_(LogLevel::kWarning) {}

Logger& Logger::Global() {
  static Logger* logger = new Logger();  // Intentionally leaked.
  return *logger;
}

void Logger::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(min_level())) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_) {
    sink_(level, message);
  } else {
    std::cerr << '[' << LogLevelToString(level) << "] " << message << '\n';
  }
}

CapturingLogSink::CapturingLogSink(LogLevel level)
    : prev_min_(Logger::Global().min_level()) {
  Logger::Global().SetMinLevel(level);
  Logger::Global().SetSink([this](LogLevel lvl, const std::string& msg) {
    entries_.push_back({lvl, msg});
  });
}

CapturingLogSink::~CapturingLogSink() {
  Logger::Global().SetSink(nullptr);
  Logger::Global().SetMinLevel(prev_min_);
}

int CapturingLogSink::CountAt(LogLevel level) const {
  int n = 0;
  for (const Entry& e : entries_) {
    if (e.level == level) ++n;
  }
  return n;
}

bool CapturingLogSink::Contains(const std::string& needle) const {
  for (const Entry& e : entries_) {
    if (e.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace sentinel
