#ifndef SENTINELPP_COMMON_STATUS_H_
#define SENTINELPP_COMMON_STATUS_H_

#include <cassert>
#include <ostream>
#include <string>
#include <utility>

namespace sentinel {

/// \brief Outcome codes for API-misuse and internal failures.
///
/// Authorization verdicts (allow/deny) are *not* statuses; they are carried
/// by `Decision` values (see rules/decision.h). `Status` is reserved for
/// calls that cannot be answered at all: unknown identifiers, duplicate
/// creations, malformed policy text, broken invariants.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kConstraintViolation = 5,
  kParseError = 6,
  kInternal = 7,
  /// The call was refused or abandoned for capacity reasons (mailbox full,
  /// deadline expired in queue) — retryable, unlike a policy denial.
  kResourceExhausted = 8,
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Arrow/RocksDB-style status object: cheap when OK, carries a code
/// and message otherwise. No exceptions cross the library boundary.
class Status {
 public:
  /// Constructs an OK status.
  Status() : state_(nullptr) {}
  ~Status() { delete state_; }

  Status(const Status& other)
      : state_(other.state_ ? new State(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      delete state_;
      state_ = other.state_ ? new State(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&& other) noexcept : state_(other.state_) {
    other.state_ = nullptr;
  }
  Status& operator=(Status&& other) noexcept {
    if (this != &other) {
      delete state_;
      state_ = other.state_;
      other.state_ = nullptr;
    }
    return *this;
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  /// Message for non-OK statuses; empty string when OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const {
    return code() == StatusCode::kAlreadyExists;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsConstraintViolation() const {
    return code() == StatusCode::kConstraintViolation;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  Status(StatusCode code, std::string msg)
      : state_(new State{code, std::move(msg)}) {}

  State* state_;  // nullptr means OK.
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Holds either a value of type T or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return value;` in functions returning Result<T>.
  Result(T value) : status_(), value_(std::move(value)), has_value_(true) {}
  /// Implicit from error status; must not be OK.
  Result(Status status) : status_(std::move(status)), has_value_(false) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(has_value_);
    return value_;
  }
  T& value() & {
    assert(has_value_);
    return value_;
  }
  T&& value() && {
    assert(has_value_);
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value or `fallback` when this result is an error.
  T value_or(T fallback) const {
    return has_value_ ? value_ : std::move(fallback);
  }

 private:
  Status status_;
  T value_{};
  bool has_value_;
};

}  // namespace sentinel

/// Propagates a non-OK Status to the caller.
#define SENTINEL_RETURN_IF_ERROR(expr)             \
  do {                                             \
    ::sentinel::Status _st = (expr);               \
    if (!_st.ok()) return _st;                     \
  } while (0)

/// Evaluates a Result<T> expression and binds its value, or propagates.
#define SENTINEL_ASSIGN_OR_RETURN(lhs, expr)       \
  auto lhs##_result = (expr);                      \
  if (!lhs##_result.ok()) return lhs##_result.status(); \
  auto& lhs = lhs##_result.value()

#endif  // SENTINELPP_COMMON_STATUS_H_
