#include "common/clock.h"

#include <chrono>

namespace sentinel {

Time SystemClock::Now() const {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::microseconds>(now).count();
}

Time WallTimeMicros() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::microseconds>(now).count();
}

}  // namespace sentinel
