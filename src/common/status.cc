#include "common/status.h"

namespace sentinel {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace sentinel
