#include "common/calendar.h"

#include <cstdio>

namespace sentinel {

namespace {

// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm,
// public domain). Valid far beyond any plausible policy horizon.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int yoe = static_cast<int>(y - era * 400);              // [0, 399]
  const int doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const int doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;        // [0, 146096]
  return era * 146097 + doe - 719468;
}

// Inverse of DaysFromCivil.
void CivilFromDays(int64_t z, int* y, int* m, int* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int doe = static_cast<int>(z - era * 146097);           // [0, 146096]
  const int yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;    // [0, 399]
  const int64_t yr = static_cast<int64_t>(yoe) + era * 400;
  const int doy = doe - (365 * yoe + yoe / 4 - yoe / 100);      // [0, 365]
  const int mp = (5 * doy + 2) / 153;                           // [0, 11]
  *d = doy - (153 * mp + 2) / 5 + 1;                            // [1, 31]
  *m = mp + (mp < 10 ? 3 : -9);                                 // [1, 12]
  *y = static_cast<int>(yr + (*m <= 2));
}

// Floor division/modulo helpers for possibly-negative times.
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t FloorMod(int64_t a, int64_t b) { return a - FloorDiv(a, b) * b; }

}  // namespace

CivilTime ToCivil(Time t) {
  const int64_t days = FloorDiv(t, kDay);
  int64_t rem = FloorMod(t, kDay);
  CivilTime c;
  CivilFromDays(days, &c.year, &c.month, &c.day);
  c.hour = static_cast<int>(rem / kHour);
  rem %= kHour;
  c.minute = static_cast<int>(rem / kMinute);
  rem %= kMinute;
  c.second = static_cast<int>(rem / kSecond);
  c.microsecond = rem % kSecond;
  return c;
}

Time FromCivil(const CivilTime& c) {
  // Normalize by carrying sub-day fields into the day count; the day/month
  // normalization is handled by DaysFromCivil accepting out-of-range days
  // only within the same month, so carry months explicitly first.
  int year = c.year;
  int month = c.month;
  // Carry months into years.
  year += (month - 1) / 12;
  month = (month - 1) % 12 + 1;
  if (month < 1) {
    month += 12;
    --year;
  }
  int64_t micros = c.microsecond + c.second * kSecond + c.minute * kMinute +
                   c.hour * kHour;
  int64_t extra_days = FloorDiv(micros, kDay);
  micros = FloorMod(micros, kDay);
  const int64_t days = DaysFromCivil(year, month, 1) + (c.day - 1) + extra_days;
  return days * kDay + micros;
}

int DayOfWeek(Time t) {
  const int64_t days = FloorDiv(t, kDay);
  // 1970-01-01 was a Thursday (weekday 4 with Sunday=0).
  return static_cast<int>(FloorMod(days + 4, 7));
}

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

Time MakeTime(int year, int month, int day, int hour, int minute, int second,
              int64_t microsecond) {
  CivilTime c;
  c.year = year;
  c.month = month;
  c.day = day;
  c.hour = hour;
  c.minute = minute;
  c.second = second;
  c.microsecond = microsecond;
  return FromCivil(c);
}

std::string FormatTime(Time t) {
  const CivilTime c = ToCivil(t);
  char buf[64];
  if (c.microsecond == 0) {
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", c.year,
                  c.month, c.day, c.hour, c.minute, c.second);
  } else {
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%06lld",
                  c.year, c.month, c.day, c.hour, c.minute, c.second,
                  static_cast<long long>(c.microsecond));
  }
  return buf;
}

}  // namespace sentinel
