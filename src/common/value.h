#ifndef SENTINELPP_COMMON_VALUE_H_
#define SENTINELPP_COMMON_VALUE_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>

#include "common/symbol.h"

namespace sentinel {

/// Microseconds since the Unix epoch (UTC, no leap seconds). All event
/// timestamps, durations and calendar arithmetic use this resolution.
using Time = int64_t;

/// A time span in microseconds.
using Duration = int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;
constexpr Duration kDay = 24 * kHour;

/// \brief A dynamically-typed event/rule parameter value.
///
/// Events carry parameter lists (`user`, `session`, `role`, ...); rules read
/// them when evaluating conditions and executing actions. The monostate
/// alternative represents "absent".
class Value {
 public:
  Value() : v_() {}
  explicit Value(bool b) : v_(b) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(int i) : v_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}
  explicit Value(Symbol s) : v_(s) {}

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_symbol() const { return std::holds_alternative<Symbol>(v_); }

  /// Typed accessors; return the fallback when the alternative differs.
  bool AsBool(bool fallback = false) const;
  int64_t AsInt(int64_t fallback = 0) const;
  double AsDouble(double fallback = 0.0) const;
  const std::string& AsString() const;  // empty string fallback
  Symbol AsSymbol() const;              // invalid symbol fallback

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.v_ == b.v_;
  }

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string, Symbol> v_;
};

/// Ordered name -> value parameter map attached to event occurrences.
using ParamMap = std::map<std::string, Value>;

/// Renders a ParamMap as `{a=1, b="x"}` for logs and debugging.
std::string ParamMapToString(const ParamMap& params);

}  // namespace sentinel

#endif  // SENTINELPP_COMMON_VALUE_H_
