#include "common/value.h"

#include <sstream>

namespace sentinel {

bool Value::AsBool(bool fallback) const {
  if (const bool* b = std::get_if<bool>(&v_)) return *b;
  if (const int64_t* i = std::get_if<int64_t>(&v_)) return *i != 0;
  return fallback;
}

int64_t Value::AsInt(int64_t fallback) const {
  if (const int64_t* i = std::get_if<int64_t>(&v_)) return *i;
  if (const bool* b = std::get_if<bool>(&v_)) return *b ? 1 : 0;
  if (const double* d = std::get_if<double>(&v_)) {
    return static_cast<int64_t>(*d);
  }
  return fallback;
}

double Value::AsDouble(double fallback) const {
  if (const double* d = std::get_if<double>(&v_)) return *d;
  if (const int64_t* i = std::get_if<int64_t>(&v_)) {
    return static_cast<double>(*i);
  }
  return fallback;
}

const std::string& Value::AsString() const {
  static const std::string kEmpty;
  if (const std::string* s = std::get_if<std::string>(&v_)) return *s;
  return kEmpty;
}

Symbol Value::AsSymbol() const {
  if (const Symbol* s = std::get_if<Symbol>(&v_)) return *s;
  return Symbol();
}

std::string Value::ToString() const {
  std::ostringstream os;
  if (is_null()) {
    os << "null";
  } else if (is_bool()) {
    os << (AsBool() ? "true" : "false");
  } else if (is_int()) {
    os << AsInt();
  } else if (is_double()) {
    os << AsDouble();
  } else if (is_symbol()) {
    os << '@' << AsSymbol().id();
  } else {
    os << '"' << AsString() << '"';
  }
  return os.str();
}

std::string ParamMapToString(const ParamMap& params) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [name, value] : params) {
    if (!first) os << ", ";
    first = false;
    os << name << '=' << value.ToString();
  }
  os << '}';
  return os.str();
}

}  // namespace sentinel
