#ifndef SENTINELPP_RULES_DECISION_H_
#define SENTINELPP_RULES_DECISION_H_

#include <string>

namespace sentinel {

/// \brief The authorization verdict produced by OWTE rules for one request.
///
/// The engine allocates a Decision per public operation, raises the
/// operation's event, and the generated rules' Then/Else actions write the
/// verdict. Cascaded rules (e.g. a cardinality rule firing after an
/// activation rule) may overwrite an earlier Allow with a Deny — the last
/// writer wins, matching the paper's nested-rule narrative for Rule 4.
struct Decision {
  bool decided = false;
  bool allowed = false;
  /// Name of the rule that produced the final verdict.
  std::string rule;
  /// The paper-style error text for denials ("Access Denied Cannot
  /// Activate", "Permission Denied", ...). Empty for allows.
  std::string reason;
  /// Explanation: the label of the WHEN condition whose failure routed the
  /// deciding rule into its ELSE branch (e.g. "checkAssignedPC(user) IS
  /// TRUE"). Empty for allows and for default denials. Diagnostic only —
  /// not part of the authorization verdict.
  std::string failed_condition;

  void Allow(const std::string& by_rule) {
    decided = true;
    allowed = true;
    rule = by_rule;
    reason.clear();
  }

  void Deny(const std::string& by_rule, const std::string& why) {
    decided = true;
    allowed = false;
    rule = by_rule;
    reason = why;
    failed_condition.clear();
  }
};

}  // namespace sentinel

#endif  // SENTINELPP_RULES_DECISION_H_
