#include "rules/rule.h"

#include <sstream>

#include "event/event_detector.h"

namespace sentinel {

const char* RuleClassToString(RuleClass cls) {
  switch (cls) {
    case RuleClass::kAdministrative:
      return "administrative";
    case RuleClass::kActivityControl:
      return "activity-control";
    case RuleClass::kActiveSecurity:
      return "active-security";
  }
  return "unknown";
}

const char* RuleGranularityToString(RuleGranularity granularity) {
  switch (granularity) {
    case RuleGranularity::kSpecialized:
      return "specialized";
    case RuleGranularity::kLocalized:
      return "localized";
    case RuleGranularity::kGlobalized:
      return "globalized";
  }
  return "unknown";
}

namespace {
const std::string kEmptyParam;
}  // namespace

const std::string& RuleContext::ParamString(Symbol key) const {
  if (occurrence == nullptr || detector == nullptr) return kEmptyParam;
  const Value* v = occurrence->params.Find(key);
  if (v == nullptr) return kEmptyParam;
  // Name-valued params are interned at the raise boundary; resolve through
  // the detector's table. Free-text string values pass through unchanged.
  if (v->is_symbol()) return detector->symbols().NameOf(v->AsSymbol());
  return v->AsString();
}

Symbol RuleContext::ParamSym(Symbol key) const {
  if (occurrence == nullptr) return Symbol();
  const Value* v = occurrence->params.Find(key);
  return v == nullptr ? Symbol() : v->AsSymbol();
}

int64_t RuleContext::ParamInt(Symbol key) const {
  if (occurrence == nullptr) return 0;
  const Value* v = occurrence->params.Find(key);
  return v == nullptr ? 0 : v->AsInt();
}

bool RuleContext::ParamBool(Symbol key) const {
  if (occurrence == nullptr) return false;
  const Value* v = occurrence->params.Find(key);
  return v == nullptr ? false : v->AsBool();
}

bool RuleContext::HasParam(Symbol key) const {
  return occurrence != nullptr && occurrence->params.Contains(key);
}

const std::string& RuleContext::ParamString(const std::string& key) const {
  if (detector == nullptr) return kEmptyParam;
  return ParamString(detector->symbols().Find(key));
}

int64_t RuleContext::ParamInt(const std::string& key) const {
  if (detector == nullptr) return 0;
  return ParamInt(detector->symbols().Find(key));
}

bool RuleContext::ParamBool(const std::string& key) const {
  if (detector == nullptr) return false;
  return ParamBool(detector->symbols().Find(key));
}

bool RuleContext::HasParam(const std::string& key) const {
  return detector != nullptr && HasParam(detector->symbols().Find(key));
}

Rule::Rule(std::string name, EventId event)
    : Rule(std::move(name), event, Options()) {}

Rule::Rule(std::string name, EventId event, Options options)
    : name_(std::move(name)), event_(event), options_(options) {}

Rule& Rule::When(std::string label, Condition condition) {
  conditions_.push_back({std::move(label), std::move(condition)});
  return *this;
}

Rule& Rule::Then(std::string label, Action action) {
  then_actions_.push_back({std::move(label), std::move(action)});
  return *this;
}

Rule& Rule::Else(std::string label, Action action) {
  else_actions_.push_back({std::move(label), std::move(action)});
  return *this;
}

bool Rule::Fire(RuleContext& ctx) {
  ++fired_count_;
  bool all_true = true;
  const std::string* failed = nullptr;
  for (const NamedCondition& cond : conditions_) {
    if (!cond.fn(ctx)) {
      all_true = false;
      failed = &cond.label;
      break;  // Short-circuit conjunction, left to right.
    }
  }
  if (all_true) {
    ++condition_true_count_;
    for (const NamedAction& action : then_actions_) action.fn(ctx);
  } else {
    ctx.failed_condition = failed;
    for (const NamedAction& action : else_actions_) action.fn(ctx);
    ctx.failed_condition = nullptr;
  }
  return all_true;
}

std::string Rule::Describe(const std::string& event_name) const {
  std::ostringstream os;
  os << "RULE [ " << name_ << "  (" << RuleClassToString(options_.cls) << ", "
     << RuleGranularityToString(options_.granularity)
     << ", priority=" << options_.priority
     << (options_.enabled ? "" : ", DISABLED") << ")\n";
  os << "  ON    " << event_name << '\n';
  if (conditions_.empty()) {
    os << "  WHEN  TRUE\n";
  } else {
    for (size_t i = 0; i < conditions_.size(); ++i) {
      os << (i == 0 ? "  WHEN  " : "     && ") << conditions_[i].label << '\n';
    }
  }
  for (size_t i = 0; i < then_actions_.size(); ++i) {
    os << (i == 0 ? "  THEN  " : "        ") << '<' << then_actions_[i].label
       << ">\n";
  }
  for (size_t i = 0; i < else_actions_.size(); ++i) {
    os << (i == 0 ? "  ELSE  " : "        ") << '<' << else_actions_[i].label
       << ">\n";
  }
  os << "]";
  return os.str();
}

}  // namespace sentinel
