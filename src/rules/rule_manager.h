#ifndef SENTINELPP_RULES_RULE_MANAGER_H_
#define SENTINELPP_RULES_RULE_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "event/event_detector.h"
#include "rules/rule.h"

namespace sentinel {

/// \brief The rule pool and firing machinery.
///
/// Rules subscribe (via the manager) to their ON events. When an event
/// occurrence arrives, every enabled rule on that event fires in
/// deterministic order: priority descending, then insertion order. Actions
/// may raise further events — cascaded rules — which the detector queues
/// and delivers before the outermost Raise returns. A cascade budget bounds
/// runaway rule loops (mutually-triggering rules): once the per-request
/// budget is exhausted, further firings are dropped and counted.
///
/// The manager also carries the decision slot for the request in flight
/// (installed by the engine around each public operation) and an opaque
/// engine backpointer handed to every RuleContext.
class RuleManager {
 public:
  /// `detector` must outlive the manager; not owned. `metrics`/`tracer`
  /// (both optional, not owned) attach the telemetry layer: the manager
  /// registers firing counters on `metrics` and records one rule step per
  /// firing on `tracer` while a span is active.
  explicit RuleManager(EventDetector* detector,
                       telemetry::Registry* metrics = nullptr,
                       telemetry::TraceCollector* tracer = nullptr);
  ~RuleManager();

  RuleManager(const RuleManager&) = delete;
  RuleManager& operator=(const RuleManager&) = delete;

  // ------------------------------------------------------------ Pool API

  /// Adds a rule (ownership transferred). Fails on duplicate rule name or
  /// invalid event id. Returns a stable pointer to the stored rule.
  Result<Rule*> AddRule(Rule rule);

  Status RemoveRule(const std::string& name);

  /// Removes every rule matching `pred`; returns how many were removed.
  /// Used by incremental regeneration (drop all rules of a changed role).
  int RemoveIf(const std::function<bool(const Rule&)>& pred);

  Result<Rule*> Find(const std::string& name);
  Result<const Rule*> Find(const std::string& name) const;

  Status SetEnabled(const std::string& name, bool enabled);

  /// Disables every rule matching `pred` (active security: "some critical
  /// authorization rules are disabled"); returns how many were disabled.
  int DisableIf(const std::function<bool(const Rule&)>& pred);

  // --------------------------------------------------- Request plumbing

  /// Installs the decision slot for the request in flight. The engine
  /// brackets each public operation with Push/Pop; nesting is allowed.
  void PushDecision(Decision* decision) { decisions_.push_back(decision); }
  void PopDecision() { decisions_.pop_back(); }

  /// Opaque backpointer handed to RuleContext::engine.
  void set_engine(void* engine) { engine_ = engine; }

  /// Cascade budget per request (default 1024 firings).
  void set_cascade_limit(uint64_t limit) { cascade_limit_ = limit; }
  void ResetCascadeBudget() { cascade_used_ = 0; }
  uint64_t dropped_firings() const { return dropped_firings_; }
  /// Firings consumed since the last budget reset — the length of the
  /// cascade currently (or just) drained. The engine samples this into a
  /// histogram at each quiescent point before resetting the budget.
  uint64_t cascade_used() const { return cascade_used_; }

  // ------------------------------------------------------ Introspection

  size_t rule_count() const { return rules_.size(); }
  uint64_t total_fired() const { return total_fired_; }

  /// Monotonic counter bumped by every pool mutation that can change what
  /// a future event dispatch decides: add, remove, enable/disable. Folded
  /// into the decision cache's validity stamp, so disabling CA rules (the
  /// active-security response) invalidates memoized verdicts without any
  /// explicit cache traffic.
  uint64_t pool_generation() const { return pool_generation_; }

  /// Explicit generation bump for mutations the manager cannot see —
  /// a pauseless policy swap flips the engine's policy pointer and
  /// regenerated-rule set as one commit, then bumps the pool here so every
  /// verdict stamped under the old generation dies at its next lookup.
  void BumpPoolGeneration() { ++pool_generation_; }

  /// True iff at least one rule (enabled or not) is attached to `event` —
  /// e.g. whether serving a cached denial would starve rules listening on
  /// rbac.accessDenied.
  bool HasRulesFor(EventId event) const {
    return by_event_.count(event) > 0;
  }

  /// Rules attached to `event` in firing order; nullptr when none. Valid
  /// until the next pool mutation.
  const std::vector<Rule*>* RulesFor(EventId event) const {
    auto it = by_event_.find(event);
    return it == by_event_.end() ? nullptr : &it->second;
  }

  /// All rules, insertion-ordered. Pointers valid until pool mutation.
  std::vector<const Rule*> rules() const;

  /// Full OWTE listing of the pool (the Figure-1 bench prints this).
  std::string DescribePool() const;

  /// Counts per classification, e.g. for pool statistics.
  int CountByClass(RuleClass cls) const;

 private:
  struct Entry {
    std::unique_ptr<Rule> rule;
    uint64_t insertion_seq;
  };

  void OnOccurrence(EventId event, const Occurrence& occ);
  void EnsureDispatcher(EventId event);
  void SortEventRules(EventId event);
  void DetachFromEvent(EventId event, Rule* rule);

  EventDetector* detector_;  // Not owned.
  void* engine_ = nullptr;
  telemetry::TraceCollector* tracer_ = nullptr;     // Not owned; may be null.
  telemetry::Counter* firings_counter_ = nullptr;   // Null iff no registry.
  telemetry::Counter* else_counter_ = nullptr;
  telemetry::Counter* dropped_counter_ = nullptr;

  std::unordered_map<std::string, Entry> rules_;
  std::unordered_map<std::string, uint64_t> insertion_order_;
  /// Per-event rule lists, kept sorted (priority desc, insertion asc).
  std::unordered_map<EventId, std::vector<Rule*>> by_event_;
  std::unordered_map<EventId, SubscriptionId> dispatchers_;

  std::vector<Decision*> decisions_;
  uint64_t next_insertion_seq_ = 1;
  uint64_t pool_generation_ = 0;
  uint64_t total_fired_ = 0;
  uint64_t cascade_limit_ = 1024;
  uint64_t cascade_used_ = 0;
  uint64_t dropped_firings_ = 0;
};

/// \brief RAII bracket installing a Decision on the manager for the scope
/// of one engine operation (and resetting the cascade budget).
class ScopedDecision {
 public:
  ScopedDecision(RuleManager* manager, Decision* decision)
      : manager_(manager) {
    manager_->ResetCascadeBudget();
    manager_->PushDecision(decision);
  }
  ~ScopedDecision() { manager_->PopDecision(); }

  ScopedDecision(const ScopedDecision&) = delete;
  ScopedDecision& operator=(const ScopedDecision&) = delete;

 private:
  RuleManager* manager_;
};

}  // namespace sentinel

#endif  // SENTINELPP_RULES_RULE_MANAGER_H_
