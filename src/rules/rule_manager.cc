#include "rules/rule_manager.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace sentinel {

RuleManager::RuleManager(EventDetector* detector,
                         telemetry::Registry* metrics,
                         telemetry::TraceCollector* tracer)
    : detector_(detector), tracer_(tracer) {
  if (metrics != nullptr) {
    firings_counter_ =
        metrics->AddCounter("rule_firings_total", "rule firings, all branches");
    else_counter_ = metrics->AddCounter(
        "rule_else_total", "firings whose WHEN failed (ELSE branch ran)");
    dropped_counter_ = metrics->AddCounter(
        "dropped_firings_total", "firings dropped by the cascade budget");
  }
}

RuleManager::~RuleManager() {
  for (const auto& [event, sub] : dispatchers_) {
    detector_->Unsubscribe(event, sub);
  }
}

Result<Rule*> RuleManager::AddRule(Rule rule) {
  if (rules_.count(rule.name()) > 0) {
    return Status::AlreadyExists("rule already exists: " + rule.name());
  }
  const EventId event = rule.event();
  if (event < 0 || event >= detector_->registry().size()) {
    return Status::InvalidArgument("rule " + rule.name() +
                                   " references unknown event");
  }
  const uint64_t seq = next_insertion_seq_++;
  auto owned = std::make_unique<Rule>(std::move(rule));
  Rule* ptr = owned.get();
  insertion_order_[ptr->name()] = seq;
  rules_.emplace(ptr->name(), Entry{std::move(owned), seq});
  by_event_[event].push_back(ptr);
  SortEventRules(event);
  EnsureDispatcher(event);
  ++pool_generation_;
  return ptr;
}

void RuleManager::SortEventRules(EventId event) {
  auto& list = by_event_[event];
  std::stable_sort(list.begin(), list.end(), [this](Rule* a, Rule* b) {
    if (a->priority() != b->priority()) return a->priority() > b->priority();
    return insertion_order_[a->name()] < insertion_order_[b->name()];
  });
}

void RuleManager::EnsureDispatcher(EventId event) {
  if (dispatchers_.count(event) > 0) return;
  const SubscriptionId sub = detector_->Subscribe(
      event,
      [this, event](const Occurrence& occ) { OnOccurrence(event, occ); });
  dispatchers_.emplace(event, sub);
}

void RuleManager::DetachFromEvent(EventId event, Rule* rule) {
  auto it = by_event_.find(event);
  if (it == by_event_.end()) return;
  auto& list = it->second;
  list.erase(std::remove(list.begin(), list.end(), rule), list.end());
  if (list.empty()) {
    auto disp = dispatchers_.find(event);
    if (disp != dispatchers_.end()) {
      detector_->Unsubscribe(event, disp->second);
      dispatchers_.erase(disp);
    }
    by_event_.erase(it);
  }
}

Status RuleManager::RemoveRule(const std::string& name) {
  auto it = rules_.find(name);
  if (it == rules_.end()) {
    return Status::NotFound("no such rule: " + name);
  }
  DetachFromEvent(it->second.rule->event(), it->second.rule.get());
  insertion_order_.erase(name);
  rules_.erase(it);
  ++pool_generation_;
  return Status::OK();
}

int RuleManager::RemoveIf(const std::function<bool(const Rule&)>& pred) {
  std::vector<std::string> doomed;
  for (const auto& [name, entry] : rules_) {
    if (pred(*entry.rule)) doomed.push_back(name);
  }
  for (const std::string& name : doomed) {
    (void)RemoveRule(name);
  }
  return static_cast<int>(doomed.size());
}

Result<Rule*> RuleManager::Find(const std::string& name) {
  auto it = rules_.find(name);
  if (it == rules_.end()) return Status::NotFound("no such rule: " + name);
  return it->second.rule.get();
}

Result<const Rule*> RuleManager::Find(const std::string& name) const {
  auto it = rules_.find(name);
  if (it == rules_.end()) return Status::NotFound("no such rule: " + name);
  return static_cast<const Rule*>(it->second.rule.get());
}

Status RuleManager::SetEnabled(const std::string& name, bool enabled) {
  SENTINEL_ASSIGN_OR_RETURN(rule, Find(name));
  if (rule->enabled() != enabled) ++pool_generation_;
  rule->set_enabled(enabled);
  return Status::OK();
}

int RuleManager::DisableIf(const std::function<bool(const Rule&)>& pred) {
  int disabled = 0;
  for (auto& [name, entry] : rules_) {
    if (entry.rule->enabled() && pred(*entry.rule)) {
      entry.rule->set_enabled(false);
      ++disabled;
    }
  }
  if (disabled > 0) ++pool_generation_;
  return disabled;
}

void RuleManager::OnOccurrence(EventId event, const Occurrence& occ) {
  // Copy: rule actions may mutate the pool (regeneration, disable).
  auto it = by_event_.find(event);
  if (it == by_event_.end()) return;
  const std::vector<Rule*> snapshot = it->second;
  for (Rule* rule : snapshot) {
    // A rule removed mid-dispatch must not fire: re-validate.
    if (rules_.count(rule->name()) == 0) continue;
    if (!rule->enabled()) continue;
    if (cascade_used_ >= cascade_limit_) {
      ++dropped_firings_;
      if (dropped_counter_) dropped_counter_->Inc();
      SENTINEL_LOG(kError) << "cascade budget exhausted; dropping firing of "
                           << rule->name();
      continue;
    }
    ++cascade_used_;
    ++total_fired_;
    if (firings_counter_) firings_counter_->Inc();
    RuleContext ctx;
    ctx.occurrence = &occ;
    ctx.detector = detector_;
    ctx.decision = decisions_.empty() ? nullptr : decisions_.back();
    ctx.engine = engine_;
    const bool held = rule->Fire(ctx);
    if (!held && else_counter_) else_counter_->Inc();
    if (tracer_ != nullptr && tracer_->active()) {
      tracer_->AddRuleStep(rule->name(), rule->priority(), !held,
                           RuleClassToString(rule->rule_class()),
                           RuleGranularityToString(rule->granularity()));
    }
  }
}

std::vector<const Rule*> RuleManager::rules() const {
  std::vector<const Rule*> out;
  out.reserve(rules_.size());
  for (const auto& [name, entry] : rules_) {
    out.push_back(entry.rule.get());
  }
  std::sort(out.begin(), out.end(), [this](const Rule* a, const Rule* b) {
    return insertion_order_.at(a->name()) < insertion_order_.at(b->name());
  });
  return out;
}

std::string RuleManager::DescribePool() const {
  std::ostringstream os;
  for (const Rule* rule : rules()) {
    os << rule->Describe(detector_->name(rule->event())) << "\n\n";
  }
  return os.str();
}

int RuleManager::CountByClass(RuleClass cls) const {
  int n = 0;
  for (const auto& [name, entry] : rules_) {
    if (entry.rule->rule_class() == cls) ++n;
  }
  return n;
}

}  // namespace sentinel
