#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <unordered_map>

namespace sentinel {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::string(strerror(errno)));
}

void SetIoTimeout(int fd, int64_t timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

Result<std::unique_ptr<WireClient>> WireClient::Connect(const std::string& host,
                                                        uint16_t port,
                                                        int64_t timeout_ms) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  SetIoTimeout(fd, timeout_ms);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Errno("connect");
    close(fd);
    return status;
  }
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<WireClient>(new WireClient(fd, timeout_ms));
}

WireClient::WireClient(int fd, int64_t timeout_ms)
    : fd_(fd), timeout_ms_(timeout_ms) {}

WireClient::~WireClient() { Close(); }

void WireClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status WireClient::SendRaw(std::string_view bytes, size_t chunk) {
  if (fd_ < 0) return Status::FailedPrecondition("client closed");
  size_t at = 0;
  while (at < bytes.size()) {
    const size_t want = chunk == 0 ? bytes.size() - at
                                   : std::min(chunk, bytes.size() - at);
    const ssize_t wrote = write(fd_, bytes.data() + at, want);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    at += static_cast<size_t>(wrote);
  }
  return Status::OK();
}

Status WireClient::ReadFrame(wire::FrameView* frame) {
  wire::ProtocolError error;
  for (;;) {
    switch (decoder_.Poll(frame, &error)) {
      case FrameDecoder::Next::kFrame:
        return Status::OK();
      case FrameDecoder::Next::kError:
        return Status::Internal("framing error from server: " +
                                std::string(wire::WireErrorToString(
                                    error.code)) +
                                (error.message.empty() ? ""
                                                       : ": " + error.message));
      case FrameDecoder::Next::kNeedMore:
        break;
    }
    char chunk[16 * 1024];
    const ssize_t got = read(fd_, chunk, sizeof(chunk));
    if (got > 0) {
      decoder_.Feed(chunk, static_cast<size_t>(got));
      continue;
    }
    if (got == 0) {
      eof_ = true;
      return Status::FailedPrecondition("server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::ResourceExhausted("read timeout");
    }
    return Errno("read");
  }
}

Result<wire::FrameView> WireClient::ReadRawFrame() {
  wire::FrameView frame;
  SENTINEL_RETURN_IF_ERROR(ReadFrame(&frame));
  return frame;
}

Status WireClient::ErrorStatus(const wire::ErrorMsg& error) {
  const std::string text =
      std::string("wire error ") + wire::WireErrorToString(error.code) +
      (error.message.empty() ? "" : ": " + error.message);
  switch (error.code) {
    case wire::WireError::kInvalidDeadline:
      return Status::InvalidArgument(text);
    case wire::WireError::kShuttingDown:
      return Status::FailedPrecondition(text);
    default:
      return Status::Internal(text);
  }
}

Result<AccessDecision> WireClient::Check(const AccessRequest& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client closed");
  const uint64_t id = next_request_id_++;
  send_buffer_.clear();
  SENTINEL_RETURN_IF_ERROR(
      wire::EncodeCheckRequest(id, request, &send_buffer_));
  SENTINEL_RETURN_IF_ERROR(SendRaw(send_buffer_));
  for (;;) {
    wire::FrameView frame;
    SENTINEL_RETURN_IF_ERROR(ReadFrame(&frame));
    wire::ProtocolError perror;
    if (frame.type == wire::MsgType::kDecision) {
      wire::DecisionMsg msg;
      if (!wire::DecodeDecision(frame, &msg, &perror)) {
        return Status::Internal("malformed decision: " + perror.message);
      }
      if (msg.request_id != id) continue;  // Stale (shouldn't happen).
      return msg.decision;
    }
    if (frame.type == wire::MsgType::kError) {
      wire::ErrorMsg error;
      if (!wire::DecodeError(frame, &error, &perror)) {
        return Status::Internal("malformed error frame: " + perror.message);
      }
      ++protocol_errors_;
      return ErrorStatus(error);
    }
    // Pongs and future frame types are skipped.
  }
}

Result<std::vector<AccessDecision>> WireClient::CheckBatch(
    std::span<const AccessRequest> requests) {
  if (fd_ < 0) return Status::FailedPrecondition("client closed");
  std::vector<AccessDecision> decisions(requests.size());
  if (requests.empty()) return decisions;
  // Pipeline: every request on the wire before the first read. The
  // server folds whatever arrives in one reactor sweep into one
  // CheckAccessBatch call.
  const uint64_t first_id = next_request_id_;
  send_buffer_.clear();
  for (const AccessRequest& request : requests) {
    SENTINEL_RETURN_IF_ERROR(
        wire::EncodeCheckRequest(next_request_id_++, request, &send_buffer_));
  }
  SENTINEL_RETURN_IF_ERROR(SendRaw(send_buffer_));
  size_t received = 0;
  while (received < requests.size()) {
    wire::FrameView frame;
    SENTINEL_RETURN_IF_ERROR(ReadFrame(&frame));
    wire::ProtocolError perror;
    if (frame.type == wire::MsgType::kDecision) {
      wire::DecisionMsg msg;
      if (!wire::DecodeDecision(frame, &msg, &perror)) {
        return Status::Internal("malformed decision: " + perror.message);
      }
      const uint64_t index = msg.request_id - first_id;
      if (index >= requests.size()) continue;
      decisions[index] = std::move(msg.decision);
      ++received;
      continue;
    }
    if (frame.type == wire::MsgType::kError) {
      wire::ErrorMsg error;
      if (!wire::DecodeError(frame, &error, &perror)) {
        return Status::Internal("malformed error frame: " + perror.message);
      }
      ++protocol_errors_;
      return ErrorStatus(error);
    }
  }
  return decisions;
}

Status WireClient::Ping() {
  if (fd_ < 0) return Status::FailedPrecondition("client closed");
  const uint64_t id = next_request_id_++;
  send_buffer_.clear();
  wire::EncodePing(id, &send_buffer_);
  SENTINEL_RETURN_IF_ERROR(SendRaw(send_buffer_));
  for (;;) {
    wire::FrameView frame;
    SENTINEL_RETURN_IF_ERROR(ReadFrame(&frame));
    if (frame.type == wire::MsgType::kPong && frame.request_id == id) {
      return Status::OK();
    }
  }
}

}  // namespace net
}  // namespace sentinel
