/// \file
/// \brief Hashed timer wheel for connection deadlines (surgebot timer.c
/// idiom, adapted to the reactor's monotonic-millisecond clock).
///
/// The reactor schedules one idle deadline per connection and advances
/// the wheel from its loop. Cancellation is *lazy*: the wheel never
/// removes an entry — when a slot fires, the owner validates the entry
/// against the connection's live deadline and simply re-arms if activity
/// has pushed it into the future. That keeps Schedule/Advance O(1)
/// amortized with no per-entry bookkeeping shared between wheel and
/// owner beyond the key.

#ifndef SENTINELPP_NET_TIMER_WHEEL_H_
#define SENTINELPP_NET_TIMER_WHEEL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace sentinel {
namespace net {

class TimerWheel {
 public:
  struct Entry {
    uint64_t key = 0;         ///< owner-defined (the reactor uses conn ids)
    int64_t deadline_ms = 0;  ///< absolute, owner's clock
  };

  /// `tick_ms` is the firing granularity; `slots` the wheel circumference
  /// (entries farther than tick_ms*slots in the future simply lap).
  explicit TimerWheel(int64_t tick_ms = 100, size_t slots = 256)
      : tick_ms_(tick_ms > 0 ? tick_ms : 1), slots_(slots ? slots : 1) {
    wheel_.resize(slots_);
  }

  void Schedule(uint64_t key, int64_t deadline_ms) {
    wheel_[SlotOf(deadline_ms)].push_back(Entry{key, deadline_ms});
    ++size_;
  }

  /// Fires every entry due at `now_ms` into `expired` (append). Entries in
  /// due slots that have lapped (deadline still in the future) are
  /// re-queued, not fired.
  void Advance(int64_t now_ms, std::vector<Entry>* expired) {
    if (size_ == 0) {
      last_ms_ = now_ms;
      return;
    }
    // Sweep every slot the clock passed since the last advance (bounded by
    // one full revolution).
    const int64_t from_tick = last_ms_ / tick_ms_;
    const int64_t to_tick = now_ms / tick_ms_;
    const int64_t span =
        std::min<int64_t>(to_tick - from_tick, static_cast<int64_t>(slots_));
    for (int64_t t = 0; t <= span; ++t) {
      auto& slot = wheel_[static_cast<size_t>((from_tick + t) %
                                              static_cast<int64_t>(slots_))];
      size_t kept = 0;
      for (size_t i = 0; i < slot.size(); ++i) {
        if (slot[i].deadline_ms <= now_ms) {
          expired->push_back(slot[i]);
          --size_;
        } else {
          slot[kept++] = slot[i];
        }
      }
      slot.resize(kept);
    }
    last_ms_ = now_ms;
  }

  size_t size() const { return size_; }
  int64_t tick_ms() const { return tick_ms_; }

 private:
  size_t SlotOf(int64_t deadline_ms) const {
    return static_cast<size_t>((deadline_ms / tick_ms_) %
                               static_cast<int64_t>(slots_));
  }

  int64_t tick_ms_;
  size_t slots_;
  int64_t last_ms_ = 0;
  size_t size_ = 0;
  std::vector<std::vector<Entry>> wheel_;
};

}  // namespace net
}  // namespace sentinel

#endif  // SENTINELPP_NET_TIMER_WHEEL_H_
