/// \file
/// \brief Per-connection byte buffer for the reactor (surgebot sock.c
/// idiom: every connection owns one read and one write buffer; partial
/// reads append, partial writes consume from the front).
///
/// A thin deque-of-bytes over std::string: appenders push at the tail,
/// the consumer advances a head offset, and the storage is compacted
/// lazily once the dead prefix dominates — so steady-state pipelining
/// costs no memmove per frame.

#ifndef SENTINELPP_NET_BUFFER_H_
#define SENTINELPP_NET_BUFFER_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace sentinel {
namespace net {

class IoBuffer {
 public:
  /// Unconsumed bytes, front first.
  std::string_view readable() const {
    return std::string_view(data_).substr(head_);
  }
  size_t size() const { return data_.size() - head_; }
  bool empty() const { return size() == 0; }

  void Append(std::string_view bytes) { data_.append(bytes); }
  void Append(const char* bytes, size_t n) { data_.append(bytes, n); }

  /// Appendable tail access for encoders that take a std::string*. Callers
  /// must only ever append to it.
  std::string* tail() { return &data_; }

  /// Drops `n` bytes from the front (n <= size()).
  void Consume(size_t n) {
    head_ += n;
    // Compact once the dead prefix is both large and the majority of the
    // storage — amortized O(1) per byte.
    if (head_ >= 4096 && head_ * 2 >= data_.size()) {
      data_.erase(0, head_);
      head_ = 0;
    }
  }

  void Clear() {
    data_.clear();
    head_ = 0;
  }

 private:
  std::string data_;
  size_t head_ = 0;
};

}  // namespace net
}  // namespace sentinel

#endif  // SENTINELPP_NET_BUFFER_H_
