/// \file
/// \brief WireServer — a single-threaded epoll reactor serving the
/// versioned binary wire API (api/wire.h) over an AuthorizationService.
///
/// Threading model (the surgebot sock.c/irc.c shape): ONE reactor thread
/// owns the listening socket, every connection, every buffer and the
/// timer wheel — no locks anywhere in the network layer. Concurrency
/// comes from the service underneath: the reactor drains every readable
/// connection, folds the decoded pipeline of requests into a single
/// `CheckAccessBatchInto` call (one mailbox hop per involved shard), and
/// distributes the positionally aligned verdicts back into the
/// connections' write buffers.
///
/// Why the reactor cannot deadlock the epoch barrier: the reactor thread
/// is a pure *client* of the service — it only ever submits decision-lane
/// work and blocks on decision latches. Shard threads never wait on the
/// reactor (replies are byte pushes into reactor-owned buffers performed
/// by the reactor itself), and admin broadcasts ride the exempt unbounded
/// mailbox lane, so a full decision lane cannot wedge an epoch barrier no
/// matter what the reactor is blocked on. The one blocking edge —
/// reactor -> shards, bounded by the PR-5 deadlines — has no reverse
/// edge, so no cycle exists.
///
/// Overload composes end to end: a full shard mailbox or an expired
/// deadline surfaces as a kOverloaded decision *on the wire*, so a remote
/// load balancer sees exactly what an in-process caller would.

#ifndef SENTINELPP_NET_SERVER_H_
#define SENTINELPP_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/wire.h"
#include "net/buffer.h"
#include "net/frame.h"
#include "net/timer_wheel.h"
#include "service/authorization_service.h"

namespace sentinel {
namespace net {

struct ServerConfig {
  /// Bind address (IPv4 dotted quad) and port; port 0 binds an ephemeral
  /// port, readable via WireServer::port() after Start().
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;
  int backlog = 128;
  /// Connections idle longer than this are closed by the timer wheel.
  /// 0 disables idle harvesting.
  int64_t idle_timeout_ms = 30'000;
  /// Per-frame size cap (fatal kFrameTooLarge beyond it).
  uint32_t max_frame_bytes = wire::kMaxFrameBytes;
  /// Requests folded into one CheckAccessBatch call. A reactor sweep that
  /// decodes more than this dispatches in chunks.
  size_t max_batch = 1024;
  /// Accept() stops beyond this many live connections (listener stays
  /// registered; accepting resumes as connections close).
  size_t max_connections = 10'000;
  /// How long Stop() keeps flushing pending write buffers before closing
  /// connections that will not drain.
  int64_t drain_timeout_ms = 2'000;
};

/// Reactor counters, written only by the reactor thread, readable from any
/// thread (relaxed atomics — monitoring, not synchronization).
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t closed = 0;
  uint64_t active = 0;
  uint64_t requests = 0;         ///< decoded kCheckRequest frames
  uint64_t decisions = 0;        ///< kDecision frames written
  uint64_t batches = 0;          ///< CheckAccessBatch calls
  uint64_t pings = 0;
  uint64_t protocol_errors = 0;  ///< kError frames sent + truncated EOFs
  uint64_t idle_closed = 0;      ///< connections harvested by the wheel
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

class WireServer {
 public:
  WireServer(AuthorizationService* service, ServerConfig config);
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// Binds, listens, spawns the reactor thread. Fails (Status) on socket
  /// errors; idempotence is not attempted — one Start per server.
  Status Start();

  /// Graceful shutdown: stop accepting, answer everything already read,
  /// flush write buffers (bounded by drain_timeout_ms), close, join.
  /// Idempotent; the destructor calls it.
  void Stop();

  /// Bound port (resolves ephemeral binds); 0 before Start().
  uint16_t port() const { return port_; }

  ServerStats stats() const;

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    FrameDecoder decoder;
    IoBuffer write_buffer;
    int64_t idle_deadline_ms = 0;
    bool close_after_flush = false;
    bool wants_writable = false;  ///< EPOLLOUT currently subscribed

    explicit Connection(uint32_t max_frame_bytes)
        : decoder(max_frame_bytes) {}
  };

  /// One decoded request waiting for its verdict: which connection asked,
  /// under which correlation id.
  struct PendingRef {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
  };

  void ReactorLoop();
  void AcceptReady();
  void HandleReadable(Connection& conn);
  void HandleWritable(Connection& conn);
  /// Decodes buffered frames on `conn` (up to the max_batch chunk guard),
  /// queueing check requests into pending_ and answering pings/errors
  /// inline. Returns false iff the connection was closed during the drain
  /// — `conn` is destroyed and the caller must not touch it again.
  [[nodiscard]] bool DrainFrames(Connection& conn);
  /// One CheckAccessBatchInto over everything in pending_, verdicts
  /// encoded into their connections' write buffers.
  void DispatchPending();
  /// Re-drains connections whose decoders still buffer complete frames
  /// (pipelined past max_batch — those bytes are already off the socket,
  /// so no further EPOLLIN will arrive for them), dispatching in chunks
  /// until every buffered frame is answered.
  void RedrainBacklog();
  /// write() until EAGAIN; (un)subscribes EPOLLOUT as needed. Returns
  /// false iff the connection was closed (write error, or a completed
  /// close_after_flush) — `conn` is destroyed and the caller must not
  /// touch it again.
  [[nodiscard]] bool FlushConnection(Connection& conn);
  void CloseConnection(uint64_t conn_id);
  /// (De)registers the listening socket with epoll. De-armed while at
  /// max_connections (a ready level-triggered listener we refuse to
  /// accept from would spin the reactor) and during drain.
  void SetListenerArmed(bool armed);
  /// Whether any queued-but-undispatched request belongs to `conn_id`
  /// (an EOF'd connection with pending work must live to receive answers).
  bool HasPendingFor(uint64_t conn_id) const;
  void UpdateEpollOut(Connection& conn, bool want);
  void ArmIdleTimer(Connection& conn);
  void HarvestIdle();
  int64_t NowMs() const;

  AuthorizationService* service_;
  ServerConfig config_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wakeup_fd_ = -1;  ///< eventfd: Stop() -> reactor
  uint16_t port_ = 0;

  std::thread reactor_;
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;
  bool joined_ = false;

  // ---- Reactor-thread-only state below this line. ----
  uint64_t next_conn_id_ = 1;
  bool listener_armed_ = false;  ///< listen fd registered with epoll
  bool draining_ = false;        ///< graceful shutdown in progress
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  std::unordered_map<int, uint64_t> fd_to_conn_;
  TimerWheel timer_wheel_;
  std::vector<TimerWheel::Entry> expired_scratch_;
  std::vector<uint64_t> redrain_scratch_;
  /// Batch scratch, reused across sweeps (no per-batch allocation in
  /// steady state).
  std::vector<AccessRequest> pending_requests_;
  std::vector<PendingRef> pending_refs_;
  std::vector<AccessDecision> decisions_scratch_;

  /// Stats mirror (relaxed; reactor writes, anyone reads).
  struct AtomicStats {
    std::atomic<uint64_t> accepted{0}, closed{0}, active{0}, requests{0},
        decisions{0}, batches{0}, pings{0}, protocol_errors{0},
        idle_closed{0}, bytes_in{0}, bytes_out{0};
  };
  AtomicStats stats_;
};

}  // namespace net
}  // namespace sentinel

#endif  // SENTINELPP_NET_SERVER_H_
