/// \file
/// \brief WireClient — blocking client for the sentinelpp wire API.
///
/// One connection, one thread at a time (callers wanting concurrency open
/// more clients — connections are cheap and the server is a reactor).
/// `Check` is the closed-loop primitive; `CheckBatch` pipelines a whole
/// span of requests before reading any response, which is what turns the
/// server's per-sweep folding into real CheckAccessBatch batches.
///
/// Protocol errors come back as typed Status values carrying the server's
/// WireError (`wire error <name>: <detail>`); transport failures are
/// Internal. The raw-byte hooks (SendRaw/ReadRawFrame) exist for the
/// framing torture tests — production callers never need them.

#ifndef SENTINELPP_NET_CLIENT_H_
#define SENTINELPP_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/wire.h"
#include "net/frame.h"

namespace sentinel {
namespace net {

class WireClient {
 public:
  /// Connects (blocking, with a connect+IO timeout in milliseconds;
  /// 0 = no timeout).
  static Result<std::unique_ptr<WireClient>> Connect(
      const std::string& host, uint16_t port, int64_t timeout_ms = 5'000);

  ~WireClient();
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// One request, one response (closed loop).
  Result<AccessDecision> Check(const AccessRequest& request);

  /// Pipelines every request, then reads every response. Results are
  /// positionally aligned with `requests`. A request-scoped wire error
  /// (e.g. kInvalidDeadline) fails the whole call — batch users send
  /// well-formed requests.
  Result<std::vector<AccessDecision>> CheckBatch(
      std::span<const AccessRequest> requests);

  /// Liveness probe: kPing, waits for the matching kPong.
  Status Ping();

  /// Number of request-scoped wire errors observed (kError frames).
  uint64_t protocol_errors() const { return protocol_errors_; }

  // ------------------------------------------------ Torture-test surface

  /// Writes raw bytes, optionally in `chunk` byte slices (0 = one write).
  Status SendRaw(std::string_view bytes, size_t chunk = 0);

  /// Reads one complete frame (any type). Fails on timeout, EOF, or a
  /// framing-level decode error.
  Result<wire::FrameView> ReadRawFrame();

  /// True once the server closed the stream (EOF observed).
  bool eof() const { return eof_; }

  void Close();

 private:
  WireClient(int fd, int64_t timeout_ms);

  /// Reads until the decoder yields a frame; fills `*frame`.
  Status ReadFrame(wire::FrameView* frame);
  /// Maps a received kError frame to a typed Status.
  static Status ErrorStatus(const wire::ErrorMsg& error);

  int fd_ = -1;
  int64_t timeout_ms_ = 0;
  uint64_t next_request_id_ = 1;
  uint64_t protocol_errors_ = 0;
  bool eof_ = false;
  FrameDecoder decoder_;
  std::string send_buffer_;
};

}  // namespace net
}  // namespace sentinel

#endif  // SENTINELPP_NET_CLIENT_H_
