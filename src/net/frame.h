/// \file
/// \brief Incremental frame extraction from a connection byte stream.
///
/// The reactor feeds whatever the socket produced — one byte or one
/// megabyte — and polls for complete frames. The decoder never copies
/// payloads: a polled FrameView aliases the internal buffer and stays
/// valid until the next Poll/Feed.
///
/// Error model (the torture tests pin this):
///  * an oversized length prefix or an unsupported version byte poisons
///    the stream — kError with fatal=true, and every later Poll repeats
///    the error (there is no way to resync);
///  * an unknown message type is NOT a framing error — the frame is
///    returned with `raw_type` set and `type` out of the known range, so
///    the server can answer kUnknownMessageType and keep the connection;
///  * a truncated trailing frame is simply kNeedMore — only the peer
///    closing mid-frame turns it into an error, which the *caller*
///    detects (bytes pending + EOF) because only it sees the EOF.

#ifndef SENTINELPP_NET_FRAME_H_
#define SENTINELPP_NET_FRAME_H_

#include <string_view>

#include "api/wire.h"
#include "net/buffer.h"

namespace sentinel {
namespace net {

class FrameDecoder {
 public:
  enum class Next {
    kFrame,     ///< *frame filled; valid until the next Feed/Poll
    kNeedMore,  ///< byte stream exhausted mid-frame (or empty)
    kError,     ///< *error filled; fatal errors repeat forever
  };

  explicit FrameDecoder(uint32_t max_frame_bytes = wire::kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(std::string_view bytes) {
    if (!poisoned_) buffer_.Append(bytes);
  }
  void Feed(const char* bytes, size_t n) {
    Feed(std::string_view(bytes, n));
  }

  Next Poll(wire::FrameView* frame, wire::ProtocolError* error) {
    if (poisoned_) {
      *error = poison_;
      return Next::kError;
    }
    // Drop the previous frame (aliased until this call).
    if (pending_consume_ > 0) {
      buffer_.Consume(pending_consume_);
      pending_consume_ = 0;
    }
    const std::string_view bytes = buffer_.readable();
    if (bytes.size() < wire::kLengthPrefixBytes) return Next::kNeedMore;
    const uint32_t length = wire::GetU32(bytes.data());
    if (length > max_frame_bytes_) {
      poison_.code = wire::WireError::kFrameTooLarge;
      poison_.message = "frame length " + std::to_string(length) +
                        " exceeds limit " + std::to_string(max_frame_bytes_);
      poison_.fatal = true;
      poisoned_ = true;
      *error = poison_;
      return Next::kError;
    }
    if (bytes.size() < wire::kLengthPrefixBytes + length) return Next::kNeedMore;
    const std::string_view body =
        bytes.substr(wire::kLengthPrefixBytes, length);
    if (!wire::DecodeFrame(body, frame, error)) {
      if (error->fatal) {
        poison_ = *error;
        poisoned_ = true;
      }
      return Next::kError;
    }
    pending_consume_ = wire::kLengthPrefixBytes + length;
    return Next::kFrame;
  }

  /// Bytes of an incomplete trailing frame still buffered — nonzero at EOF
  /// means the peer died mid-frame (a truncated-stream protocol error the
  /// connection owner reports).
  size_t pending_bytes() const {
    return poisoned_ ? 0 : buffer_.size() - pending_consume_;
  }

  /// Whether Poll would make progress without another Feed: a complete
  /// frame — or an oversized length prefix, which Poll turns into a fatal
  /// error — is already buffered. Drives the server's re-drain of
  /// connections that pipelined past its per-sweep decode budget (those
  /// bytes are off the socket, so no readable event will ever re-announce
  /// them). False once poisoned: the owner is already closing the stream.
  bool has_buffered_frame() const {
    if (poisoned_) return false;
    const std::string_view bytes = buffer_.readable();
    const size_t avail = bytes.size() - pending_consume_;
    if (avail < wire::kLengthPrefixBytes) return false;
    const uint32_t length = wire::GetU32(bytes.data() + pending_consume_);
    return length > max_frame_bytes_ ||
           avail >= wire::kLengthPrefixBytes + length;
  }

  bool poisoned() const { return poisoned_; }

 private:
  uint32_t max_frame_bytes_;
  IoBuffer buffer_;
  size_t pending_consume_ = 0;
  bool poisoned_ = false;
  wire::ProtocolError poison_;
};

}  // namespace net
}  // namespace sentinel

#endif  // SENTINELPP_NET_FRAME_H_
