#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace sentinel {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::string(strerror(errno)));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

WireServer::WireServer(AuthorizationService* service, ServerConfig config)
    : service_(service),
      config_(std::move(config)),
      timer_wheel_(/*tick_ms=*/50, /*slots=*/256) {}

WireServer::~WireServer() { Stop(); }

Status WireServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");

  // Every failure path releases whatever descriptors are already open —
  // a failed Start leaves the server exactly as before the call.
  const auto fail = [this](Status status) {
    if (listen_fd_ >= 0) close(listen_fd_);
    if (epoll_fd_ >= 0) close(epoll_fd_);
    if (wakeup_fd_ >= 0) close(wakeup_fd_);
    listen_fd_ = epoll_fd_ = wakeup_fd_ = -1;
    listener_armed_ = false;
    return status;
  };

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return fail(Status::InvalidArgument("bad bind address: " +
                                        config_.bind_address));
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return fail(Errno("bind"));
  }
  if (listen(listen_fd_, config_.backlog) < 0) {
    return fail(Errno("listen"));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  Status nonblocking = SetNonBlocking(listen_fd_);
  if (!nonblocking.ok()) return fail(std::move(nonblocking));

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return fail(Errno("epoll_create1"));
  wakeup_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeup_fd_ < 0) return fail(Errno("eventfd"));

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return fail(Errno("epoll_ctl(listen)"));
  }
  listener_armed_ = true;
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) < 0) {
    return fail(Errno("epoll_ctl(wakeup)"));
  }

  started_ = true;
  reactor_ = std::thread([this] { ReactorLoop(); });
  return Status::OK();
}

void WireServer::Stop() {
  if (!started_ || joined_) return;
  stop_requested_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  // Failure here only costs latency: the loop also times out on ticks.
  (void)!write(wakeup_fd_, &one, sizeof(one));
  reactor_.join();
  joined_ = true;
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wakeup_fd_ >= 0) close(wakeup_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  listen_fd_ = wakeup_fd_ = epoll_fd_ = -1;
}

ServerStats WireServer::stats() const {
  ServerStats s;
  s.accepted = stats_.accepted.load(std::memory_order_relaxed);
  s.closed = stats_.closed.load(std::memory_order_relaxed);
  s.active = stats_.active.load(std::memory_order_relaxed);
  s.requests = stats_.requests.load(std::memory_order_relaxed);
  s.decisions = stats_.decisions.load(std::memory_order_relaxed);
  s.batches = stats_.batches.load(std::memory_order_relaxed);
  s.pings = stats_.pings.load(std::memory_order_relaxed);
  s.protocol_errors = stats_.protocol_errors.load(std::memory_order_relaxed);
  s.idle_closed = stats_.idle_closed.load(std::memory_order_relaxed);
  s.bytes_in = stats_.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = stats_.bytes_out.load(std::memory_order_relaxed);
  return s;
}

int64_t WireServer::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ------------------------------------------------------------ Reactor loop

void WireServer::ReactorLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  int64_t drain_deadline_ms = 0;

  for (;;) {
    if (!draining_ && stop_requested_.load(std::memory_order_acquire)) {
      // Graceful drain: stop accepting, keep the loop alive until every
      // write buffer is flushed (or the drain deadline passes).
      draining_ = true;
      drain_deadline_ms = NowMs() + config_.drain_timeout_ms;
      SetListenerArmed(false);
    }
    if (draining_) {
      bool flushed = true;
      for (auto& [id, conn] : connections_) {
        if (!conn->write_buffer.empty()) {
          flushed = false;
          break;
        }
      }
      if (flushed || NowMs() >= drain_deadline_ms) break;
    }

    const int timeout_ms = static_cast<int>(timer_wheel_.tick_ms());
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0 && errno != EINTR) {
      SENTINEL_LOG(kError) << "epoll_wait: " << strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeup_fd_) {
        uint64_t drained;
        (void)!read(wakeup_fd_, &drained, sizeof(drained));
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      const auto it = fd_to_conn_.find(fd);
      if (it == fd_to_conn_.end()) continue;  // Closed earlier this sweep.
      const uint64_t conn_id = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        Connection& conn = *connections_.at(conn_id);
        if (conn.decoder.pending_bytes() > 0 &&
            !conn.decoder.has_buffered_frame()) {
          // Peer died mid-frame: a truncated trailing request. (Complete
          // frames still buffered are not truncation — just unanswerable
          // now that the peer is gone.)
          stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        }
        CloseConnection(conn_id);
        continue;
      }
      if (events[i].events & EPOLLIN) {
        HandleReadable(*connections_.at(conn_id));
      }
      // The read handler may have closed the connection.
      if (connections_.count(conn_id) && (events[i].events & EPOLLOUT)) {
        HandleWritable(*connections_.at(conn_id));
      }
    }

    // Requests decoded this sweep — from every ready connection — fold
    // into (a bounded number of) CheckAccessBatch calls.
    DispatchPending();

    // Connections that pipelined past the per-sweep decode budget still
    // hold complete frames; keep draining/dispatching until they don't.
    RedrainBacklog();

    HarvestIdle();
  }

  // Loop exit: close everything that remains. A hard epoll failure lands
  // here without the drain flag — set it so CloseConnection does not
  // re-arm the listener we are abandoning.
  draining_ = true;
  std::vector<uint64_t> ids;
  ids.reserve(connections_.size());
  for (auto& [id, conn] : connections_) ids.push_back(id);
  for (const uint64_t id : ids) CloseConnection(id);
}

void WireServer::AcceptReady() {
  for (;;) {
    if (connections_.size() >= config_.max_connections) {
      // A ready listener we refuse to accept from would wake every
      // (level-triggered) epoll_wait — de-register it until a slot
      // frees; CloseConnection re-arms.
      SetListenerArmed(false);
      return;
    }
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      SENTINEL_LOG(kWarning) << "accept: " << strerror(errno);
      return;
    }
    const int one = 1;
    (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(config_.max_frame_bytes);
    conn->fd = fd;
    conn->id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      SENTINEL_LOG(kWarning) << "epoll_ctl(conn): " << strerror(errno);
      close(fd);
      continue;
    }
    fd_to_conn_[fd] = conn->id;
    ArmIdleTimer(*conn);
    connections_.emplace(conn->id, std::move(conn));
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.active.store(connections_.size(), std::memory_order_relaxed);
  }
}

void WireServer::HandleReadable(Connection& conn) {
  char chunk[16 * 1024];
  bool peer_closed = false;
  for (;;) {
    const ssize_t got = read(conn.fd, chunk, sizeof(chunk));
    if (got > 0) {
      stats_.bytes_in.fetch_add(static_cast<uint64_t>(got),
                                std::memory_order_relaxed);
      conn.decoder.Feed(chunk, static_cast<size_t>(got));
      continue;
    }
    if (got == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    peer_closed = true;  // Hard error: treat as EOF.
    break;
  }
  ArmIdleTimer(conn);
  if (!DrainFrames(conn)) return;  // conn destroyed during the drain
  if (peer_closed) {
    if (conn.decoder.pending_bytes() > 0 &&
        !conn.decoder.has_buffered_frame()) {
      // EOF mid-frame: truncated trailing request, no way to answer it.
      // (Complete frames still buffered beyond the decode budget are not
      // truncation — the redrain pass will answer them.)
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    }
    // Answer what was fully received, then close: flushing happens when
    // the pending batch distributes. Mark rather than close immediately.
    conn.close_after_flush = true;
    if (conn.write_buffer.empty() && !conn.decoder.has_buffered_frame() &&
        !HasPendingFor(conn.id)) {
      CloseConnection(conn.id);
    }
  }
}

bool WireServer::HasPendingFor(uint64_t conn_id) const {
  for (const PendingRef& ref : pending_refs_) {
    if (ref.conn_id == conn_id) return true;
  }
  return false;
}

bool WireServer::DrainFrames(Connection& conn) {
  wire::FrameView frame;
  wire::ProtocolError error;
  for (;;) {
    // Chunk guard: with max_batch already decoded and undispatched, stop
    // decoding — remaining frames stay buffered, and RedrainBacklog
    // revisits this decoder after each DispatchPending until it holds no
    // complete frame.
    if (pending_requests_.size() >= config_.max_batch) return true;
    switch (conn.decoder.Poll(&frame, &error)) {
      case FrameDecoder::Next::kNeedMore:
        return true;
      case FrameDecoder::Next::kError: {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        // Framing-level failure: there is no decoded frame to attribute,
        // so the error carries request_id 0 ("not request-scoped") rather
        // than echoing a stale or uninitialized id.
        wire::EncodeError(0, error.code, error.message,
                          conn.write_buffer.tail());
        if (error.fatal) {
          // Framing poisoned: flush the error and close. Requests already
          // decoded still get answers (their refs are queued).
          conn.close_after_flush = true;
          return FlushConnection(conn);
        }
        if (!FlushConnection(conn)) return false;
        continue;
      }
      case FrameDecoder::Next::kFrame:
        break;
    }
    switch (frame.type) {
      case wire::MsgType::kCheckRequest: {
        wire::CheckRequestMsg msg;
        if (!wire::DecodeCheckRequest(frame, &msg, &error)) {
          stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          wire::EncodeError(frame.request_id, error.code, error.message,
                            conn.write_buffer.tail());
          if (error.fatal) {
            conn.close_after_flush = true;
            return FlushConnection(conn);
          }
          if (!FlushConnection(conn)) return false;
          continue;
        }
        stats_.requests.fetch_add(1, std::memory_order_relaxed);
        pending_requests_.push_back(std::move(msg.request));
        pending_refs_.push_back(PendingRef{conn.id, msg.request_id});
        continue;
      }
      case wire::MsgType::kPing:
        stats_.pings.fetch_add(1, std::memory_order_relaxed);
        wire::EncodePong(frame.request_id, conn.write_buffer.tail());
        if (!FlushConnection(conn)) return false;
        continue;
      case wire::MsgType::kDecision:
      case wire::MsgType::kPong:
      case wire::MsgType::kError:
      default: {
        // Clients must not send server->client messages; unknown ids are
        // future protocol. Both are request-scoped: framing is intact.
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        wire::EncodeError(frame.request_id, wire::WireError::kUnknownMessageType,
                          "unexpected message type " +
                              std::to_string(frame.raw_type),
                          conn.write_buffer.tail());
        if (!FlushConnection(conn)) return false;
        continue;
      }
    }
  }
}

void WireServer::DispatchPending() {
  while (!pending_requests_.empty()) {
    const size_t n = std::min(pending_requests_.size(), config_.max_batch);
    decisions_scratch_.assign(n, AccessDecision{});
    stats_.batches.fetch_add(1, std::memory_order_relaxed);
    // The reactor thread blocks here — bounded by the service's overload
    // policy and per-request deadlines, never by another reactor duty.
    service_->CheckAccessBatchInto(
        std::span<const AccessRequest>(pending_requests_.data(), n),
        std::span<AccessDecision>(decisions_scratch_.data(), n));
    for (size_t i = 0; i < n; ++i) {
      const PendingRef& ref = pending_refs_[i];
      const auto it = connections_.find(ref.conn_id);
      if (it == connections_.end()) continue;  // Closed while we decided.
      Connection& conn = *it->second;
      const Status encoded = wire::EncodeDecision(
          ref.request_id, decisions_scratch_[i], conn.write_buffer.tail());
      if (!encoded.ok()) {
        wire::EncodeError(ref.request_id, wire::WireError::kFieldTooLong,
                          encoded.message(), conn.write_buffer.tail());
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats_.decisions.fetch_add(1, std::memory_order_relaxed);
      }
    }
    pending_requests_.erase(pending_requests_.begin(),
                            pending_requests_.begin() + n);
    pending_refs_.erase(pending_refs_.begin(), pending_refs_.begin() + n);
    // Flush every connection the batch touched (and settle EOF closes).
    std::vector<uint64_t> touched;
    for (auto& [id, conn] : connections_) {
      if (!conn->write_buffer.empty() || conn->close_after_flush) {
        touched.push_back(id);
      }
    }
    for (const uint64_t id : touched) {
      const auto it = connections_.find(id);
      if (it != connections_.end()) (void)FlushConnection(*it->second);
    }
  }
}

void WireServer::RedrainBacklog() {
  for (;;) {
    redrain_scratch_.clear();
    for (auto& [id, conn] : connections_) {
      if (conn->decoder.has_buffered_frame()) redrain_scratch_.push_back(id);
    }
    if (redrain_scratch_.empty()) return;
    for (const uint64_t id : redrain_scratch_) {
      const auto it = connections_.find(id);
      if (it != connections_.end()) (void)DrainFrames(*it->second);
    }
    // Each round either consumes buffered frames outright or fills
    // pending_ to max_batch and answers it here — the backlog strictly
    // shrinks, so this loop terminates.
    DispatchPending();
  }
}

bool WireServer::FlushConnection(Connection& conn) {
  while (!conn.write_buffer.empty()) {
    const std::string_view bytes = conn.write_buffer.readable();
    const ssize_t wrote = write(conn.fd, bytes.data(), bytes.size());
    if (wrote > 0) {
      stats_.bytes_out.fetch_add(static_cast<uint64_t>(wrote),
                                 std::memory_order_relaxed);
      conn.write_buffer.Consume(static_cast<size_t>(wrote));
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateEpollOut(conn, true);
      return true;
    }
    if (wrote < 0 && errno == EINTR) continue;
    // Peer gone mid-write: `conn` is destroyed here, so report that to
    // the caller — it must not touch the connection again.
    CloseConnection(conn.id);
    return false;
  }
  UpdateEpollOut(conn, false);
  if (conn.close_after_flush && !HasPendingFor(conn.id) &&
      !conn.decoder.has_buffered_frame()) {
    CloseConnection(conn.id);
    return false;
  }
  return true;
}

void WireServer::HandleWritable(Connection& conn) {
  (void)FlushConnection(conn);
}

void WireServer::UpdateEpollOut(Connection& conn, bool want) {
  if (conn.wants_writable == want) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
    conn.wants_writable = want;
  }
}

void WireServer::CloseConnection(uint64_t conn_id) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  fd_to_conn_.erase(conn.fd);
  close(conn.fd);
  connections_.erase(it);
  stats_.closed.fetch_add(1, std::memory_order_relaxed);
  stats_.active.store(connections_.size(), std::memory_order_relaxed);
  // A freed slot lets the (possibly de-armed) listener accept again.
  if (!draining_ && connections_.size() < config_.max_connections) {
    SetListenerArmed(true);
  }
}

void WireServer::SetListenerArmed(bool armed) {
  if (listener_armed_ == armed) return;
  if (armed) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
      SENTINEL_LOG(kWarning) << "epoll_ctl(re-arm listen): "
                             << strerror(errno);
      return;
    }
  } else if (epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr) < 0) {
    SENTINEL_LOG(kWarning) << "epoll_ctl(de-arm listen): "
                           << strerror(errno);
    return;
  }
  listener_armed_ = armed;
}

void WireServer::ArmIdleTimer(Connection& conn) {
  if (config_.idle_timeout_ms <= 0) return;
  const int64_t deadline = NowMs() + config_.idle_timeout_ms;
  // Lazy cancellation: only re-schedule in the wheel when the armed entry
  // would fire early; HarvestIdle re-arms lapped entries.
  const bool rearm = conn.idle_deadline_ms == 0;
  conn.idle_deadline_ms = deadline;
  if (rearm) timer_wheel_.Schedule(conn.id, deadline);
}

void WireServer::HarvestIdle() {
  if (config_.idle_timeout_ms <= 0) return;
  expired_scratch_.clear();
  timer_wheel_.Advance(NowMs(), &expired_scratch_);
  const int64_t now_ms = NowMs();
  for (const TimerWheel::Entry& entry : expired_scratch_) {
    const auto it = connections_.find(entry.key);
    if (it == connections_.end()) continue;  // Closed; entry is stale.
    Connection& conn = *it->second;
    if (conn.idle_deadline_ms > now_ms) {
      // Activity since this entry was armed — lazy cancel + re-arm.
      timer_wheel_.Schedule(conn.id, conn.idle_deadline_ms);
      continue;
    }
    stats_.idle_closed.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn.id);
  }
}

}  // namespace net
}  // namespace sentinel
