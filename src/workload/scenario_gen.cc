#include "workload/scenario_gen.h"

#include <cstdio>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "event/time_pattern.h"

namespace sentinel {

std::string ScenarioRoleName(int division, int level, int index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "D%dL%02dR%04d", division, level, index);
  return buf;
}

std::string ScenarioUserName(int index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "u%06d", index);
  return buf;
}

std::string ScenarioObjectName(int index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "o%05d", index);
  return buf;
}

ScenarioParams SmokeScenarioParams() {
  ScenarioParams params;
  params.divisions = 2;
  params.depth = 3;
  params.branching = 2;
  params.num_objects = 64;
  params.num_users = 200;
  params.num_requests = 12000;
  params.shift_frac = 0.0;  // Keep the smoke capture schedule-free: every
                            // denial is attributable to RBAC state, which
                            // makes the replay-determinism check strict.
  return params;
}

ScenarioParams EnterpriseScenarioParams() {
  ScenarioParams params;
  params.divisions = 6;
  params.depth = 7;
  params.branching = 3;
  params.num_objects = 8192;
  params.num_users = 120000;
  params.assignments_per_user = 3;
  params.ssd_sets = 12;
  params.ssd_set_size = 3;
  params.dsd_sets = 12;
  params.dsd_set_size = 3;
  params.num_requests = 200000;
  return params;
}

namespace {

constexpr const char* kOperations[] = {"read", "write", "exec", "approve"};

bool SsdAllows(const std::map<std::string, SodSet>& ssd_sets,
               const std::set<RoleName>& authorized) {
  for (const auto& [name, set] : ssd_sets) {
    int hits = 0;
    for (const RoleName& role : set.roles) {
      if (authorized.count(role) > 0 && ++hits >= set.n) return false;
    }
  }
  return true;
}

}  // namespace

Scenario GenerateScenario(const ScenarioParams& params) {
  Rng rng(params.seed);
  Policy policy("enterprise-" + std::to_string(params.seed));

  // --- Org forest: names[division][level] -> roles of that tier. --------
  // Level 0 is the division root; each level-l role has `branching`
  // children at level l+1, so senior chains are exactly `depth` long.
  std::vector<std::vector<std::vector<RoleName>>> names(
      static_cast<size_t>(params.divisions));
  for (int d = 0; d < params.divisions; ++d) {
    auto& tiers = names[static_cast<size_t>(d)];
    tiers.resize(static_cast<size_t>(params.depth));
    int width = 1;
    for (int l = 0; l < params.depth; ++l) {
      for (int i = 0; i < width; ++i) {
        RoleSpec spec;
        spec.name = ScenarioRoleName(d, l, i);
        tiers[static_cast<size_t>(l)].push_back(spec.name);
        for (int p = 0; p < params.permissions_per_role; ++p) {
          Permission perm;
          perm.operation = kOperations[rng.NextBounded(4)];
          perm.object = ScenarioObjectName(
              static_cast<int>(rng.NextBounded(params.num_objects)));
          spec.permissions.insert(perm);
        }
        // GTRBAC shifts live on the working tiers (bottom two levels):
        // executives are always enabled, clerks work schedules.
        if (l >= params.depth - 2 && rng.NextBool(params.shift_frac)) {
          const int start_hour = 6 + static_cast<int>(rng.NextBounded(4));
          auto window = PeriodicExpression::Create(
              TimePattern(start_hour, (i * 7) % 60, 0, TimePattern::kAny,
                          TimePattern::kAny, TimePattern::kAny),
              TimePattern(start_hour + 8, (i * 11) % 60, 0, TimePattern::kAny,
                          TimePattern::kAny, TimePattern::kAny));
          if (window.ok()) spec.enabling_window = *window;
        }
        if (rng.NextBool(params.cardinality_frac)) {
          spec.activation_cardinality = params.cardinality_limit;
        }
        if (rng.NextBool(params.duration_frac)) {
          spec.max_activation = params.duration +
                                static_cast<Duration>(l * width + i) * 13 *
                                    kMillisecond;
        }
        if (rng.NextBool(params.context_frac)) {
          static constexpr const char* kKeys[] = {"location", "network"};
          static constexpr const char* kValues[] = {"office", "home",
                                                    "hospital", "secure",
                                                    "insecure"};
          spec.required_context[kKeys[rng.NextBounded(2)]] =
              kValues[rng.NextBounded(5)];
        }
        (void)policy.AddRole(std::move(spec));
        if (l > 0) {
          // Parent (one tier up, index i / branching) is senior of us.
          auto parent = policy.MutableRole(
              tiers[static_cast<size_t>(l - 1)][static_cast<size_t>(
                  i / params.branching)]);
          if (parent.ok()) {
            (*parent)->juniors.insert(ScenarioRoleName(d, l, i));
          }
        }
      }
      width *= params.branching;
    }
  }

  // --- Sibling groups: the pools SoD sets are drawn from. ---------------
  // Conflicting duties live inside one department, so every SoD set is a
  // subset of one parent's children.
  std::vector<std::vector<RoleName>> sibling_groups;
  for (int d = 0; d < params.divisions; ++d) {
    const auto& tiers = names[static_cast<size_t>(d)];
    for (int l = 0; l + 1 < params.depth; ++l) {
      const auto& children = tiers[static_cast<size_t>(l + 1)];
      for (size_t parent = 0; parent < tiers[static_cast<size_t>(l)].size();
           ++parent) {
        std::vector<RoleName> group;
        for (int c = 0; c < params.branching; ++c) {
          const size_t child = parent * static_cast<size_t>(params.branching) +
                               static_cast<size_t>(c);
          if (child < children.size()) group.push_back(children[child]);
        }
        if (group.size() >= 2) sibling_groups.push_back(std::move(group));
      }
    }
  }

  auto sample_siblings = [&rng, &sibling_groups](int count) {
    std::set<RoleName> out;
    if (sibling_groups.empty()) return out;
    const auto& group =
        sibling_groups[rng.NextBounded(sibling_groups.size())];
    const int want = count < static_cast<int>(group.size())
                         ? count
                         : static_cast<int>(group.size());
    int attempts = 0;
    while (static_cast<int>(out.size()) < want && attempts++ < want * 8) {
      out.insert(group[rng.NextBounded(group.size())]);
    }
    return out;
  };
  for (int i = 0; i < params.ssd_sets; ++i) {
    SodSet set;
    set.name = "SSD" + std::to_string(i);
    set.roles = sample_siblings(params.ssd_set_size);
    set.n = 2;
    if (static_cast<int>(set.roles.size()) >= set.n) {
      (void)policy.AddSsd(std::move(set));
    }
  }
  for (int i = 0; i < params.dsd_sets; ++i) {
    SodSet set;
    set.name = "DSD" + std::to_string(i);
    set.roles = sample_siblings(params.dsd_set_size);
    set.n = 2;
    if (static_cast<int>(set.roles.size()) >= set.n) {
      (void)policy.AddDsd(std::move(set));
    }
  }

  // --- Junior closures (the subtree of each role), bottom tier up. ------
  std::map<RoleName, std::set<RoleName>> closures;
  for (int d = 0; d < params.divisions; ++d) {
    const auto& tiers = names[static_cast<size_t>(d)];
    for (int l = params.depth - 1; l >= 0; --l) {
      for (const RoleName& role : tiers[static_cast<size_t>(l)]) {
        std::set<RoleName>& mine = closures[role];
        mine.insert(role);
        const auto spec = policy.roles().find(role);
        for (const RoleName& junior : spec->second.juniors) {
          const auto& sub = closures[junior];
          mine.insert(sub.begin(), sub.end());
        }
      }
    }
  }

  // --- Population: assignments biased to the leaf tier, SSD-respecting
  // under the hierarchy (a manager is authorized for the whole subtree).
  for (int i = 0; i < params.num_users; ++i) {
    UserSpec spec;
    spec.name = ScenarioUserName(i);
    std::set<RoleName> authorized;
    int attempts = 0;
    while (static_cast<int>(spec.assignments.size()) <
               params.assignments_per_user &&
           attempts++ < params.assignments_per_user * 8) {
      const int d = static_cast<int>(rng.NextBounded(params.divisions));
      const int l = rng.NextBool(params.leaf_assignment_prob)
                        ? params.depth - 1
                        : static_cast<int>(rng.NextBounded(params.depth));
      const auto& tier = names[static_cast<size_t>(d)][static_cast<size_t>(l)];
      const RoleName candidate = tier[rng.NextBounded(tier.size())];
      if (spec.assignments.count(candidate) > 0) continue;
      std::set<RoleName> hypothetical = authorized;
      const auto& closure = closures.at(candidate);
      hypothetical.insert(closure.begin(), closure.end());
      if (!SsdAllows(policy.ssd_sets(), hypothetical)) continue;
      spec.assignments.insert(candidate);
      authorized = std::move(hypothetical);
    }
    if (rng.NextBool(params.user_cap_frac)) {
      spec.max_active_roles = params.user_cap;
    }
    (void)policy.AddUser(std::move(spec));
  }

  // --- Request stream over the finished policy. -------------------------
  Scenario scenario;
  scenario.num_roles = static_cast<int>(policy.roles().size());
  RequestGenParams request_params;
  request_params.seed = params.seed * 7919 + 1;
  request_params.num_requests = params.num_requests;
  request_params.mix = params.mix;
  request_params.max_advance = params.max_advance;
  request_params.invalid_frac = params.invalid_frac;
  RequestGenerator generator(policy, request_params);
  scenario.requests = generator.Generate();
  scenario.policy = std::move(policy);
  return scenario;
}

Result<Policy> WithAddedDsdEdge(const Policy& policy,
                                const std::string& name) {
  for (const auto& [user, spec] : policy.users()) {
    for (auto a = spec.assignments.begin(); a != spec.assignments.end();
         ++a) {
      for (auto b = std::next(a); b != spec.assignments.end(); ++b) {
        bool constrained = false;
        for (const auto& [set_name, set] : policy.dsd_sets()) {
          if (set.roles.count(*a) > 0 && set.roles.count(*b) > 0) {
            constrained = true;
            break;
          }
        }
        if (constrained) continue;
        Policy mutated = policy;
        SodSet set;
        set.name = name;
        set.roles = {*a, *b};
        set.n = 2;
        SENTINEL_RETURN_IF_ERROR(mutated.AddDsd(std::move(set)));
        return mutated;
      }
    }
  }
  return Status::NotFound(
      "no co-assigned role pair free of an existing DSD constraint");
}

Result<Policy> WithToggledPermission(const Policy& policy, uint64_t salt) {
  if (policy.roles().empty()) return Status::NotFound("policy has no roles");
  auto it = policy.roles().begin();
  std::advance(it, static_cast<long>(salt % policy.roles().size()));
  Policy mutated = policy;
  auto role = mutated.MutableRole(it->first);
  SENTINEL_RETURN_IF_ERROR(role.status());
  const Permission churn{"churn", "churn-object"};
  if ((*role)->permissions.count(churn) > 0) {
    (*role)->permissions.erase(churn);
  } else {
    (*role)->permissions.insert(churn);
  }
  return mutated;
}

Result<Policy> WithToggledAssignment(const Policy& policy, uint64_t salt) {
  if (policy.users().empty() || policy.roles().empty()) {
    return Status::NotFound("policy has no users or roles");
  }
  // Candidate roles: outside every SSD set, so toggling the assignment on
  // can never trip a static SoD conflict during reconcile.
  std::vector<RoleName> candidates;
  for (const auto& [name, spec] : policy.roles()) {
    bool constrained = false;
    for (const auto& [set_name, set] : policy.ssd_sets()) {
      if (set.roles.count(name) > 0) {
        constrained = true;
        break;
      }
    }
    if (!constrained) candidates.push_back(name);
  }
  if (candidates.empty()) {
    return Status::NotFound("every role is SSD-constrained");
  }
  auto user_it = policy.users().begin();
  std::advance(user_it, static_cast<long>(salt % policy.users().size()));
  const RoleName& role = candidates[salt % candidates.size()];
  Policy mutated = policy;
  auto user = mutated.MutableUser(user_it->first);
  SENTINEL_RETURN_IF_ERROR(user.status());
  if ((*user)->assignments.count(role) > 0) {
    (*user)->assignments.erase(role);
  } else {
    (*user)->assignments.insert(role);
  }
  return mutated;
}

Result<Policy> WithToggledDsd(const Policy& policy, const std::string& name) {
  if (policy.dsd_sets().count(name) > 0) {
    Policy mutated = policy;
    SENTINEL_RETURN_IF_ERROR(mutated.RemoveDsd(name));
    return mutated;
  }
  return WithAddedDsdEdge(policy, name);
}

}  // namespace sentinel
