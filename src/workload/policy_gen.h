#ifndef SENTINELPP_WORKLOAD_POLICY_GEN_H_
#define SENTINELPP_WORKLOAD_POLICY_GEN_H_

#include <cstdint>

#include "core/policy.h"

namespace sentinel {

/// \brief Shape parameters for synthetic enterprise policies.
///
/// Defaults produce a mid-size enterprise in the spirit of the paper's
/// motivation ("large enterprises have hundreds of roles"). All generation
/// is deterministic in `seed`. Generated policies always pass
/// Policy::Validate() and load cleanly (assignments are chosen to satisfy
/// the generated SSD relations under the generated hierarchy).
struct PolicyGenParams {
  uint64_t seed = 42;
  int num_roles = 50;
  int num_users = 100;
  /// Probability a role is attached under a senior among earlier roles
  /// (forest-shaped hierarchies, like Figure 1's two chains).
  double hierarchy_prob = 0.5;
  int permissions_per_role = 4;
  int num_objects = 64;
  int assignments_per_user = 3;
  int ssd_sets = 2;
  int ssd_set_size = 3;
  int dsd_sets = 2;
  int dsd_set_size = 3;
  /// Fraction of roles with an activation cardinality (Rule 4).
  double cardinality_frac = 0.2;
  int cardinality_limit = 4;
  /// Fraction of roles with a per-activation duration bound (Rule 7).
  double duration_frac = 0.1;
  Duration duration = 30 * kMinute;
  /// Fraction of roles with a GTRBAC enabling window (9-to-5-style shift).
  double shift_frac = 0.0;
  /// Fraction of users with an active-role cap (scenario 1).
  double user_cap_frac = 0.1;
  int user_cap = 4;
  /// Fraction of roles with a required-context constraint (context-aware
  /// RBAC): one of location/network pinned to a specific value.
  double context_frac = 0.0;
  /// Fraction of roles with a prerequisite role (must be active in the
  /// session first); prerequisites always point at earlier roles, so the
  /// prerequisite graph is acyclic by construction.
  double prereq_frac = 0.0;
};

/// Builds a synthetic policy named "synthetic-<seed>".
Policy GeneratePolicy(const PolicyGenParams& params);

/// Canonical role/user/object names used by the generator ("R0007",
/// "u0042", "obj13"), exposed so request generators can reference them.
std::string SyntheticRoleName(int index);
std::string SyntheticUserName(int index);
std::string SyntheticObjectName(int index);

}  // namespace sentinel

#endif  // SENTINELPP_WORKLOAD_POLICY_GEN_H_
