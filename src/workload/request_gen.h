#ifndef SENTINELPP_WORKLOAD_REQUEST_GEN_H_
#define SENTINELPP_WORKLOAD_REQUEST_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/policy.h"
#include "rules/decision.h"

namespace sentinel {

/// Kind of one workload request, matching the enforcement surface.
enum class RequestKind : int {
  kCreateSession = 0,
  kDeleteSession,
  kAddActiveRole,
  kDropActiveRole,
  kCheckAccess,
  kAssignUser,
  kDeassignUser,
  kEnableRole,
  kDisableRole,
  kAdvanceTime,
  kSetContext,
};

const char* RequestKindToString(RequestKind kind);

/// \brief One request of a generated stream.
struct Request {
  RequestKind kind = RequestKind::kCheckAccess;
  UserName user;
  SessionId session;
  RoleName role;
  OperationName operation;
  ObjectName object;
  PurposeName purpose;
  Duration advance = 0;  // kAdvanceTime only.
  std::string context_key;    // kSetContext only.
  std::string context_value;  // kSetContext only.
};

/// \brief Mix weights for the stream (relative, not normalized).
struct RequestMix {
  int create_session = 5;
  int delete_session = 2;
  int add_active_role = 25;
  int drop_active_role = 10;
  int check_access = 40;
  int assign_user = 3;
  int deassign_user = 2;
  int enable_role = 1;
  int disable_role = 1;
  int advance_time = 10;
  int set_context = 2;
};

struct RequestGenParams {
  uint64_t seed = 7;
  int num_requests = 1000;
  RequestMix mix;
  /// Bound on each time advance; actual advances are odd microsecond
  /// counts to keep temporal firings collision-free across systems.
  Duration max_advance = 2 * kMinute;
  /// Probability a request references an unknown user/role/session,
  /// exercising the ELSE branches.
  double invalid_frac = 0.1;
};

/// \brief Deterministic plausible request streams over a policy: sessions
/// that were created get used and eventually deleted, activations pick
/// assigned roles most of the time, accesses target granted permissions
/// about half the time.
class RequestGenerator {
 public:
  RequestGenerator(const Policy& policy, const RequestGenParams& params);

  /// Generates the full stream (stateful; call once).
  std::vector<Request> Generate();

 private:
  const Policy& policy_;
  RequestGenParams params_;
};

/// Applies one request to any system exposing the engine surface
/// (AuthorizationEngine, DirectEnforcer). Returns the decision;
/// kAdvanceTime returns a synthetic allow.
template <typename System>
Decision ApplyRequest(System& system, const Request& request) {
  switch (request.kind) {
    case RequestKind::kCreateSession:
      return system.CreateSession(request.user, request.session);
    case RequestKind::kDeleteSession:
      return system.DeleteSession(request.session);
    case RequestKind::kAddActiveRole:
      return system.AddActiveRole(request.user, request.session,
                                  request.role);
    case RequestKind::kDropActiveRole:
      return system.DropActiveRole(request.user, request.session,
                                   request.role);
    case RequestKind::kCheckAccess:
      return system.CheckAccess(request.session, request.operation,
                                request.object, request.purpose);
    case RequestKind::kAssignUser:
      return system.AssignUser(request.user, request.role);
    case RequestKind::kDeassignUser:
      return system.DeassignUser(request.user, request.role);
    case RequestKind::kEnableRole:
      return system.EnableRole(request.role);
    case RequestKind::kDisableRole:
      return system.DisableRole(request.role);
    case RequestKind::kAdvanceTime: {
      system.AdvanceTo(system.Now() + request.advance);
      Decision d;
      d.Allow("advance");
      return d;
    }
    case RequestKind::kSetContext: {
      system.SetContext(request.context_key, request.context_value);
      Decision d;
      d.Allow("context");
      return d;
    }
  }
  Decision d;
  d.Deny("", "unknown request kind");
  return d;
}

}  // namespace sentinel

#endif  // SENTINELPP_WORKLOAD_REQUEST_GEN_H_
