#ifndef SENTINELPP_WORKLOAD_SCENARIO_GEN_H_
#define SENTINELPP_WORKLOAD_SCENARIO_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/policy.h"
#include "workload/request_gen.h"

namespace sentinel {

/// \brief Shape of a synthetic enterprise: an org *forest* of role trees
/// (one per division), GTRBAC shift schedules concentrated on the working
/// tiers, SoD sets over sibling roles (conflicting duties inside one
/// department), and a large user population assigned near the leaves.
///
/// This is the corpus side of the audit pipeline. GenerateScenario builds a
/// Policy that loads cleanly plus a deterministic request stream; the soak
/// driver (examples/enterprise_soak.cpp) replays the stream through an
/// audited AuthorizationService to produce canonical capture files for
/// sentinelpp-replay. Everything is deterministic in `seed`.
///
/// Unlike PolicyGenParams' flat random forest, the hierarchy here is an
/// explicit org tree: `divisions` independent trees, each `depth` levels
/// deep with `branching` children per role — so role count is
/// divisions * (branching^depth - 1) / (branching - 1), and senior chains
/// are `depth` long by construction.
struct ScenarioParams {
  uint64_t seed = 2026;

  // --- Org shape --------------------------------------------------------
  int divisions = 2;
  int depth = 4;
  int branching = 3;

  // --- Permissions ------------------------------------------------------
  int permissions_per_role = 4;
  int num_objects = 256;

  // --- Population -------------------------------------------------------
  int num_users = 1000;
  int assignments_per_user = 2;
  /// Probability an assignment lands on the leaf tier (workers) rather
  /// than a uniformly random level (managers).
  double leaf_assignment_prob = 0.75;
  double user_cap_frac = 0.1;
  int user_cap = 3;

  // --- Constraints ------------------------------------------------------
  /// SoD sets are drawn over *sibling* roles under one parent.
  int ssd_sets = 2;
  int ssd_set_size = 2;
  int dsd_sets = 2;
  int dsd_set_size = 2;
  /// Fraction of bottom-two-tier roles with a GTRBAC shift window.
  double shift_frac = 0.2;
  double cardinality_frac = 0.1;
  int cardinality_limit = 64;
  double duration_frac = 0.1;
  Duration duration = 45 * kMinute;
  double context_frac = 0.05;

  // --- Request stream ---------------------------------------------------
  int num_requests = 12000;
  RequestMix mix;
  Duration max_advance = 2 * kMinute;
  double invalid_frac = 0.05;
};

/// \brief A generated enterprise: the policy plus its request stream.
struct Scenario {
  Policy policy;
  std::vector<Request> requests;
  int num_roles = 0;
};

/// CI-sized preset: 14 roles, 200 users, 12k requests — fast enough for
/// the audit-smoke stage, large enough for a >=10k-decision capture.
ScenarioParams SmokeScenarioParams();

/// Production-scale preset: ~6.5k roles across 6 divisions 7 levels deep,
/// 120k users, 200k requests — the soak-test shape.
ScenarioParams EnterpriseScenarioParams();

Scenario GenerateScenario(const ScenarioParams& params);

/// Canonical names: "D1L03R0042" (division 1, level 3, 42nd role of that
/// level), "u000017", "o00013".
std::string ScenarioRoleName(int division, int level, int index);
std::string ScenarioUserName(int index);
std::string ScenarioObjectName(int index);

/// \brief The replay flip experiment's mutation: a copy of `policy` with
/// one added DSD set (`name`, cardinality 2) over the first pair of roles
/// some user is co-assigned to that is not already jointly DSD-constrained.
/// Deterministic in the policy contents. NotFound when no such pair exists.
Result<Policy> WithAddedDsdEdge(const Policy& policy, const std::string& name);

/// \brief Deterministic churn mutations for update-streaming harnesses
/// (the differential update-churn arm, serve --update-churn). Each returns
/// a copy of `policy` with one reversible edit chosen by `salt`; applying
/// the same helper twice with the same salt round-trips the policy.

/// Toggles the synthetic permission {"churn", "churn-object"} on the
/// salt-selected role.
Result<Policy> WithToggledPermission(const Policy& policy, uint64_t salt);

/// Toggles the salt-selected user's assignment to the salt-selected role,
/// skipping roles that appear in any SSD set (so the reconcile can never
/// trip a static SoD conflict mid-churn). NotFound when every role is
/// SSD-constrained.
Result<Policy> WithToggledAssignment(const Policy& policy, uint64_t salt);

/// Adds DSD set `name` (via WithAddedDsdEdge) when absent, removes it when
/// present.
Result<Policy> WithToggledDsd(const Policy& policy, const std::string& name);

}  // namespace sentinel

#endif  // SENTINELPP_WORKLOAD_SCENARIO_GEN_H_
