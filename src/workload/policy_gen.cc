#include "workload/policy_gen.h"

#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "event/time_pattern.h"

namespace sentinel {

std::string SyntheticRoleName(int index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "R%04d", index);
  return buf;
}

std::string SyntheticUserName(int index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "u%04d", index);
  return buf;
}

std::string SyntheticObjectName(int index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "obj%03d", index);
  return buf;
}

namespace {

constexpr const char* kOperations[] = {"read", "write", "exec", "append"};

/// Transitive junior closure (inclusive) for every role of the spec map.
std::map<RoleName, std::set<RoleName>> JuniorClosures(
    const std::map<RoleName, RoleSpec>& roles) {
  std::map<RoleName, std::set<RoleName>> closure;
  // Roles were generated so that juniors always precede seniors in name
  // order; a single ordered pass suffices.
  for (const auto& [name, spec] : roles) {
    std::set<RoleName>& mine = closure[name];
    mine.insert(name);
    for (const RoleName& junior : spec.juniors) {
      const auto& sub = closure[junior];
      mine.insert(sub.begin(), sub.end());
    }
  }
  return closure;
}

bool SsdAllows(const std::map<std::string, SodSet>& ssd_sets,
               const std::set<RoleName>& authorized) {
  for (const auto& [name, set] : ssd_sets) {
    int hits = 0;
    for (const RoleName& role : set.roles) {
      if (authorized.count(role) > 0 && ++hits >= set.n) return false;
    }
  }
  return true;
}

}  // namespace

Policy GeneratePolicy(const PolicyGenParams& params) {
  Rng rng(params.seed);
  Policy policy("synthetic-" + std::to_string(params.seed));

  // --- Roles with forest hierarchy (junior = some earlier role). --------
  for (int i = 0; i < params.num_roles; ++i) {
    RoleSpec spec;
    spec.name = SyntheticRoleName(i);
    if (i > 0 && rng.NextBool(params.hierarchy_prob)) {
      spec.juniors.insert(
          SyntheticRoleName(static_cast<int>(rng.NextBounded(i))));
    }
    for (int p = 0; p < params.permissions_per_role; ++p) {
      Permission perm;
      perm.operation = kOperations[rng.NextBounded(4)];
      perm.object = SyntheticObjectName(
          static_cast<int>(rng.NextBounded(params.num_objects)));
      spec.permissions.insert(perm);
    }
    if (rng.NextBool(params.cardinality_frac)) {
      spec.activation_cardinality = params.cardinality_limit;
    }
    if (rng.NextBool(params.duration_frac)) {
      // Offset durations per role to avoid same-instant expiry collisions.
      spec.max_activation =
          params.duration + static_cast<Duration>(i) * 17 * kMillisecond;
    }
    if (i > 0 && rng.NextBool(params.prereq_frac)) {
      spec.prerequisites.insert(
          SyntheticRoleName(static_cast<int>(rng.NextBounded(i))));
    }
    if (rng.NextBool(params.context_frac)) {
      static constexpr const char* kKeys[] = {"location", "network"};
      static constexpr const char* kValues[] = {"office", "home",
                                                "hospital", "secure",
                                                "insecure"};
      spec.required_context[kKeys[rng.NextBounded(2)]] =
          kValues[rng.NextBounded(5)];
    }
    if (rng.NextBool(params.shift_frac)) {
      // A 9-to-5-style shift; start hour varied to spread boundaries.
      const int start_hour = 6 + static_cast<int>(rng.NextBounded(4));
      const int end_hour = start_hour + 8;
      auto window = PeriodicExpression::Create(
          TimePattern(start_hour, (i * 7) % 60, 0, TimePattern::kAny,
                      TimePattern::kAny, TimePattern::kAny),
          TimePattern(end_hour, (i * 11) % 60, 0, TimePattern::kAny,
                      TimePattern::kAny, TimePattern::kAny));
      if (window.ok()) spec.enabling_window = *window;
    }
    (void)policy.AddRole(std::move(spec));
  }

  // --- SoD sets over distinct sampled roles. ------------------------------
  auto sample_roles = [&rng, &params](int count) {
    std::set<RoleName> out;
    while (static_cast<int>(out.size()) < count &&
           static_cast<int>(out.size()) < params.num_roles) {
      out.insert(SyntheticRoleName(
          static_cast<int>(rng.NextBounded(params.num_roles))));
    }
    return out;
  };
  for (int i = 0; i < params.ssd_sets; ++i) {
    SodSet set;
    set.name = "SSD" + std::to_string(i);
    set.roles = sample_roles(params.ssd_set_size);
    set.n = 2;
    if (static_cast<int>(set.roles.size()) >= set.n) {
      (void)policy.AddSsd(std::move(set));
    }
  }
  for (int i = 0; i < params.dsd_sets; ++i) {
    SodSet set;
    set.name = "DSD" + std::to_string(i);
    set.roles = sample_roles(params.dsd_set_size);
    set.n = 2;
    if (static_cast<int>(set.roles.size()) >= set.n) {
      (void)policy.AddDsd(std::move(set));
    }
  }

  // --- Users with SSD-respecting assignments. ----------------------------
  const auto closures = JuniorClosures(policy.roles());
  for (int i = 0; i < params.num_users; ++i) {
    UserSpec spec;
    spec.name = SyntheticUserName(i);
    std::set<RoleName> authorized;
    int attempts = 0;
    while (static_cast<int>(spec.assignments.size()) <
               params.assignments_per_user &&
           attempts++ < params.assignments_per_user * 8) {
      const RoleName candidate = SyntheticRoleName(
          static_cast<int>(rng.NextBounded(params.num_roles)));
      if (spec.assignments.count(candidate) > 0) continue;
      std::set<RoleName> hypothetical = authorized;
      const auto& closure = closures.at(candidate);
      hypothetical.insert(closure.begin(), closure.end());
      if (!SsdAllows(policy.ssd_sets(), hypothetical)) continue;
      spec.assignments.insert(candidate);
      authorized = std::move(hypothetical);
    }
    if (rng.NextBool(params.user_cap_frac)) {
      spec.max_active_roles = params.user_cap;
    }
    (void)policy.AddUser(std::move(spec));
  }

  return policy;
}

}  // namespace sentinel
