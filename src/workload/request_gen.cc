#include "workload/request_gen.h"

#include <set>

#include "common/rng.h"

namespace sentinel {

const char* RequestKindToString(RequestKind kind) {
  switch (kind) {
    case RequestKind::kCreateSession:
      return "createSession";
    case RequestKind::kDeleteSession:
      return "deleteSession";
    case RequestKind::kAddActiveRole:
      return "addActiveRole";
    case RequestKind::kDropActiveRole:
      return "dropActiveRole";
    case RequestKind::kCheckAccess:
      return "checkAccess";
    case RequestKind::kAssignUser:
      return "assignUser";
    case RequestKind::kDeassignUser:
      return "deassignUser";
    case RequestKind::kEnableRole:
      return "enableRole";
    case RequestKind::kDisableRole:
      return "disableRole";
    case RequestKind::kAdvanceTime:
      return "advanceTime";
    case RequestKind::kSetContext:
      return "setContext";
  }
  return "unknown";
}

RequestGenerator::RequestGenerator(const Policy& policy,
                                   const RequestGenParams& params)
    : policy_(policy), params_(params) {}

std::vector<Request> RequestGenerator::Generate() {
  Rng rng(params_.seed);
  std::vector<Request> out;
  out.reserve(static_cast<size_t>(params_.num_requests));

  // Name pools drawn from the policy.
  std::vector<UserName> users;
  for (const auto& [name, spec] : policy_.users()) users.push_back(name);
  std::vector<RoleName> roles;
  for (const auto& [name, spec] : policy_.roles()) roles.push_back(name);
  std::vector<Permission> perms;
  std::set<OperationName> op_set;
  std::set<ObjectName> obj_set;
  for (const auto& [name, spec] : policy_.roles()) {
    for (const Permission& perm : spec.permissions) {
      perms.push_back(perm);
      op_set.insert(perm.operation);
      obj_set.insert(perm.object);
    }
  }
  const std::vector<OperationName> ops(op_set.begin(), op_set.end());
  const std::vector<ObjectName> objs(obj_set.begin(), obj_set.end());
  std::vector<PurposeName> purposes;
  for (const PurposeSpec& purpose : policy_.purposes()) {
    purposes.push_back(purpose.name);
  }

  // Live session bookkeeping: plausible streams reuse created sessions.
  struct LiveSession {
    SessionId id;
    UserName user;
  };
  std::vector<LiveSession> sessions;
  int next_session = 0;

  auto pick = [&rng](const auto& pool) -> decltype(pool[0]) {
    return pool[rng.NextBounded(pool.size())];
  };
  auto pick_user = [&]() -> UserName {
    if (users.empty() || rng.NextBool(params_.invalid_frac)) {
      return "ghost-user";
    }
    return pick(users);
  };
  auto pick_role = [&]() -> RoleName {
    if (roles.empty() || rng.NextBool(params_.invalid_frac)) {
      return "ghost-role";
    }
    return pick(roles);
  };

  const RequestMix& mix = params_.mix;
  const int weights[] = {mix.create_session,  mix.delete_session,
                         mix.add_active_role, mix.drop_active_role,
                         mix.check_access,    mix.assign_user,
                         mix.deassign_user,   mix.enable_role,
                         mix.disable_role,    mix.advance_time,
                         mix.set_context};
  int total_weight = 0;
  for (int w : weights) total_weight += w;
  if (total_weight <= 0) return out;

  for (int i = 0; i < params_.num_requests; ++i) {
    int draw = static_cast<int>(
        rng.NextBounded(static_cast<uint64_t>(total_weight)));
    int kind_index = 0;
    while (draw >= weights[kind_index]) {
      draw -= weights[kind_index];
      ++kind_index;
    }
    auto kind = static_cast<RequestKind>(kind_index);
    // Session-dependent kinds degrade to createSession when none is live.
    const bool needs_session = kind == RequestKind::kDeleteSession ||
                               kind == RequestKind::kAddActiveRole ||
                               kind == RequestKind::kDropActiveRole ||
                               kind == RequestKind::kCheckAccess;
    if (needs_session && sessions.empty()) {
      kind = RequestKind::kCreateSession;
    }

    Request request;
    request.kind = kind;
    switch (kind) {
      case RequestKind::kCreateSession: {
        request.user = pick_user();
        request.session = "s" + std::to_string(next_session++);
        if (request.user != "ghost-user") {
          sessions.push_back(LiveSession{request.session, request.user});
        }
        break;
      }
      case RequestKind::kDeleteSession: {
        const size_t index = rng.NextBounded(sessions.size());
        request.session = sessions[index].id;
        sessions.erase(sessions.begin() + static_cast<ptrdiff_t>(index));
        break;
      }
      case RequestKind::kAddActiveRole:
      case RequestKind::kDropActiveRole: {
        const LiveSession& live = sessions[rng.NextBounded(sessions.size())];
        request.session = live.id;
        request.user = rng.NextBool(params_.invalid_frac) ? pick_user()
                                                          : live.user;
        // Prefer roles the user is assigned to, for interesting allows.
        auto spec = policy_.users().find(live.user);
        if (spec != policy_.users().end() &&
            !spec->second.assignments.empty() && rng.NextBool(0.7)) {
          std::vector<RoleName> assigned(spec->second.assignments.begin(),
                                         spec->second.assignments.end());
          request.role = pick(assigned);
        } else {
          request.role = pick_role();
        }
        break;
      }
      case RequestKind::kCheckAccess: {
        const LiveSession& live = sessions[rng.NextBounded(sessions.size())];
        request.session = live.id;
        if (!perms.empty() && rng.NextBool(0.5)) {
          const Permission& perm = pick(perms);
          request.operation = perm.operation;
          request.object = perm.object;
        } else {
          request.operation = ops.empty() ? "read" : pick(ops);
          request.object = objs.empty() ? "obj0" : pick(objs);
        }
        if (!purposes.empty() && rng.NextBool(0.5)) {
          request.purpose = pick(purposes);
        }
        break;
      }
      case RequestKind::kAssignUser:
      case RequestKind::kDeassignUser:
        request.user = pick_user();
        request.role = pick_role();
        break;
      case RequestKind::kEnableRole:
      case RequestKind::kDisableRole:
        request.role = pick_role();
        break;
      case RequestKind::kAdvanceTime: {
        // Odd microsecond counts: temporal firings stay collision-free.
        const Duration bound = params_.max_advance > 2 ? params_.max_advance
                                                       : Duration{2};
        request.advance =
            static_cast<Duration>(rng.NextBounded(
                static_cast<uint64_t>(bound))) |
            1;
        break;
      }
      case RequestKind::kSetContext: {
        static constexpr const char* kKeys[] = {"location", "network"};
        static constexpr const char* kValues[] = {"office", "home",
                                                  "hospital", "secure",
                                                  "insecure"};
        request.context_key = kKeys[rng.NextBounded(2)];
        request.context_value = kValues[rng.NextBounded(5)];
        break;
      }
    }
    out.push_back(std::move(request));
  }
  return out;
}

}  // namespace sentinel
