#ifndef SENTINELPP_BASELINE_TRBAC_BASELINE_H_
#define SENTINELPP_BASELINE_TRBAC_BASELINE_H_

#include <queue>
#include <string>
#include <vector>

#include "common/clock.h"
#include "gtrbac/periodic_expression.h"
#include "gtrbac/role_state.h"
#include "rbac/types.h"

namespace sentinel {

/// \brief A minimal role-trigger table in the style of Bertino et al.'s
/// TRBAC (related-work comparator for experiment E12).
///
/// TRBAC expresses periodic role enabling/disabling through *role
/// triggers*: fixed (periodic-time, action) pairs evaluated against the
/// clock. This comparator implements exactly that — a flat trigger table,
/// re-scanned on time advance — without composite events, parameters or
/// alternative actions, illustrating the expressiveness gap and providing
/// a performance reference for periodic enablement processing.
class TrbacBaseline {
 public:
  explicit TrbacBaseline(SimulatedClock* clock) : clock_(clock) {}

  /// Installs a periodic enabling trigger: `role` is enabled inside the
  /// expression's windows and disabled outside (evaluated on AdvanceTo).
  void AddEnablingTrigger(const RoleName& role,
                          const PeriodicExpression& period);

  /// Processes all trigger firings in (time, trigger-order) up to `t`.
  void AdvanceTo(Time t);

  bool IsEnabled(const RoleName& role) const { return state_.IsEnabled(role); }
  uint64_t firings() const { return firings_; }

 private:
  struct Trigger {
    RoleName role;
    PeriodicExpression period;
  };
  struct Firing {
    Time when;
    uint64_t seq;
    size_t trigger_index;
    bool is_start;
    bool operator<(const Firing& other) const {  // Min-heap inversion.
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  SimulatedClock* clock_;  // Not owned.
  std::vector<Trigger> triggers_;
  std::priority_queue<Firing> queue_;
  RoleStateTable state_;
  uint64_t next_seq_ = 1;
  uint64_t firings_ = 0;
};

}  // namespace sentinel

#endif  // SENTINELPP_BASELINE_TRBAC_BASELINE_H_
