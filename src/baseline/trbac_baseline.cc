#include "baseline/trbac_baseline.h"

namespace sentinel {

void TrbacBaseline::AddEnablingTrigger(const RoleName& role,
                                       const PeriodicExpression& period) {
  const size_t index = triggers_.size();
  triggers_.push_back(Trigger{role, period});
  const Time now = clock_->Now();
  if (period.Contains(now)) {
    state_.Enable(role, now);
  } else {
    state_.Disable(role, now);
  }
  if (auto start = period.NextWindowStart(now)) {
    queue_.push(Firing{*start, next_seq_++, index, true});
  }
  if (auto end = period.NextWindowEnd(now)) {
    queue_.push(Firing{*end, next_seq_++, index, false});
  }
}

void TrbacBaseline::AdvanceTo(Time t) {
  while (!queue_.empty() && queue_.top().when <= t) {
    const Firing firing = queue_.top();
    queue_.pop();
    clock_->SetTime(firing.when);
    const Trigger& trigger = triggers_[firing.trigger_index];
    if (firing.is_start) {
      state_.Enable(trigger.role, firing.when);
    } else {
      state_.Disable(trigger.role, firing.when);
    }
    ++firings_;
    const auto next = firing.is_start
                          ? trigger.period.NextWindowStart(firing.when)
                          : trigger.period.NextWindowEnd(firing.when);
    if (next.has_value()) {
      queue_.push(Firing{*next, next_seq_++, firing.trigger_index,
                         firing.is_start});
    }
  }
  clock_->SetTime(t);
}

}  // namespace sentinel
