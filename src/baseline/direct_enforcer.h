#ifndef SENTINELPP_BASELINE_DIRECT_ENFORCER_H_
#define SENTINELPP_BASELINE_DIRECT_ENFORCER_H_

#include <queue>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "core/policy.h"
#include "core/privacy.h"
#include "gtrbac/role_state.h"
#include "rbac/core_api.h"
#include "rules/decision.h"

namespace sentinel {

/// \brief Hand-coded straight-line enforcement of the same policy model —
/// the "manual low-level semantic descriptor" approach the paper argues
/// OWTE rule generation replaces.
///
/// The decision semantics deliberately mirror AuthorizationEngine
/// operation-for-operation (same checks, same order, same reason strings):
/// the differential property test runs random workloads against both and
/// requires identical decision sequences and end states. Performance-wise
/// this is the lower-bound baseline (no event detection, no rule
/// dispatch) used by the enforcement-overhead experiments.
///
/// Known mirrored composition limits (same on both sides, documented in
/// DESIGN.md): CFD cascades are single-level; roles that are both a
/// time-SoD member and a CFD companion are out of scope for equivalence.
class DirectEnforcer {
 public:
  explicit DirectEnforcer(SimulatedClock* clock) : clock_(clock) {}

  DirectEnforcer(const DirectEnforcer&) = delete;
  DirectEnforcer& operator=(const DirectEnforcer&) = delete;

  Status LoadPolicy(const Policy& policy);
  Status ApplyPolicyUpdate(const Policy& updated);
  const Policy& policy() const { return policy_; }

  Decision CreateSession(const UserName& user, const SessionId& session);
  Decision DeleteSession(const SessionId& session);
  Decision AddActiveRole(const UserName& user, const SessionId& session,
                         const RoleName& role);
  Decision DropActiveRole(const UserName& user, const SessionId& session,
                          const RoleName& role);
  Decision CheckAccess(const SessionId& session, const OperationName& op,
                       const ObjectName& obj, const PurposeName& purpose = "");
  Decision AssignUser(const UserName& user, const RoleName& role);
  Decision DeassignUser(const UserName& user, const RoleName& role);
  Decision EnableRole(const RoleName& role);
  Decision DisableRole(const RoleName& role);

  /// Advances time, applying shift boundaries and duration expiries in
  /// (time, schedule-order) order.
  void AdvanceTo(Time t);
  Time Now() const { return clock_->Now(); }

  /// Context-aware RBAC mirror: records the value and immediately
  /// deactivates active roles whose context constraints broke.
  void SetContext(const std::string& key, const std::string& value);
  const std::string& ContextValue(const std::string& key) const;
  bool ContextSatisfied(
      const std::map<std::string, std::string>& required) const;

  RbacSystem& rbac() { return rbac_; }
  const RbacSystem& rbac() const { return rbac_; }
  RoleStateTable& role_state() { return state_; }
  const RoleStateTable& role_state() const { return state_; }

  uint64_t decisions_made() const { return decisions_made_; }
  uint64_t denials() const { return denials_; }

 private:
  struct Expiry {
    Time when;
    uint64_t seq;
    UserName user;
    SessionId session;
    RoleName role;
    /// Activation generation; stale entries (role dropped or re-activated
    /// since) are skipped — the analog of cancelling a PLUS timer.
    uint64_t generation;
    bool operator<(const Expiry& other) const {  // Min-heap inversion.
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };
  struct Boundary {
    Time when;
    uint64_t seq;
    RoleName role;
    bool is_start;
    bool operator<(const Boundary& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  Status Reconcile(const Policy& from, const Policy& to);
  void RebuildBoundaries();
  Decision Finish(Decision decision);

  /// Drops the role, cancels its expiries and runs transaction cascades.
  void DropWithCascades(const UserName& user, const SessionId& session,
                        const RoleName& role);
  void DeactivateAllInstances(const RoleName& role);
  void CancelExpiries(const SessionId& session, const RoleName& role);
  int CountUserActiveRoles(const UserName& user) const;
  bool TsodGuardedNow(const RoleName& role, TimeSodKind kind) const;
  bool DisableTsodOk(const RoleName& role) const;
  bool EnableTsodOk(const RoleName& role) const;
  bool IsCfdTrigger(const RoleName& role) const;
  void DisableRoleInternal(const RoleName& role);

  SimulatedClock* clock_;  // Not owned.
  RbacSystem rbac_;
  RoleStateTable state_;
  PrivacyStore privacy_;
  Policy policy_;
  bool policy_loaded_ = false;

  std::priority_queue<Expiry> expiries_;
  std::map<std::pair<SessionId, RoleName>, uint64_t> activation_gen_;
  std::priority_queue<Boundary> boundaries_;
  std::map<std::string, std::string> context_;
  uint64_t next_seq_ = 1;
  uint64_t decisions_made_ = 0;
  uint64_t denials_ = 0;
};

}  // namespace sentinel

#endif  // SENTINELPP_BASELINE_DIRECT_ENFORCER_H_
