#include "baseline/direct_enforcer.h"

#include <algorithm>

namespace sentinel {

Status DirectEnforcer::LoadPolicy(const Policy& policy) {
  if (policy_loaded_) {
    return Status::FailedPrecondition(
        "a policy is already loaded; use ApplyPolicyUpdate");
  }
  SENTINEL_RETURN_IF_ERROR(policy.Validate());
  SENTINEL_RETURN_IF_ERROR(Reconcile(Policy(), policy));
  policy_ = policy;
  policy_loaded_ = true;
  RebuildBoundaries();
  return Status::OK();
}

Status DirectEnforcer::ApplyPolicyUpdate(const Policy& updated) {
  if (!policy_loaded_) {
    return Status::FailedPrecondition("no policy loaded yet");
  }
  SENTINEL_RETURN_IF_ERROR(updated.Validate());
  // Mirror of the engine's regeneration side effects: pending duration
  // expiries of affected roles are dropped (superseded PLUS events are
  // deactivated over there).
  const std::set<RoleName> affected = Policy::AffectedRoles(policy_, updated);
  SENTINEL_RETURN_IF_ERROR(Reconcile(policy_, updated));
  policy_ = updated;
  for (const SessionId& session : rbac_.db().SessionIds()) {
    auto info = rbac_.db().GetSession(session);
    if (!info.ok()) continue;
    for (const RoleName& role : (*info)->active_roles) {
      if (affected.count(role) > 0) CancelExpiries(session, role);
    }
  }
  RebuildBoundaries();
  return Status::OK();
}

Status DirectEnforcer::Reconcile(const Policy& from, const Policy& to) {
  // Same ordering as the engine's ApplyBaseDelta — removals first, then
  // adds, then constraints. The adds are best-effort exactly like the
  // engine's: an entry the live runtime state refuses is skipped (the
  // runtime constraint wins), so the oracle stays in lockstep with a
  // service whose commit can never fail on runtime conflicts.
  const auto best_effort = [](const Status&) {};
  for (const auto& [name, set] : from.ssd_sets()) {
    auto it = to.ssd_sets().find(name);
    if (it == to.ssd_sets().end() || !(it->second == set)) {
      (void)rbac_.DeleteSsdSet(name);
    }
  }
  for (const auto& [name, set] : from.dsd_sets()) {
    auto it = to.dsd_sets().find(name);
    if (it == to.dsd_sets().end() || !(it->second == set)) {
      (void)rbac_.DeleteDsdSet(name);
    }
  }
  for (const auto& [name, spec] : from.users()) {
    auto it = to.users().find(name);
    for (const RoleName& role : spec.assignments) {
      if (it == to.users().end() || it->second.assignments.count(role) == 0) {
        (void)rbac_.DeassignUser(name, role);
      }
    }
  }
  for (const auto& [name, spec] : from.roles()) {
    auto it = to.roles().find(name);
    for (const Permission& perm : spec.permissions) {
      if (it == to.roles().end() ||
          it->second.permissions.count(perm) == 0) {
        (void)rbac_.RevokePermission(perm.operation, perm.object, name);
      }
    }
    for (const RoleName& junior : spec.juniors) {
      if (it == to.roles().end() || it->second.juniors.count(junior) == 0) {
        (void)rbac_.DeleteInheritance(name, junior);
      }
    }
  }
  for (const auto& [name, spec] : from.roles()) {
    if (to.roles().count(name) == 0) {
      (void)rbac_.DeleteRole(name);
      state_.EraseRole(name);
    }
  }
  for (const auto& [name, spec] : from.users()) {
    if (to.users().count(name) == 0) (void)rbac_.DeleteUser(name);
  }
  for (const auto& [name, spec] : to.users()) {
    if (!rbac_.db().HasUser(name)) {
      best_effort(rbac_.AddUser(name));
    }
  }
  for (const auto& [name, spec] : to.roles()) {
    if (!rbac_.db().HasRole(name)) {
      best_effort(rbac_.AddRole(name));
    }
  }
  for (const auto& [name, spec] : to.roles()) {
    for (const RoleName& junior : spec.juniors) {
      if (!rbac_.hierarchy().ImmediateJuniors(name).count(junior)) {
        best_effort(rbac_.AddInheritance(name, junior));
      }
    }
    for (const Permission& perm : spec.permissions) {
      if (!rbac_.db().IsGranted(perm, name)) {
        best_effort(
            rbac_.GrantPermission(perm.operation, perm.object, name));
      }
    }
  }
  for (const auto& [name, spec] : to.users()) {
    for (const RoleName& role : spec.assignments) {
      if (!rbac_.db().IsAssigned(name, role)) {
        best_effort(rbac_.AssignUser(name, role));
      }
    }
  }
  for (const auto& [name, set] : to.ssd_sets()) {
    if (!rbac_.ssd().GetSet(name).ok()) {
      best_effort(rbac_.InstallSsdSet(name, set.roles, set.n));
    }
  }
  for (const auto& [name, set] : to.dsd_sets()) {
    if (!rbac_.dsd().GetSet(name).ok()) {
      best_effort(rbac_.InstallDsdSet(name, set.roles, set.n));
    }
  }
  privacy_ = PrivacyStore();
  for (const PurposeSpec& purpose : to.purposes()) {
    SENTINEL_RETURN_IF_ERROR(
        privacy_.AddPurpose(purpose.name, purpose.parent));
  }
  for (const ObjectPolicySpec& spec : to.object_policies()) {
    SENTINEL_RETURN_IF_ERROR(
        privacy_.SetObjectPolicy(spec.object, spec.purposes));
  }
  const Time now = Now();
  for (const auto& [name, spec] : to.roles()) {
    if (spec.enabling_window.has_value()) {
      if (spec.enabling_window->Contains(now)) {
        state_.Enable(name, now);
      } else {
        state_.Disable(name, now);
        DeactivateAllInstances(name);
      }
    } else {
      auto it = from.roles().find(name);
      const bool had_window =
          it != from.roles().end() && it->second.enabling_window.has_value();
      if (had_window) state_.Enable(name, now);
    }
  }
  return Status::OK();
}

void DirectEnforcer::RebuildBoundaries() {
  boundaries_ = {};
  const Time now = Now();
  for (const auto& [name, spec] : policy_.roles()) {
    if (!spec.enabling_window.has_value()) continue;
    const PeriodicExpression& window = *spec.enabling_window;
    if (auto start = window.NextWindowStart(now)) {
      boundaries_.push(Boundary{*start, next_seq_++, name, true});
    }
    if (auto end = window.NextWindowEnd(now)) {
      boundaries_.push(Boundary{*end, next_seq_++, name, false});
    }
  }
}

Decision DirectEnforcer::Finish(Decision decision) {
  ++decisions_made_;
  if (!decision.allowed) ++denials_;
  return decision;
}

Decision DirectEnforcer::CreateSession(const UserName& user,
                                       const SessionId& session) {
  Decision d;
  if (rbac_.db().HasUser(user) && !session.empty() &&
      !rbac_.db().HasSession(session)) {
    (void)rbac_.db().CreateSession(user, session);
    d.Allow("ADM.createSession");
  } else {
    d.Deny("ADM.createSession", "Cannot Create Session");
  }
  return Finish(d);
}

Decision DirectEnforcer::DeleteSession(const SessionId& session) {
  Decision d;
  auto info = rbac_.db().GetSession(session);
  if (!info.ok()) {
    d.Deny("ADM.deleteSession", "No Such Session");
    return Finish(d);
  }
  const UserName user = (*info)->user;
  const std::set<RoleName> active = (*info)->active_roles;
  for (const RoleName& role : active) {
    DropWithCascades(user, session, role);
  }
  (void)rbac_.db().DeleteSession(session);
  d.Allow("ADM.deleteSession");
  return Finish(d);
}

Decision DirectEnforcer::AddActiveRole(const UserName& user,
                                       const SessionId& session,
                                       const RoleName& role) {
  Decision d;
  // Roles outside the policy have no activation rule: default deny.
  if (!policy_.HasRole(role)) {
    d.Deny("", "Permission Denied");
    return Finish(d);
  }
  const RoleSpec& spec = policy_.roles().at(role);
  const bool tx_dependent = policy_.RoleIsTransactionDependent(role);

  // The AAR/ASEC condition chain, in the generated rules' order.
  auto session_info = rbac_.db().GetSession(session);
  const bool base_ok =
      rbac_.db().HasUser(user) && session_info.ok() &&
      (*session_info)->user == user &&
      !rbac_.db().IsSessionRoleActive(session, role) &&
      (policy_.RoleInHierarchy(role) ? rbac_.IsAuthorized(user, role)
                                     : rbac_.db().IsAssigned(user, role)) &&
      (!policy_.RoleInDsd(role) || rbac_.DsdSatisfiedWith(session, role)) &&
      ContextSatisfied(spec.required_context) && state_.IsEnabled(role);

  bool ok = base_ok;
  std::string deny_reason = "Access Denied Cannot Activate";
  if (tx_dependent) {
    deny_reason = "Permission Denied";
    // The transaction window is open iff the controller is active
    // somewhere (ASEC window invariant).
    for (const TransactionActivation& tx : policy_.transactions()) {
      if (tx.dependent != role) continue;
      if (rbac_.db().ActiveSessionCount(tx.controller) == 0) ok = false;
    }
  } else if (ok && !spec.prerequisites.empty()) {
    for (const RoleName& prereq : spec.prerequisites) {
      if (!rbac_.db().IsSessionRoleActive(session, prereq)) {
        ok = false;
        break;
      }
    }
  }
  if (!ok) {
    d.Deny(tx_dependent ? "ASEC" : "AAR." + role, deny_reason);
    return Finish(d);
  }

  (void)rbac_.db().AddSessionRole(session, role);

  // Post-activation compensating checks, in rule-firing order: CC first
  // (role-filter rules precede user-filter rules), then UAC.
  if (spec.activation_cardinality > 0 &&
      rbac_.db().ActiveSessionCount(role) > spec.activation_cardinality) {
    DropWithCascades(user, session, role);
    d.Deny("CC." + role, "Maximum Number of Roles Reached");
    return Finish(d);
  }
  auto user_it = policy_.users().find(user);
  if (user_it != policy_.users().end() &&
      user_it->second.max_active_roles > 0 &&
      CountUserActiveRoles(user) > user_it->second.max_active_roles) {
    DropWithCascades(user, session, role);
    d.Deny("UAC." + user, "Maximum Number of Roles Reached");
    return Finish(d);
  }

  // Duration bounds: one expiry per applicable constraint (role-level,
  // then user-level), the engine's PLUS-per-filter analog.
  const uint64_t generation = ++activation_gen_[{session, role}];
  if (spec.max_activation > 0) {
    expiries_.push(Expiry{Now() + spec.max_activation, next_seq_++, user,
                          session, role, generation});
  }
  if (user_it != policy_.users().end()) {
    auto dur = user_it->second.role_durations.find(role);
    if (dur != user_it->second.role_durations.end()) {
      expiries_.push(Expiry{Now() + dur->second, next_seq_++, user, session,
                            role, generation});
    }
  }

  d.Allow(tx_dependent ? "ASEC" : "AAR." + role);
  return Finish(d);
}

Decision DirectEnforcer::DropActiveRole(const UserName& user,
                                        const SessionId& session,
                                        const RoleName& role) {
  Decision d;
  auto info = rbac_.db().GetSession(session);
  if (info.ok() && (*info)->user == user &&
      rbac_.db().IsSessionRoleActive(session, role)) {
    DropWithCascades(user, session, role);
    d.Allow("GLOB.drop");
  } else {
    d.Deny("GLOB.drop", "Cannot Deactivate");
  }
  return Finish(d);
}

Decision DirectEnforcer::CheckAccess(const SessionId& session,
                                     const OperationName& op,
                                     const ObjectName& obj,
                                     const PurposeName& purpose) {
  Decision d;
  auto has_perm = rbac_.CheckAccess(session, op, obj);
  const bool ok = rbac_.db().HasSession(session) &&
                  rbac_.db().HasOperation(op) && rbac_.db().HasObject(obj) &&
                  has_perm.ok() && *has_perm &&
                  privacy_.AccessPermitted(obj, purpose);
  if (ok) {
    d.Allow("CA.global");
  } else {
    d.Deny("CA.global", "Permission Denied");
  }
  return Finish(d);
}

Decision DirectEnforcer::AssignUser(const UserName& user,
                                    const RoleName& role) {
  Decision d;
  if (rbac_.db().HasUser(user) && rbac_.db().HasRole(role) &&
      !rbac_.db().IsAssigned(user, role) &&
      rbac_.SsdSatisfiedWith(user, role)) {
    (void)rbac_.db().Assign(user, role);
    d.Allow("ADM.assign");
  } else {
    d.Deny("ADM.assign", "Cannot Assign");
  }
  return Finish(d);
}

Decision DirectEnforcer::DeassignUser(const UserName& user,
                                      const RoleName& role) {
  Decision d;
  if (rbac_.db().HasUser(user) && rbac_.db().IsAssigned(user, role)) {
    (void)rbac_.db().Deassign(user, role);
    for (const SessionId& session : rbac_.db().UserSessions(user)) {
      auto info = rbac_.db().GetSession(session);
      if (!info.ok()) continue;
      const std::set<RoleName> active = (*info)->active_roles;
      for (const RoleName& r : active) {
        if (!rbac_.IsAuthorized(user, r)) {
          DropWithCascades(user, session, r);
        }
      }
    }
    d.Allow("ADM.deassign");
  } else {
    d.Deny("ADM.deassign", "Cannot Deassign");
  }
  return Finish(d);
}

Decision DirectEnforcer::EnableRole(const RoleName& role) {
  Decision d;
  if (!rbac_.db().HasRole(role)) {
    d.Deny("GLOB.enable", "No Such Role");
    return Finish(d);
  }
  if (IsCfdTrigger(role)) {
    // CFD1: the companion must come along.
    const CfdPair* pair = nullptr;
    for (const CfdPair& p : policy_.cfd_pairs()) {
      if (p.trigger == role) {
        pair = &p;
        break;
      }
    }
    const bool companion_ok = state_.IsEnabled(pair->companion) ||
                              EnableTsodOk(pair->companion);
    if (EnableTsodOk(role) && companion_ok) {
      state_.Enable(role, Now());
      if (!state_.IsEnabled(pair->companion)) {
        state_.Enable(pair->companion, Now());
      }
      d.Allow("CFD." + role + ".enable");
    } else {
      d.Deny("CFD." + role + ".enable", "Cannot Enable " + role);
    }
    return Finish(d);
  }
  if (EnableTsodOk(role)) {
    state_.Enable(role, Now());
    d.Allow("GLOB.enable");
  } else {
    d.Deny("GLOB.enable", "Denied by Enabling-Time SoD");
  }
  return Finish(d);
}

Decision DirectEnforcer::DisableRole(const RoleName& role) {
  Decision d;
  if (!rbac_.db().HasRole(role)) {
    d.Deny("GLOB.disable", "No Such Role");
    return Finish(d);
  }
  const bool guarded = TsodGuardedNow(role, TimeSodKind::kDisabling);
  if (guarded && !DisableTsodOk(role)) {
    d.Deny("TSOD", "Denied as Counter-Role Already Disabled");
    return Finish(d);
  }
  DisableRoleInternal(role);
  // CFD2: disabling a companion pulls its trigger down (single level,
  // mirroring the engine's filtered-event cascade).
  for (const CfdPair& pair : policy_.cfd_pairs()) {
    if (pair.companion == role && state_.IsEnabled(pair.trigger)) {
      DisableRoleInternal(pair.trigger);
    }
  }
  d.Allow(guarded ? "TSOD" : "GLOB.disable");
  return Finish(d);
}

void DirectEnforcer::DisableRoleInternal(const RoleName& role) {
  state_.Disable(role, Now());
  DeactivateAllInstances(role);
}

void DirectEnforcer::AdvanceTo(Time t) {
  for (;;) {
    // Next due item across both temporal streams.
    const bool has_expiry = !expiries_.empty() && expiries_.top().when <= t;
    const bool has_boundary =
        !boundaries_.empty() && boundaries_.top().when <= t;
    if (!has_expiry && !has_boundary) break;
    bool take_boundary;
    if (has_expiry && has_boundary) {
      const Time et = expiries_.top().when;
      const Time bt = boundaries_.top().when;
      take_boundary =
          bt < et ||
          (bt == et && boundaries_.top().seq < expiries_.top().seq);
    } else {
      take_boundary = has_boundary;
    }
    if (take_boundary) {
      const Boundary boundary = boundaries_.top();
      boundaries_.pop();
      clock_->SetTime(boundary.when);
      auto spec_it = policy_.roles().find(boundary.role);
      if (spec_it != policy_.roles().end() &&
          spec_it->second.enabling_window.has_value()) {
        if (boundary.is_start) {
          state_.Enable(boundary.role, boundary.when);
        } else {
          state_.Disable(boundary.role, boundary.when);
          DeactivateAllInstances(boundary.role);
        }
        // Schedule the next same-kind boundary.
        const PeriodicExpression& window = *spec_it->second.enabling_window;
        const auto next = boundary.is_start
                              ? window.NextWindowStart(boundary.when)
                              : window.NextWindowEnd(boundary.when);
        if (next.has_value()) {
          boundaries_.push(Boundary{*next, next_seq_++, boundary.role,
                                    boundary.is_start});
        }
      }
    } else {
      const Expiry expiry = expiries_.top();
      expiries_.pop();
      clock_->SetTime(expiry.when);
      auto gen = activation_gen_.find({expiry.session, expiry.role});
      if (gen == activation_gen_.end() || gen->second != expiry.generation) {
        continue;  // Stale: dropped or re-activated since scheduling.
      }
      if (rbac_.db().IsSessionRoleActive(expiry.session, expiry.role)) {
        DropWithCascades(expiry.user, expiry.session, expiry.role);
      }
    }
  }
  clock_->SetTime(t);
}

void DirectEnforcer::SetContext(const std::string& key,
                                const std::string& value) {
  context_[key] = value;
  // Mirror of the generated CTX rules: roles whose constraints broke are
  // deactivated everywhere, in role order.
  for (const auto& [name, spec] : policy_.roles()) {
    if (spec.required_context.empty()) continue;
    if (!ContextSatisfied(spec.required_context)) {
      DeactivateAllInstances(name);
    }
  }
}

const std::string& DirectEnforcer::ContextValue(
    const std::string& key) const {
  static const std::string* kEmpty = new std::string();
  auto it = context_.find(key);
  return it == context_.end() ? *kEmpty : it->second;
}

bool DirectEnforcer::ContextSatisfied(
    const std::map<std::string, std::string>& required) const {
  for (const auto& [key, value] : required) {
    auto it = context_.find(key);
    if (it == context_.end() || it->second != value) return false;
  }
  return true;
}

void DirectEnforcer::DropWithCascades(const UserName& user,
                                      const SessionId& session,
                                      const RoleName& role) {
  if (!rbac_.db().DropSessionRole(session, role).ok()) return;
  CancelExpiries(session, role);
  // Transaction cascade: last controller instance gone -> dependents fall.
  for (const TransactionActivation& tx : policy_.transactions()) {
    if (tx.controller != role) continue;
    if (rbac_.db().ActiveSessionCount(tx.controller) == 0) {
      DeactivateAllInstances(tx.dependent);
    }
  }
  (void)user;
}

void DirectEnforcer::DeactivateAllInstances(const RoleName& role) {
  for (const SessionId& session : rbac_.db().SessionIds()) {
    auto info = rbac_.db().GetSession(session);
    if (!info.ok()) continue;
    if ((*info)->active_roles.count(role) > 0) {
      DropWithCascades((*info)->user, session, role);
    }
  }
}

void DirectEnforcer::CancelExpiries(const SessionId& session,
                                    const RoleName& role) {
  auto it = activation_gen_.find({session, role});
  if (it != activation_gen_.end()) ++it->second;
}

int DirectEnforcer::CountUserActiveRoles(const UserName& user) const {
  int count = 0;
  for (const SessionId& session : rbac_.db().UserSessions(user)) {
    auto info = rbac_.db().GetSession(session);
    if (info.ok()) count += static_cast<int>((*info)->active_roles.size());
  }
  return count;
}

bool DirectEnforcer::TsodGuardedNow(const RoleName& role,
                                    TimeSodKind kind) const {
  const Time now = Now();
  for (const TimeSod& constraint : policy_.time_sods()) {
    if (constraint.kind != kind) continue;
    if (constraint.roles.count(role) == 0) continue;
    if (constraint.period.Contains(now)) return true;
  }
  return false;
}

bool DirectEnforcer::DisableTsodOk(const RoleName& role) const {
  const Time now = Now();
  for (const TimeSod& constraint : policy_.time_sods()) {
    if (constraint.kind != TimeSodKind::kDisabling) continue;
    if (constraint.roles.count(role) == 0) continue;
    if (!constraint.period.Contains(now)) continue;
    bool counter_enabled = false;
    for (const RoleName& other : constraint.roles) {
      if (other != role && state_.IsEnabled(other)) {
        counter_enabled = true;
        break;
      }
    }
    if (!counter_enabled) return false;
  }
  return true;
}

bool DirectEnforcer::EnableTsodOk(const RoleName& role) const {
  const Time now = Now();
  for (const TimeSod& constraint : policy_.time_sods()) {
    if (constraint.kind != TimeSodKind::kEnabling) continue;
    if (constraint.roles.count(role) == 0) continue;
    if (!constraint.period.Contains(now)) continue;
    bool counter_disabled = false;
    for (const RoleName& other : constraint.roles) {
      if (other != role && !state_.IsEnabled(other)) {
        counter_disabled = true;
        break;
      }
    }
    if (!counter_disabled) return false;
  }
  return true;
}

bool DirectEnforcer::IsCfdTrigger(const RoleName& role) const {
  for (const CfdPair& pair : policy_.cfd_pairs()) {
    if (pair.trigger == role) return true;
  }
  return false;
}

}  // namespace sentinel
