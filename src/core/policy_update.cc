#include "core/policy_update.h"

namespace sentinel {

BaseStateDelta ComputeBaseStateDelta(const Policy& from, const Policy& to) {
  BaseStateDelta delta;
  // Mirrors ReconcileBaseState's removal ordering: constraints first, then
  // relations, then entities (see ApplyBaseDelta in engine.cc).
  for (const auto& [name, set] : from.ssd_sets()) {
    auto it = to.ssd_sets().find(name);
    if (it == to.ssd_sets().end() || !(it->second == set)) {
      delta.drop_ssd.push_back(name);
    }
  }
  for (const auto& [name, set] : from.dsd_sets()) {
    auto it = to.dsd_sets().find(name);
    if (it == to.dsd_sets().end() || !(it->second == set)) {
      delta.drop_dsd.push_back(name);
    }
  }
  for (const auto& [name, spec] : from.users()) {
    auto it = to.users().find(name);
    for (const RoleName& role : spec.assignments) {
      if (it == to.users().end() || it->second.assignments.count(role) == 0) {
        delta.deassign.emplace_back(name, role);
      }
    }
  }
  for (const auto& [name, spec] : from.roles()) {
    auto it = to.roles().find(name);
    for (const Permission& perm : spec.permissions) {
      if (it == to.roles().end() ||
          it->second.permissions.count(perm) == 0) {
        delta.revoke.emplace_back(name, perm);
      }
    }
    for (const RoleName& junior : spec.juniors) {
      if (it == to.roles().end() || it->second.juniors.count(junior) == 0) {
        delta.drop_edges.emplace_back(name, junior);
      }
    }
  }
  for (const auto& [name, spec] : from.roles()) {
    if (to.roles().count(name) == 0) delta.drop_roles.push_back(name);
  }
  for (const auto& [name, spec] : from.users()) {
    if (to.users().count(name) == 0) delta.drop_users.push_back(name);
  }
  // The add half: the same relations diffed in the other direction, in
  // ApplyBaseDelta's install order (entities, then relations, then
  // constraints).
  for (const auto& [name, spec] : to.users()) {
    if (from.users().count(name) == 0) delta.add_users.push_back(name);
  }
  for (const auto& [name, spec] : to.roles()) {
    if (from.roles().count(name) == 0) delta.add_roles.push_back(name);
  }
  for (const auto& [name, spec] : to.roles()) {
    auto it = from.roles().find(name);
    const bool fresh = it == from.roles().end();
    for (const RoleName& junior : spec.juniors) {
      if (fresh || it->second.juniors.count(junior) == 0) {
        delta.add_edges.emplace_back(name, junior);
      }
    }
    for (const Permission& perm : spec.permissions) {
      if (fresh || it->second.permissions.count(perm) == 0) {
        delta.add_grants.emplace_back(name, perm);
      }
    }
  }
  for (const auto& [name, spec] : to.users()) {
    auto it = from.users().find(name);
    const bool fresh = it == from.users().end();
    for (const RoleName& role : spec.assignments) {
      if (fresh || it->second.assignments.count(role) == 0) {
        delta.add_assignments.emplace_back(name, role);
      }
    }
  }
  for (const auto& [name, set] : to.ssd_sets()) {
    auto it = from.ssd_sets().find(name);
    if (it == from.ssd_sets().end() || !(it->second == set)) {
      delta.add_ssd.push_back(name);
    }
  }
  for (const auto& [name, set] : to.dsd_sets()) {
    auto it = from.dsd_sets().find(name);
    if (it == from.dsd_sets().end() || !(it->second == set)) {
      delta.add_dsd.push_back(name);
    }
  }
  delta.privacy_changed = !(from.purposes() == to.purposes()) ||
                          !(from.object_policies() == to.object_policies());
  for (const auto& [name, spec] : to.roles()) {
    if (spec.enabling_window.has_value()) {
      delta.window_roles.push_back(name);
      continue;
    }
    auto it = from.roles().find(name);
    if (it != from.roles().end() && it->second.enabling_window.has_value()) {
      delta.window_removed.insert(name);
    }
  }
  return delta;
}

}  // namespace sentinel
