#include "core/report.h"

#include <sstream>

#include "common/calendar.h"
#include "core/engine.h"

namespace sentinel {

std::string GenerateAdminReport(const AuthorizationEngine& engine,
                                const ReportOptions& options) {
  std::ostringstream os;
  const Policy& policy = engine.policy();

  os << "=== sentinelpp administrator report ===\n";
  os << "time: " << FormatTime(engine.Now()) << "\n";
  os << "policy: \"" << policy.name() << "\" (" << policy.roles().size()
     << " roles, " << policy.users().size() << " users)\n\n";

  // ------------------------------------------------------------- Decisions
  os << "-- decisions --\n";
  os << "total: " << engine.decisions_made()
     << "  denials: " << engine.denials();
  if (engine.decisions_made() > 0) {
    os << "  (deny rate "
       << (100 * engine.denials() / engine.decisions_made()) << "%)";
  }
  os << "\n\n";

  // -------------------------------------------------------------- The pool
  const RuleManager& rules = engine.rule_manager();
  os << "-- rule pool --\n";
  os << "rules: " << rules.rule_count()
     << "  fired: " << rules.total_fired()
     << "  events: " << engine.detector().registry().size()
     << "  pending timers: " << engine.detector().pending_timer_count()
     << "\n";
  os << "administrative: " << rules.CountByClass(RuleClass::kAdministrative)
     << "  activity-control: "
     << rules.CountByClass(RuleClass::kActivityControl)
     << "  active-security: "
     << rules.CountByClass(RuleClass::kActiveSecurity) << "\n";
  int disabled_rules = 0;
  for (const Rule* rule : rules.rules()) {
    if (!rule->enabled()) ++disabled_rules;
  }
  if (disabled_rules > 0) {
    os << "DISABLED rules: " << disabled_rules << " —";
    for (const Rule* rule : rules.rules()) {
      if (!rule->enabled()) os << ' ' << rule->name();
    }
    os << "\n";
  }
  os << "\n";

  // ----------------------------------------------------------- Role states
  const auto disabled_roles = engine.role_state().DisabledRoles();
  os << "-- roles --\n";
  os << "disabled: " << disabled_roles.size();
  for (const RoleName& role : disabled_roles) os << ' ' << role;
  os << "\n\n";

  // -------------------------------------------------------------- Sessions
  if (options.include_sessions) {
    os << "-- sessions (" << engine.rbac().db().session_count() << ") --\n";
    for (const SessionId& session : engine.rbac().db().SessionIds()) {
      auto info = engine.rbac().db().GetSession(session);
      if (!info.ok()) continue;
      os << session << " (" << (*info)->user << "):";
      for (const RoleName& role : (*info)->active_roles) os << ' ' << role;
      os << "\n";
    }
    os << "\n";
  }

  // ---------------------------------------------------------------- Alerts
  const auto& alerts = engine.security().alerts();
  os << "-- security alerts (" << alerts.size() << ") --\n";
  for (const SecurityAlert& alert : alerts) {
    os << FormatTime(alert.when) << " [" << alert.directive << "] "
       << alert.detail << " (observed " << alert.observed_count << ")\n";
  }
  os << "\n";

  // ------------------------------------------------------------- Telemetry
  const telemetry::RegistrySnapshot metrics = engine.metrics().Snapshot();
  os << "-- telemetry --\n";
  os << "audit trail overflow: " << engine.decision_log_overflow()
     << " records shed\n";
  const telemetry::HistogramSnapshot* latency =
      metrics.FindHistogram("decision_latency_us");
  if (latency != nullptr && latency->TotalCount() > 0) {
    os << "decision latency (us, sampled): p50 " << latency->Percentile(50)
       << "  p90 " << latency->Percentile(90) << "  p99 "
       << latency->Percentile(99) << "  samples " << latency->TotalCount()
       << "\n";
  }
  const telemetry::CounterSnapshot* occurrences =
      metrics.FindCounter("event_occurrences_total");
  const telemetry::CounterSnapshot* firings =
      metrics.FindCounter("rule_firings_total");
  const telemetry::CounterSnapshot* dropped =
      metrics.FindCounter("dropped_firings_total");
  os << "event occurrences: " << (occurrences ? occurrences->value : 0)
     << "  rule firings: " << (firings ? firings->value : 0)
     << "  dropped firings: " << (dropped ? dropped->value : 0) << "\n";
  // Overload and fast-path series exist only when this engine is a service
  // shard (the AuthorizationService registers them at construction).
  const telemetry::CounterSnapshot* fastpath =
      metrics.FindCounter("decision_cache_fastpath_hits_total");
  if (fastpath != nullptr && fastpath->value > 0) {
    os << "zero-hop fast path: " << fastpath->value
       << " verdicts answered caller-side\n";
  }
  const telemetry::CounterSnapshot* shed =
      metrics.FindCounter("mailbox_shed_total");
  const telemetry::CounterSnapshot* expired =
      metrics.FindCounter("mailbox_expired_total");
  if (shed != nullptr || expired != nullptr) {
    os << "overload: shed " << (shed ? shed->value : 0) << "  expired "
       << (expired ? expired->value : 0);
    const telemetry::HistogramSnapshot* wait =
        metrics.FindHistogram("mailbox_queue_wait_us");
    if (wait != nullptr && wait->TotalCount() > 0) {
      os << "  queue wait (us): p50 " << wait->Percentile(50) << "  p99 "
         << wait->Percentile(99);
    }
    const telemetry::HistogramSnapshot* depth =
        metrics.FindHistogram("mailbox_queue_depth");
    if (depth != nullptr && depth->TotalCount() > 0) {
      os << "  queue depth: p99 " << depth->Percentile(99);
    }
    os << "\n";
  }
  os << "trace spans: " << engine.tracer().spans_recorded() << " recorded, "
     << engine.tracer().ring_size() << " retained\n\n";

  // -------------------------------------------------------- Recent denials
  if (options.recent_denials > 0) {
    os << "-- recent denials --\n";
    int listed = 0;
    const auto& log = engine.decision_log();
    for (auto it = log.rbegin();
         it != log.rend() && listed < options.recent_denials; ++it) {
      if (it->decision.allowed) continue;
      os << FormatTime(it->when) << ' ' << it->operation << " -> "
         << (it->decision.rule.empty() ? "(default)" : it->decision.rule)
         << ": " << it->decision.reason << "\n";
      ++listed;
    }
    if (listed == 0) os << "(none in the audit trail)\n";
  }
  return os.str();
}

}  // namespace sentinel
