#include "core/consistency.h"

#include <deque>
#include <map>
#include <set>

#include "core/engine.h"

namespace sentinel {

const char* IssueSeverityToString(IssueSeverity severity) {
  switch (severity) {
    case IssueSeverity::kWarning:
      return "WARNING";
    case IssueSeverity::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

std::string ConsistencyIssue::ToString() const {
  return std::string(IssueSeverityToString(severity)) + " [" + code + "] " +
         detail;
}

bool NoErrors(const std::vector<ConsistencyIssue>& issues) {
  for (const ConsistencyIssue& issue : issues) {
    if (issue.severity == IssueSeverity::kError) return false;
  }
  return true;
}

namespace {

/// Junior closures (inclusive) over the policy's hierarchy edges.
std::map<RoleName, std::set<RoleName>> JuniorClosures(const Policy& policy) {
  std::map<RoleName, std::set<RoleName>> closure;
  // Repeated relaxation; hierarchies are acyclic (Validate ran first).
  for (const auto& [name, spec] : policy.roles()) closure[name] = {name};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, spec] : policy.roles()) {
      std::set<RoleName>& mine = closure[name];
      for (const RoleName& junior : spec.juniors) {
        for (const RoleName& transitive : closure[junior]) {
          if (mine.insert(transitive).second) changed = true;
        }
      }
    }
  }
  return closure;
}

int SodHits(const SodSet& set, const std::set<RoleName>& roles) {
  int hits = 0;
  for (const RoleName& role : set.roles) {
    if (roles.count(role) > 0) ++hits;
  }
  return hits;
}

void Add(std::vector<ConsistencyIssue>* issues, IssueSeverity severity,
         const std::string& code, const std::string& detail) {
  issues->push_back(ConsistencyIssue{severity, code, detail});
}

}  // namespace

std::vector<ConsistencyIssue> CheckPolicyConsistency(const Policy& policy) {
  std::vector<ConsistencyIssue> issues;
  const auto closures = JuniorClosures(policy);

  // --- SSD vs hierarchy: roles whose own closure breaks a set. ----------
  for (const auto& [name, spec] : policy.roles()) {
    for (const auto& [set_name, set] : policy.ssd_sets()) {
      if (SodHits(set, closures.at(name)) >= set.n) {
        Add(&issues, IssueSeverity::kWarning, "ssd-hierarchy-conflict",
            "role " + name + " inherits >= " + std::to_string(set.n) +
                " roles of SSD set " + set_name +
                "; no user can ever be assigned to it");
      }
    }
  }

  // --- SSD vs assignments. ----------------------------------------------
  for (const auto& [user, spec] : policy.users()) {
    std::set<RoleName> authorized;
    for (const RoleName& role : spec.assignments) {
      auto it = closures.find(role);
      if (it == closures.end()) continue;
      authorized.insert(it->second.begin(), it->second.end());
    }
    for (const auto& [set_name, set] : policy.ssd_sets()) {
      if (SodHits(set, authorized) >= set.n) {
        Add(&issues, IssueSeverity::kError, "ssd-assignment-conflict",
            "user " + user + "'s assignments violate SSD set " + set_name);
      }
    }
  }

  // --- Prerequisite cycles. ----------------------------------------------
  {
    // DFS over the prerequisite graph.
    enum class Color { kWhite, kGray, kBlack };
    std::map<RoleName, Color> color;
    for (const auto& [name, spec] : policy.roles()) {
      color[name] = Color::kWhite;
    }
    for (const auto& [start, start_spec] : policy.roles()) {
      if (color[start] != Color::kWhite) continue;
      std::deque<std::pair<RoleName, bool>> stack = {{start, false}};
      while (!stack.empty()) {
        auto [node, processed] = stack.back();
        stack.pop_back();
        if (processed) {
          color[node] = Color::kBlack;
          continue;
        }
        if (color[node] == Color::kBlack) continue;
        if (color[node] == Color::kGray) continue;
        color[node] = Color::kGray;
        stack.push_back({node, true});
        auto it = policy.roles().find(node);
        if (it == policy.roles().end()) continue;
        for (const RoleName& prereq : it->second.prerequisites) {
          if (color.count(prereq) == 0) continue;
          if (color[prereq] == Color::kGray) {
            Add(&issues, IssueSeverity::kError, "prerequisite-cycle",
                "roles " + node + " and " + prereq +
                    " are in a prerequisite cycle; neither can ever be "
                    "activated");
          } else if (color[prereq] == Color::kWhite) {
            stack.push_back({prereq, false});
          }
        }
      }
    }
  }

  // --- Prerequisite vs DSD: need both active in one session. ------------
  for (const auto& [name, spec] : policy.roles()) {
    for (const RoleName& prereq : spec.prerequisites) {
      for (const auto& [set_name, set] : policy.dsd_sets()) {
        std::set<RoleName> both = {name, prereq};
        if (SodHits(set, both) >= set.n) {
          Add(&issues, IssueSeverity::kError, "prerequisite-dsd-conflict",
              "role " + name + " requires prerequisite " + prereq +
                  " active, but DSD set " + set_name +
                  " forbids them in one session");
        }
      }
    }
  }

  // --- DSD subsumed by SSD (same members, SSD at least as strict): the
  // dynamic relation can never bind because assignment is impossible. ----
  for (const auto& [dsd_name, dsd] : policy.dsd_sets()) {
    for (const auto& [ssd_name, ssd] : policy.ssd_sets()) {
      const bool subset =
          SodHits(ssd, dsd.roles) == static_cast<int>(ssd.roles.size()) &&
          ssd.roles.size() <= dsd.roles.size();
      if (subset && ssd.n <= dsd.n) {
        Add(&issues, IssueSeverity::kWarning, "dsd-subsumed-by-ssd",
            "DSD set " + dsd_name + " can never bind: SSD set " + ssd_name +
                " already prevents the assignments");
      }
    }
  }

  // --- Vacuous cardinality: fewer potential activators than the limit. --
  {
    // Authorized-user counts per role.
    std::map<RoleName, int> potential;
    for (const auto& [user, spec] : policy.users()) {
      std::set<RoleName> authorized;
      for (const RoleName& role : spec.assignments) {
        auto it = closures.find(role);
        if (it == closures.end()) continue;
        authorized.insert(it->second.begin(), it->second.end());
      }
      for (const RoleName& role : authorized) ++potential[role];
    }
    for (const auto& [name, spec] : policy.roles()) {
      if (spec.activation_cardinality > 0 &&
          potential[name] < spec.activation_cardinality) {
        Add(&issues, IssueSeverity::kWarning, "cardinality-vacuous",
            "role " + name + " has cardinality " +
                std::to_string(spec.activation_cardinality) + " but only " +
                std::to_string(potential[name]) +
                " authorized user(s); the limit can never bind");
      }
    }
  }

  // --- Duration bound longer than the enabling window. -------------------
  for (const auto& [name, spec] : policy.roles()) {
    if (spec.max_activation <= 0 || !spec.enabling_window.has_value()) {
      continue;
    }
    const PeriodicExpression& window = *spec.enabling_window;
    const auto start = window.NextWindowStart(0);
    if (!start.has_value()) continue;
    const auto end = window.NextWindowEnd(*start);
    if (!end.has_value()) continue;
    if (spec.max_activation >= *end - *start) {
      Add(&issues, IssueSeverity::kWarning, "duration-exceeds-shift",
          "role " + name + "'s max-activation is at least as long as its "
          "enabling window; the shift end always preempts it");
    }
  }

  // --- Time-SoD member with a shift: SH disabling bypasses the guard. ---
  for (const TimeSod& constraint : policy.time_sods()) {
    if (constraint.kind != TimeSodKind::kDisabling) continue;
    for (const RoleName& role : constraint.roles) {
      auto it = policy.roles().find(role);
      if (it != policy.roles().end() &&
          it->second.enabling_window.has_value()) {
        Add(&issues, IssueSeverity::kWarning, "tsod-member-has-shift",
            "role " + role + " is guarded by time-SoD " + constraint.name +
                " but has an enabling window; automatic shift disabling "
                "bypasses the SoD guard");
      }
    }
  }

  // --- Transactions that can never be exercised. -------------------------
  {
    std::map<RoleName, int> potential;
    for (const auto& [user, spec] : policy.users()) {
      std::set<RoleName> authorized;
      for (const RoleName& role : spec.assignments) {
        auto it = closures.find(role);
        if (it == closures.end()) continue;
        authorized.insert(it->second.begin(), it->second.end());
      }
      for (const RoleName& role : authorized) ++potential[role];
    }
    for (const TransactionActivation& tx : policy.transactions()) {
      if (potential[tx.controller] == 0 || potential[tx.dependent] == 0) {
        Add(&issues, IssueSeverity::kWarning, "transaction-unusable",
            "transaction " + tx.name +
                " has no authorized users for its controller or dependent");
      }
    }
  }

  return issues;
}

std::vector<ConsistencyIssue> VerifyGeneratedPool(
    const AuthorizationEngine& engine) {
  std::vector<ConsistencyIssue> issues;
  const Policy& policy = engine.policy();
  const RuleManager& rules = engine.rule_manager();

  std::set<std::string> expected;
  // Global block.
  for (const char* name :
       {"ADM.createSession", "ADM.deleteSession", "ADM.assign",
        "ADM.deassign", "GLOB.drop", "CA.global", "GLOB.enable",
        "GLOB.disable"}) {
    expected.insert(name);
  }
  // Per-role rules.
  for (const auto& [name, spec] : policy.roles()) {
    if (!policy.RoleIsTransactionDependent(name)) {
      expected.insert("AAR." + name);
    }
    if (spec.activation_cardinality > 0) expected.insert("CC." + name);
    if (spec.max_activation > 0) expected.insert("DUR." + name);
    if (spec.enabling_window.has_value()) {
      expected.insert("SH." + name + ".on");
      expected.insert("SH." + name + ".off");
    }
    if (!spec.required_context.empty()) expected.insert("CTX." + name);
  }
  // Per-user rules.
  for (const auto& [name, spec] : policy.users()) {
    if (spec.max_active_roles > 0) expected.insert("UAC." + name);
    for (const auto& [role, duration] : spec.role_durations) {
      expected.insert("DUR." + name + "." + role);
    }
  }
  // Constraint and directive rules.
  for (const TimeSod& constraint : policy.time_sods()) {
    if (constraint.kind == TimeSodKind::kDisabling) {
      expected.insert("TSOD." + constraint.name);
    }
  }
  for (const CfdPair& pair : policy.cfd_pairs()) {
    expected.insert("CFD." + pair.trigger + "." + pair.companion +
                    ".enable");
    expected.insert("CFD." + pair.trigger + "." + pair.companion +
                    ".disable");
  }
  for (const TransactionActivation& tx : policy.transactions()) {
    expected.insert("ASEC." + tx.name + ".activate");
    expected.insert("ASEC." + tx.name + ".cascade");
  }
  for (const ThresholdDirective& directive : policy.thresholds()) {
    expected.insert("SEC." + directive.name);
  }
  for (const AuditDirective& directive : policy.audits()) {
    expected.insert("AUD." + directive.name);
  }

  std::set<std::string> actual;
  for (const Rule* rule : rules.rules()) actual.insert(rule->name());

  for (const std::string& name : expected) {
    if (actual.count(name) == 0) {
      issues.push_back(ConsistencyIssue{
          IssueSeverity::kError, "missing-rule",
          "policy requires rule " + name + " but the pool lacks it"});
    }
  }
  for (const std::string& name : actual) {
    if (expected.count(name) == 0) {
      issues.push_back(ConsistencyIssue{
          IssueSeverity::kError, "unexpected-rule",
          "pool contains rule " + name + " the policy does not call for"});
    }
  }
  return issues;
}

}  // namespace sentinel
