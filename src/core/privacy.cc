#include "core/privacy.h"

namespace sentinel {

Status PrivacyStore::AddPurpose(const PurposeName& purpose,
                                const PurposeName& parent) {
  if (purpose.empty()) {
    return Status::InvalidArgument("purpose name must not be empty");
  }
  if (parents_.count(purpose) > 0) {
    return Status::AlreadyExists("purpose exists: " + purpose);
  }
  if (!parent.empty() && parents_.count(parent) == 0) {
    return Status::NotFound("unknown parent purpose: " + parent);
  }
  parents_.emplace(purpose, parent);
  return Status::OK();
}

Status PrivacyStore::DeletePurpose(const PurposeName& purpose) {
  auto it = parents_.find(purpose);
  if (it == parents_.end()) {
    return Status::NotFound("no such purpose: " + purpose);
  }
  for (const auto& [child, parent] : parents_) {
    if (parent == purpose) {
      return Status::FailedPrecondition("purpose " + purpose +
                                        " still has child " + child);
    }
  }
  parents_.erase(it);
  return Status::OK();
}

Status PrivacyStore::SetObjectPolicy(const ObjectName& obj,
                                     std::set<PurposeName> allowed) {
  for (const PurposeName& purpose : allowed) {
    if (parents_.count(purpose) == 0) {
      return Status::NotFound("unknown purpose in object policy: " + purpose);
    }
  }
  if (allowed.empty()) {
    object_policies_.erase(obj);
  } else {
    object_policies_[obj] = std::move(allowed);
  }
  return Status::OK();
}

bool PrivacyStore::PurposeEntails(const PurposeName& purpose,
                                  const PurposeName& ancestor) const {
  PurposeName current = purpose;
  // Walk up the (forest-shaped, cycle-free by construction) hierarchy.
  while (!current.empty()) {
    if (current == ancestor) return true;
    auto it = parents_.find(current);
    if (it == parents_.end()) return false;
    current = it->second;
  }
  return false;
}

bool PrivacyStore::AccessPermitted(const ObjectName& obj,
                                   const PurposeName& purpose) const {
  auto it = object_policies_.find(obj);
  if (it == object_policies_.end()) return true;  // Unconstrained object.
  if (purpose.empty() || parents_.count(purpose) == 0) return false;
  for (const PurposeName& allowed : it->second) {
    if (PurposeEntails(purpose, allowed)) return true;
  }
  return false;
}

const std::set<PurposeName>* PrivacyStore::ObjectPolicy(
    const ObjectName& obj) const {
  auto it = object_policies_.find(obj);
  return it == object_policies_.end() ? nullptr : &it->second;
}

}  // namespace sentinel
