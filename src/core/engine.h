#ifndef SENTINELPP_CORE_ENGINE_H_
#define SENTINELPP_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "core/active_security.h"
#include "core/decision_cache.h"
#include "core/decision_log.h"
#include "core/policy.h"
#include "core/policy_update.h"
#include "core/privacy.h"
#include "event/event_detector.h"
#include "gtrbac/role_state.h"
#include "rbac/core_api.h"
#include "rules/decision.h"
#include "rules/rule_manager.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace sentinel {

class RuleGenerator;

/// Outcome summary of an incremental policy update (ApplyPolicyUpdate).
struct RegenReport {
  int roles_affected = 0;
  int users_affected = 0;
  int rules_removed = 0;
  int rules_added = 0;
  int events_added = 0;
  bool directives_rebuilt = false;
  /// Policy entries the base-state reconcile could not install because the
  /// live runtime state refused them (e.g. an assignment the engine's own
  /// runtime SSD state now conflicts with). Each skip is also logged at
  /// warning level. See ApplyBaseDelta for why the commit is best-effort
  /// instead of failing: a mid-apply refusal cannot be atomic.
  int base_entries_skipped = 0;
};

/// \brief The OWTE-rule-driven authorization engine — the paper's
/// contribution, assembled.
///
/// Every public operation raises a primitive event carrying the request's
/// parameters; the generated rule pool (compiled from the loaded Policy by
/// RuleGenerator) performs all checks and state changes; the Decision the
/// rules wrote is returned to the caller. Nothing in the request path is
/// hard-coded: change the policy, regenerate the affected rules, and the
/// engine's behaviour follows — the property the paper calls "seamless".
///
/// Fail-safe default: a request no rule decides is denied.
class AuthorizationEngine {
 public:
  /// The deciding rule name and denial reason the decision cache (and the
  /// service's zero-hop fast path) reconstruct Decisions from. The rule
  /// generator emits the global check-access rule under this name.
  static constexpr const char* kCaRuleName = "CA.global";
  static constexpr const char* kDenyReason = "Permission Denied";

  /// Parameter keys used on all engine events.
  static constexpr const char* kUser = "user";
  static constexpr const char* kSession = "session";
  static constexpr const char* kRole = "role";
  static constexpr const char* kOperation = "operation";
  static constexpr const char* kObject = "object";
  static constexpr const char* kPurpose = "purpose";

  /// The same keys pre-interned in the engine's symbol table — what the
  /// dispatch path and generated rules use instead of the string literals.
  struct ParamKeys {
    Symbol user;
    Symbol session;
    Symbol role;
    Symbol operation;
    Symbol object;
    Symbol purpose;
    Symbol context_key;    // "key" on rbac.contextChanged.
    Symbol context_value;  // "value" on rbac.contextChanged.
  };

  /// Core primitive events, defined at construction.
  struct CoreEvents {
    EventId create_session = kInvalidEventId;
    EventId delete_session = kInvalidEventId;
    EventId add_active_role = kInvalidEventId;   // Request (paper E2).
    EventId drop_active_role = kInvalidEventId;  // Request.
    EventId check_access = kInvalidEventId;      // Request (paper E6).
    EventId assign_user = kInvalidEventId;       // Administrative request.
    EventId deassign_user = kInvalidEventId;
    EventId enable_role = kInvalidEventId;       // GTRBAC transition request.
    EventId disable_role = kInvalidEventId;
    EventId session_role_added = kInvalidEventId;    // Post-state (E3).
    EventId session_role_dropped = kInvalidEventId;  // Post-state (E4).
    EventId role_enabled = kInvalidEventId;          // Post-state.
    EventId role_disabled = kInvalidEventId;         // Post-state.
    EventId access_denied = kInvalidEventId;   // Raised by CA's ELSE.
    EventId security_alert = kInvalidEventId;  // Raised by SEC rules.
    EventId context_changed = kInvalidEventId;  // External/context events.
  };

  /// `clock` must outlive the engine; not owned. The engine is built for
  /// deterministic simulated time; a wall-clock deployment would drive
  /// Poll() instead of AdvanceTo().
  explicit AuthorizationEngine(SimulatedClock* clock);
  ~AuthorizationEngine();

  AuthorizationEngine(const AuthorizationEngine&) = delete;
  AuthorizationEngine& operator=(const AuthorizationEngine&) = delete;

  // ------------------------------------------------------ Policy loading

  /// Validates and installs `policy`: instantiates the RBAC base state and
  /// generates the full rule pool. Call once on a fresh engine.
  Status LoadPolicy(const Policy& policy);

  /// Shared-generation install: every shard of a service installs the SAME
  /// immutable Policy object, so PreparePolicyUpdate/CommitPolicyUpdate can
  /// verify plan freshness by pointer identity. `policy` must not be null.
  Status LoadPolicy(std::shared_ptr<const Policy> policy);

  /// Diffs the loaded policy against `updated`, reconciles base state and
  /// regenerates only the affected rules (the paper's §5 regeneration).
  /// Equivalent to PreparePolicyUpdate + CommitPolicyUpdate in one call.
  Result<RegenReport> ApplyPolicyUpdate(const Policy& updated);

  /// \brief Off-thread half of a pauseless swap: validates `next` and
  /// precomputes every pure piece of the update (affected-role/user diffs,
  /// directive change, removal delta) against the generation `base`.
  ///
  /// Pure and static — safe to run on the admin caller's thread while the
  /// shards keep serving. `base` should be the currently installed shared
  /// generation; CommitPolicyUpdate rejects the plan if the engine has
  /// moved on.
  static Result<PolicyUpdatePlan> PreparePolicyUpdate(
      std::shared_ptr<const Policy> base, Policy next);

  /// \brief On-thread half: applies the removal delta, flips the policy
  /// pointer to `plan.next` (the RCU publish — O(1); the retired
  /// generation is freed by refcount when the last shard flips), then
  /// incrementally regenerates affected rules and bumps the rule-pool
  /// generation so every cached/fast-path verdict stamped under the old
  /// generation dies at its next lookup. No cache-epoch wipe: that is
  /// precisely the stop-the-world cost this path removes.
  ///
  /// Fails with FailedPrecondition when `plan.base` is not the engine's
  /// live policy object (a newer update landed first — re-Prepare).
  Result<RegenReport> CommitPolicyUpdate(const PolicyUpdatePlan& plan);

  const Policy& policy() const { return *policy_; }
  /// The installed generation (shared across shards when loaded via the
  /// shared overload). Never null.
  const std::shared_ptr<const Policy>& policy_generation() const {
    return policy_;
  }
  /// Monotonic count of successfully committed policy generations.
  uint64_t policy_version() const { return policy_version_; }

  // ------------------------------------------------ Runtime (rule-driven)

  Decision CreateSession(const UserName& user, const SessionId& session);
  Decision DeleteSession(const SessionId& session);
  Decision AddActiveRole(const UserName& user, const SessionId& session,
                         const RoleName& role);
  Decision DropActiveRole(const UserName& user, const SessionId& session,
                          const RoleName& role);
  /// Purpose is optional; required when the object carries a privacy
  /// policy (privacy-aware RBAC).
  Decision CheckAccess(const SessionId& session, const OperationName& op,
                       const ObjectName& obj, const PurposeName& purpose = "");
  Decision AssignUser(const UserName& user, const RoleName& role);
  Decision DeassignUser(const UserName& user, const RoleName& role);
  Decision EnableRole(const RoleName& role);
  Decision DisableRole(const RoleName& role);

  /// Context-aware RBAC: records an environment value ("location",
  /// "network", ...) and raises the external context event. Generated CTX
  /// rules force-deactivate active roles whose context constraints no
  /// longer hold (paper §1; OASIS-style environmental predicates).
  void SetContext(const std::string& key, const std::string& value);
  /// Current context value, empty string when unset.
  const std::string& ContextValue(const std::string& key) const;
  /// True iff every (key, value) pair holds in the current context.
  bool ContextSatisfied(
      const std::map<std::string, std::string>& required) const;

  // --------------------------------------------------------------- Time

  /// Advances simulated time, firing temporal events (shift boundaries,
  /// duration expiries, audit ticks) at their exact instants.
  void AdvanceTo(Time t);
  void AdvanceBy(Duration d) { AdvanceTo(Now() + d); }
  Time Now() const { return clock_->Now(); }

  // --------------------------------------- Services for generated rules

  RbacSystem& rbac() { return rbac_; }
  const RbacSystem& rbac() const { return rbac_; }
  RoleStateTable& role_state() { return role_state_; }
  const RoleStateTable& role_state() const { return role_state_; }
  PrivacyStore& privacy() { return privacy_; }
  const PrivacyStore& privacy() const { return privacy_; }
  ActiveSecurityMonitor& security() { return security_; }
  const ActiveSecurityMonitor& security() const { return security_; }
  EventDetector& detector() { return detector_; }
  const EventDetector& detector() const { return detector_; }
  RuleManager& rule_manager() { return rules_; }
  const RuleManager& rule_manager() const { return rules_; }
  const CoreEvents& events() const { return events_; }
  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }
  const ParamKeys& keys() const { return keys_; }

  /// Drops `role` from `session` outside a user request (duration expiry,
  /// shift end, cascade), raising the post-state event.
  Status ForceDeactivate(const UserName& user, const SessionId& session,
                         const RoleName& role);
  /// Force-deactivates every active instance of `role`; returns count.
  int DeactivateAllInstances(const RoleName& role);

  /// Active role instances of `user` across all their sessions.
  int CountUserActiveRoles(const UserName& user) const;

  /// True iff a time-SoD of `kind` containing `role` is in effect now.
  bool TsodGuardedNow(const RoleName& role, TimeSodKind kind) const;
  /// True iff `role` triggers a CFD pair (its enabling is CFD-handled).
  bool IsCfdTrigger(const RoleName& role) const;

  /// Disabling-time SoD verdict: for every in-effect disabling time-SoD
  /// containing `role`, some counter-role must still be enabled.
  bool DisableTsodOk(const RoleName& role) const;
  /// Enabling-time SoD verdict: for every in-effect enabling time-SoD
  /// containing `role`, some counter-role must remain disabled.
  bool EnableTsodOk(const RoleName& role) const;

  /// Registers a duration-expiry PLUS event so session teardown can cancel
  /// its pending expiries. Called by the rule generator.
  void RegisterDurationEvent(EventId plus_event);
  /// Cancels pending duration expiries matching `match` (symbol-keyed).
  void CancelDurationTimers(const FlatParamMap& match);

  /// Raises a primitive event (used by rule actions for cascades). Params
  /// are symbol-keyed; name values must already be interned.
  Status RaiseEvent(EventId event, FlatParamMap params) {
    return detector_.RaiseInterned(event, std::move(params));
  }

  /// Sink for threshold-rule throttle actions (ThresholdDirective::
  /// throttle_rate_per_s): the hosting service installs one per shard to
  /// feed its admission policer. Runs on the engine's thread inside rule
  /// dispatch, so it must be fast and thread-safe (the service's policer
  /// is lock-free).
  using ThrottleSink = std::function<void(
      const std::string& user, double rate_per_s, int64_t burst)>;
  void set_throttle_sink(ThrottleSink sink) {
    throttle_sink_ = std::move(sink);
  }
  /// Invoked by generated SEC rules when a throttle directive trips. No-op
  /// without a sink: a bare engine still records the alert, it just has no
  /// admission edge to police.
  void NotifyThrottle(const std::string& user, double rate_per_s,
                      int64_t burst) {
    if (throttle_sink_) throttle_sink_(user, rate_per_s, burst);
  }

  // ------------------------------------------------------ Introspection

  uint64_t decisions_made() const { return decisions_counter_->value(); }
  uint64_t denials() const { return denials_counter_->value(); }

  /// The engine's metrics registry. Instruments are registered during
  /// construction (engine, detector, rule manager); afterwards the
  /// structure is immutable, so Snapshot() may be called from any thread
  /// concurrently with the engine's own updates.
  telemetry::Registry& metrics() { return metrics_; }
  const telemetry::Registry& metrics() const { return metrics_; }

  /// The engine's span recorder. Single-threaded like the engine: read it
  /// only from the thread driving the engine (the service uses Inspect).
  telemetry::TraceCollector& tracer() { return tracer_; }
  const telemetry::TraceCollector& tracer() const { return tracer_; }

  /// Tunes hot-path sampling: wall-clock latency is measured on every
  /// `latency_every`-th dispatch (0 disables timing) and spans are recorded
  /// per the tracer's own sampling. Defaults: 32 and 256 — chosen so the
  /// full instrumentation stays within a few percent of the uninstrumented
  /// dispatch cost (see BENCH_PR3.json).
  void set_telemetry_sampling(uint32_t latency_every, uint32_t trace_every) {
    latency_sample_every_ = latency_every;
    latency_tick_ = latency_every == 0 ? 0 : 1;
    tracer_.set_sample_every(trace_every);
  }

  // ------------------------------------------------------ Decision cache

  /// Sizes the per-shard CheckAccess verdict cache: 0 disables (the
  /// default), otherwise a power of two — validated at the service
  /// boundary. Any existing entries are dropped.
  ///
  /// What the cache does: CheckAccess verdicts whose deciding rule is the
  /// global CA rule (or the fail-safe default deny) are memoized under a
  /// 64-bit (session, operation, object) symbol key together with a
  /// validity stamp — policy epoch, rule-pool generation, session
  /// generation, active-role generation sum. A later identical request
  /// whose recomputed stamp matches replays the verdict without raising
  /// rbac.checkAccess at all; every state change that could alter the
  /// verdict bumps one of the stamp's components at its firing site, so
  /// stale entries die lazily at lookup. Guard rails, re-derived whenever
  /// the pool or epoch moves: caching is bypassed entirely if anything but
  /// the CA rule consumes rbac.checkAccess, denials are only cached while
  /// rbac.accessDenied has no consumers (active-security directives attach
  /// SEC rules to it, which must see every denial), and requests carrying a
  /// purpose always dispatch. Replayed denials carry rule/reason but no
  /// failed_condition (diagnostic only); replayed requests skip latency and
  /// span sampling but still count decisions/denials and feed the audit log.
  void ConfigureDecisionCache(size_t capacity);
  const DecisionCache& decision_cache() const { return decision_cache_; }
  /// Mutable cache access for tests (torn-publish fault injection) and
  /// service wiring. Must only be used on the engine's owning thread.
  DecisionCache& decision_cache_for_test() { return decision_cache_; }

  /// Advances the stamp epoch, atomically invalidating every cached
  /// verdict. The engine bumps it itself on policy load/update and context
  /// change; the service bumps it on every shard inside each admin
  /// broadcast.
  void BumpDecisionCacheEpoch() {
    ++cache_epoch_;
    PublishFastPathState();
  }
  uint64_t decision_cache_epoch() const { return cache_epoch_; }

  uint64_t decision_cache_hits() const { return cache_hits_counter_->value(); }
  uint64_t decision_cache_misses() const {
    return cache_misses_counter_->value();
  }
  uint64_t decision_cache_stale() const {
    return cache_stale_counter_->value();
  }

  /// Bounded audit trail of the most recent decisions (administrators'
  /// report material; audit rules summarize it). Oldest first; a fixed-size
  /// ring buffer, so sustained traffic never grows it past its capacity.
  const DecisionLog& decision_log() const { return decision_log_; }
  /// Number of audit records shed once the ring filled up.
  uint64_t decision_log_overflow() const { return decision_log_.overflow(); }
  /// Sets the trail capacity (default 256; 0 disables recording).
  void set_decision_log_capacity(size_t capacity);

  /// \brief Ordered audit hand-off: invokes `fn` on every decision record
  /// not yet drained (oldest first) and returns how many records were
  /// evicted from the ring before they could be drained — the caller (the
  /// service's export tap) accounts those as audit losses. The engine keeps
  /// the cursor, so repeat calls only ever see new records; a call with
  /// nothing new costs one comparison. Engine-thread only, like every other
  /// mutating entry point.
  template <typename Fn>
  uint64_t DrainDecisionLog(Fn&& fn) {
    return decision_log_.DrainInto(&audit_cursor_, std::forward<Fn>(fn));
  }
  /// True iff a drain right now would deliver records (or report losses).
  bool HasUndrainedDecisions() const {
    return audit_cursor_ < decision_log_.next_seq();
  }

 private:
  /// Raises `event` with a fresh Decision installed; applies the default
  /// deny when no rule decided.
  Decision Dispatch(EventId event, FlatParamMap params);

  /// Replays a precomputed removal delta, then re-adds from `to` guarded by
  /// live runtime-DB presence checks (the add half must see the shard's own
  /// runtime-diverged state, so it cannot be precomputed). Exact semantic
  /// equivalent of the old full-diff ReconcileBaseState.
  Status ApplyBaseDelta(const BaseStateDelta& delta, const Policy& to);

  /// The validity stamp a CheckAccess on `session` depends on, right now.
  DecisionCache::Stamp CacheStamp(Symbol session) const;
  /// The coarse caller-validatable stamp: epoch, pool generation, and the
  /// *table-wide* session/role generations (every precise bump also bumps
  /// its table-wide counter, so a fast-stamp match implies an exact match).
  DecisionCache::Stamp FastCacheStamp() const;
  /// Publishes the current fast stamp into the cache's shared view. Called
  /// at the tail of every mutating public entry point, so the publish is
  /// complete before that call's result is acknowledged to its caller —
  /// the zero-hop read path's linearization anchor. A branch when the
  /// shared view is off.
  void PublishFastPathState();
  /// Re-derives cache_positive_ok_ / cache_negative_ok_ from the current
  /// rule pool and event graph (called when pool generation or epoch moved).
  void RefreshCacheGates();
  /// True iff `decision` is one the cache can reconstruct exactly.
  static bool CacheableVerdict(const Decision& decision);
  /// Rebuilds a Decision from a cache hit and applies the bookkeeping the
  /// dispatched path would have done (counters, audit log, sampled span).
  /// The request symbols attribute the audit record like a full dispatch.
  Decision ReplayCachedVerdict(DecisionCache::Verdict verdict, Symbol session,
                               Symbol op, Symbol obj);

  SimulatedClock* clock_;  // Not owned.
  /// Shared by the detector, RBAC base and role-state table; declared
  /// first so it outlives every component that holds a pointer to it.
  SymbolTable symbols_;
  ParamKeys keys_;
  /// Declared before the detector and rule manager, which register their
  /// instruments on it at construction.
  telemetry::Registry metrics_;
  telemetry::TraceCollector tracer_;
  EventDetector detector_;
  RuleManager rules_;
  RbacSystem rbac_;
  RoleStateTable role_state_;
  PrivacyStore privacy_;
  ActiveSecurityMonitor security_;
  /// The installed generation. Always non-null (starts empty) because
  /// generated global rules read engine->policy() live at fire time. Only
  /// ever swapped on the engine's own thread; immutable once installed.
  std::shared_ptr<const Policy> policy_;
  uint64_t policy_version_ = 0;
  /// rbac_.base_removals() as of the last base-state reconcile. While the
  /// live counter still equals this mark, no runtime removal has touched
  /// the base relations and ApplyBaseDelta may replay the precomputed
  /// O(diff) add lists instead of re-scanning the whole target policy.
  uint64_t base_sync_mark_ = 0;
  /// Running count of policy entries skipped by best-effort reconciles
  /// (RegenReport::base_entries_skipped reports per-commit deltas).
  uint64_t base_reconcile_skips_ = 0;
  std::unique_ptr<RuleGenerator> generator_;
  CoreEvents events_;
  std::vector<EventId> duration_events_;
  std::map<std::string, std::string> context_;
  ThrottleSink throttle_sink_;
  DecisionLog decision_log_;
  /// Drain position for DrainDecisionLog (seq of the next undrained record).
  uint64_t audit_cursor_ = 0;
  bool policy_loaded_ = false;
  DecisionCache decision_cache_;
  uint64_t cache_epoch_ = 0;
  /// Pool generation / epoch the gates below were derived under; starts
  /// out-of-band so the first cacheable request derives them.
  uint64_t gate_pool_generation_ = ~0ull;
  uint64_t gate_epoch_ = ~0ull;
  bool cache_positive_ok_ = false;
  bool cache_negative_ok_ = false;
  telemetry::Counter* decisions_counter_ = nullptr;  // Owned by metrics_.
  telemetry::Counter* denials_counter_ = nullptr;
  telemetry::Counter* cache_hits_counter_ = nullptr;
  telemetry::Counter* cache_misses_counter_ = nullptr;
  telemetry::Counter* cache_stale_counter_ = nullptr;
  telemetry::Counter* cache_fills_counter_ = nullptr;
  telemetry::Gauge* cache_entries_gauge_ = nullptr;
  telemetry::Histogram* latency_hist_ = nullptr;
  telemetry::Histogram* cascade_hist_ = nullptr;
  uint32_t latency_sample_every_ = 32;
  /// Dispatches until the next timed one; 0 = timing off. Starts at 1 so
  /// the first dispatch seeds the latency histogram (countdown instead of
  /// a modulo: no division on the fast path).
  uint32_t latency_tick_ = 1;
  /// Rule firings in the most recently drained cascade, stashed by the
  /// quiescent callback and recorded on sampled dispatches.
  uint64_t last_cascade_used_ = 0;
};

}  // namespace sentinel

#endif  // SENTINELPP_CORE_ENGINE_H_
