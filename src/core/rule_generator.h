#ifndef SENTINELPP_CORE_RULE_GENERATOR_H_
#define SENTINELPP_CORE_RULE_GENERATOR_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/policy.h"
#include "event/event.h"

namespace sentinel {

class AuthorizationEngine;

/// \brief Compiles a Policy into the engine's rule pool — the paper's
/// "synthesis of active authorization rules" (§4) and its automatic
/// (re)generation from high-level specifications (§5).
///
/// Generated artifacts follow the paper's catalog and naming:
///   AAR.<role>        activation rules (variants AAR1..AAR4 by property)
///   CC.<role>         cardinality rules (Rule 4)
///   UAC.<user>        per-user active-role caps (specialized, scenario 1)
///   DUR.<role>[...]   duration deactivation chains (Rule 7, PLUS)
///   CA.global         check-access rule (Rule 5)
///   ADM.*             administrative rules (assignment, sessions)
///   GLOB.*            role enable/disable/drop handling
///   TSOD.<name>       time-based SoD via OR + APERIODIC (Rule 6)
///   CFD.<pair>        control-flow dependencies (Rule 8)
///   ASEC.<name>       transaction-based activation via APERIODIC (Rule 9)
///   SEC.<name>        threshold monitoring (active security)
///   AUD.<name>        periodic audit reports (PERIODIC)
///
/// Every rule is indexed under a *tag* ("role:R", "user:U", "tsod:N",
/// "tx:N", "cfd:I", "sec:N", "aud:N", "global"); incremental regeneration
/// removes and re-creates exactly the tags the policy diff touches.
/// Structural events are reused across generations; superseded temporal
/// events (PLUS, ABSOLUTE, PERIODIC) are deactivated and replaced under a
/// generation-suffixed name.
class RuleGenerator {
 public:
  struct Stats {
    int rules_added = 0;
    int rules_removed = 0;
    int events_added = 0;
  };

  explicit RuleGenerator(AuthorizationEngine* engine) : engine_(engine) {}

  RuleGenerator(const RuleGenerator&) = delete;
  RuleGenerator& operator=(const RuleGenerator&) = delete;

  /// Full generation for a freshly loaded policy.
  Result<Stats> GenerateAll(const Policy& policy);

  /// Incremental regeneration: rebuilds rules for the given roles/users
  /// and every constraint tag touching them; directive tags when asked.
  Result<Stats> Regenerate(const Policy& policy,
                           const std::set<RoleName>& roles,
                           const std::set<UserName>& users,
                           bool directives_changed);

  /// Rules currently indexed under `tag` (introspection/tests).
  std::vector<std::string> RulesForTag(const std::string& tag) const;
  int tag_count() const { return static_cast<int>(tags_.size()); }

 private:
  struct TagInfo {
    std::vector<std::string> rule_names;
    std::vector<EventId> temporal_events;  // Deactivated on removal.
    std::set<RoleName> touches;            // Roles this tag involves.
  };

  // --- Helpers -----------------------------------------------------------

  /// Filter event reuse: returns the existing id when `name` is already
  /// registered, otherwise defines Filter(base, equals).
  Result<EventId> EnsureFilter(const std::string& name, EventId base,
                               ParamMap equals);
  /// Adds a rule to the pool and indexes it under `tag`.
  Status AddRule(const std::string& tag, class Rule rule);
  /// Registers a temporal event under `tag` for later deactivation.
  void TrackTemporal(const std::string& tag, EventId event);
  /// Next generation-suffixed name for a temporal event of `tag`.
  std::string TemporalName(const std::string& tag, const std::string& stem);
  /// Removes every rule of `tag` and deactivates its temporal events.
  int RemoveTag(const std::string& tag);

  // --- Per-section generation --------------------------------------------

  Status GenerateGlobalRules(const Policy& policy);
  Status GenerateRoleRules(const Policy& policy, const RoleSpec& spec);
  Status GenerateUserRules(const Policy& policy, const UserSpec& spec);
  Status GenerateTimeSodRules(const Policy& policy, const TimeSod& tsod);
  Status GenerateCfdRules(const Policy& policy, const CfdPair& pair,
                          int index);
  Status GenerateTransactionRules(const Policy& policy,
                                  const TransactionActivation& tx);
  Status GenerateThresholdRules(const Policy& policy,
                                const ThresholdDirective& directive);
  Status GenerateAuditRules(const Policy& policy,
                            const AuditDirective& directive);

  AuthorizationEngine* engine_;  // Not owned.
  std::map<std::string, TagInfo> tags_;
  std::map<std::string, int> generations_;
  std::string current_tag_;
  Stats* current_stats_ = nullptr;
};

}  // namespace sentinel

#endif  // SENTINELPP_CORE_RULE_GENERATOR_H_
