#ifndef SENTINELPP_CORE_ACTIVE_SECURITY_H_
#define SENTINELPP_CORE_ACTIVE_SECURITY_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/value.h"

namespace sentinel {

/// \brief One raised internal-security alert (for administrators).
struct SecurityAlert {
  std::string directive;
  Time when = 0;
  int observed_count = 0;
  std::string detail;
};

/// \brief Sliding-window denial counters backing the threshold directives
/// (paper §1: "when access requests by unauthorized roles ... are more than
/// a certain number of times within a duration, an internal security alert
/// is triggered").
///
/// The active-security rules feed denial timestamps in; the rule condition
/// asks whether the window count reached the directive's threshold. Alerts
/// and report counters are recorded here for administrators (and tests).
class ActiveSecurityMonitor {
 public:
  ActiveSecurityMonitor() = default;

  /// Registers/resets the sliding window for a directive.
  void DefineWindow(const std::string& directive, Duration window,
                    int threshold);
  void RemoveWindow(const std::string& directive);

  /// Records one denial at `when`; returns the count of denials inside
  /// the directive's window ending at `when` (inclusive of this one).
  int RecordDenial(const std::string& directive, Time when);

  /// Records one denial attributed to `key` (a user name) at `when`;
  /// returns that key's own count inside the directive's window. Keyed
  /// windows back the per-principal throttle reaction: the aggregate
  /// window answers "is the system under attack", the keyed one "by whom".
  int RecordDenialKeyed(const std::string& directive, const std::string& key,
                        Time when);

  /// Clears one key's window (called when a throttle fires, so the same
  /// burst cannot re-trip the penalty).
  void ClearKeyedWindow(const std::string& directive, const std::string& key);

  /// True iff the directive's window count has reached its threshold.
  bool ThresholdReached(const std::string& directive) const;

  /// Records an alert (also clears the directive's window so the alert
  /// does not re-fire for the same burst).
  void RaiseAlert(const std::string& directive, Time when, int observed,
                  const std::string& detail);

  /// Records a periodic audit report tick.
  void RecordAuditReport(const std::string& directive, Time when);

  const std::vector<SecurityAlert>& alerts() const { return alerts_; }
  int alert_count() const { return static_cast<int>(alerts_.size()); }
  int audit_report_count(const std::string& directive) const;
  uint64_t total_denials_recorded() const { return total_denials_; }

 private:
  struct WindowState {
    Duration window = 0;
    int threshold = 0;
    std::deque<Time> denials;
    /// Per-key (per-user) denial timestamps, same sliding window. Entries
    /// whose deque empties are erased, so the map tracks only keys with
    /// denials still in window.
    std::map<std::string, std::deque<Time>> keyed;
  };

  std::map<std::string, WindowState> windows_;
  std::map<std::string, int> audit_counts_;
  std::vector<SecurityAlert> alerts_;
  uint64_t total_denials_ = 0;
};

}  // namespace sentinel

#endif  // SENTINELPP_CORE_ACTIVE_SECURITY_H_
