#include "core/rule_generator.h"

#include <algorithm>

#include "common/logging.h"
#include "core/engine.h"
#include "rules/rule.h"

namespace sentinel {

namespace {

Value V(const std::string& s) { return Value(s); }

// Decision writers tolerant of monitoring contexts (no decision in flight,
// e.g. timer-driven rule firings).
void AllowDecision(RuleContext& ctx, const std::string& rule) {
  if (ctx.decision != nullptr) ctx.decision->Allow(rule);
}

void DenyDecision(RuleContext& ctx, const std::string& rule,
                  const std::string& reason) {
  if (ctx.decision == nullptr) return;
  ctx.decision->Deny(rule, reason);
  // Explanation: surface which WHEN condition routed us into ELSE.
  if (ctx.failed_condition != nullptr) {
    ctx.decision->failed_condition = *ctx.failed_condition;
  }
}

}  // namespace

// ======================================================== Bookkeeping

Result<EventId> RuleGenerator::EnsureFilter(const std::string& name,
                                            EventId base, ParamMap equals) {
  EventDetector& detector = engine_->detector();
  if (detector.registry().Contains(name)) {
    return detector.Lookup(name);
  }
  auto id = detector.DefineFilter(name, base, std::move(equals));
  if (id.ok() && current_stats_ != nullptr) ++current_stats_->events_added;
  return id;
}

Status RuleGenerator::AddRule(const std::string& tag, Rule rule) {
  const std::string name = rule.name();
  auto added = engine_->rule_manager().AddRule(std::move(rule));
  if (!added.ok()) return added.status();
  tags_[tag].rule_names.push_back(name);
  if (current_stats_ != nullptr) ++current_stats_->rules_added;
  return Status::OK();
}

void RuleGenerator::TrackTemporal(const std::string& tag, EventId event) {
  tags_[tag].temporal_events.push_back(event);
  if (current_stats_ != nullptr) ++current_stats_->events_added;
}

std::string RuleGenerator::TemporalName(const std::string& tag,
                                        const std::string& stem) {
  const int generation = generations_[tag];
  if (generation == 0) return stem;
  return stem + "#" + std::to_string(generation);
}

int RuleGenerator::RemoveTag(const std::string& tag) {
  auto it = tags_.find(tag);
  if (it == tags_.end()) return 0;
  int removed = 0;
  for (const std::string& rule_name : it->second.rule_names) {
    if (engine_->rule_manager().RemoveRule(rule_name).ok()) ++removed;
  }
  for (EventId event : it->second.temporal_events) {
    (void)engine_->detector().DeactivateEvent(event);
  }
  if (tag.rfind("sec:", 0) == 0) {
    engine_->security().RemoveWindow(tag.substr(4));
  }
  ++generations_[tag];
  tags_.erase(it);
  if (current_stats_ != nullptr) current_stats_->rules_removed += removed;
  return removed;
}

std::vector<std::string> RuleGenerator::RulesForTag(
    const std::string& tag) const {
  auto it = tags_.find(tag);
  if (it == tags_.end()) return {};
  return it->second.rule_names;
}

// ==================================================== Top-level passes

Result<RuleGenerator::Stats> RuleGenerator::GenerateAll(
    const Policy& policy) {
  Stats stats;
  current_stats_ = &stats;
  Status status = GenerateGlobalRules(policy);
  for (const auto& [name, spec] : policy.roles()) {
    if (!status.ok()) break;
    status = GenerateRoleRules(policy, spec);
  }
  for (const auto& [name, spec] : policy.users()) {
    if (!status.ok()) break;
    status = GenerateUserRules(policy, spec);
  }
  for (const TimeSod& tsod : policy.time_sods()) {
    if (!status.ok()) break;
    if (tsod.kind == TimeSodKind::kDisabling) {
      status = GenerateTimeSodRules(policy, tsod);
    }
    // Enabling-time SoD is enforced by the GLOB.enable conditions, which
    // read the policy dynamically; no per-constraint rules required.
  }
  for (size_t i = 0; i < policy.cfd_pairs().size() && status.ok(); ++i) {
    status = GenerateCfdRules(policy, policy.cfd_pairs()[i],
                              static_cast<int>(i));
  }
  for (const TransactionActivation& tx : policy.transactions()) {
    if (!status.ok()) break;
    status = GenerateTransactionRules(policy, tx);
  }
  for (const ThresholdDirective& directive : policy.thresholds()) {
    if (!status.ok()) break;
    status = GenerateThresholdRules(policy, directive);
  }
  for (const AuditDirective& directive : policy.audits()) {
    if (!status.ok()) break;
    status = GenerateAuditRules(policy, directive);
  }
  current_stats_ = nullptr;
  if (!status.ok()) return status;
  return stats;
}

Result<RuleGenerator::Stats> RuleGenerator::Regenerate(
    const Policy& policy, const std::set<RoleName>& roles,
    const std::set<UserName>& users, bool directives_changed) {
  Stats stats;
  current_stats_ = &stats;

  auto touches_affected = [&roles](const TagInfo& info) {
    return std::any_of(info.touches.begin(), info.touches.end(),
                       [&roles](const RoleName& role) {
                         return roles.count(role) > 0;
                       });
  };

  // Collect constraint tags touching any affected role (before mutation).
  std::vector<std::string> doomed;
  for (const auto& [tag, info] : tags_) {
    const bool role_tag = tag.rfind("role:", 0) == 0;
    const bool user_tag = tag.rfind("user:", 0) == 0;
    const bool directive_tag =
        tag.rfind("sec:", 0) == 0 || tag.rfind("aud:", 0) == 0;
    if (role_tag && roles.count(tag.substr(5)) > 0) {
      doomed.push_back(tag);
    } else if (user_tag && users.count(tag.substr(5)) > 0) {
      doomed.push_back(tag);
    } else if (directive_tag && directives_changed) {
      doomed.push_back(tag);
    } else if (!role_tag && !user_tag && !directive_tag && tag != "global" &&
               touches_affected(info)) {
      doomed.push_back(tag);
    }
  }
  for (const std::string& tag : doomed) RemoveTag(tag);

  Status status = Status::OK();
  // Rebuild role and user rules for entries still present in the policy.
  for (const RoleName& role : roles) {
    if (!status.ok()) break;
    auto it = policy.roles().find(role);
    if (it != policy.roles().end()) {
      status = GenerateRoleRules(policy, it->second);
    }
  }
  for (const UserName& user : users) {
    if (!status.ok()) break;
    auto it = policy.users().find(user);
    if (it != policy.users().end()) {
      status = GenerateUserRules(policy, it->second);
    }
  }
  // Rebuild constraint tags touching affected roles.
  for (const TimeSod& tsod : policy.time_sods()) {
    if (!status.ok()) break;
    if (tsod.kind != TimeSodKind::kDisabling) continue;
    const bool touches = std::any_of(
        tsod.roles.begin(), tsod.roles.end(),
        [&roles](const RoleName& role) { return roles.count(role) > 0; });
    if (touches && tags_.count("tsod:" + tsod.name) == 0) {
      status = GenerateTimeSodRules(policy, tsod);
    }
  }
  for (size_t i = 0; i < policy.cfd_pairs().size() && status.ok(); ++i) {
    const CfdPair& pair = policy.cfd_pairs()[i];
    const bool touches =
        roles.count(pair.trigger) > 0 || roles.count(pair.companion) > 0;
    const std::string tag = "cfd:" + std::to_string(i);
    if (touches && tags_.count(tag) == 0) {
      status = GenerateCfdRules(policy, pair, static_cast<int>(i));
    }
  }
  for (const TransactionActivation& tx : policy.transactions()) {
    if (!status.ok()) break;
    const bool touches =
        roles.count(tx.controller) > 0 || roles.count(tx.dependent) > 0;
    if (touches && tags_.count("tx:" + tx.name) == 0) {
      status = GenerateTransactionRules(policy, tx);
    }
  }
  if (directives_changed && status.ok()) {
    for (const ThresholdDirective& directive : policy.thresholds()) {
      status = GenerateThresholdRules(policy, directive);
      if (!status.ok()) break;
    }
    for (const AuditDirective& directive : policy.audits()) {
      if (!status.ok()) break;
      status = GenerateAuditRules(policy, directive);
    }
  }
  current_stats_ = nullptr;
  if (!status.ok()) return status;
  return stats;
}

// ===================================================== Global rules

Status RuleGenerator::GenerateGlobalRules(const Policy& policy) {
  (void)policy;  // Global rule conditions read engine_->policy() live.
  AuthorizationEngine* eng = engine_;
  const auto& ev = eng->events();
  // Copied into the condition lambdas: parameter lookups and RBAC
  // predicates then run entirely on interned symbols.
  const AuthorizationEngine::ParamKeys k = eng->keys();
  const std::string tag = "global";

  using O = Rule::Options;

  // --- ADM.createSession (paper: administrative rule, globalized) -------
  {
    Rule rule("ADM.createSession", ev.create_session,
              O{0, true, RuleClass::kAdministrative,
                RuleGranularity::kGlobalized});
    rule.When("user IN userL",
              [eng, k](RuleContext& c) {
                return eng->rbac().db().HasUser(c.ParamSym(k.user));
              })
        .When("sessionId valid and NOT IN sessionL",
              [eng, k](RuleContext& c) {
                // Empty ids intern like any name; reject by spelling.
                return !c.ParamString(k.session).empty() &&
                       !eng->rbac().db().HasSession(c.ParamSym(k.session));
              })
        .Then("createSession(user, sessionId)",
              [eng, k](RuleContext& c) {
                (void)eng->rbac().db().CreateSession(
                    c.ParamString(k.user), c.ParamString(k.session));
                AllowDecision(c, "ADM.createSession");
              })
        .Else("raise error \"Cannot Create Session\"", [](RuleContext& c) {
          DenyDecision(c, "ADM.createSession", "Cannot Create Session");
        });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  }

  // --- ADM.deleteSession -------------------------------------------------
  {
    Rule rule("ADM.deleteSession", ev.delete_session,
              O{0, true, RuleClass::kAdministrative,
                RuleGranularity::kGlobalized});
    rule.When("sessionId IN sessionL",
              [eng, k](RuleContext& c) {
                return eng->rbac().db().HasSession(c.ParamSym(k.session));
              })
        .Then("deactivate roles; deleteSession(sessionId)",
              [eng, k](RuleContext& c) {
                const SessionId session = c.ParamString(k.session);
                auto info = eng->rbac().db().GetSession(session);
                if (info.ok()) {
                  const UserName user = (*info)->user;
                  const std::set<RoleName> active = (*info)->active_roles;
                  for (const RoleName& role : active) {
                    (void)eng->ForceDeactivate(user, session, role);
                  }
                }
                (void)eng->rbac().db().DeleteSession(session);
                AllowDecision(c, "ADM.deleteSession");
              })
        .Else("raise error \"No Such Session\"", [](RuleContext& c) {
          DenyDecision(c, "ADM.deleteSession", "No Such Session");
        });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  }

  // --- ADM.assign (scenario 3: one globalized assignment rule) ----------
  {
    Rule rule("ADM.assign", ev.assign_user,
              O{0, true, RuleClass::kAdministrative,
                RuleGranularity::kGlobalized});
    rule.When("user IN userL",
              [eng, k](RuleContext& c) {
                return eng->rbac().db().HasUser(c.ParamSym(k.user));
              })
        .When("role IN roleL",
              [eng, k](RuleContext& c) {
                return eng->rbac().db().HasRole(c.ParamSym(k.role));
              })
        .When("user NOT assigned to role",
              [eng, k](RuleContext& c) {
                return !eng->rbac().db().IsAssigned(c.ParamSym(k.user),
                                                    c.ParamSym(k.role));
              })
        .When("checkStaticSoDSet(user, role)",
              [eng, k](RuleContext& c) {
                return eng->rbac().SsdSatisfiedWith(c.ParamString(k.user),
                                                    c.ParamString(k.role));
              })
        .Then("assignUser(user, role)",
              [eng, k](RuleContext& c) {
                (void)eng->rbac().db().Assign(c.ParamString(k.user),
                                              c.ParamString(k.role));
                AllowDecision(c, "ADM.assign");
              })
        .Else("raise error \"Cannot Assign\"", [](RuleContext& c) {
          DenyDecision(c, "ADM.assign", "Cannot Assign");
        });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  }

  // --- ADM.deassign ------------------------------------------------------
  {
    Rule rule("ADM.deassign", ev.deassign_user,
              O{0, true, RuleClass::kAdministrative,
                RuleGranularity::kGlobalized});
    rule.When("user IN userL",
              [eng, k](RuleContext& c) {
                return eng->rbac().db().HasUser(c.ParamSym(k.user));
              })
        .When("user assigned to role",
              [eng, k](RuleContext& c) {
                return eng->rbac().db().IsAssigned(c.ParamSym(k.user),
                                                   c.ParamSym(k.role));
              })
        .Then("deassignUser(user, role); drop unauthorized active roles",
              [eng, k](RuleContext& c) {
                const UserName user = c.ParamString(k.user);
                const RoleName role = c.ParamString(k.role);
                (void)eng->rbac().db().Deassign(user, role);
                // Active instances that lost their authorization fall away.
                for (const SessionId& session :
                     eng->rbac().db().UserSessions(user)) {
                  auto info = eng->rbac().db().GetSession(session);
                  if (!info.ok()) continue;
                  const std::set<RoleName> active = (*info)->active_roles;
                  for (const RoleName& r : active) {
                    if (!eng->rbac().IsAuthorized(user, r)) {
                      (void)eng->ForceDeactivate(user, session, r);
                    }
                  }
                }
                AllowDecision(c, "ADM.deassign");
              })
        .Else("raise error \"Cannot Deassign\"", [](RuleContext& c) {
          DenyDecision(c, "ADM.deassign", "Cannot Deassign");
        });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  }

  // --- GLOB.drop: deactivation requests ----------------------------------
  {
    Rule rule("GLOB.drop", ev.drop_active_role,
              O{0, true, RuleClass::kActivityControl,
                RuleGranularity::kGlobalized});
    rule.When("sessionId IN sessionL",
              [eng, k](RuleContext& c) {
                return eng->rbac().db().HasSession(c.ParamSym(k.session));
              })
        .When("sessionId IN checkUserSessions(user)",
              [eng, k](RuleContext& c) {
                const auto* state =
                    eng->rbac().db().GetSessionState(c.ParamSym(k.session));
                return state != nullptr && state->user == c.ParamSym(k.user);
              })
        .When("role IN checkSessionRoles(sessionId)",
              [eng, k](RuleContext& c) {
                return eng->rbac().db().IsSessionRoleActive(
                    c.ParamSym(k.session), c.ParamSym(k.role));
              })
        .Then("dropSessionRole(sessionId, role)",
              [eng, k](RuleContext& c) {
                (void)eng->ForceDeactivate(c.ParamString(k.user),
                                           c.ParamString(k.session),
                                           c.ParamString(k.role));
                AllowDecision(c, "GLOB.drop");
              })
        .Else("raise error \"Cannot Deactivate\"", [](RuleContext& c) {
          DenyDecision(c, "GLOB.drop", "Cannot Deactivate");
        });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  }

  // --- CA.global: Rule 5 (check access) -----------------------------------
  {
    Rule rule("CA.global", ev.check_access,
              O{0, true, RuleClass::kActivityControl,
                RuleGranularity::kGlobalized});
    rule.When("sessionId IN sessionL",
              [eng, k](RuleContext& c) {
                return eng->rbac().db().HasSession(c.ParamSym(k.session));
              })
        .When("operation IN opsL",
              [eng, k](RuleContext& c) {
                return eng->rbac().db().HasOperation(c.ParamSym(k.operation));
              })
        .When("object IN objL",
              [eng, k](RuleContext& c) {
                return eng->rbac().db().HasObject(c.ParamSym(k.object));
              })
        .When("ANY role IN getSessionRoles has checkPermissions",
              [eng, k](RuleContext& c) {
                auto verdict = eng->rbac().CheckAccess(c.ParamSym(k.session),
                                                       c.ParamSym(k.operation),
                                                       c.ParamSym(k.object));
                return verdict.ok() && *verdict;
              })
        .When("purpose permitted by object policy",
              [eng, k](RuleContext& c) {
                return eng->privacy().AccessPermitted(
                    c.ParamString(k.object), c.ParamString(k.purpose));
              })
        .Then("allow access",
              [](RuleContext& c) { AllowDecision(c, "CA.global"); })
        .Else("raise error \"Permission Denied\"", [eng, k](RuleContext& c) {
          DenyDecision(c, "CA.global", "Permission Denied");
          FlatParamMap params{{k.session, Value(c.ParamSym(k.session))},
                              {k.operation, Value(c.ParamSym(k.operation))},
                              {k.object, Value(c.ParamSym(k.object))}};
          // Attribute the denial to the session's user when the session
          // exists — per-principal threshold reactions (keyed windows,
          // throttling) need to know *who* is being denied, and the
          // request itself only names the session.
          if (const RbacDatabase::SessionState* state =
                  eng->rbac().db().GetSessionState(c.ParamSym(k.session))) {
            params.Set(k.user, Value(state->user));
          }
          (void)eng->RaiseEvent(eng->events().access_denied,
                                std::move(params));
        });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  }

  // --- GLOB.enable: role enabling (GTRBAC transitions) --------------------
  {
    Rule rule("GLOB.enable", ev.enable_role,
              O{0, true, RuleClass::kActivityControl,
                RuleGranularity::kGlobalized});
    rule.When("role IN roleL",
              [eng, k](RuleContext& c) {
                return eng->rbac().db().HasRole(c.ParamSym(k.role));
              })
        .When("role is not a CFD trigger",
              [eng, k](RuleContext& c) {
                return !eng->IsCfdTrigger(c.ParamString(k.role));
              })
        .When("enabling-time SoD satisfied",
              [eng, k](RuleContext& c) {
                return eng->EnableTsodOk(c.ParamString(k.role));
              })
        .Then("enableRole(role)",
              [eng, k](RuleContext& c) {
                eng->role_state().Enable(c.ParamString(k.role), eng->Now());
                AllowDecision(c, "GLOB.enable");
                (void)eng->RaiseEvent(eng->events().role_enabled,
                                      {{k.role, Value(c.ParamSym(k.role))}});
              })
        .Else("deny or defer to CFD rule", [eng, k](RuleContext& c) {
          const RoleName role = c.ParamString(k.role);
          if (!eng->rbac().db().HasRole(role)) {
            DenyDecision(c, "GLOB.enable", "No Such Role");
          } else if (eng->IsCfdTrigger(role)) {
            // The CFD rule on the filtered event adjudicates this request.
          } else {
            DenyDecision(c, "GLOB.enable",
                         "Denied by Enabling-Time SoD");
          }
        });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  }

  // --- GLOB.disable --------------------------------------------------------
  {
    Rule rule("GLOB.disable", ev.disable_role,
              O{0, true, RuleClass::kActivityControl,
                RuleGranularity::kGlobalized});
    rule.When("role IN roleL",
              [eng, k](RuleContext& c) {
                return eng->rbac().db().HasRole(c.ParamSym(k.role));
              })
        .When("no disabling-time SoD window in effect",
              [eng, k](RuleContext& c) {
                return !eng->TsodGuardedNow(c.ParamString(k.role),
                                            TimeSodKind::kDisabling);
              })
        .Then("disableRole(role)",
              [eng, k](RuleContext& c) {
                const RoleName role = c.ParamString(k.role);
                eng->role_state().Disable(role, eng->Now());
                eng->DeactivateAllInstances(role);
                AllowDecision(c, "GLOB.disable");
                (void)eng->RaiseEvent(eng->events().role_disabled,
                                      {{k.role, Value(c.ParamSym(k.role))}});
              })
        .Else("deny or defer to TSOD rule", [eng, k](RuleContext& c) {
          const RoleName role = c.ParamString(k.role);
          if (!eng->rbac().db().HasRole(role)) {
            DenyDecision(c, "GLOB.disable", "No Such Role");
          }
          // Guarded roles are adjudicated by the TSOD APERIODIC rule.
        });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  }

  return Status::OK();
}

// ======================================================== Role rules

Status RuleGenerator::GenerateRoleRules(const Policy& policy,
                                        const RoleSpec& spec) {
  AuthorizationEngine* eng = engine_;
  const auto& ev = eng->events();
  const AuthorizationEngine::ParamKeys k = eng->keys();
  const RoleName role = spec.name;
  // Captured once here; the rule's per-firing checks never touch the name.
  const Symbol role_sym = eng->symbols().Intern(role);
  const std::string tag = "role:" + role;
  tags_[tag].touches.insert(role);

  // Structural events, shared across generations.
  SENTINEL_ASSIGN_OR_RETURN(
      activate_ev, EnsureFilter("ev.act." + role, ev.add_active_role,
                                {{"role", V(role)}}));
  SENTINEL_ASSIGN_OR_RETURN(
      added_ev, EnsureFilter("ev.added." + role, ev.session_role_added,
                             {{"role", V(role)}}));
  SENTINEL_ASSIGN_OR_RETURN(
      dropped_ev, EnsureFilter("ev.dropped." + role, ev.session_role_dropped,
                               {{"role", V(role)}}));
  (void)dropped_ev;

  const bool in_hierarchy = policy.RoleInHierarchy(role);
  const bool in_dsd = policy.RoleInDsd(role);
  const std::set<RoleName> prerequisites = spec.prerequisites;

  // --- AAR.<role>: the activation rule, variant by role properties -------
  // (paper §4.3.1, AAR1..AAR4). Roles whose activation is transaction-
  // gated get their checks inside the ASEC rule instead.
  if (!policy.RoleIsTransactionDependent(role)) {
    Rule rule("AAR." + role, activate_ev,
              Rule::Options{0, true, RuleClass::kActivityControl,
                            RuleGranularity::kLocalized});
    rule.When("user IN userL",
              [eng, k](RuleContext& c) {
                return eng->rbac().db().HasUser(c.ParamSym(k.user));
              })
        .When("sessionId IN sessionL",
              [eng, k](RuleContext& c) {
                return eng->rbac().db().HasSession(c.ParamSym(k.session));
              })
        .When("sessionId IN checkUserSessions(user)",
              [eng, k](RuleContext& c) {
                const auto* state =
                    eng->rbac().db().GetSessionState(c.ParamSym(k.session));
                return state != nullptr && state->user == c.ParamSym(k.user);
              })
        .When(role + " NOT IN checkSessionRoles(sessionId)",
              [eng, k, role_sym](RuleContext& c) {
                return !eng->rbac().db().IsSessionRoleActive(
                    c.ParamSym(k.session), role_sym);
              });
    if (in_hierarchy) {
      rule.When("checkAuthorization" + role + "(user) IS TRUE",
                [eng, k, role_sym](RuleContext& c) {
                  return eng->rbac().IsAuthorized(c.ParamSym(k.user),
                                                  role_sym);
                });
    } else {
      rule.When("checkAssigned" + role + "(user) IS TRUE",
                [eng, k, role_sym](RuleContext& c) {
                  return eng->rbac().db().IsAssigned(c.ParamSym(k.user),
                                                     role_sym);
                });
    }
    if (in_dsd) {
      rule.When("checkDynamicSoDSet(user, " + role + ") IS TRUE",
                [eng, k, role_sym](RuleContext& c) {
                  return eng->rbac().DsdSatisfiedWith(c.ParamSym(k.session),
                                                      role_sym);
                });
    }
    rule.When("checkRoleEnabled(" + role + ") IS TRUE",
              [eng, role_sym](RuleContext& c) {
                (void)c;
                return eng->role_state().IsEnabled(role_sym);
              });
    if (!prerequisites.empty()) {
      std::vector<Symbol> prereq_syms;
      prereq_syms.reserve(prerequisites.size());
      for (const RoleName& prereq : prerequisites) {
        prereq_syms.push_back(eng->symbols().Intern(prereq));
      }
      rule.When("checkPrerequisiteRoles(sessionId) IS TRUE",
                [eng, k, prereq_syms](RuleContext& c) {
                  for (Symbol prereq : prereq_syms) {
                    if (!eng->rbac().db().IsSessionRoleActive(
                            c.ParamSym(k.session), prereq)) {
                      return false;
                    }
                  }
                  return true;
                });
    }
    if (!spec.required_context.empty()) {
      const std::map<std::string, std::string> required =
          spec.required_context;
      rule.When("checkContext(" + role + ") IS TRUE",
                [eng, required](RuleContext& c) {
                  (void)c;
                  return eng->ContextSatisfied(required);
                });
    }
    rule.Then("addSessionRole" + role + "(sessionId)",
              [eng, k, role, role_sym](RuleContext& c) {
                (void)eng->rbac().db().AddSessionRole(
                    c.ParamString(k.session), role);
                AllowDecision(c, "AAR." + role);
                (void)eng->RaiseEvent(
                    eng->events().session_role_added,
                    {{k.user, Value(c.ParamSym(k.user))},
                     {k.session, Value(c.ParamSym(k.session))},
                     {k.role, Value(role_sym)}});
              })
        .Else("raise error \"Access Denied Cannot Activate\"",
              [role](RuleContext& c) {
                DenyDecision(c, "AAR." + role,
                             "Access Denied Cannot Activate");
              });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  }

  // --- CTX.<role>: context-aware deactivation (§1: constraints must hold
  // until deactivation; a breaking context change deactivates the role) ---
  if (!spec.required_context.empty()) {
    const std::map<std::string, std::string> required =
        spec.required_context;
    Rule rule("CTX." + role, ev.context_changed,
              Rule::Options{0, true, RuleClass::kActiveSecurity,
                            RuleGranularity::kLocalized});
    rule.When("context constraint broken for " + role,
              [eng, required](RuleContext& c) {
                (void)c;
                return !eng->ContextSatisfied(required);
              })
        .Then("deactivate all instances of " + role,
              [eng, role](RuleContext& c) {
                (void)c;
                eng->DeactivateAllInstances(role);
              });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  }

  // --- CC.<role>: Rule 4 cardinality, compensating post-check ------------
  if (spec.activation_cardinality > 0) {
    const int limit = spec.activation_cardinality;
    Rule rule("CC." + role, added_ev,
              Rule::Options{0, true, RuleClass::kActivityControl,
                            RuleGranularity::kLocalized});
    rule.When("Cardinality" + role + "(INCR) IS TRUE",
              [eng, role_sym, limit](RuleContext& c) {
                (void)c;
                return eng->rbac().db().ActiveSessionCount(role_sym) <= limit;
              })
        .Then("confirm activation", [](RuleContext&) {})
        .Else("undo activation; raise error \"Maximum Number of Roles "
              "Reached\"",
              [eng, k, role](RuleContext& c) {
                (void)eng->ForceDeactivate(c.ParamString(k.user),
                                           c.ParamString(k.session), role);
                DenyDecision(c, "CC." + role,
                             "Maximum Number of Roles Reached");
              });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  }

  // --- DUR.<role>: Rule 7 duration chain via PLUS -------------------------
  if (spec.max_activation > 0) {
    const std::string plus_name = TemporalName(tag, "ev.durexp." + role);
    auto plus_ev = eng->detector().DefinePlus(plus_name, added_ev,
                                              spec.max_activation);
    if (!plus_ev.ok()) return plus_ev.status();
    TrackTemporal(tag, *plus_ev);
    eng->RegisterDurationEvent(*plus_ev);

    Rule rule("DUR." + role, *plus_ev,
              Rule::Options{0, true, RuleClass::kActivityControl,
                            RuleGranularity::kLocalized});
    rule.When("role still active in session",
              [eng, k, role_sym](RuleContext& c) {
                return eng->rbac().db().IsSessionRoleActive(
                    c.ParamSym(k.session), role_sym);
              })
        .Then("deactivateRole" + role + "(sessionId)",
              [eng, k, role](RuleContext& c) {
                (void)eng->ForceDeactivate(c.ParamString(k.user),
                                           c.ParamString(k.session), role);
              });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  }

  // --- SH.<role>: GTRBAC enabling window (shift) boundaries ----------------
  if (spec.enabling_window.has_value()) {
    const PeriodicExpression& window = *spec.enabling_window;
    auto on_ev = eng->detector().DefineAbsolute(
        TemporalName(tag, "ev.shift.on." + role), window.window_start());
    if (!on_ev.ok()) return on_ev.status();
    TrackTemporal(tag, *on_ev);
    auto off_ev = eng->detector().DefineAbsolute(
        TemporalName(tag, "ev.shift.off." + role), window.window_end());
    if (!off_ev.ok()) return off_ev.status();
    TrackTemporal(tag, *off_ev);

    Rule on_rule("SH." + role + ".on", *on_ev,
                 Rule::Options{0, true, RuleClass::kActivityControl,
                               RuleGranularity::kLocalized});
    on_rule.Then("enableRole" + role,
                 [eng, k, role, role_sym](RuleContext& c) {
                   (void)c;
                   eng->role_state().Enable(role, eng->Now());
                   (void)eng->RaiseEvent(eng->events().role_enabled,
                                         {{k.role, Value(role_sym)}});
                 });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(on_rule)));

    Rule off_rule("SH." + role + ".off", *off_ev,
                  Rule::Options{0, true, RuleClass::kActivityControl,
                                RuleGranularity::kLocalized});
    off_rule.Then("disableRole" + role + "; deactivate instances",
                  [eng, k, role, role_sym](RuleContext& c) {
                    (void)c;
                    eng->role_state().Disable(role, eng->Now());
                    eng->DeactivateAllInstances(role);
                    (void)eng->RaiseEvent(eng->events().role_disabled,
                                          {{k.role, Value(role_sym)}});
                  });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(off_rule)));
  }

  return Status::OK();
}

// ======================================================== User rules

Status RuleGenerator::GenerateUserRules(const Policy& policy,
                                        const UserSpec& spec) {
  (void)policy;
  AuthorizationEngine* eng = engine_;
  const auto& ev = eng->events();
  const AuthorizationEngine::ParamKeys k = eng->keys();
  const UserName user = spec.name;
  const std::string tag = "user:" + user;
  tags_[tag];  // Materialize the tag even when no rules follow.

  // --- UAC.<user>: scenario 1, specialized active-role cap ---------------
  if (spec.max_active_roles > 0) {
    const int cap = spec.max_active_roles;
    SENTINEL_ASSIGN_OR_RETURN(
        added_ev, EnsureFilter("ev.added.u." + user, ev.session_role_added,
                               {{"user", V(user)}}));
    Rule rule("UAC." + user, added_ev,
              Rule::Options{0, true, RuleClass::kActivityControl,
                            RuleGranularity::kSpecialized});
    rule.When("active roles of " + user + " <= " + std::to_string(cap),
              [eng, user, cap](RuleContext& c) {
                (void)c;
                return eng->CountUserActiveRoles(user) <= cap;
              })
        .Then("confirm activation", [](RuleContext&) {})
        .Else("undo activation; raise error \"Maximum Number of Roles "
              "Reached\"",
              [eng, k, user](RuleContext& c) {
                (void)eng->ForceDeactivate(user, c.ParamString(k.session),
                                           c.ParamString(k.role));
                DenyDecision(c, "UAC." + user,
                             "Maximum Number of Roles Reached");
              });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  }

  // --- DUR.<user>.<role>: Rule 7, specialized duration bounds ------------
  for (const auto& [role, duration] : spec.role_durations) {
    SENTINEL_ASSIGN_OR_RETURN(
        added_ev,
        EnsureFilter("ev.added.u." + user + ".r." + role,
                     ev.session_role_added,
                     {{"user", V(user)}, {"role", V(role)}}));
    const std::string plus_name =
        TemporalName(tag, "ev.durexp.u." + user + ".r." + role);
    auto plus_ev = eng->detector().DefinePlus(plus_name, added_ev, duration);
    if (!plus_ev.ok()) return plus_ev.status();
    TrackTemporal(tag, *plus_ev);
    eng->RegisterDurationEvent(*plus_ev);

    const RoleName role_copy = role;
    const Symbol role_sym = eng->symbols().Intern(role);
    Rule rule("DUR." + user + "." + role, *plus_ev,
              Rule::Options{0, true, RuleClass::kActivityControl,
                            RuleGranularity::kSpecialized});
    rule.When("role still active in session",
              [eng, k, role_sym](RuleContext& c) {
                return eng->rbac().db().IsSessionRoleActive(
                    c.ParamSym(k.session), role_sym);
              })
        .Then("deactivateRole" + role + "(sessionId)",
              [eng, k, user, role_copy](RuleContext& c) {
                (void)eng->ForceDeactivate(user, c.ParamString(k.session),
                                           role_copy);
              });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  }

  return Status::OK();
}

// ================================================= Time-based SoD rules

Status RuleGenerator::GenerateTimeSodRules(const Policy& policy,
                                           const TimeSod& tsod) {
  (void)policy;
  AuthorizationEngine* eng = engine_;
  const auto& ev = eng->events();
  const AuthorizationEngine::ParamKeys k = eng->keys();
  const std::string tag = "tsod:" + tsod.name;
  tags_[tag].touches.insert(tsod.roles.begin(), tsod.roles.end());

  // OR over the member roles' disable requests (paper Rule 6: ET3).
  std::vector<EventId> alternatives;
  for (const RoleName& role : tsod.roles) {
    SENTINEL_ASSIGN_OR_RETURN(
        disable_ev, EnsureFilter("ev.disable." + role, ev.disable_role,
                                 {{"role", V(role)}}));
    alternatives.push_back(disable_ev);
  }
  auto or_ev = eng->detector().DefineOr(
      TemporalName(tag, "ev.tsod.or." + tsod.name), alternatives);
  if (!or_ev.ok()) return or_ev.status();
  TrackTemporal(tag, *or_ev);

  // Window machinery: absolute boundary events + a boot initiator so a
  // window already in progress at generation time is honoured.
  auto start_ev = eng->detector().DefineAbsolute(
      TemporalName(tag, "ev.tsod.start." + tsod.name),
      tsod.period.window_start());
  if (!start_ev.ok()) return start_ev.status();
  TrackTemporal(tag, *start_ev);
  auto end_ev = eng->detector().DefineAbsolute(
      TemporalName(tag, "ev.tsod.end." + tsod.name),
      tsod.period.window_end());
  if (!end_ev.ok()) return end_ev.status();
  TrackTemporal(tag, *end_ev);
  auto boot_ev = eng->detector().DefinePrimitive(
      TemporalName(tag, "ev.tsod.boot." + tsod.name));
  if (!boot_ev.ok()) return boot_ev.status();
  TrackTemporal(tag, *boot_ev);
  auto init_ev = eng->detector().DefineOr(
      TemporalName(tag, "ev.tsod.init." + tsod.name), {*start_ev, *boot_ev});
  if (!init_ev.ok()) return init_ev.status();
  TrackTemporal(tag, *init_ev);
  auto win_ev = eng->detector().DefineAperiodic(
      TemporalName(tag, "ev.tsod.win." + tsod.name), *init_ev, *or_ev,
      *end_ev, ConsumptionMode::kRecent);
  if (!win_ev.ok()) return win_ev.status();
  TrackTemporal(tag, *win_ev);

  const PeriodicExpression period = tsod.period;
  Rule rule("TSOD." + tsod.name, *win_ev,
            Rule::Options{0, true, RuleClass::kActivityControl,
                          RuleGranularity::kLocalized});
  rule.When("(I,P) in effect",
            [eng, period](RuleContext& c) {
              (void)c;
              return period.Contains(eng->Now());
            })
      .When("checkActive counter-role IS TRUE",
            [eng, k](RuleContext& c) {
              return eng->DisableTsodOk(c.ParamString(k.role));
            })
      .Then("disable requested role",
            [eng, k, rule_name = "TSOD." + tsod.name](RuleContext& c) {
              const RoleName role = c.ParamString(k.role);
              eng->role_state().Disable(role, eng->Now());
              eng->DeactivateAllInstances(role);
              AllowDecision(c, rule_name);
              (void)eng->RaiseEvent(eng->events().role_disabled,
                                    {{k.role, Value(c.ParamSym(k.role))}});
            })
      .Else("raise error \"Denied as Counter-Role Already Disabled\"",
            [eng, period, rule_name = "TSOD." + tsod.name](RuleContext& c) {
              // Outside (I,P) the window machinery can linger one cycle;
              // GLOB.disable already adjudicated, so stay silent.
              if (!period.Contains(eng->Now())) return;
              DenyDecision(c, rule_name,
                           "Denied as Counter-Role Already Disabled");
            });
  SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));

  // A window already open at generation time must be honoured.
  if (period.Contains(eng->Now())) {
    (void)eng->detector().Raise(*boot_ev, {});
  }
  return Status::OK();
}

// ============================================================ CFD rules

Status RuleGenerator::GenerateCfdRules(const Policy& policy,
                                       const CfdPair& pair, int index) {
  (void)policy;
  AuthorizationEngine* eng = engine_;
  const auto& ev = eng->events();
  const std::string tag = "cfd:" + std::to_string(index);
  tags_[tag].touches = {pair.trigger, pair.companion};
  const AuthorizationEngine::ParamKeys k = eng->keys();
  const RoleName trigger = pair.trigger;
  const RoleName companion = pair.companion;
  const Symbol trigger_sym = eng->symbols().Intern(trigger);
  const Symbol companion_sym = eng->symbols().Intern(companion);

  SENTINEL_ASSIGN_OR_RETURN(
      enable_trigger_ev, EnsureFilter("ev.enable." + trigger, ev.enable_role,
                                      {{"role", V(trigger)}}));
  SENTINEL_ASSIGN_OR_RETURN(
      disable_companion_ev,
      EnsureFilter("ev.disable." + companion, ev.disable_role,
                   {{"role", V(companion)}}));

  // CFD1: enabling the trigger requires enabling the companion too
  // (paper Rule 8: enableRoleSysAdmin -> enableRoleSysAudit).
  {
    Rule rule("CFD." + trigger + "." + companion + ".enable",
              enable_trigger_ev,
              Rule::Options{0, true, RuleClass::kActivityControl,
                            RuleGranularity::kLocalized});
    rule.When("enabling-time SoD satisfied for " + trigger,
              [eng, trigger](RuleContext& c) {
                (void)c;
                return eng->EnableTsodOk(trigger);
              })
        .When("companion " + companion + " enabled or enablable",
              [eng, companion](RuleContext& c) {
                (void)c;
                return eng->role_state().IsEnabled(companion) ||
                       eng->EnableTsodOk(companion);
              })
        .Then("enableRole" + trigger + "(); enableRole" + companion + "()",
              [eng, k, trigger, companion, trigger_sym,
               companion_sym](RuleContext& c) {
                eng->role_state().Enable(trigger, eng->Now());
                (void)eng->RaiseEvent(eng->events().role_enabled,
                                      {{k.role, Value(trigger_sym)}});
                if (!eng->role_state().IsEnabled(companion)) {
                  eng->role_state().Enable(companion, eng->Now());
                  (void)eng->RaiseEvent(eng->events().role_enabled,
                                        {{k.role, Value(companion_sym)}});
                }
                AllowDecision(c, "CFD." + trigger + ".enable");
              })
        .Else("raise error \"Cannot Enable " + trigger + "\"",
              [trigger](RuleContext& c) {
                DenyDecision(c, "CFD." + trigger + ".enable",
                             "Cannot Enable " + trigger);
              });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  }

  // CFD2: disabling the companion disables the trigger (post-condition
  // invariant: trigger enabled implies companion enabled).
  {
    Rule rule("CFD." + trigger + "." + companion + ".disable",
              disable_companion_ev,
              Rule::Options{0, true, RuleClass::kActivityControl,
                            RuleGranularity::kLocalized});
    rule.When("companion " + companion + " is now disabled",
              [eng, companion](RuleContext& c) {
                (void)c;
                return !eng->role_state().IsEnabled(companion);
              })
        .When("trigger " + trigger + " still enabled",
              [eng, trigger](RuleContext& c) {
                (void)c;
                return eng->role_state().IsEnabled(trigger);
              })
        .Then("disableRole" + trigger + "()",
              [eng, k, trigger, trigger_sym](RuleContext& c) {
                (void)c;
                eng->role_state().Disable(trigger, eng->Now());
                eng->DeactivateAllInstances(trigger);
                (void)eng->RaiseEvent(eng->events().role_disabled,
                                      {{k.role, Value(trigger_sym)}});
              });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  }

  return Status::OK();
}

// ================================================= Transaction rules

Status RuleGenerator::GenerateTransactionRules(
    const Policy& policy, const TransactionActivation& tx) {
  AuthorizationEngine* eng = engine_;
  const auto& ev = eng->events();
  const std::string tag = "tx:" + tx.name;
  tags_[tag].touches = {tx.controller, tx.dependent};
  const AuthorizationEngine::ParamKeys k = eng->keys();
  const RoleName controller = tx.controller;
  const RoleName dependent = tx.dependent;
  const Symbol controller_sym = eng->symbols().Intern(controller);
  const Symbol dependent_sym = eng->symbols().Intern(dependent);

  SENTINEL_ASSIGN_OR_RETURN(
      ctrl_on_ev, EnsureFilter("ev.added." + controller,
                               ev.session_role_added,
                               {{"role", V(controller)}}));
  SENTINEL_ASSIGN_OR_RETURN(
      ctrl_off_ev, EnsureFilter("ev.dropped." + controller,
                                ev.session_role_dropped,
                                {{"role", V(controller)}}));
  SENTINEL_ASSIGN_OR_RETURN(
      dep_req_ev, EnsureFilter("ev.act." + dependent, ev.add_active_role,
                               {{"role", V(dependent)}}));

  auto boot_ev = eng->detector().DefinePrimitive(
      TemporalName(tag, "ev.tx.boot." + tx.name));
  if (!boot_ev.ok()) return boot_ev.status();
  TrackTemporal(tag, *boot_ev);
  auto init_ev = eng->detector().DefineOr(
      TemporalName(tag, "ev.tx.init." + tx.name), {ctrl_on_ev, *boot_ev});
  if (!init_ev.ok()) return init_ev.status();
  TrackTemporal(tag, *init_ev);
  auto win_ev = eng->detector().DefineAperiodic(
      TemporalName(tag, "ev.tx.win." + tx.name), *init_ev, dep_req_ev,
      ctrl_off_ev, ConsumptionMode::kRecent);
  if (!win_ev.ok()) return win_ev.status();
  TrackTemporal(tag, *win_ev);

  const bool in_hierarchy = policy.RoleInHierarchy(dependent);
  const bool in_dsd = policy.RoleInDsd(dependent);

  // ASEC activation rule (paper Rule 9, ASEC3): the dependent role can be
  // activated only while the transaction window is open; all the usual
  // AAR checks still apply.
  {
    Rule rule("ASEC." + tx.name + ".activate", *win_ev,
              Rule::Options{0, true, RuleClass::kActiveSecurity,
                            RuleGranularity::kLocalized});
    rule.When("user IN userL",
              [eng, k](RuleContext& c) {
                return eng->rbac().db().HasUser(c.ParamSym(k.user));
              })
        .When("sessionId IN sessionL",
              [eng, k](RuleContext& c) {
                return eng->rbac().db().HasSession(c.ParamSym(k.session));
              })
        .When("sessionId IN checkUserSessions(user)",
              [eng, k](RuleContext& c) {
                const auto* state =
                    eng->rbac().db().GetSessionState(c.ParamSym(k.session));
                return state != nullptr && state->user == c.ParamSym(k.user);
              })
        .When(dependent + " NOT IN checkSessionRoles(sessionId)",
              [eng, k, dependent_sym](RuleContext& c) {
                return !eng->rbac().db().IsSessionRoleActive(
                    c.ParamSym(k.session), dependent_sym);
              })
        .When(in_hierarchy ? "checkAuthorization(user) IS TRUE"
                           : "checkAssigned(user) IS TRUE",
              [eng, k, dependent_sym, in_hierarchy](RuleContext& c) {
                return in_hierarchy
                           ? eng->rbac().IsAuthorized(c.ParamSym(k.user),
                                                      dependent_sym)
                           : eng->rbac().db().IsAssigned(c.ParamSym(k.user),
                                                         dependent_sym);
              });
    if (in_dsd) {
      rule.When("checkDynamicSoDSet(user, " + dependent + ") IS TRUE",
                [eng, k, dependent_sym](RuleContext& c) {
                  return eng->rbac().DsdSatisfiedWith(c.ParamSym(k.session),
                                                      dependent_sym);
                });
    }
    const std::map<std::string, std::string> dep_context =
        policy.roles().count(dependent) > 0
            ? policy.roles().at(dependent).required_context
            : std::map<std::string, std::string>{};
    if (!dep_context.empty()) {
      rule.When("checkContext(" + dependent + ") IS TRUE",
                [eng, dep_context](RuleContext& c) {
                  (void)c;
                  return eng->ContextSatisfied(dep_context);
                });
    }
    rule.When("checkRoleEnabled(" + dependent + ") IS TRUE",
              [eng, dependent_sym](RuleContext& c) {
                (void)c;
                return eng->role_state().IsEnabled(dependent_sym);
              })
        .When("controller " + controller + " still active",
              [eng, controller_sym](RuleContext& c) {
                (void)c;
                return eng->rbac().db().ActiveSessionCount(controller_sym) >
                       0;
              })
        .Then("activate" + dependent,
              [eng, k, dependent, dependent_sym,
               tx_name = tx.name](RuleContext& c) {
                (void)eng->rbac().db().AddSessionRole(
                    c.ParamString(k.session), dependent);
                AllowDecision(c, "ASEC." + tx_name + ".activate");
                (void)eng->RaiseEvent(
                    eng->events().session_role_added,
                    {{k.user, Value(c.ParamSym(k.user))},
                     {k.session, Value(c.ParamSym(k.session))},
                     {k.role, Value(dependent_sym)}});
              })
        .Else("raise error \"Permission Denied\"",
              [tx_name = tx.name](RuleContext& c) {
                DenyDecision(c, "ASEC." + tx_name + ".activate",
                             "Permission Denied");
              });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  }

  // ASEC cascade (paper Rule 9, ASEC2 tail): when the last controller
  // instance deactivates, the dependent role falls away everywhere;
  // otherwise the window re-opens for the remaining controllers.
  {
    const EventId boot = *boot_ev;
    Rule rule("ASEC." + tx.name + ".cascade", ctrl_off_ev,
              Rule::Options{0, true, RuleClass::kActiveSecurity,
                            RuleGranularity::kLocalized});
    rule.Then("deactivate dependents or re-open window",
              [eng, controller_sym, dependent, boot](RuleContext& c) {
                (void)c;
                if (eng->rbac().db().ActiveSessionCount(controller_sym) ==
                    0) {
                  eng->DeactivateAllInstances(dependent);
                } else {
                  (void)eng->RaiseEvent(boot, {});
                }
              });
    SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  }

  // Honour controllers already active at generation time.
  if (eng->rbac().db().ActiveSessionCount(controller) > 0) {
    (void)eng->detector().Raise(*boot_ev, {});
  }
  return Status::OK();
}

// ================================================== Threshold directives

Status RuleGenerator::GenerateThresholdRules(
    const Policy& policy, const ThresholdDirective& directive) {
  (void)policy;
  AuthorizationEngine* eng = engine_;
  const std::string tag = "sec:" + directive.name;
  tags_[tag];

  eng->security().DefineWindow(directive.name, directive.window,
                               directive.threshold);

  const AuthorizationEngine::ParamKeys k = eng->keys();
  const std::string name = directive.name;
  const Symbol alert_key = eng->symbols().Intern("name");
  const Symbol alert_name = eng->symbols().Intern(name);
  const int threshold = directive.threshold;
  const std::vector<std::string> prefixes = directive.disable_rule_prefixes;
  const std::vector<RoleName> disable_roles = directive.disable_roles;
  const double throttle_rate = directive.throttle_rate_per_s;
  const int64_t throttle_burst =
      directive.throttle_burst < 1 ? 1 : directive.throttle_burst;

  Rule rule("SEC." + name, eng->events().access_denied,
            Rule::Options{0, true, RuleClass::kActiveSecurity,
                          RuleGranularity::kGlobalized});
  rule.Then(
      "record denial; alert administrators and disable critical rules on "
      "breach",
      [eng, k, name, alert_key, alert_name, threshold, prefixes,
       disable_roles, throttle_rate, throttle_burst](RuleContext& c) {
        const Time now = eng->Now();
        // Per-principal reaction first: the keyed window answers "which
        // user is bursting", independently of the aggregate alert below.
        // On breach the offender's admission quota is clamped through the
        // hosting service's policer; the keyed window is cleared so the
        // same burst cannot re-trip the penalty.
        if (throttle_rate > 0) {
          const std::string& user = c.ParamString(k.user);
          if (!user.empty() &&
              eng->security().RecordDenialKeyed(name, user, now) >=
                  threshold) {
            eng->security().ClearKeyedWindow(name, user);
            SENTINEL_LOG(kWarning)
                << "active security throttling user '" << user << "' to "
                << throttle_rate << " req/s after denial burst ["
                << name << "]";
            eng->NotifyThrottle(user, throttle_rate, throttle_burst);
          }
        }
        const int count = eng->security().RecordDenial(name, now);
        if (count < threshold) return;
        eng->security().RaiseAlert(
            name, now, count,
            "denied access burst: op=" + c.ParamString(k.operation) +
                " obj=" + c.ParamString(k.object));
        int disabled = 0;
        for (const std::string& prefix : prefixes) {
          disabled += eng->rule_manager().DisableIf(
              [&prefix](const Rule& r) {
                return r.name().rfind(prefix, 0) == 0;
              });
        }
        if (disabled > 0) {
          SENTINEL_LOG(kWarning)
              << "active security disabled " << disabled
              << " rule(s) after alert [" << name << "]";
        }
        // The paper's "deactivate a set of roles" alert action.
        for (const RoleName& role : disable_roles) {
          if (eng->role_state().IsEnabled(role)) {
            eng->role_state().Disable(role, now);
            eng->DeactivateAllInstances(role);
            (void)eng->RaiseEvent(
                eng->events().role_disabled,
                {{k.role, Value(eng->symbols().Intern(role))}});
          }
        }
        (void)eng->RaiseEvent(eng->events().security_alert,
                              {{alert_key, Value(alert_name)}});
      });
  SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));
  return Status::OK();
}

// ====================================================== Audit directives

Status RuleGenerator::GenerateAuditRules(const Policy& policy,
                                         const AuditDirective& directive) {
  (void)policy;
  AuthorizationEngine* eng = engine_;
  const std::string tag = "aud:" + directive.name;
  tags_[tag];

  auto boot_ev = eng->detector().DefinePrimitive(
      TemporalName(tag, "ev.audit.boot." + directive.name));
  if (!boot_ev.ok()) return boot_ev.status();
  TrackTemporal(tag, *boot_ev);
  auto stop_ev = eng->detector().DefinePrimitive(
      TemporalName(tag, "ev.audit.stop." + directive.name));
  if (!stop_ev.ok()) return stop_ev.status();
  TrackTemporal(tag, *stop_ev);
  auto tick_ev = eng->detector().DefinePeriodic(
      TemporalName(tag, "ev.audit." + directive.name), *boot_ev,
      directive.interval, *stop_ev);
  if (!tick_ev.ok()) return tick_ev.status();
  TrackTemporal(tag, *tick_ev);

  const std::string name = directive.name;
  Rule rule("AUD." + name, *tick_ev,
            Rule::Options{0, true, RuleClass::kActiveSecurity,
                          RuleGranularity::kGlobalized});
  rule.Then("generate report", [eng, name](RuleContext& c) {
    (void)c;
    eng->security().RecordAuditReport(name, eng->Now());
    SENTINEL_LOG(kInfo) << "audit report [" << name << "]: decisions="
                        << eng->decisions_made()
                        << " denials=" << eng->denials() << " sessions="
                        << eng->rbac().db().session_count();
  });
  SENTINEL_RETURN_IF_ERROR(AddRule(tag, std::move(rule)));

  // Start the periodic stream.
  (void)eng->detector().Raise(*boot_ev, {});
  return Status::OK();
}

}  // namespace sentinel
