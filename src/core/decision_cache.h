#ifndef SENTINELPP_CORE_DECISION_CACHE_H_
#define SENTINELPP_CORE_DECISION_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/interner.h"

namespace sentinel {

/// \brief Per-shard memo table for CheckAccess verdicts.
///
/// The paper's observation cuts both ways: because every state change that
/// can affect an authorization verdict flows through the rule machinery as
/// an event, those same firing sites can invalidate a verdict cache
/// *precisely* — no TTLs, no scan-and-evict. Each entry carries the Stamp
/// of the state it was computed under (policy epoch, rule-pool generation,
/// per-session generation, active-role generation sum); a lookup whose
/// recomputed Stamp differs treats the entry as dead. Stale entries are
/// never searched for — they die lazily when probed or get overwritten by
/// a later fill.
///
/// Shape: fixed-capacity open-addressed table, power-of-two slots, bounded
/// linear probe window. Owned by a single-threaded engine shard, so there
/// are no locks; Lookup and Fill never allocate. Slots are only reclaimed
/// by overwrite or Clear() — the table tolerates dead weight by design.
///
/// Zero-hop read path (PR 6): alongside the private table the cache keeps a
/// *shared* mirror — one seqlock-stamped atomic slot per private slot, plus
/// the current fast stamp published as two release-stored words. Fills (and
/// only fills, on the shard thread) write the mirror; any caller thread may
/// SharedLookup() against it without crossing the mailbox. The mirror
/// carries the coarse *fast* stamp (epoch, pool generation, table-wide
/// session generation, table-wide role generation) rather than the exact
/// per-session stamp: a caller cannot recompute per-session components, but
/// every precise bump also bumps its table-wide counter, so a fast-stamp
/// match is strictly stronger than the exact check — staleness costs a hit,
/// never correctness. Memory ordering contract:
///
///  * Writer (shard thread) per slot: seq -> odd (relaxed), release fence,
///    data stores (relaxed), seq -> even (release).
///  * Reader: seq load (acquire; odd => fall back), data loads (relaxed),
///    acquire fence, seq re-load (changed => torn, fall back).
///  * Current stamp: release-stored after every mutating engine call
///    returns (AuthorizationEngine::PublishFastPathState), so a hit whose
///    entry stamp equals the loaded current stamp replays a verdict valid
///    as of the last *completed* engine call — in-flight mutations are
///    unacknowledged to their callers, so the read linearizes before them.
class DecisionCache {
 public:
  /// The validity stamp: an entry is alive iff every component still equals
  /// the value recomputed at lookup time. Components are compared exactly
  /// (not hashed together) so distinct states can never alias.
  struct Stamp {
    uint32_t epoch = 0;    ///< Engine policy/admin-broadcast epoch.
    uint32_t pool = 0;     ///< RuleManager pool generation.
    uint32_t session = 0;  ///< RbacDatabase per-session generation.
    uint32_t roles = 0;    ///< Sum of the session's active-role generations.
    bool operator==(const Stamp&) const = default;
  };

  /// What a hit reconstructs. Only CA-rule verdicts and the fail-safe
  /// default deny are cacheable, so two bits suffice; the engine rebuilds
  /// the Decision strings from them.
  struct Verdict {
    bool allowed = false;
    /// Deny attribution: true = the CA rule's ELSE branch, false = the
    /// fail-safe default (no rule decided). Meaningless for allows.
    bool by_rule = false;
  };

  enum class Outcome { kHit, kMiss, kStale };

  static bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

  /// (session, operation, object) packed 24/16/24 into one key. Returns
  /// nullopt when a symbol id overflows its field (callers bypass the cache
  /// for such requests; with dense interning this needs ~16M distinct
  /// session/object names or 65k operations).
  static std::optional<uint64_t> PackKey(Symbol session, Symbol op,
                                         Symbol obj) {
    const uint64_t s = session.id();
    const uint64_t o = op.id();
    const uint64_t b = obj.id();
    if (s >= (1u << 24) || o >= (1u << 16) || b >= (1u << 24)) {
      return std::nullopt;
    }
    return (s << 40) | (o << 24) | b;
  }

  /// Sizes the table to `capacity` slots (0 disables, otherwise must be a
  /// power of two — validated at the service boundary) and drops every
  /// cached entry, shared mirror included. Not thread-safe: call before
  /// concurrent readers exist (the service configures at construction).
  void Configure(size_t capacity) {
    const size_t n = IsPowerOfTwo(capacity) ? capacity : 0;
    slots_.assign(n, Slot{});
    shared_slots_ = std::vector<SharedSlot>(n);
    live_ = 0;
    fills_ = 0;
  }

  bool enabled() const { return !slots_.empty(); }
  size_t capacity() const { return slots_.size(); }
  /// Occupied slots (live and stale alike — staleness is only decidable
  /// per key, at lookup time).
  size_t size() const { return live_; }

  Outcome Lookup(uint64_t key, const Stamp& stamp, Verdict* out) {
    const uint64_t stored = key + 1;
    const size_t mask = slots_.size() - 1;
    size_t index = Mix(key) & mask;
    for (size_t i = 0; i < kProbeWindow; ++i, index = (index + 1) & mask) {
      Slot& slot = slots_[index];
      // Fills take the first empty slot in the window and slots never
      // empty out again, so an empty slot proves the key is absent.
      if (slot.key_plus_1 == 0) return Outcome::kMiss;
      if (slot.key_plus_1 != stored) continue;
      if (!(slot.stamp == stamp)) return Outcome::kStale;
      *out = slot.verdict;
      return Outcome::kHit;
    }
    return Outcome::kMiss;
  }

  /// Writes a verdict under its exact stamp, mirroring the slot into the
  /// shared view under `fast_stamp` (the coarse stamp callers validate
  /// against; see the class comment). The 3-arg overload mirrors under the
  /// exact stamp — for unit tests and engines without a fast path.
  void Fill(uint64_t key, const Stamp& stamp, Verdict verdict) {
    Fill(key, stamp, verdict, stamp);
  }

  void Fill(uint64_t key, const Stamp& stamp, Verdict verdict,
            const Stamp& fast_stamp) {
    const uint64_t stored = key + 1;
    const size_t mask = slots_.size() - 1;
    const size_t home = Mix(key) & mask;
    size_t victim = kNoSlot;
    size_t index = home;
    for (size_t i = 0; i < kProbeWindow; ++i, index = (index + 1) & mask) {
      Slot& slot = slots_[index];
      if (slot.key_plus_1 == stored) {  // Refresh in place.
        slot.stamp = stamp;
        slot.verdict = verdict;
        PublishSharedSlot(index, stored, fast_stamp, verdict);
        return;
      }
      if (slot.key_plus_1 == 0 && victim == kNoSlot) victim = index;
    }
    if (victim == kNoSlot) {
      // Window full of other keys: rotate the eviction point so one hot
      // bucket cannot pin a single victim slot forever.
      victim = (home + static_cast<size_t>(fills_ % kProbeWindow)) & mask;
    } else {
      ++live_;
    }
    ++fills_;
    slots_[victim] = Slot{stored, stamp, verdict};
    PublishSharedSlot(victim, stored, fast_stamp, verdict);
  }

  void Clear() {
    for (size_t i = 0; i < slots_.size(); ++i) {
      slots_[i] = Slot{};
      PublishSharedSlot(i, 0, Stamp{}, Verdict{});
    }
    live_ = 0;
  }

  // ------------------------------------------------- Zero-hop shared view

  /// Publishes the current fast stamp (shard thread only). Called by the
  /// engine at the tail of every mutating public call; entries whose
  /// mirrored stamp equals the published words are replayable caller-side.
  void PublishCurrentStamp(const Stamp& fast) {
    shared_cur_lo_.store(PackLo(fast), std::memory_order_relaxed);
    shared_cur_hi_.store(PackHi(fast), std::memory_order_release);
  }

  /// Caller-side zero-hop probe: true (with `*out` set) only for an entry
  /// whose mirrored fast stamp equals the currently published one. Every
  /// other outcome — empty window, key absent, stamp mismatch, publish in
  /// flight, torn read — returns false: the caller falls back to the
  /// mailbox, which re-derives exactly. Safe from any thread.
  bool SharedLookup(uint64_t key, Verdict* out) const {
    if (shared_slots_.empty()) return false;
    // Current stamp first: an entry matching it replays a verdict valid as
    // of that publish. (Both words monotonic; see class comment.)
    const uint64_t cur_hi = shared_cur_hi_.load(std::memory_order_acquire);
    const uint64_t cur_lo = shared_cur_lo_.load(std::memory_order_acquire);
    const uint64_t stored = key + 1;
    const size_t mask = shared_slots_.size() - 1;
    size_t index = Mix(key) & mask;
    for (size_t i = 0; i < kProbeWindow; ++i, index = (index + 1) & mask) {
      const SharedSlot& slot = shared_slots_[index];
      const uint32_t seq = slot.seq.load(std::memory_order_acquire);
      if ((seq & 1u) != 0) return false;  // Publish in flight.
      const uint64_t k = slot.key_plus_1.load(std::memory_order_relaxed);
      const uint64_t lo = slot.stamp_lo.load(std::memory_order_relaxed);
      const uint64_t hi = slot.stamp_hi.load(std::memory_order_relaxed);
      const uint32_t v = slot.verdict.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != seq) return false;
      // Mirrored fills keep the private table's probe geometry, so an
      // empty shared slot proves absence just like Lookup's does.
      if (k == 0) return false;
      if (k != stored) continue;
      if (lo != cur_lo || hi != cur_hi) return false;  // Stale.
      *out = Verdict{(v & 1u) != 0, (v & 2u) != 0};
      return true;
    }
    return false;
  }

  bool shared_enabled() const { return !shared_slots_.empty(); }

  /// Test-only fault injection (shard thread, via InjectShardFault):
  /// freezes `key`'s shared slot mid-publish — sequence left odd — until
  /// EndTornPublishForTest. Readers must treat the slot as unreadable and
  /// fall back to the mailbox; the private table is untouched.
  void BeginTornPublishForTest(uint64_t key) {
    SharedSlot* slot = SharedSlotFor(key);
    if (slot == nullptr) return;
    slot->seq.store(slot->seq.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
  }

  void EndTornPublishForTest(uint64_t key) {
    SharedSlot* slot = SharedSlotFor(key);
    if (slot == nullptr) return;
    slot->seq.store(slot->seq.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
  }

 private:
  struct Slot {
    uint64_t key_plus_1 = 0;  ///< Packed key + 1; 0 marks an empty slot.
    Stamp stamp;
    Verdict verdict;
  };

  /// One mirrored cache entry, readable from any thread. Cache-line sized
  /// so a writer publishing one slot never invalidates a neighbour a
  /// reader is probing.
  struct alignas(64) SharedSlot {
    std::atomic<uint32_t> seq{0};  ///< Seqlock: odd = publish in flight.
    std::atomic<uint64_t> key_plus_1{0};
    std::atomic<uint64_t> stamp_lo{0};  ///< epoch | pool << 32 (fast stamp).
    std::atomic<uint64_t> stamp_hi{0};  ///< session | roles << 32.
    std::atomic<uint32_t> verdict{0};   ///< bit0 allowed, bit1 by_rule.
  };

  static constexpr size_t kProbeWindow = 8;
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  /// SplitMix64 finalizer — spreads the packed symbol-id fields across the
  /// whole index range.
  static uint64_t Mix(uint64_t key) {
    key += 0x9e3779b97f4a7c15ull;
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
    return key ^ (key >> 31);
  }

  static uint64_t PackLo(const Stamp& s) {
    return static_cast<uint64_t>(s.epoch) |
           (static_cast<uint64_t>(s.pool) << 32);
  }
  static uint64_t PackHi(const Stamp& s) {
    return static_cast<uint64_t>(s.session) |
           (static_cast<uint64_t>(s.roles) << 32);
  }

  /// Seqlock write of one mirrored slot (shard thread only).
  void PublishSharedSlot(size_t index, uint64_t stored, const Stamp& fast,
                         Verdict verdict) {
    if (shared_slots_.empty()) return;
    SharedSlot& slot = shared_slots_[index];
    const uint32_t seq = slot.seq.load(std::memory_order_relaxed);
    slot.seq.store(seq + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    slot.key_plus_1.store(stored, std::memory_order_relaxed);
    slot.stamp_lo.store(PackLo(fast), std::memory_order_relaxed);
    slot.stamp_hi.store(PackHi(fast), std::memory_order_relaxed);
    slot.verdict.store((verdict.allowed ? 1u : 0u) |
                           (verdict.by_rule ? 2u : 0u),
                       std::memory_order_relaxed);
    slot.seq.store(seq + 2, std::memory_order_release);
  }

  /// The shared slot currently holding `key` (home slot when absent), or
  /// nullptr when the mirror is disabled. Shard thread only.
  SharedSlot* SharedSlotFor(uint64_t key) {
    if (shared_slots_.empty()) return nullptr;
    const uint64_t stored = key + 1;
    const size_t mask = shared_slots_.size() - 1;
    const size_t home = Mix(key) & mask;
    size_t index = home;
    for (size_t i = 0; i < kProbeWindow; ++i, index = (index + 1) & mask) {
      if (shared_slots_[index].key_plus_1.load(std::memory_order_relaxed) ==
          stored) {
        return &shared_slots_[index];
      }
    }
    return &shared_slots_[home];
  }

  std::vector<Slot> slots_;
  std::vector<SharedSlot> shared_slots_;
  std::atomic<uint64_t> shared_cur_lo_{0};
  std::atomic<uint64_t> shared_cur_hi_{0};
  size_t live_ = 0;
  uint64_t fills_ = 0;
};

}  // namespace sentinel

#endif  // SENTINELPP_CORE_DECISION_CACHE_H_
