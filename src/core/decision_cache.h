#ifndef SENTINELPP_CORE_DECISION_CACHE_H_
#define SENTINELPP_CORE_DECISION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/interner.h"

namespace sentinel {

/// \brief Per-shard memo table for CheckAccess verdicts.
///
/// The paper's observation cuts both ways: because every state change that
/// can affect an authorization verdict flows through the rule machinery as
/// an event, those same firing sites can invalidate a verdict cache
/// *precisely* — no TTLs, no scan-and-evict. Each entry carries the Stamp
/// of the state it was computed under (policy epoch, rule-pool generation,
/// per-session generation, active-role generation sum); a lookup whose
/// recomputed Stamp differs treats the entry as dead. Stale entries are
/// never searched for — they die lazily when probed or get overwritten by
/// a later fill.
///
/// Shape: fixed-capacity open-addressed table, power-of-two slots, bounded
/// linear probe window. Owned by a single-threaded engine shard, so there
/// are no locks; Lookup and Fill never allocate. Slots are only reclaimed
/// by overwrite or Clear() — the table tolerates dead weight by design.
class DecisionCache {
 public:
  /// The validity stamp: an entry is alive iff every component still equals
  /// the value recomputed at lookup time. Components are compared exactly
  /// (not hashed together) so distinct states can never alias.
  struct Stamp {
    uint32_t epoch = 0;    ///< Engine policy/admin-broadcast epoch.
    uint32_t pool = 0;     ///< RuleManager pool generation.
    uint32_t session = 0;  ///< RbacDatabase per-session generation.
    uint32_t roles = 0;    ///< Sum of the session's active-role generations.
    bool operator==(const Stamp&) const = default;
  };

  /// What a hit reconstructs. Only CA-rule verdicts and the fail-safe
  /// default deny are cacheable, so two bits suffice; the engine rebuilds
  /// the Decision strings from them.
  struct Verdict {
    bool allowed = false;
    /// Deny attribution: true = the CA rule's ELSE branch, false = the
    /// fail-safe default (no rule decided). Meaningless for allows.
    bool by_rule = false;
  };

  enum class Outcome { kHit, kMiss, kStale };

  static bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

  /// (session, operation, object) packed 24/16/24 into one key. Returns
  /// nullopt when a symbol id overflows its field (callers bypass the cache
  /// for such requests; with dense interning this needs ~16M distinct
  /// session/object names or 65k operations).
  static std::optional<uint64_t> PackKey(Symbol session, Symbol op,
                                         Symbol obj) {
    const uint64_t s = session.id();
    const uint64_t o = op.id();
    const uint64_t b = obj.id();
    if (s >= (1u << 24) || o >= (1u << 16) || b >= (1u << 24)) {
      return std::nullopt;
    }
    return (s << 40) | (o << 24) | b;
  }

  /// Sizes the table to `capacity` slots (0 disables, otherwise must be a
  /// power of two — validated at the service boundary) and drops every
  /// cached entry.
  void Configure(size_t capacity) {
    slots_.assign(IsPowerOfTwo(capacity) ? capacity : 0, Slot{});
    live_ = 0;
    fills_ = 0;
  }

  bool enabled() const { return !slots_.empty(); }
  size_t capacity() const { return slots_.size(); }
  /// Occupied slots (live and stale alike — staleness is only decidable
  /// per key, at lookup time).
  size_t size() const { return live_; }

  Outcome Lookup(uint64_t key, const Stamp& stamp, Verdict* out) {
    const uint64_t stored = key + 1;
    const size_t mask = slots_.size() - 1;
    size_t index = Mix(key) & mask;
    for (size_t i = 0; i < kProbeWindow; ++i, index = (index + 1) & mask) {
      Slot& slot = slots_[index];
      // Fills take the first empty slot in the window and slots never
      // empty out again, so an empty slot proves the key is absent.
      if (slot.key_plus_1 == 0) return Outcome::kMiss;
      if (slot.key_plus_1 != stored) continue;
      if (!(slot.stamp == stamp)) return Outcome::kStale;
      *out = slot.verdict;
      return Outcome::kHit;
    }
    return Outcome::kMiss;
  }

  void Fill(uint64_t key, const Stamp& stamp, Verdict verdict) {
    const uint64_t stored = key + 1;
    const size_t mask = slots_.size() - 1;
    const size_t home = Mix(key) & mask;
    size_t victim = kNoSlot;
    size_t index = home;
    for (size_t i = 0; i < kProbeWindow; ++i, index = (index + 1) & mask) {
      Slot& slot = slots_[index];
      if (slot.key_plus_1 == stored) {  // Refresh in place.
        slot.stamp = stamp;
        slot.verdict = verdict;
        return;
      }
      if (slot.key_plus_1 == 0 && victim == kNoSlot) victim = index;
    }
    if (victim == kNoSlot) {
      // Window full of other keys: rotate the eviction point so one hot
      // bucket cannot pin a single victim slot forever.
      victim = (home + static_cast<size_t>(fills_ % kProbeWindow)) & mask;
    } else {
      ++live_;
    }
    ++fills_;
    slots_[victim] = Slot{stored, stamp, verdict};
  }

  void Clear() {
    for (Slot& slot : slots_) slot = Slot{};
    live_ = 0;
  }

 private:
  struct Slot {
    uint64_t key_plus_1 = 0;  ///< Packed key + 1; 0 marks an empty slot.
    Stamp stamp;
    Verdict verdict;
  };

  static constexpr size_t kProbeWindow = 8;
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  /// SplitMix64 finalizer — spreads the packed symbol-id fields across the
  /// whole index range.
  static uint64_t Mix(uint64_t key) {
    key += 0x9e3779b97f4a7c15ull;
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
    return key ^ (key >> 31);
  }

  std::vector<Slot> slots_;
  size_t live_ = 0;
  uint64_t fills_ = 0;
};

}  // namespace sentinel

#endif  // SENTINELPP_CORE_DECISION_CACHE_H_
