#include "core/policy.h"

#include <algorithm>

namespace sentinel {

namespace {

/// Detects a cycle in the hierarchy edges of a role map via DFS coloring.
bool HierarchyHasCycle(const std::map<RoleName, RoleSpec>& roles) {
  enum class Color { kWhite, kGray, kBlack };
  std::map<RoleName, Color> color;
  for (const auto& [name, spec] : roles) color[name] = Color::kWhite;

  // Iterative DFS with an explicit stack of (node, child cursor).
  for (const auto& [start, spec] : roles) {
    if (color[start] != Color::kWhite) continue;
    std::vector<std::pair<RoleName, std::set<RoleName>::const_iterator>>
        stack;
    color[start] = Color::kGray;
    stack.push_back({start, roles.at(start).juniors.begin()});
    while (!stack.empty()) {
      auto& [node, cursor] = stack.back();
      const std::set<RoleName>& juniors = roles.at(node).juniors;
      if (cursor == juniors.end()) {
        color[node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const RoleName next = *cursor++;
      auto it = roles.find(next);
      if (it == roles.end()) continue;  // Dangling edge caught elsewhere.
      if (color[next] == Color::kGray) return true;
      if (color[next] == Color::kWhite) {
        color[next] = Color::kGray;
        stack.push_back({next, it->second.juniors.begin()});
      }
    }
  }
  return false;
}

}  // namespace

Status Policy::AddRole(RoleSpec role) {
  if (role.name.empty()) {
    return Status::InvalidArgument("role name must not be empty");
  }
  if (roles_.count(role.name) > 0) {
    return Status::AlreadyExists("role already in policy: " + role.name);
  }
  const RoleName name = role.name;
  roles_.emplace(name, std::move(role));
  return Status::OK();
}

Status Policy::RemoveRole(const RoleName& role) {
  if (roles_.erase(role) == 0) {
    return Status::NotFound("role not in policy: " + role);
  }
  // Scrub references so the policy stays self-consistent.
  for (auto& [name, spec] : roles_) {
    spec.juniors.erase(role);
    spec.prerequisites.erase(role);
  }
  for (auto& [name, spec] : users_) {
    spec.assignments.erase(role);
    spec.role_durations.erase(role);
  }
  for (auto it = ssd_sets_.begin(); it != ssd_sets_.end();) {
    it->second.roles.erase(role);
    if (static_cast<int>(it->second.roles.size()) < it->second.n) {
      it = ssd_sets_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = dsd_sets_.begin(); it != dsd_sets_.end();) {
    it->second.roles.erase(role);
    if (static_cast<int>(it->second.roles.size()) < it->second.n) {
      it = dsd_sets_.erase(it);
    } else {
      ++it;
    }
  }
  std::erase_if(cfd_pairs_, [&](const CfdPair& pair) {
    return pair.trigger == role || pair.companion == role;
  });
  std::erase_if(transactions_, [&](const TransactionActivation& tx) {
    return tx.controller == role || tx.dependent == role;
  });
  for (auto it = time_sods_.begin(); it != time_sods_.end();) {
    it->roles.erase(role);
    if (it->roles.size() < 2) {
      it = time_sods_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

Result<RoleSpec*> Policy::MutableRole(const RoleName& role) {
  auto it = roles_.find(role);
  if (it == roles_.end()) {
    return Status::NotFound("role not in policy: " + role);
  }
  return &it->second;
}

Status Policy::AddUser(UserSpec user) {
  if (user.name.empty()) {
    return Status::InvalidArgument("user name must not be empty");
  }
  if (users_.count(user.name) > 0) {
    return Status::AlreadyExists("user already in policy: " + user.name);
  }
  const UserName name = user.name;
  users_.emplace(name, std::move(user));
  return Status::OK();
}

Status Policy::RemoveUser(const UserName& user) {
  if (users_.erase(user) == 0) {
    return Status::NotFound("user not in policy: " + user);
  }
  return Status::OK();
}

Result<UserSpec*> Policy::MutableUser(const UserName& user) {
  auto it = users_.find(user);
  if (it == users_.end()) {
    return Status::NotFound("user not in policy: " + user);
  }
  return &it->second;
}

Status Policy::AddSsd(SodSet set) {
  if (ssd_sets_.count(set.name) > 0) {
    return Status::AlreadyExists("SSD set already in policy: " + set.name);
  }
  const std::string name = set.name;
  ssd_sets_.emplace(name, std::move(set));
  return Status::OK();
}

Status Policy::RemoveSsd(const std::string& name) {
  if (ssd_sets_.erase(name) == 0) {
    return Status::NotFound("SSD set not in policy: " + name);
  }
  return Status::OK();
}

Status Policy::AddDsd(SodSet set) {
  if (dsd_sets_.count(set.name) > 0) {
    return Status::AlreadyExists("DSD set already in policy: " + set.name);
  }
  const std::string name = set.name;
  dsd_sets_.emplace(name, std::move(set));
  return Status::OK();
}

Status Policy::RemoveDsd(const std::string& name) {
  if (dsd_sets_.erase(name) == 0) {
    return Status::NotFound("DSD set not in policy: " + name);
  }
  return Status::OK();
}

Status Policy::AddCfd(CfdPair pair) {
  cfd_pairs_.push_back(std::move(pair));
  return Status::OK();
}

Status Policy::AddTransaction(TransactionActivation tx) {
  transactions_.push_back(std::move(tx));
  return Status::OK();
}

Status Policy::AddThreshold(ThresholdDirective directive) {
  thresholds_.push_back(std::move(directive));
  return Status::OK();
}

Status Policy::AddAudit(AuditDirective directive) {
  audits_.push_back(std::move(directive));
  return Status::OK();
}

Status Policy::AddTimeSod(TimeSod constraint) {
  time_sods_.push_back(std::move(constraint));
  return Status::OK();
}

Status Policy::AddPurpose(PurposeSpec purpose) {
  purposes_.push_back(std::move(purpose));
  return Status::OK();
}

Status Policy::AddObjectPolicy(ObjectPolicySpec policy) {
  object_policies_.push_back(std::move(policy));
  return Status::OK();
}

bool Policy::RoleInHierarchy(const RoleName& role) const {
  auto it = roles_.find(role);
  if (it == roles_.end()) return false;
  if (!it->second.juniors.empty()) return true;
  for (const auto& [name, spec] : roles_) {
    if (spec.juniors.count(role) > 0) return true;
  }
  return false;
}

bool Policy::RoleInDsd(const RoleName& role) const {
  for (const auto& [name, set] : dsd_sets_) {
    if (set.roles.count(role) > 0) return true;
  }
  return false;
}

bool Policy::RoleInSsd(const RoleName& role) const {
  for (const auto& [name, set] : ssd_sets_) {
    if (set.roles.count(role) > 0) return true;
  }
  return false;
}

bool Policy::RoleIsTransactionDependent(const RoleName& role) const {
  for (const TransactionActivation& tx : transactions_) {
    if (tx.dependent == role) return true;
  }
  return false;
}

Status Policy::Validate() const {
  auto require_role = [this](const RoleName& role,
                             const std::string& where) -> Status {
    if (roles_.count(role) == 0) {
      return Status::InvalidArgument("unknown role '" + role + "' in " +
                                     where);
    }
    return Status::OK();
  };

  for (const auto& [name, spec] : roles_) {
    for (const RoleName& junior : spec.juniors) {
      SENTINEL_RETURN_IF_ERROR(
          require_role(junior, "hierarchy under role " + name));
    }
    for (const RoleName& prereq : spec.prerequisites) {
      SENTINEL_RETURN_IF_ERROR(
          require_role(prereq, "prerequisites of role " + name));
      if (prereq == name) {
        return Status::InvalidArgument("role " + name +
                                       " cannot be its own prerequisite");
      }
    }
    if (spec.activation_cardinality < 0) {
      return Status::InvalidArgument("negative cardinality on role " + name);
    }
    if (spec.max_activation < 0) {
      return Status::InvalidArgument("negative max-activation on role " +
                                     name);
    }
  }
  if (HierarchyHasCycle(roles_)) {
    return Status::ConstraintViolation("role hierarchy contains a cycle");
  }

  for (const auto& [name, spec] : users_) {
    for (const RoleName& role : spec.assignments) {
      SENTINEL_RETURN_IF_ERROR(
          require_role(role, "assignments of user " + name));
    }
    for (const auto& [role, duration] : spec.role_durations) {
      SENTINEL_RETURN_IF_ERROR(
          require_role(role, "durations of user " + name));
      if (duration <= 0) {
        return Status::InvalidArgument("non-positive duration for user " +
                                       name + " role " + role);
      }
    }
    if (spec.max_active_roles < 0) {
      return Status::InvalidArgument("negative max-active on user " + name);
    }
  }

  auto check_sod = [&](const std::map<std::string, SodSet>& sets,
                       const char* kind) -> Status {
    for (const auto& [name, set] : sets) {
      if (set.n < 2) {
        return Status::InvalidArgument(std::string(kind) + " set " + name +
                                       " needs cardinality >= 2");
      }
      if (static_cast<int>(set.roles.size()) < set.n) {
        return Status::InvalidArgument(std::string(kind) + " set " + name +
                                       " smaller than its cardinality");
      }
      for (const RoleName& role : set.roles) {
        SENTINEL_RETURN_IF_ERROR(
            require_role(role, std::string(kind) + " set " + name));
      }
    }
    return Status::OK();
  };
  SENTINEL_RETURN_IF_ERROR(check_sod(ssd_sets_, "SSD"));
  SENTINEL_RETURN_IF_ERROR(check_sod(dsd_sets_, "DSD"));

  std::set<RoleName> cfd_triggers;
  for (const CfdPair& pair : cfd_pairs_) {
    SENTINEL_RETURN_IF_ERROR(require_role(pair.trigger, "CFD pair"));
    SENTINEL_RETURN_IF_ERROR(require_role(pair.companion, "CFD pair"));
    if (pair.trigger == pair.companion) {
      return Status::InvalidArgument("CFD pair must name two distinct roles");
    }
    if (!cfd_triggers.insert(pair.trigger).second) {
      return Status::InvalidArgument(
          "role " + pair.trigger + " triggers more than one CFD pair");
    }
  }
  std::set<RoleName> tx_dependents;
  for (const TransactionActivation& tx : transactions_) {
    SENTINEL_RETURN_IF_ERROR(
        require_role(tx.controller, "transaction " + tx.name));
    SENTINEL_RETURN_IF_ERROR(
        require_role(tx.dependent, "transaction " + tx.name));
    if (tx.controller == tx.dependent) {
      return Status::InvalidArgument("transaction " + tx.name +
                                     " controller equals dependent");
    }
    if (!tx_dependents.insert(tx.dependent).second) {
      return Status::InvalidArgument(
          "role " + tx.dependent +
          " is the dependent of more than one transaction");
    }
  }
  for (const ThresholdDirective& directive : thresholds_) {
    if (directive.threshold < 1 || directive.window <= 0) {
      return Status::InvalidArgument("malformed threshold directive " +
                                     directive.name);
    }
    for (const RoleName& role : directive.disable_roles) {
      SENTINEL_RETURN_IF_ERROR(
          require_role(role, "threshold directive " + directive.name));
    }
  }
  for (const AuditDirective& directive : audits_) {
    if (directive.interval <= 0) {
      return Status::InvalidArgument("malformed audit directive " +
                                     directive.name);
    }
  }
  for (const TimeSod& constraint : time_sods_) {
    if (constraint.roles.size() < 2) {
      return Status::InvalidArgument("time-SoD " + constraint.name +
                                     " needs at least two roles");
    }
    for (const RoleName& role : constraint.roles) {
      SENTINEL_RETURN_IF_ERROR(
          require_role(role, "time-SoD " + constraint.name));
    }
  }

  std::set<PurposeName> known_purposes;
  for (const PurposeSpec& purpose : purposes_) {
    if (!purpose.parent.empty() &&
        known_purposes.count(purpose.parent) == 0) {
      return Status::InvalidArgument(
          "purpose " + purpose.name +
          " declared before its parent " + purpose.parent);
    }
    if (!known_purposes.insert(purpose.name).second) {
      return Status::InvalidArgument("duplicate purpose: " + purpose.name);
    }
  }
  for (const ObjectPolicySpec& policy : object_policies_) {
    for (const PurposeName& purpose : policy.purposes) {
      if (known_purposes.count(purpose) == 0) {
        return Status::InvalidArgument("object policy for " + policy.object +
                                       " names unknown purpose " + purpose);
      }
    }
  }
  return Status::OK();
}

std::set<RoleName> Policy::AffectedRoles(const Policy& from,
                                         const Policy& to) {
  std::set<RoleName> affected;
  // Changed, added or removed role specs.
  for (const auto& [name, spec] : to.roles_) {
    auto it = from.roles_.find(name);
    if (it == from.roles_.end() || !(it->second == spec)) {
      affected.insert(name);
    }
  }
  for (const auto& [name, spec] : from.roles_) {
    if (to.roles_.count(name) == 0) affected.insert(name);
  }
  // Membership in changed constraint sections.
  auto mark_sod_changes = [&](const std::map<std::string, SodSet>& a,
                              const std::map<std::string, SodSet>& b) {
    for (const auto& [name, set] : a) {
      auto it = b.find(name);
      if (it == b.end() || !(it->second == set)) {
        affected.insert(set.roles.begin(), set.roles.end());
        if (it != b.end()) {
          affected.insert(it->second.roles.begin(), it->second.roles.end());
        }
      }
    }
  };
  mark_sod_changes(from.ssd_sets_, to.ssd_sets_);
  mark_sod_changes(to.ssd_sets_, from.ssd_sets_);
  mark_sod_changes(from.dsd_sets_, to.dsd_sets_);
  mark_sod_changes(to.dsd_sets_, from.dsd_sets_);

  auto mark_vector_changes = [&affected](auto const& a, auto const& b,
                                         auto roles_of) {
    for (const auto& item : a) {
      if (std::find(b.begin(), b.end(), item) == b.end()) {
        for (const RoleName& role : roles_of(item)) affected.insert(role);
      }
    }
  };
  auto cfd_roles = [](const CfdPair& pair) {
    return std::vector<RoleName>{pair.trigger, pair.companion};
  };
  mark_vector_changes(from.cfd_pairs_, to.cfd_pairs_, cfd_roles);
  mark_vector_changes(to.cfd_pairs_, from.cfd_pairs_, cfd_roles);
  auto tx_roles = [](const TransactionActivation& tx) {
    return std::vector<RoleName>{tx.controller, tx.dependent};
  };
  mark_vector_changes(from.transactions_, to.transactions_, tx_roles);
  mark_vector_changes(to.transactions_, from.transactions_, tx_roles);
  auto tsod_roles = [](const TimeSod& constraint) {
    return std::vector<RoleName>(constraint.roles.begin(),
                                 constraint.roles.end());
  };
  mark_vector_changes(from.time_sods_, to.time_sods_, tsod_roles);
  mark_vector_changes(to.time_sods_, from.time_sods_, tsod_roles);
  return affected;
}

std::set<UserName> Policy::AffectedUsers(const Policy& from,
                                         const Policy& to) {
  std::set<UserName> affected;
  for (const auto& [name, spec] : to.users_) {
    auto it = from.users_.find(name);
    if (it == from.users_.end() || !(it->second == spec)) {
      affected.insert(name);
    }
  }
  for (const auto& [name, spec] : from.users_) {
    if (to.users_.count(name) == 0) affected.insert(name);
  }
  return affected;
}

bool Policy::DirectivesChanged(const Policy& from, const Policy& to) {
  return !(from.thresholds_ == to.thresholds_ &&
           from.audits_ == to.audits_ &&
           from.purposes_ == to.purposes_ &&
           from.object_policies_ == to.object_policies_);
}

}  // namespace sentinel
