#ifndef SENTINELPP_CORE_REPORT_H_
#define SENTINELPP_CORE_REPORT_H_

#include <string>

#include "common/value.h"

namespace sentinel {

class AuthorizationEngine;

/// \brief Options for administrator reports.
struct ReportOptions {
  /// Include the per-session active-role listing (can be long).
  bool include_sessions = true;
  /// How many recent denials from the decision log to list.
  int recent_denials = 10;
};

/// \brief Renders the administrator report the paper's alert/audit actions
/// refer to ("generate reports and alert administrators", §3): decision
/// totals, rule-pool composition, role enablement, current sessions,
/// security alerts and the most recent denials from the audit trail.
///
/// Audit (AUD) rules log a one-line summary each tick; this function is
/// the full report for interactive/administrative use (see the
/// active_security_monitor example and policy_inspector).
std::string GenerateAdminReport(const AuthorizationEngine& engine,
                                const ReportOptions& options = {});

}  // namespace sentinel

#endif  // SENTINELPP_CORE_REPORT_H_
