#include "core/policy_parser.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace sentinel {

namespace {

/// Serializes a duration with the largest unit that divides it evenly, so
/// PolicyToText round-trips through ParseDuration losslessly.
std::string FormatDurationLossless(Duration d) {
  struct Unit {
    Duration span;
    const char* suffix;
  };
  static constexpr Unit kUnits[] = {
      {kDay, "d"}, {kHour, "h"}, {kMinute, "m"},
      {kSecond, "s"}, {kMillisecond, "ms"}, {kMicrosecond, "us"}};
  for (const Unit& unit : kUnits) {
    if (d % unit.span == 0) {
      return std::to_string(d / unit.span) + unit.suffix;
    }
  }
  return std::to_string(d) + "us";
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> SplitList(const std::string& s) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == ',') {
      const std::string item = Trim(current);
      if (!item.empty()) out.push_back(item);
      current.clear();
    } else {
      current += c;
    }
  }
  const std::string item = Trim(current);
  if (!item.empty()) out.push_back(item);
  return out;
}

/// One parsed block: `kind name { key: value ... }`.
struct Block {
  std::string kind;
  std::string name;
  std::map<std::string, std::vector<std::string>> properties;  // key -> values
  int line = 0;
};

Status ParseError(int line, const std::string& message) {
  return Status::ParseError("line " + std::to_string(line) + ": " + message);
}

Result<PeriodicExpression> ParseWindow(const std::string& text, int line) {
  auto parsed = PeriodicExpression::Parse(text);
  if (!parsed.ok()) {
    return ParseError(line, "bad window '" + text +
                                "': " + parsed.status().message());
  }
  return parsed;
}

Result<Permission> ParsePermission(const std::string& text, int line) {
  const size_t open = text.find('(');
  const size_t close = text.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    return ParseError(line, "expected op(object), got '" + text + "'");
  }
  Permission perm;
  perm.operation = Trim(text.substr(0, open));
  perm.object = Trim(text.substr(open + 1, close - open - 1));
  if (perm.operation.empty() || perm.object.empty()) {
    return ParseError(line, "empty operation or object in '" + text + "'");
  }
  return perm;
}

Result<int> ParseInt(const std::string& text, int line) {
  if (text.empty()) return ParseError(line, "expected integer");
  int value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return ParseError(line, "expected integer, got '" + text + "'");
    }
    value = value * 10 + (c - '0');
    if (value > 1000000000) {
      return ParseError(line, "integer too large: " + text);
    }
  }
  return value;
}

/// Non-negative decimal rate in tokens/s ("2", "0.5"); the throttle knob.
Result<double> ParseRate(const std::string& text, int line) {
  if (text.empty()) return ParseError(line, "expected rate");
  int digits = 0;
  int points = 0;
  for (char c : text) {
    if (c == '.') {
      ++points;
    } else if (c >= '0' && c <= '9') {
      ++digits;
    } else {
      return ParseError(line, "expected rate (tokens/s), got '" + text + "'");
    }
  }
  if (digits == 0 || points > 1) {
    return ParseError(line, "expected rate (tokens/s), got '" + text + "'");
  }
  const double value = std::strtod(text.c_str(), nullptr);
  if (!(value >= 0) || value > 1e12) {
    return ParseError(line, "rate out of range: " + text);
  }
  return value;
}

}  // namespace

Result<Duration> PolicyParser::ParseDuration(const std::string& text) {
  const std::string t = Trim(text);
  if (t.empty()) return Status::ParseError("empty duration");
  size_t i = 0;
  int64_t value = 0;
  while (i < t.size() && t[i] >= '0' && t[i] <= '9') {
    value = value * 10 + (t[i] - '0');
    if (value > 100'000'000'000LL) {
      return Status::ParseError("duration too large: " + t);
    }
    ++i;
  }
  if (i == 0) return Status::ParseError("expected number in duration: " + t);
  const std::string suffix = t.substr(i);
  Duration unit = 0;
  if (suffix.empty() || suffix == "s") {
    unit = kSecond;
  } else if (suffix == "us") {
    unit = kMicrosecond;
  } else if (suffix == "ms") {
    unit = kMillisecond;
  } else if (suffix == "m" || suffix == "min") {
    unit = kMinute;
  } else if (suffix == "h") {
    unit = kHour;
  } else if (suffix == "d") {
    unit = kDay;
  } else {
    return Status::ParseError("unknown duration suffix '" + suffix + "' in " +
                              t);
  }
  // The digit loop caps `value`, but the unit multiplication can still
  // leave the Duration range (100e9 days of microseconds ≫ int64) —
  // signed-overflow UB unless checked against the per-suffix limit.
  if (value > std::numeric_limits<Duration>::max() / unit) {
    return Status::ParseError("duration too large: " + t);
  }
  return value * unit;
}

Result<Policy> PolicyParser::Parse(const std::string& text) {
  Policy policy;

  // ---------------------------------------------------------- Tokenize
  std::vector<Block> blocks;
  Block* open_block = nullptr;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const size_t comment = raw.find('#');
    if (comment != std::string::npos) raw = raw.substr(0, comment);
    std::string line = Trim(raw);
    if (line.empty()) continue;

    if (open_block == nullptr) {
      // Expect: `policy "name"` or `kind [name] {` (maybe one-line block).
      if (line.rfind("policy", 0) == 0) {
        std::string name = Trim(line.substr(6));
        if (name.size() >= 2 && name.front() == '"' && name.back() == '"') {
          name = name.substr(1, name.size() - 2);
        }
        if (name.empty()) return ParseError(line_no, "empty policy name");
        policy.set_name(name);
        continue;
      }
      const size_t brace = line.find('{');
      if (brace == std::string::npos) {
        return ParseError(line_no, "expected a block, got '" + line + "'");
      }
      std::string header = Trim(line.substr(0, brace));
      std::string rest = Trim(line.substr(brace + 1));
      std::istringstream hs(header);
      Block block;
      block.line = line_no;
      hs >> block.kind;
      std::string maybe_name;
      hs >> maybe_name;
      block.name = maybe_name;
      if (block.kind.empty()) {
        return ParseError(line_no, "missing block kind");
      }
      blocks.push_back(std::move(block));
      open_block = &blocks.back();
      // Allow inline content and inline close: `ssd S { roles: A, B  n: 2 }`.
      line = rest;
      if (line.empty()) continue;
    }

    // Inside a block: possibly `... }` on this line.
    bool closes = false;
    const size_t close = line.rfind('}');
    if (close != std::string::npos) {
      closes = true;
      line = Trim(line.substr(0, close));
    }
    if (!line.empty()) {
      // One or more `key: value` segments. Values may contain ':' (time
      // patterns), so split on known key boundaries: a key is a word
      // followed by ':' at a segment start. Segments separated by two or
      // more spaces or by ';'.
      std::vector<std::string> segments;
      std::string current;
      for (size_t i = 0; i < line.size(); ++i) {
        if (line[i] == ';' ||
            (line[i] == ' ' && i + 1 < line.size() && line[i + 1] == ' ')) {
          if (!Trim(current).empty()) segments.push_back(Trim(current));
          current.clear();
          while (i + 1 < line.size() && line[i + 1] == ' ') ++i;
        } else {
          current += line[i];
        }
      }
      if (!Trim(current).empty()) segments.push_back(Trim(current));

      for (const std::string& segment : segments) {
        const size_t colon = segment.find(':');
        if (colon == std::string::npos) {
          return ParseError(line_no,
                            "expected key: value, got '" + segment + "'");
        }
        const std::string key = Trim(segment.substr(0, colon));
        const std::string value = Trim(segment.substr(colon + 1));
        if (key.empty()) return ParseError(line_no, "empty property key");
        open_block->properties[key].push_back(value);
      }
    }
    if (closes) open_block = nullptr;
  }
  if (open_block != nullptr) {
    return ParseError(open_block->line, "unterminated block '" +
                                            open_block->kind + "'");
  }

  // ------------------------------------------------------------- Build
  // Roles first (other blocks reference them), then users, then the rest.
  auto get_single = [](const Block& block, const std::string& key)
      -> const std::string* {
    auto it = block.properties.find(key);
    if (it == block.properties.end() || it->second.empty()) return nullptr;
    return &it->second.back();
  };

  for (const Block& block : blocks) {
    if (block.kind != "role") continue;
    if (block.name.empty()) return ParseError(block.line, "role needs a name");
    RoleSpec spec;
    spec.name = block.name;
    if (const std::string* v = get_single(block, "cardinality")) {
      SENTINEL_ASSIGN_OR_RETURN(n, ParseInt(*v, block.line));
      spec.activation_cardinality = n;
    }
    if (const std::string* v = get_single(block, "max-activation")) {
      auto d = ParseDuration(*v);
      if (!d.ok()) return ParseError(block.line, d.status().message());
      spec.max_activation = *d;
    }
    if (const std::string* v = get_single(block, "enable")) {
      SENTINEL_ASSIGN_OR_RETURN(window, ParseWindow(*v, block.line));
      spec.enabling_window = window;
    }
    auto it = block.properties.find("senior-of");
    if (it != block.properties.end()) {
      for (const std::string& value : it->second) {
        for (const std::string& junior : SplitList(value)) {
          spec.juniors.insert(junior);
        }
      }
    }
    it = block.properties.find("prerequisite");
    if (it != block.properties.end()) {
      for (const std::string& value : it->second) {
        for (const std::string& prereq : SplitList(value)) {
          spec.prerequisites.insert(prereq);
        }
      }
    }
    it = block.properties.find("permission");
    if (it != block.properties.end()) {
      for (const std::string& value : it->second) {
        for (const std::string& text_perm : SplitList(value)) {
          SENTINEL_ASSIGN_OR_RETURN(perm,
                                    ParsePermission(text_perm, block.line));
          spec.permissions.insert(perm);
        }
      }
    }
    it = block.properties.find("context");
    if (it != block.properties.end()) {
      for (const std::string& value : it->second) {
        const size_t eq = value.find('=');
        if (eq == std::string::npos) {
          return ParseError(block.line,
                            "expected context: key = value, got '" + value +
                                "'");
        }
        const std::string key = Trim(value.substr(0, eq));
        const std::string val = Trim(value.substr(eq + 1));
        if (key.empty() || val.empty()) {
          return ParseError(block.line, "empty context key or value");
        }
        spec.required_context[key] = val;
      }
    }
    Status added = policy.AddRole(std::move(spec));
    if (!added.ok()) return ParseError(block.line, added.message());
  }

  for (const Block& block : blocks) {
    if (block.kind == "role") continue;
    if (block.kind == "user") {
      if (block.name.empty()) {
        return ParseError(block.line, "user needs a name");
      }
      UserSpec spec;
      spec.name = block.name;
      auto it = block.properties.find("assign");
      if (it != block.properties.end()) {
        for (const std::string& value : it->second) {
          for (const std::string& role : SplitList(value)) {
            spec.assignments.insert(role);
          }
        }
      }
      if (const std::string* v = get_single(block, "max-active")) {
        SENTINEL_ASSIGN_OR_RETURN(n, ParseInt(*v, block.line));
        spec.max_active_roles = n;
      }
      it = block.properties.find("duration");
      if (it != block.properties.end()) {
        for (const std::string& value : it->second) {
          const size_t eq = value.find('=');
          if (eq == std::string::npos) {
            return ParseError(block.line,
                              "expected duration: ROLE = 30m, got '" +
                                  value + "'");
          }
          const RoleName role = Trim(value.substr(0, eq));
          auto d = ParseDuration(value.substr(eq + 1));
          if (!d.ok()) return ParseError(block.line, d.status().message());
          spec.role_durations[role] = *d;
        }
      }
      Status added = policy.AddUser(std::move(spec));
      if (!added.ok()) return ParseError(block.line, added.message());
    } else if (block.kind == "ssd" || block.kind == "dsd") {
      if (block.name.empty()) {
        return ParseError(block.line, block.kind + " needs a name");
      }
      SodSet set;
      set.name = block.name;
      if (const std::string* v = get_single(block, "roles")) {
        for (const std::string& role : SplitList(*v)) set.roles.insert(role);
      }
      set.n = 2;
      if (const std::string* v = get_single(block, "n")) {
        SENTINEL_ASSIGN_OR_RETURN(n, ParseInt(*v, block.line));
        set.n = n;
      }
      Status added = block.kind == "ssd" ? policy.AddSsd(std::move(set))
                                         : policy.AddDsd(std::move(set));
      if (!added.ok()) return ParseError(block.line, added.message());
    } else if (block.kind == "cfd") {
      const std::string* trigger = get_single(block, "trigger");
      const std::string* companion = get_single(block, "companion");
      if (trigger == nullptr || companion == nullptr) {
        return ParseError(block.line, "cfd needs trigger: and companion:");
      }
      (void)policy.AddCfd(CfdPair{*trigger, *companion});
    } else if (block.kind == "transaction") {
      const std::string* controller = get_single(block, "controller");
      const std::string* dependent = get_single(block, "dependent");
      if (controller == nullptr || dependent == nullptr) {
        return ParseError(block.line,
                          "transaction needs controller: and dependent:");
      }
      TransactionActivation tx;
      tx.name = block.name.empty()
                    ? *controller + "." + *dependent
                    : block.name;
      tx.controller = *controller;
      tx.dependent = *dependent;
      (void)policy.AddTransaction(std::move(tx));
    } else if (block.kind == "threshold") {
      if (block.name.empty()) {
        return ParseError(block.line, "threshold needs a name");
      }
      ThresholdDirective directive;
      directive.name = block.name;
      if (const std::string* v = get_single(block, "count")) {
        SENTINEL_ASSIGN_OR_RETURN(n, ParseInt(*v, block.line));
        directive.threshold = n;
      }
      if (const std::string* v = get_single(block, "window")) {
        auto d = ParseDuration(*v);
        if (!d.ok()) return ParseError(block.line, d.status().message());
        directive.window = *d;
      }
      if (const std::string* v = get_single(block, "disable")) {
        directive.disable_rule_prefixes = SplitList(*v);
      }
      if (const std::string* v = get_single(block, "disable-roles")) {
        directive.disable_roles = SplitList(*v);
      }
      if (const std::string* v = get_single(block, "throttle-rate")) {
        SENTINEL_ASSIGN_OR_RETURN(rate, ParseRate(*v, block.line));
        directive.throttle_rate_per_s = rate;
      }
      if (const std::string* v = get_single(block, "throttle-burst")) {
        SENTINEL_ASSIGN_OR_RETURN(n, ParseInt(*v, block.line));
        directive.throttle_burst = n;
      }
      (void)policy.AddThreshold(std::move(directive));
    } else if (block.kind == "audit") {
      if (block.name.empty()) {
        return ParseError(block.line, "audit needs a name");
      }
      AuditDirective directive;
      directive.name = block.name;
      if (const std::string* v = get_single(block, "interval")) {
        auto d = ParseDuration(*v);
        if (!d.ok()) return ParseError(block.line, d.status().message());
        directive.interval = *d;
      }
      (void)policy.AddAudit(std::move(directive));
    } else if (block.kind == "time-sod") {
      if (block.name.empty()) {
        return ParseError(block.line, "time-sod needs a name");
      }
      TimeSod constraint;
      constraint.name = block.name;
      if (const std::string* v = get_single(block, "kind")) {
        if (*v == "disabling") {
          constraint.kind = TimeSodKind::kDisabling;
        } else if (*v == "enabling") {
          constraint.kind = TimeSodKind::kEnabling;
        } else {
          return ParseError(block.line, "time-sod kind must be "
                                        "disabling|enabling, got " + *v);
        }
      }
      if (const std::string* v = get_single(block, "roles")) {
        for (const std::string& role : SplitList(*v)) {
          constraint.roles.insert(role);
        }
      }
      const std::string* window = get_single(block, "window");
      if (window == nullptr) {
        return ParseError(block.line, "time-sod needs window:");
      }
      SENTINEL_ASSIGN_OR_RETURN(period, ParseWindow(*window, block.line));
      constraint.period = period;
      (void)policy.AddTimeSod(std::move(constraint));
    } else if (block.kind == "purpose") {
      if (block.name.empty()) {
        return ParseError(block.line, "purpose needs a name");
      }
      PurposeSpec spec;
      spec.name = block.name;
      if (const std::string* v = get_single(block, "parent")) {
        spec.parent = *v;
      }
      (void)policy.AddPurpose(std::move(spec));
    } else if (block.kind == "object-policy") {
      if (block.name.empty()) {
        return ParseError(block.line, "object-policy needs an object name");
      }
      ObjectPolicySpec spec;
      spec.object = block.name;
      if (const std::string* v = get_single(block, "purposes")) {
        for (const std::string& purpose : SplitList(*v)) {
          spec.purposes.insert(purpose);
        }
      }
      (void)policy.AddObjectPolicy(std::move(spec));
    } else {
      return ParseError(block.line, "unknown block kind '" + block.kind +
                                        "'");
    }
  }

  Status valid = policy.Validate();
  if (!valid.ok()) {
    return Status::ParseError("policy validation failed: " + valid.message());
  }
  return policy;
}

Result<Policy> PolicyParser::ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open policy file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

std::string PolicyToText(const Policy& policy) {
  std::ostringstream os;
  os << "policy \"" << policy.name() << "\"\n\n";
  for (const auto& [name, spec] : policy.roles()) {
    os << "role " << name << " {\n";
    if (!spec.juniors.empty()) {
      os << "  senior-of: ";
      bool first = true;
      for (const RoleName& junior : spec.juniors) {
        os << (first ? "" : ", ") << junior;
        first = false;
      }
      os << "\n";
    }
    if (spec.activation_cardinality > 0) {
      os << "  cardinality: " << spec.activation_cardinality << "\n";
    }
    if (spec.enabling_window.has_value()) {
      os << "  enable: " << spec.enabling_window->window_start().ToString()
         << " - " << spec.enabling_window->window_end().ToString() << "\n";
    }
    if (spec.max_activation > 0) {
      os << "  max-activation: "
         << FormatDurationLossless(spec.max_activation) << "\n";
    }
    if (!spec.prerequisites.empty()) {
      os << "  prerequisite: ";
      bool first = true;
      for (const RoleName& prereq : spec.prerequisites) {
        os << (first ? "" : ", ") << prereq;
        first = false;
      }
      os << "\n";
    }
    if (!spec.permissions.empty()) {
      os << "  permission: ";
      bool first = true;
      for (const Permission& perm : spec.permissions) {
        os << (first ? "" : ", ") << perm.ToString();
        first = false;
      }
      os << "\n";
    }
    for (const auto& [key, value] : spec.required_context) {
      os << "  context: " << key << " = " << value << "\n";
    }
    os << "}\n";
  }
  for (const auto& [name, spec] : policy.users()) {
    os << "user " << name << " {\n";
    if (!spec.assignments.empty()) {
      os << "  assign: ";
      bool first = true;
      for (const RoleName& role : spec.assignments) {
        os << (first ? "" : ", ") << role;
        first = false;
      }
      os << "\n";
    }
    if (spec.max_active_roles > 0) {
      os << "  max-active: " << spec.max_active_roles << "\n";
    }
    for (const auto& [role, duration] : spec.role_durations) {
      os << "  duration: " << role << " = "
         << FormatDurationLossless(duration) << "\n";
    }
    os << "}\n";
  }
  auto emit_sod = [&os](const char* kind,
                        const std::map<std::string, SodSet>& sets) {
    for (const auto& [name, set] : sets) {
      os << kind << " " << name << " { roles: ";
      bool first = true;
      for (const RoleName& role : set.roles) {
        os << (first ? "" : ", ") << role;
        first = false;
      }
      os << "  n: " << set.n << " }\n";
    }
  };
  emit_sod("ssd", policy.ssd_sets());
  emit_sod("dsd", policy.dsd_sets());
  for (const CfdPair& pair : policy.cfd_pairs()) {
    os << "cfd { trigger: " << pair.trigger
       << "  companion: " << pair.companion << " }\n";
  }
  for (const TransactionActivation& tx : policy.transactions()) {
    os << "transaction " << tx.name << " { controller: " << tx.controller
       << "  dependent: " << tx.dependent << " }\n";
  }
  for (const ThresholdDirective& directive : policy.thresholds()) {
    os << "threshold " << directive.name << " { count: "
       << directive.threshold
       << "  window: " << FormatDurationLossless(directive.window);
    if (!directive.disable_rule_prefixes.empty()) {
      os << "  disable: ";
      bool first = true;
      for (const std::string& prefix : directive.disable_rule_prefixes) {
        os << (first ? "" : ", ") << prefix;
        first = false;
      }
    }
    if (!directive.disable_roles.empty()) {
      os << "  disable-roles: ";
      bool first = true;
      for (const RoleName& role : directive.disable_roles) {
        os << (first ? "" : ", ") << role;
        first = false;
      }
    }
    if (directive.throttle_rate_per_s > 0) {
      char rate[32];
      std::snprintf(rate, sizeof(rate), "%.10g",
                    directive.throttle_rate_per_s);
      os << "  throttle-rate: " << rate
         << "  throttle-burst: " << directive.throttle_burst;
    }
    os << " }\n";
  }
  for (const AuditDirective& directive : policy.audits()) {
    os << "audit " << directive.name << " { interval: "
       << FormatDurationLossless(directive.interval) << " }\n";
  }
  for (const TimeSod& constraint : policy.time_sods()) {
    os << "time-sod " << constraint.name << " { kind: "
       << TimeSodKindToString(constraint.kind) << "  roles: ";
    bool first = true;
    for (const RoleName& role : constraint.roles) {
      os << (first ? "" : ", ") << role;
      first = false;
    }
    os << "  window: " << constraint.period.window_start().ToString()
       << " - " << constraint.period.window_end().ToString() << " }\n";
  }
  for (const PurposeSpec& purpose : policy.purposes()) {
    os << "purpose " << purpose.name << " {";
    if (!purpose.parent.empty()) os << " parent: " << purpose.parent;
    os << " }\n";
  }
  for (const ObjectPolicySpec& spec : policy.object_policies()) {
    os << "object-policy " << spec.object << " { purposes: ";
    bool first = true;
    for (const PurposeName& purpose : spec.purposes) {
      os << (first ? "" : ", ") << purpose;
      first = false;
    }
    os << " }\n";
  }
  return os.str();
}

}  // namespace sentinel
