#ifndef SENTINELPP_CORE_POLICY_H_
#define SENTINELPP_CORE_POLICY_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "core/privacy.h"
#include "gtrbac/periodic_expression.h"
#include "gtrbac/temporal_constraint.h"
#include "rbac/sod.h"
#include "rbac/types.h"

namespace sentinel {

/// \brief One role node of the access-specification graph (Figure 1),
/// with its relationship flags and per-role constraint annotations.
struct RoleSpec {
  RoleName name;
  /// Immediate hierarchy edges: this role is senior of each listed role.
  std::set<RoleName> juniors;
  /// Permissions granted directly to this role.
  std::set<Permission> permissions;
  /// Rule 4: max sessions the role may be active in at once (0 = no limit).
  int activation_cardinality = 0;
  /// GTRBAC shift: when present, the role is enabled only inside windows.
  std::optional<PeriodicExpression> enabling_window;
  /// Rule 7 (localized): per-activation duration bound (0 = none).
  Duration max_activation = 0;
  /// Prerequisite roles: must be active in the session before this one.
  std::set<RoleName> prerequisites;
  /// Context-aware RBAC: environment keys that must hold the given values
  /// for the role to be activated — and to *stay* active (a context change
  /// that breaks a constraint force-deactivates the role, the paper's §1
  /// "constraints should hold TRUE until the role is deactivated").
  std::map<std::string, std::string> required_context;

  friend bool operator==(const RoleSpec&, const RoleSpec&) = default;
};

/// \brief One user with assignments and user-specific (specialized-rule)
/// constraints.
struct UserSpec {
  UserName name;
  std::set<RoleName> assignments;
  /// Scenario 1 (§4.3): max roles active at a time across the user's
  /// sessions (0 = no limit).
  int max_active_roles = 0;
  /// Rule 7 (specialized): per-role activation duration bounds.
  std::map<RoleName, Duration> role_durations;

  friend bool operator==(const UserSpec&, const UserSpec&) = default;
};

/// \brief Control-flow dependency (Rule 8): enabling `trigger` requires
/// enabling `companion` too; disabling `companion` disables `trigger`.
struct CfdPair {
  RoleName trigger;    // e.g. SysAdmin
  RoleName companion;  // e.g. SysAudit

  friend bool operator==(const CfdPair&, const CfdPair&) = default;
};

/// \brief Transaction-based activation (Rule 9 / active security):
/// `dependent` can only be activated while `controller` is active, and is
/// deactivated when the controller deactivates.
struct TransactionActivation {
  std::string name;
  RoleName controller;  // e.g. Manager
  RoleName dependent;   // e.g. JuniorEmp

  friend bool operator==(const TransactionActivation&,
                         const TransactionActivation&) = default;
};

/// \brief Active-security threshold directive (§1): `threshold` denials
/// within `window` raise an internal alert; optionally, rules whose names
/// start with one of `disable_rule_prefixes` are disabled.
struct ThresholdDirective {
  std::string name;
  int threshold = 5;
  Duration window = kMinute;
  std::vector<std::string> disable_rule_prefixes;
  /// Roles to disable (and deactivate everywhere) when the alert fires —
  /// the paper's "deactivate a set of roles" alert action (§3).
  std::vector<RoleName> disable_roles;
  /// Per-principal throttle reaction: when > 0, a single user accruing
  /// `threshold` denials inside `window` (tracked per user, separately
  /// from the aggregate alert window) has their admission quota clamped to
  /// this rate in tokens/s — delivered through
  /// AuthorizationEngine::NotifyThrottle to the hosting service's policer.
  /// 0 (the default) keeps the directive alert-only.
  double throttle_rate_per_s = 0;
  /// Bucket depth for the penalty quota (values < 1 behave as 1).
  int64_t throttle_burst = 1;

  friend bool operator==(const ThresholdDirective&,
                         const ThresholdDirective&) = default;
};

/// \brief Periodic audit directive: a report every `interval` (PERIODIC
/// event, §3: "periodically monitor the underlying system and generate
/// reports").
struct AuditDirective {
  std::string name;
  Duration interval = kHour;

  friend bool operator==(const AuditDirective&,
                         const AuditDirective&) = default;
};

/// \brief Purpose registration for privacy-aware RBAC.
struct PurposeSpec {
  PurposeName name;
  PurposeName parent;  // Empty for roots.

  friend bool operator==(const PurposeSpec&, const PurposeSpec&) = default;
};

/// \brief Per-object allowed purposes.
struct ObjectPolicySpec {
  ObjectName object;
  std::set<PurposeName> purposes;

  friend bool operator==(const ObjectPolicySpec&,
                         const ObjectPolicySpec&) = default;
};

/// \brief The high-level enterprise access control policy — everything the
/// paper's RBAC Manager captures, in one value type. The rule generator
/// compiles a Policy into the engine's rule pool; edits produce a new
/// Policy whose diff drives incremental regeneration.
class Policy {
 public:
  Policy() = default;
  explicit Policy(std::string name) : name_(std::move(name)) {}

  // Value semantics: policies are edited by copy-and-mutate.
  Policy(const Policy&) = default;
  Policy& operator=(const Policy&) = default;
  Policy(Policy&&) = default;
  Policy& operator=(Policy&&) = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // ------------------------------------------------------------ Mutation

  Status AddRole(RoleSpec role);
  Status RemoveRole(const RoleName& role);
  Result<RoleSpec*> MutableRole(const RoleName& role);

  Status AddUser(UserSpec user);
  Status RemoveUser(const UserName& user);
  Result<UserSpec*> MutableUser(const UserName& user);

  Status AddSsd(SodSet set);
  Status RemoveSsd(const std::string& name);
  Status AddDsd(SodSet set);
  Status RemoveDsd(const std::string& name);

  Status AddCfd(CfdPair pair);
  Status AddTransaction(TransactionActivation tx);
  Status AddThreshold(ThresholdDirective directive);
  Status AddAudit(AuditDirective directive);
  Status AddTimeSod(TimeSod constraint);
  Status AddPurpose(PurposeSpec purpose);
  Status AddObjectPolicy(ObjectPolicySpec policy);

  // -------------------------------------------------------------- Access

  const std::map<RoleName, RoleSpec>& roles() const { return roles_; }
  const std::map<UserName, UserSpec>& users() const { return users_; }
  const std::map<std::string, SodSet>& ssd_sets() const { return ssd_sets_; }
  const std::map<std::string, SodSet>& dsd_sets() const { return dsd_sets_; }
  const std::vector<CfdPair>& cfd_pairs() const { return cfd_pairs_; }
  const std::vector<TransactionActivation>& transactions() const {
    return transactions_;
  }
  const std::vector<ThresholdDirective>& thresholds() const {
    return thresholds_;
  }
  const std::vector<AuditDirective>& audits() const { return audits_; }
  const std::vector<TimeSod>& time_sods() const { return time_sods_; }
  const std::vector<PurposeSpec>& purposes() const { return purposes_; }
  const std::vector<ObjectPolicySpec>& object_policies() const {
    return object_policies_;
  }

  bool HasRole(const RoleName& role) const { return roles_.count(role) > 0; }

  /// Role properties the generator keys AAR variants on (paper §4.3.1).
  bool RoleInHierarchy(const RoleName& role) const;
  bool RoleInDsd(const RoleName& role) const;
  bool RoleInSsd(const RoleName& role) const;
  /// True when the role is the dependent of a transaction activation (its
  /// activation is handled by the ASEC Aperiodic rule, not a plain AAR).
  bool RoleIsTransactionDependent(const RoleName& role) const;

  // ---------------------------------------------------------- Validation

  /// Structural consistency: every referenced role/user/purpose exists,
  /// hierarchy is acyclic, SoD sets are sane, directives well-formed.
  Status Validate() const;

  // ------------------------------------------------------------- Diffing

  /// Roles whose generated rules must be rebuilt when moving from `from`
  /// to `to` (changed/added/removed role specs, membership in changed SoD
  /// sets / CFDs / transactions / time-SoDs).
  static std::set<RoleName> AffectedRoles(const Policy& from,
                                          const Policy& to);
  /// Users whose specialized rules must be rebuilt.
  static std::set<UserName> AffectedUsers(const Policy& from,
                                          const Policy& to);
  /// True when directive sections (thresholds/audits) differ.
  static bool DirectivesChanged(const Policy& from, const Policy& to);

  friend bool operator==(const Policy&, const Policy&) = default;

 private:
  std::string name_;
  std::map<RoleName, RoleSpec> roles_;
  std::map<UserName, UserSpec> users_;
  std::map<std::string, SodSet> ssd_sets_;
  std::map<std::string, SodSet> dsd_sets_;
  std::vector<CfdPair> cfd_pairs_;
  std::vector<TransactionActivation> transactions_;
  std::vector<ThresholdDirective> thresholds_;
  std::vector<AuditDirective> audits_;
  std::vector<TimeSod> time_sods_;
  std::vector<PurposeSpec> purposes_;
  std::vector<ObjectPolicySpec> object_policies_;
};

}  // namespace sentinel

#endif  // SENTINELPP_CORE_POLICY_H_
