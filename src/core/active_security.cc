#include "core/active_security.h"

#include "common/logging.h"

namespace sentinel {

void ActiveSecurityMonitor::DefineWindow(const std::string& directive,
                                         Duration window, int threshold) {
  windows_[directive] = WindowState{window, threshold, {}, {}};
}

void ActiveSecurityMonitor::RemoveWindow(const std::string& directive) {
  windows_.erase(directive);
}

int ActiveSecurityMonitor::RecordDenial(const std::string& directive,
                                        Time when) {
  auto it = windows_.find(directive);
  if (it == windows_.end()) return 0;
  ++total_denials_;
  WindowState& state = it->second;
  state.denials.push_back(when);
  const Time horizon = when - state.window;
  while (!state.denials.empty() && state.denials.front() <= horizon) {
    state.denials.pop_front();
  }
  return static_cast<int>(state.denials.size());
}

int ActiveSecurityMonitor::RecordDenialKeyed(const std::string& directive,
                                             const std::string& key,
                                             Time when) {
  auto it = windows_.find(directive);
  if (it == windows_.end()) return 0;
  WindowState& state = it->second;
  std::deque<Time>& denials = state.keyed[key];
  denials.push_back(when);
  const Time horizon = when - state.window;
  while (!denials.empty() && denials.front() <= horizon) {
    denials.pop_front();
  }
  return static_cast<int>(denials.size());
}

void ActiveSecurityMonitor::ClearKeyedWindow(const std::string& directive,
                                             const std::string& key) {
  auto it = windows_.find(directive);
  if (it == windows_.end()) return;
  it->second.keyed.erase(key);
}

bool ActiveSecurityMonitor::ThresholdReached(
    const std::string& directive) const {
  auto it = windows_.find(directive);
  if (it == windows_.end()) return false;
  return static_cast<int>(it->second.denials.size()) >= it->second.threshold;
}

void ActiveSecurityMonitor::RaiseAlert(const std::string& directive,
                                       Time when, int observed,
                                       const std::string& detail) {
  alerts_.push_back(SecurityAlert{directive, when, observed, detail});
  auto it = windows_.find(directive);
  if (it != windows_.end()) it->second.denials.clear();
  SENTINEL_LOG(kAlert) << "internal security alert [" << directive << "] "
                       << detail << " (observed " << observed << ")";
}

void ActiveSecurityMonitor::RecordAuditReport(const std::string& directive,
                                              Time when) {
  (void)when;
  ++audit_counts_[directive];
}

int ActiveSecurityMonitor::audit_report_count(
    const std::string& directive) const {
  auto it = audit_counts_.find(directive);
  return it == audit_counts_.end() ? 0 : it->second;
}

}  // namespace sentinel
