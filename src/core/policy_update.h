#ifndef SENTINELPP_CORE_POLICY_UPDATE_H_
#define SENTINELPP_CORE_POLICY_UPDATE_H_

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/policy.h"

namespace sentinel {

/// \brief A base-state reconcile precomputed off the shard thread: the
/// removal half (always replayed) plus the add half (replayed only while
/// the runtime DB provably still contains everything `from` installed).
///
/// ReconcileBaseState's removal steps (retire constraints, deassign, revoke,
/// unlink, delete) are pure from→to diffs, so they can be computed once on
/// the admin caller's thread and replayed per shard. The *add* lists are the
/// from→to policy diff of the same relations; they are sufficient only when
/// no runtime base-state REMOVAL (deassign, revoke, delete-user/role/edge/
/// SoD-set — e.g. an active-security rule deassigning a violator) has run
/// since the last reconcile: then the runtime DB is a superset of `from`'s
/// entries and the only possibly-missing entries are exactly the policy
/// diff. When removals did run, commit falls back to the full target-policy
/// scan with live presence guards, which re-syncs runtime-diverged state
/// (e.g. a runtime-deassigned assignment the new policy still lists).
struct BaseStateDelta {
  std::vector<std::string> drop_ssd;
  std::vector<std::string> drop_dsd;
  std::vector<std::pair<UserName, RoleName>> deassign;
  std::vector<std::pair<RoleName, Permission>> revoke;
  /// Hierarchy edges to delete, as (senior, junior).
  std::vector<std::pair<RoleName, RoleName>> drop_edges;
  std::vector<RoleName> drop_roles;
  std::vector<UserName> drop_users;
  /// The add half, in install order (users/roles, then edges/grants/
  /// assignments, then SoD sets): entries of `to` absent from `from`.
  std::vector<UserName> add_users;
  std::vector<RoleName> add_roles;
  /// Hierarchy edges to add, as (senior, junior).
  std::vector<std::pair<RoleName, RoleName>> add_edges;
  std::vector<std::pair<RoleName, Permission>> add_grants;
  std::vector<std::pair<UserName, RoleName>> add_assignments;
  /// SoD sets of `to` that are new or whose membership/cardinality changed
  /// (the matching drop_* entry retired the old definition first).
  std::vector<std::string> add_ssd;
  std::vector<std::string> add_dsd;
  /// True iff purposes or object policies differ — gates the privacy-store
  /// rebuild (the only step that mutates the PrivacyStore).
  bool privacy_changed = false;
  /// Roles of `to` carrying an enabling window — the only roles whose
  /// enablement must be recomputed against the clock at commit time.
  std::vector<RoleName> window_roles;
  /// Roles present in `to` without an enabling window that had one in
  /// `from` (window removed → force-enable at commit time).
  std::set<RoleName> window_removed;
};

/// Diffs `from` → `to` into the removal delta above. Pure; thread-safe.
BaseStateDelta ComputeBaseStateDelta(const Policy& from, const Policy& to);

/// \brief Everything a pauseless policy swap needs, built off the shard
/// thread by AuthorizationEngine::PreparePolicyUpdate.
///
/// `base` pins the generation this plan was diffed against: commit refuses
/// (FailedPrecondition) when the engine's live policy is a different object,
/// so a stale plan can never silently clobber an interleaved update. `next`
/// is the immutable generation the engine flips to — one allocation shared
/// by every shard, retired by shared_ptr refcount when the last shard (and
/// the service's own handle) lets go.
struct PolicyUpdatePlan {
  std::shared_ptr<const Policy> base;
  std::shared_ptr<const Policy> next;
  std::set<RoleName> affected_roles;
  std::set<UserName> affected_users;
  bool directives_changed = false;
  BaseStateDelta delta;
};

}  // namespace sentinel

#endif  // SENTINELPP_CORE_POLICY_UPDATE_H_
