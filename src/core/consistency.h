#ifndef SENTINELPP_CORE_CONSISTENCY_H_
#define SENTINELPP_CORE_CONSISTENCY_H_

#include <string>
#include <vector>

#include "core/policy.h"

namespace sentinel {

class AuthorizationEngine;

/// Severity of a consistency finding.
enum class IssueSeverity : int {
  kWarning = 0,  // Suspicious but loadable (vacuous/unreachable policy).
  kError = 1,    // The policy cannot be honoured as written.
};

const char* IssueSeverityToString(IssueSeverity severity);

/// \brief One finding of the consistency checker.
struct ConsistencyIssue {
  IssueSeverity severity = IssueSeverity::kWarning;
  /// Stable machine-readable code, e.g. "ssd-assignment-conflict".
  std::string code;
  /// Human-readable description naming the offending elements.
  std::string detail;

  std::string ToString() const;
};

/// \brief Advanced policy consistency checking — the mechanism the paper
/// leaves as work in progress ("Currently, we assume that the policies …
/// do not have inconsistencies, but we are in the process of developing
/// advanced consistency checking mechanisms", §5).
///
/// Assumes `policy.Validate()` already passed (structural sanity); this
/// pass finds *semantic* conflicts:
///
///   ssd-assignment-conflict   (error)   a user's authorized role set
///                                       already violates an SSD relation
///   ssd-hierarchy-conflict    (warning) a role's junior closure violates
///                                       an SSD relation: unassignable
///   prerequisite-cycle        (error)   roles that mutually require each
///                                       other can never be activated
///   prerequisite-dsd-conflict (error)   a role and its prerequisite are
///                                       mutually exclusive in a session
///   dsd-subsumed-by-ssd       (warning) a DSD relation can never bind
///                                       because SSD prevents assignment
///   cardinality-vacuous       (warning) activation cardinality not
///                                       reachable by assigned users
///   duration-exceeds-shift    (warning) a per-activation bound longer
///                                       than the role's enabling window
///   tsod-member-has-shift     (warning) automatic shift disabling
///                                       bypasses the time-SoD guard
///   transaction-unusable      (warning) transaction roles with no
///                                       assigned users
std::vector<ConsistencyIssue> CheckPolicyConsistency(const Policy& policy);

/// \brief Verification of the generated rule pool against the policy —
/// the paper's §7 future work ("the generated rules should be verified").
///
/// Structurally audits the engine's pool: every policy element must have
/// exactly its expected rules (AAR/ASEC per role, CC iff cardinality, DUR
/// iff duration, SH iff enabling window, CTX iff context, UAC per capped
/// user, TSOD/CFD/SEC/AUD per constraint/directive, the global block).
/// Returns an issue per missing or unexpected rule; empty means the pool
/// is exactly the compilation of the policy.
std::vector<ConsistencyIssue> VerifyGeneratedPool(
    const AuthorizationEngine& engine);

/// Convenience: true iff no issue at kError severity.
bool NoErrors(const std::vector<ConsistencyIssue>& issues);

}  // namespace sentinel

#endif  // SENTINELPP_CORE_CONSISTENCY_H_
