#ifndef SENTINELPP_CORE_POLICY_PARSER_H_
#define SENTINELPP_CORE_POLICY_PARSER_H_

#include <string>

#include "common/status.h"
#include "core/policy.h"

namespace sentinel {

/// \brief Parses the text policy DSL — the reproduction's stand-in for the
/// paper's RBAC Manager GUI. The DSL spells the same access-specification
/// graph: role nodes with relationship flags and constraint annotations,
/// users, SoD relations, and the extension directives.
///
/// Grammar (line-oriented; `#` starts a comment; lists are comma-separated):
///
///   policy "enterprise-xyz"
///
///   role PM {
///     senior-of: PC            # hierarchy edges (Figure 1 solid arrows)
///     cardinality: 5           # Rule 4
///     enable: 09:00:00 - 17:00:00   # GTRBAC shift (TimePattern pair)
///     max-activation: 2h       # Rule 7
///     prerequisite: Clerk
///     permission: read(order), write(order)
///   }
///
///   user bob {
///     assign: PC
///     max-active: 5            # scenario 1
///     duration: R3 = 30m       # Rule 7, specialized
///   }
///
///   ssd SoD1 { roles: PC, AC   n: 2 }      # Figure 1 dashed line
///   dsd DSoD1 { roles: A, B, C   n: 2 }
///   cfd { trigger: SysAdmin   companion: SysAudit }          # Rule 8
///   transaction tx1 { controller: Manager  dependent: JuniorEmp }  # Rule 9
///   threshold guard { count: 5  window: 60s  disable: CA }   # §1
///   audit daily { interval: 24h }
///   time-sod avail { kind: disabling  roles: Doctor, Nurse
///                    window: 10:00:00 - 17:00:00 }           # Rule 6
///   purpose business {}
///   purpose marketing { parent: business }
///   object-policy patient.dat { purposes: treatment }
///
/// Durations: integer + suffix us/ms/s/m/h/d (plain integers are seconds).
class PolicyParser {
 public:
  /// Parses `text` and returns a validated Policy.
  static Result<Policy> Parse(const std::string& text);

  /// Reads and parses a `.acp` policy file.
  static Result<Policy> ParseFile(const std::string& path);

  /// Parses a duration literal like "120m", "30s", "24h" (public for reuse
  /// in tools/tests).
  static Result<Duration> ParseDuration(const std::string& text);
};

/// Serializes a Policy back into DSL text (round-trips through Parse).
std::string PolicyToText(const Policy& policy);

}  // namespace sentinel

#endif  // SENTINELPP_CORE_POLICY_PARSER_H_
