#include "core/engine.h"

#include "common/logging.h"
#include "core/rule_generator.h"

namespace sentinel {

// kCaRuleName is the one rule the decision cache may replay
// (rule_generator's global check-access rule). Its THEN is a pure Allow and
// its ELSE a Deny plus the rbac.accessDenied raise — which is why denials
// are only cached while that event has no consumers. Both constants live on
// the class so the service's zero-hop fast path reconstructs identical
// Decisions.

AuthorizationEngine::AuthorizationEngine(SimulatedClock* clock)
    : clock_(clock),
      detector_(clock, &symbols_, &metrics_, &tracer_),
      rules_(&detector_, &metrics_, &tracer_),
      rbac_(&symbols_),
      role_state_(&symbols_),
      policy_(std::make_shared<const Policy>()) {
  decisions_counter_ =
      metrics_.AddCounter("decisions_total", "authorization decisions made");
  denials_counter_ = metrics_.AddCounter("denials_total", "requests denied");
  cache_hits_counter_ = metrics_.AddCounter(
      "decision_cache_hits_total", "CheckAccess verdicts replayed from cache");
  cache_misses_counter_ = metrics_.AddCounter(
      "decision_cache_misses_total", "cacheable CheckAccess lookups that missed");
  cache_stale_counter_ = metrics_.AddCounter(
      "decision_cache_stale_total",
      "cache entries found dead (stamp mismatch) at lookup");
  cache_fills_counter_ = metrics_.AddCounter(
      "decision_cache_fills_total", "verdicts written into the cache");
  cache_entries_gauge_ = metrics_.AddGauge(
      "decision_cache_entries", "occupied decision cache slots");
  // 1us..16ms in powers of two, matching the ~sub-ms request path.
  latency_hist_ = metrics_.AddHistogram(
      "decision_latency_us", "sampled wall-clock dispatch latency (us)",
      telemetry::Histogram::ExponentialBounds(1, 2.0, 15));
  // 1..1024 firings per cascade, matching the default cascade budget.
  cascade_hist_ = metrics_.AddHistogram(
      "cascade_firings", "rule firings per drained cascade",
      telemetry::Histogram::ExponentialBounds(1, 2.0, 11));
  decision_log_.set_overflow_counter(metrics_.AddCounter(
      "decision_log_overflow_total",
      "decision audit records evicted from the in-memory ring"));
  keys_.user = symbols_.Intern(kUser);
  keys_.session = symbols_.Intern(kSession);
  keys_.role = symbols_.Intern(kRole);
  keys_.operation = symbols_.Intern(kOperation);
  keys_.object = symbols_.Intern(kObject);
  keys_.purpose = symbols_.Intern(kPurpose);
  keys_.context_key = symbols_.Intern("key");
  keys_.context_value = symbols_.Intern("value");
  rules_.set_engine(this);
  // Each independent trigger (request or timer firing) gets a fresh
  // cascade budget once its own cascade has fully drained. The drained
  // length is only stashed here — Dispatch records it into the histogram
  // on sampled dispatches, keeping the per-trigger path free of the
  // bucket-search cost.
  detector_.SetQuiescentCallback([this] {
    last_cascade_used_ = rules_.cascade_used();
    rules_.ResetCascadeBudget();
  });
  generator_ = std::make_unique<RuleGenerator>(this);

  auto define = [this](const char* name) {
    auto result = detector_.DefinePrimitive(name);
    // Core event names are unique literals; failure is impossible.
    return result.ok() ? *result : kInvalidEventId;
  };
  events_.create_session = define("rbac.createSession");
  events_.delete_session = define("rbac.deleteSession");
  events_.add_active_role = define("rbac.addActiveRole");
  events_.drop_active_role = define("rbac.dropActiveRole");
  events_.check_access = define("rbac.checkAccess");
  events_.assign_user = define("rbac.assignUser");
  events_.deassign_user = define("rbac.deassignUser");
  events_.enable_role = define("rbac.enableRole");
  events_.disable_role = define("rbac.disableRole");
  events_.session_role_added = define("rbac.sessionRoleAdded");
  events_.session_role_dropped = define("rbac.sessionRoleDropped");
  events_.role_enabled = define("rbac.roleEnabled");
  events_.role_disabled = define("rbac.roleDisabled");
  events_.access_denied = define("rbac.accessDenied");
  events_.security_alert = define("rbac.securityAlert");
  events_.context_changed = define("rbac.contextChanged");
}

AuthorizationEngine::~AuthorizationEngine() = default;

Status AuthorizationEngine::LoadPolicy(const Policy& policy) {
  return LoadPolicy(std::make_shared<const Policy>(policy));
}

Status AuthorizationEngine::LoadPolicy(std::shared_ptr<const Policy> policy) {
  if (policy_loaded_) {
    return Status::FailedPrecondition(
        "a policy is already loaded; use ApplyPolicyUpdate");
  }
  if (!policy) return Status::InvalidArgument("null policy");
  SENTINEL_RETURN_IF_ERROR(policy->Validate());
  SENTINEL_RETURN_IF_ERROR(
      ApplyBaseDelta(ComputeBaseStateDelta(*policy_, *policy), *policy));
  policy_ = std::move(policy);
  policy_loaded_ = true;
  ++policy_version_;
  auto stats = generator_->GenerateAll(*policy_);
  if (!stats.ok()) return stats.status();
  BumpDecisionCacheEpoch();
  return Status::OK();
}

Result<RegenReport> AuthorizationEngine::ApplyPolicyUpdate(
    const Policy& updated) {
  if (!policy_loaded_) {
    return Status::FailedPrecondition("no policy loaded yet");
  }
  auto plan = PreparePolicyUpdate(policy_, updated);
  if (!plan.ok()) return plan.status();
  return CommitPolicyUpdate(*plan);
}

Result<PolicyUpdatePlan> AuthorizationEngine::PreparePolicyUpdate(
    std::shared_ptr<const Policy> base, Policy next) {
  if (!base) return Status::FailedPrecondition("no policy loaded yet");
  SENTINEL_RETURN_IF_ERROR(next.Validate());
  PolicyUpdatePlan plan;
  plan.base = std::move(base);
  plan.next = std::make_shared<const Policy>(std::move(next));
  plan.affected_roles = Policy::AffectedRoles(*plan.base, *plan.next);
  plan.affected_users = Policy::AffectedUsers(*plan.base, *plan.next);
  plan.directives_changed = Policy::DirectivesChanged(*plan.base, *plan.next);
  plan.delta = ComputeBaseStateDelta(*plan.base, *plan.next);
  return plan;
}

Result<RegenReport> AuthorizationEngine::CommitPolicyUpdate(
    const PolicyUpdatePlan& plan) {
  if (!policy_loaded_) {
    return Status::FailedPrecondition("no policy loaded yet");
  }
  if (plan.base.get() != policy_.get()) {
    return Status::FailedPrecondition(
        "stale policy update plan: another generation was installed since "
        "it was prepared");
  }
  const uint64_t skips_before = base_reconcile_skips_;
  SENTINEL_RETURN_IF_ERROR(ApplyBaseDelta(plan.delta, *plan.next));
  // The RCU flip: one pointer store. The retired generation stays alive
  // for as long as anything (another shard, the service's handle, an
  // in-flight plan) still references it, then frees by refcount.
  policy_ = plan.next;
  ++policy_version_;

  auto regen = generator_->Regenerate(*policy_, plan.affected_roles,
                                      plan.affected_users,
                                      plan.directives_changed);
  if (!regen.ok()) return regen.status();
  // Invalidate through the stamp, not the epoch: every cached and
  // fast-path verdict carries the rule-pool generation, so bumping it
  // retires entries filled under the old generation lazily at lookup —
  // without the blanket cache wipe the epoch barrier used to pay for.
  rules_.BumpPoolGeneration();
  PublishFastPathState();

  RegenReport report;
  report.roles_affected = static_cast<int>(plan.affected_roles.size());
  report.users_affected = static_cast<int>(plan.affected_users.size());
  report.rules_removed = regen->rules_removed;
  report.rules_added = regen->rules_added;
  report.events_added = regen->events_added;
  report.directives_rebuilt = plan.directives_changed;
  report.base_entries_skipped =
      static_cast<int>(base_reconcile_skips_ - skips_before);
  return report;
}

Status AuthorizationEngine::ApplyBaseDelta(const BaseStateDelta& delta,
                                           const Policy& to) {
  // Ordered so that constraint stores never spuriously reject: retire
  // constraints first, shrink relations, then grow them, then re-install
  // constraints. Steps 1-4 replay the precomputed removal delta. The add
  // steps have two shapes: while no runtime base-state removal has run
  // since the last reconcile (the common case — base_removals() still at
  // the mark), the runtime DB is a superset of the old policy's entries
  // and replaying the precomputed add delta is exactly equivalent to the
  // full scan, at O(diff) instead of O(policy). A deassign/revoke/delete
  // since then (an admin request, an active-security response) moves the
  // counter, and the commit re-syncs with the full target-policy scan
  // guarded by live presence checks.
  const bool resync = rbac_.base_removals() != base_sync_mark_;
  // The adds are BEST-EFFORT: an entry the live runtime state refuses
  // (e.g. a policy assignment that now conflicts with runtime SSD state
  // after an active-security deassign elsewhere) is skipped, counted, and
  // logged — never a commit failure. Refusing mid-apply cannot be atomic
  // (steps 1-4 already mutated), and in the sharded service runtime state
  // legitimately differs per shard (decision-triggered rule actions land
  // only on the deciding shard), so a per-shard refusal would leave the
  // generations split-brained and wedge every later plan as stale. The
  // runtime constraint wins; the dropped entry surfaces in
  // RegenReport::base_entries_skipped and the warning log.
  const auto best_effort = [this](const Status& status) {
    if (status.ok()) return;
    ++base_reconcile_skips_;
    SENTINEL_LOG(kWarning)
        << "policy reconcile skipped an entry the live state refuses: "
        << status.message();
  };
  // 1. Drop SSD/DSD sets that changed or disappeared.
  for (const std::string& name : delta.drop_ssd) (void)rbac_.DeleteSsdSet(name);
  for (const std::string& name : delta.drop_dsd) (void)rbac_.DeleteDsdSet(name);
  // 2. Deassign removed assignments; revoke removed grants.
  for (const auto& [user, role] : delta.deassign) {
    (void)rbac_.DeassignUser(user, role);
  }
  for (const auto& [role, perm] : delta.revoke) {
    (void)rbac_.RevokePermission(perm.operation, perm.object, role);
  }
  // 3. Remove hierarchy edges that disappeared.
  for (const auto& [senior, junior] : delta.drop_edges) {
    (void)rbac_.DeleteInheritance(senior, junior);
  }
  // 4. Delete roles and users that disappeared.
  for (const RoleName& name : delta.drop_roles) {
    (void)rbac_.DeleteRole(name);
    role_state_.EraseRole(name);
  }
  for (const UserName& name : delta.drop_users) (void)rbac_.DeleteUser(name);
  if (resync) {
    // 5. Add new users and roles.
    for (const auto& [name, spec] : to.users()) {
      if (!rbac_.db().HasUser(name)) {
        best_effort(rbac_.AddUser(name));
      }
    }
    for (const auto& [name, spec] : to.roles()) {
      if (!rbac_.db().HasRole(name)) {
        best_effort(rbac_.AddRole(name));
      }
    }
    // 6. Add hierarchy edges, grants, assignments.
    for (const auto& [name, spec] : to.roles()) {
      for (const RoleName& junior : spec.juniors) {
        if (!rbac_.hierarchy().ImmediateJuniors(name).count(junior)) {
          best_effort(rbac_.AddInheritance(name, junior));
        }
      }
      for (const Permission& perm : spec.permissions) {
        if (!rbac_.db().IsGranted(perm, name)) {
          best_effort(
              rbac_.GrantPermission(perm.operation, perm.object, name));
        }
      }
    }
    for (const auto& [name, spec] : to.users()) {
      for (const RoleName& role : spec.assignments) {
        if (!rbac_.db().IsAssigned(name, role)) {
          best_effort(rbac_.AssignUser(name, role));
        }
      }
    }
    // 7. Re-install SoD sets.
    for (const auto& [name, set] : to.ssd_sets()) {
      if (!rbac_.ssd().GetSet(name).ok()) {
        best_effort(rbac_.InstallSsdSet(name, set.roles, set.n));
      }
    }
    for (const auto& [name, set] : to.dsd_sets()) {
      if (!rbac_.dsd().GetSet(name).ok()) {
        best_effort(rbac_.InstallDsdSet(name, set.roles, set.n));
      }
    }
  } else {
    // 5-7, O(diff): same install order, same presence guards (a runtime
    // *add* may already have installed an entry the diff lists — e.g. a
    // runtime-assigned (user, role) the new policy now also carries).
    for (const UserName& name : delta.add_users) {
      if (!rbac_.db().HasUser(name)) {
        best_effort(rbac_.AddUser(name));
      }
    }
    for (const RoleName& name : delta.add_roles) {
      if (!rbac_.db().HasRole(name)) {
        best_effort(rbac_.AddRole(name));
      }
    }
    for (const auto& [senior, junior] : delta.add_edges) {
      if (!rbac_.hierarchy().ImmediateJuniors(senior).count(junior)) {
        best_effort(rbac_.AddInheritance(senior, junior));
      }
    }
    for (const auto& [role, perm] : delta.add_grants) {
      if (!rbac_.db().IsGranted(perm, role)) {
        best_effort(
            rbac_.GrantPermission(perm.operation, perm.object, role));
      }
    }
    for (const auto& [user, role] : delta.add_assignments) {
      if (!rbac_.db().IsAssigned(user, role)) {
        best_effort(rbac_.AssignUser(user, role));
      }
    }
    for (const std::string& name : delta.add_ssd) {
      if (!rbac_.ssd().GetSet(name).ok()) {
        const auto& set = to.ssd_sets().at(name);
        best_effort(rbac_.InstallSsdSet(name, set.roles, set.n));
      }
    }
    for (const std::string& name : delta.add_dsd) {
      if (!rbac_.dsd().GetSet(name).ok()) {
        const auto& set = to.dsd_sets().at(name);
        best_effort(rbac_.InstallDsdSet(name, set.roles, set.n));
      }
    }
  }
  // 8. Privacy store: rebuild when purposes/object policies changed (the
  // reconcile is the store's only mutator, so an unchanged delta means an
  // unchanged store).
  if (delta.privacy_changed) {
    privacy_ = PrivacyStore();
    for (const PurposeSpec& purpose : to.purposes()) {
      SENTINEL_RETURN_IF_ERROR(privacy_.AddPurpose(purpose.name,
                                                   purpose.parent));
    }
    for (const ObjectPolicySpec& spec : to.object_policies()) {
      SENTINEL_RETURN_IF_ERROR(
          privacy_.SetObjectPolicy(spec.object, spec.purposes));
    }
  }
  // 9. Role enablement: initialize from enabling windows at current time.
  // Only window-bearing roles (and roles whose window disappeared) can
  // change enablement here, so the precomputed lists cover every case the
  // full role iteration did.
  const Time now = Now();
  for (const RoleName& name : delta.window_roles) {
    const auto& window = to.roles().at(name).enabling_window;
    if (window->Contains(now)) {
      role_state_.Enable(name, now);
    } else {
      role_state_.Disable(name, now);
      DeactivateAllInstances(name);
    }
  }
  for (const RoleName& name : delta.window_removed) {
    role_state_.Enable(name, now);  // Window removed.
  }
  // The reconcile itself deassigns/revokes/deletes through the counted
  // mutators, so the mark is captured after the fact: the next commit may
  // take the O(diff) path unless NEW removals land in between.
  base_sync_mark_ = rbac_.base_removals();
  return Status::OK();
}

Decision AuthorizationEngine::Dispatch(EventId event, FlatParamMap params) {
  // Sampled instrumentation keeps the fast path flat: wall-clock reads
  // happen on one dispatch in latency_sample_every_, spans per the
  // tracer's own sampling. A traced-but-untimed span reports wall_ns 0.
  const bool timed = latency_tick_ != 0 && --latency_tick_ == 0;
  if (timed) latency_tick_ = latency_sample_every_;
  const int64_t start_ns = timed ? telemetry::NowNanos() : 0;
  const bool traced = tracer_.Begin(Now(), detector_.name(event));
  // Attribution symbols must be read before the params move below; symbols
  // stay resolvable for the table's lifetime, so NameOf waits until the
  // record is actually built (only when the trail is on).
  const bool logged = decision_log_.capacity() > 0;
  Symbol a_user, a_session, a_role, a_op, a_obj, a_purpose;
  if (logged) {
    a_user = params.Get(keys_.user).AsSymbol();
    a_session = params.Get(keys_.session).AsSymbol();
    a_role = params.Get(keys_.role).AsSymbol();
    a_op = params.Get(keys_.operation).AsSymbol();
    a_obj = params.Get(keys_.object).AsSymbol();
    a_purpose = params.Get(keys_.purpose).AsSymbol();
  }
  Decision decision;
  {
    ScopedDecision scope(&rules_, &decision);
    (void)detector_.RaiseInterned(event, std::move(params));
  }
  if (!decision.decided) {
    // Fail-safe default: requests no rule adjudicates are denied.
    decision.Deny("", "Permission Denied");
  }
  const int64_t elapsed_ns = timed ? telemetry::NowNanos() - start_ns : 0;
  decisions_counter_->Inc();
  if (!decision.allowed) denials_counter_->Inc();
  if (timed) {
    latency_hist_->Record(elapsed_ns / 1000);
    // Same sample as the latency read: cascade length of the drain this
    // dispatch just triggered (quiet cascades are not observations).
    if (last_cascade_used_ > 0) {
      cascade_hist_->Record(static_cast<int64_t>(last_cascade_used_));
    }
  }
  if (traced) tracer_.End(decision.allowed, decision.rule, elapsed_ns);
  if (logged) {
    DecisionRecord record{Now(), detector_.name(event), decision};
    record.wall_us = WallTimeMicros();
    record.user = symbols_.NameOf(a_user);
    record.session = symbols_.NameOf(a_session);
    record.role = symbols_.NameOf(a_role);
    record.op = symbols_.NameOf(a_op);
    record.object = symbols_.NameOf(a_obj);
    record.purpose = symbols_.NameOf(a_purpose);
    record.latency_us = elapsed_ns / 1000;
    decision_log_.Push(std::move(record));
  }
  // Whatever this dispatch's cascade mutated is reflected in the fast stamp
  // by the time the caller (and, through the service, the client) learns
  // the outcome. Every mutating engine entry point funnels through here.
  PublishFastPathState();
  return decision;
}

void AuthorizationEngine::set_decision_log_capacity(size_t capacity) {
  decision_log_.set_capacity(capacity);
}

Decision AuthorizationEngine::CreateSession(const UserName& user,
                                            const SessionId& session) {
  return Dispatch(events_.create_session,
                  {{keys_.user, Value(symbols_.Intern(user))},
                   {keys_.session, Value(symbols_.Intern(session))}});
}

Decision AuthorizationEngine::DeleteSession(const SessionId& session) {
  return Dispatch(events_.delete_session,
                  {{keys_.session, Value(symbols_.Intern(session))}});
}

Decision AuthorizationEngine::AddActiveRole(const UserName& user,
                                            const SessionId& session,
                                            const RoleName& role) {
  return Dispatch(events_.add_active_role,
                  {{keys_.user, Value(symbols_.Intern(user))},
                   {keys_.session, Value(symbols_.Intern(session))},
                   {keys_.role, Value(symbols_.Intern(role))}});
}

Decision AuthorizationEngine::DropActiveRole(const UserName& user,
                                             const SessionId& session,
                                             const RoleName& role) {
  return Dispatch(events_.drop_active_role,
                  {{keys_.user, Value(symbols_.Intern(user))},
                   {keys_.session, Value(symbols_.Intern(session))},
                   {keys_.role, Value(symbols_.Intern(role))}});
}

void AuthorizationEngine::ConfigureDecisionCache(size_t capacity) {
  decision_cache_.Configure(capacity);
  cache_entries_gauge_->Set(0);
  // Seed the shared view's current stamp so readers arriving before the
  // first mutation validate against real values, not zero-init.
  PublishFastPathState();
}

DecisionCache::Stamp AuthorizationEngine::FastCacheStamp() const {
  DecisionCache::Stamp stamp;
  stamp.epoch = static_cast<uint32_t>(cache_epoch_);
  stamp.pool = static_cast<uint32_t>(rules_.pool_generation());
  stamp.session = rbac_.db().sessions_generation();
  stamp.roles = role_state_.roles_generation();
  return stamp;
}

void AuthorizationEngine::PublishFastPathState() {
  if (decision_cache_.shared_enabled()) {
    decision_cache_.PublishCurrentStamp(FastCacheStamp());
  }
}

DecisionCache::Stamp AuthorizationEngine::CacheStamp(Symbol session) const {
  DecisionCache::Stamp stamp;
  stamp.epoch = static_cast<uint32_t>(cache_epoch_);
  stamp.pool = static_cast<uint32_t>(rules_.pool_generation());
  stamp.session = rbac_.db().SessionGeneration(session);
  uint32_t roles = 0;
  if (const RbacDatabase::SessionState* state =
          rbac_.db().GetSessionState(session)) {
    for (Symbol role : state->active_roles) {
      roles += role_state_.Generation(role);
    }
  }
  stamp.roles = roles;
  return stamp;
}

void AuthorizationEngine::RefreshCacheGates() {
  gate_pool_generation_ = rules_.pool_generation();
  gate_epoch_ = cache_epoch_;
  // Replaying a verdict skips the rbac.checkAccess Raise, which is sound
  // only while the event's sole consumer is the rule dispatcher firing the
  // CA rule whose verdict we reconstruct. Any other consumer — another
  // rule, a composite operand, an indexed filter, an external subscriber —
  // would miss occurrences, so its presence turns the cache off.
  const std::vector<Rule*>* ca_rules = rules_.RulesFor(events_.check_access);
  const size_t rule_count = ca_rules == nullptr ? 0 : ca_rules->size();
  const size_t expected_consumers = rule_count > 0 ? 1 : 0;
  cache_positive_ok_ =
      detector_.ConsumerCount(events_.check_access) == expected_consumers &&
      (rule_count == 0 ||
       (rule_count == 1 && (*ca_rules)[0]->name() == kCaRuleName));
  // The CA rule's ELSE raises rbac.accessDenied; a replayed denial
  // suppresses that raise, so denials are cacheable only while nothing
  // consumes it (active-security SEC rules do — denial bursts must count).
  cache_negative_ok_ = cache_positive_ok_ &&
                       detector_.ConsumerCount(events_.access_denied) == 0;
}

bool AuthorizationEngine::CacheableVerdict(const Decision& decision) {
  if (decision.allowed) return decision.rule == kCaRuleName;
  return (decision.rule.empty() || decision.rule == kCaRuleName) &&
         decision.reason == kDenyReason;
}

Decision AuthorizationEngine::ReplayCachedVerdict(DecisionCache::Verdict
                                                      verdict,
                                                  Symbol session, Symbol op,
                                                  Symbol obj) {
  // Replays join the same sampled latency stream as full dispatches: on a
  // cache-heavy workload the decision_latency_us p50 must reflect hits,
  // not just the residue of misses.
  const bool timed = latency_tick_ != 0 && --latency_tick_ == 0;
  if (timed) latency_tick_ = latency_sample_every_;
  const int64_t start_ns = timed ? telemetry::NowNanos() : 0;
  Decision decision;
  if (verdict.allowed) {
    decision.Allow(kCaRuleName);
  } else {
    decision.Deny(verdict.by_rule ? kCaRuleName : "", kDenyReason);
  }
  decisions_counter_->Inc();
  if (!decision.allowed) denials_counter_->Inc();
  if (timed) {
    latency_hist_->Record((telemetry::NowNanos() - start_ns) / 1000);
  }
  if (tracer_.Begin(Now(), detector_.name(events_.check_access))) {
    tracer_.EndCached(decision.allowed, decision.rule);
  }
  if (decision_log_.capacity() > 0) {
    DecisionRecord record{Now(), detector_.name(events_.check_access),
                          decision};
    record.wall_us = WallTimeMicros();
    record.session = symbols_.NameOf(session);
    record.op = symbols_.NameOf(op);
    record.object = symbols_.NameOf(obj);
    decision_log_.Push(std::move(record));
  }
  return decision;
}

Decision AuthorizationEngine::CheckAccess(const SessionId& session,
                                          const OperationName& op,
                                          const ObjectName& obj,
                                          const PurposeName& purpose) {
  const Symbol session_sym = symbols_.Intern(session);
  const Symbol op_sym = symbols_.Intern(op);
  const Symbol obj_sym = symbols_.Intern(obj);
  uint64_t key = 0;
  DecisionCache::Stamp stamp;
  bool fillable = false;
  // Purpose is deliberately outside the packed key, so privacy-qualified
  // requests always dispatch.
  if (decision_cache_.enabled() && purpose.empty()) {
    if (gate_pool_generation_ != rules_.pool_generation() ||
        gate_epoch_ != cache_epoch_) {
      RefreshCacheGates();
    }
    const std::optional<uint64_t> packed =
        DecisionCache::PackKey(session_sym, op_sym, obj_sym);
    if (packed.has_value() && cache_positive_ok_) {
      key = *packed;
      stamp = CacheStamp(session_sym);
      DecisionCache::Verdict verdict;
      switch (decision_cache_.Lookup(key, stamp, &verdict)) {
        case DecisionCache::Outcome::kHit:
          cache_hits_counter_->Inc();
          return ReplayCachedVerdict(verdict, session_sym, op_sym, obj_sym);
        case DecisionCache::Outcome::kStale:
          cache_stale_counter_->Inc();
          fillable = true;
          break;
        case DecisionCache::Outcome::kMiss:
          cache_misses_counter_->Inc();
          fillable = true;
          break;
      }
    }
  }
  FlatParamMap params = {{keys_.session, Value(session_sym)},
                         {keys_.operation, Value(op_sym)},
                         {keys_.object, Value(obj_sym)}};
  if (!purpose.empty()) {
    params.Set(keys_.purpose, Value(symbols_.Intern(purpose)));
  }
  Decision decision = Dispatch(events_.check_access, std::move(params));
  // Fill only when the pre-dispatch stamp still holds: a denial's cascade
  // (SEC alerts disabling rules or roles) may have moved the very state
  // this verdict was computed under.
  if (fillable && (decision.allowed || cache_negative_ok_) &&
      CacheableVerdict(decision) && CacheStamp(session_sym) == stamp) {
    decision_cache_.Fill(key, stamp,
                         DecisionCache::Verdict{
                             decision.allowed, decision.rule == kCaRuleName},
                         FastCacheStamp());
    cache_fills_counter_->Inc();
    cache_entries_gauge_->Set(static_cast<int64_t>(decision_cache_.size()));
  }
  return decision;
}

Decision AuthorizationEngine::AssignUser(const UserName& user,
                                         const RoleName& role) {
  return Dispatch(events_.assign_user,
                  {{keys_.user, Value(symbols_.Intern(user))},
                   {keys_.role, Value(symbols_.Intern(role))}});
}

Decision AuthorizationEngine::DeassignUser(const UserName& user,
                                           const RoleName& role) {
  return Dispatch(events_.deassign_user,
                  {{keys_.user, Value(symbols_.Intern(user))},
                   {keys_.role, Value(symbols_.Intern(role))}});
}

Decision AuthorizationEngine::EnableRole(const RoleName& role) {
  return Dispatch(events_.enable_role,
                  {{keys_.role, Value(symbols_.Intern(role))}});
}

Decision AuthorizationEngine::DisableRole(const RoleName& role) {
  return Dispatch(events_.disable_role,
                  {{keys_.role, Value(symbols_.Intern(role))}});
}

void AuthorizationEngine::AdvanceTo(Time t) {
  detector_.AdvanceTo(t, clock_);
  // Timer-driven firings (periodic enable/disable, duration expiry) mutate
  // role state without passing through Dispatch.
  PublishFastPathState();
}

void AuthorizationEngine::SetContext(const std::string& key,
                                     const std::string& value) {
  context_[key] = value;
  // Context moves can flip CTX-rule verdict paths that never touch a
  // session or role generation; a full epoch bump is the safe blanket.
  BumpDecisionCacheEpoch();
  (void)detector_.RaiseInterned(
      events_.context_changed,
      {{keys_.context_key, Value(symbols_.Intern(key))},
       {keys_.context_value, Value(symbols_.Intern(value))}});
  // Context moves never produce a Decision, but the audit trail (and the
  // replay tool reconstructing this engine's inputs from it) must see them:
  // record a synthetic always-allowed entry, key/value riding in the
  // op/object slots.
  if (decision_log_.capacity() > 0) {
    DecisionRecord record;
    record.when = Now();
    record.operation = detector_.name(events_.context_changed);
    record.decision.Allow("");
    record.wall_us = WallTimeMicros();
    record.op = key;
    record.object = value;
    decision_log_.Push(std::move(record));
  }
  // The contextChanged cascade may itself mutate state after the epoch
  // bump above already published; re-publish at the tail.
  PublishFastPathState();
}

const std::string& AuthorizationEngine::ContextValue(
    const std::string& key) const {
  static const std::string* kEmpty = new std::string();
  auto it = context_.find(key);
  return it == context_.end() ? *kEmpty : it->second;
}

bool AuthorizationEngine::ContextSatisfied(
    const std::map<std::string, std::string>& required) const {
  for (const auto& [key, value] : required) {
    auto it = context_.find(key);
    if (it == context_.end() || it->second != value) return false;
  }
  return true;
}

Status AuthorizationEngine::ForceDeactivate(const UserName& user,
                                            const SessionId& session,
                                            const RoleName& role) {
  SENTINEL_RETURN_IF_ERROR(rbac_.db().DropSessionRole(session, role));
  const Value user_v(symbols_.Intern(user));
  const Value session_v(symbols_.Intern(session));
  const Value role_v(symbols_.Intern(role));
  CancelDurationTimers({{keys_.session, session_v}, {keys_.role, role_v}});
  return detector_.RaiseInterned(events_.session_role_dropped,
                                 {{keys_.user, user_v},
                                  {keys_.session, session_v},
                                  {keys_.role, role_v}});
}

int AuthorizationEngine::DeactivateAllInstances(const RoleName& role) {
  int count = 0;
  for (const SessionId& session : rbac_.db().SessionIds()) {
    auto info = rbac_.db().GetSession(session);
    if (!info.ok()) continue;
    if ((*info)->active_roles.count(role) > 0) {
      const UserName user = (*info)->user;
      if (ForceDeactivate(user, session, role).ok()) ++count;
    }
  }
  return count;
}

int AuthorizationEngine::CountUserActiveRoles(const UserName& user) const {
  int count = 0;
  for (const SessionId& session : rbac_.db().UserSessions(user)) {
    auto info = rbac_.db().GetSession(session);
    if (info.ok()) count += static_cast<int>((*info)->active_roles.size());
  }
  return count;
}

bool AuthorizationEngine::TsodGuardedNow(const RoleName& role,
                                         TimeSodKind kind) const {
  const Time now = Now();
  for (const TimeSod& constraint : policy_->time_sods()) {
    if (constraint.kind != kind) continue;
    if (constraint.roles.count(role) == 0) continue;
    if (constraint.period.Contains(now)) return true;
  }
  return false;
}

bool AuthorizationEngine::IsCfdTrigger(const RoleName& role) const {
  for (const CfdPair& pair : policy_->cfd_pairs()) {
    if (pair.trigger == role) return true;
  }
  return false;
}

bool AuthorizationEngine::DisableTsodOk(const RoleName& role) const {
  const Time now = Now();
  for (const TimeSod& constraint : policy_->time_sods()) {
    if (constraint.kind != TimeSodKind::kDisabling) continue;
    if (constraint.roles.count(role) == 0) continue;
    if (!constraint.period.Contains(now)) continue;
    bool counter_enabled = false;
    for (const RoleName& other : constraint.roles) {
      if (other != role && role_state_.IsEnabled(other)) {
        counter_enabled = true;
        break;
      }
    }
    if (!counter_enabled) return false;
  }
  return true;
}

bool AuthorizationEngine::EnableTsodOk(const RoleName& role) const {
  const Time now = Now();
  for (const TimeSod& constraint : policy_->time_sods()) {
    if (constraint.kind != TimeSodKind::kEnabling) continue;
    if (constraint.roles.count(role) == 0) continue;
    if (!constraint.period.Contains(now)) continue;
    bool counter_disabled = false;
    for (const RoleName& other : constraint.roles) {
      if (other != role && !role_state_.IsEnabled(other)) {
        counter_disabled = true;
        break;
      }
    }
    if (!counter_disabled) return false;
  }
  return true;
}

void AuthorizationEngine::RegisterDurationEvent(EventId plus_event) {
  duration_events_.push_back(plus_event);
}

void AuthorizationEngine::CancelDurationTimers(const FlatParamMap& match) {
  for (EventId event : duration_events_) {
    if (detector_.IsDeactivated(event)) continue;
    (void)detector_.CancelPendingPlusInterned(event, match);
  }
}

}  // namespace sentinel
