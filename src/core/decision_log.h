#ifndef SENTINELPP_CORE_DECISION_LOG_H_
#define SENTINELPP_CORE_DECISION_LOG_H_

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "common/value.h"
#include "rules/decision.h"
#include "telemetry/metrics.h"

namespace sentinel {

/// One entry of the engine's decision audit trail.
///
/// Beyond the verdict, a record carries everything the audit exporter's
/// stable schema needs: the wall-clock capture instant (so durable streams
/// correlate with external logs even though the engine runs on simulated
/// time), and the request's attribution — who asked for what — resolved to
/// strings at capture so the record outlives any symbol table.
struct DecisionRecord {
  Time when = 0;
  /// The request event's name, e.g. "rbac.addActiveRole".
  std::string operation;
  Decision decision;
  /// Per-log monotonic sequence number, assigned by DecisionLog::Push.
  /// Consumers order and dedupe by it; gaps mean records were evicted.
  uint64_t seq = 0;
  /// Wall-clock capture time, microseconds since the Unix epoch (distinct
  /// from `when`, which is the engine's simulated clock).
  int64_t wall_us = 0;
  /// Request attribution, empty when the event does not carry the param.
  /// For rbac.contextChanged, `op` holds the context key and `object` the
  /// context value (the closest request-shaped slots a context move has).
  std::string user;
  std::string session;
  std::string role;
  std::string op;
  std::string object;
  std::string purpose;
  /// Sampled dispatch latency in microseconds; 0 when this dispatch was not
  /// one of the engine's latency samples (see set_telemetry_sampling).
  int64_t latency_us = 0;
};

/// \brief Fixed-size ring buffer over the most recent DecisionRecords.
///
/// Under sustained traffic the audit trail must stay O(capacity): once full,
/// each Push overwrites the oldest record in place (no allocation, no
/// deque-block churn) and bumps the overflow counter so administrators can
/// tell how much history was shed. Indexing and iteration are oldest-first,
/// mirroring the deque this replaces; capacity 0 disables recording
/// entirely (every Push counts as overflow).
class DecisionLog {
 public:
  explicit DecisionLog(size_t capacity = 256) : capacity_(capacity) {}

  /// Appends a record, evicting the oldest when full. Assigns the record's
  /// sequence number; capacity 0 disables recording (no sequence is
  /// consumed, so a drain cursor sees a disabled log as simply empty).
  void Push(DecisionRecord record) {
    if (capacity_ == 0) {
      BumpOverflow();
      return;
    }
    record.seq = next_seq_++;
    if (buffer_.size() < capacity_) {
      buffer_.push_back(std::move(record));
      return;
    }
    buffer_[head_] = std::move(record);
    head_ = (head_ + 1) % capacity_;
    BumpOverflow();
  }

  /// \brief Ordered incremental consumption for the audit exporter.
  ///
  /// Invokes `fn` on every retained record with seq >= *cursor, oldest
  /// first, then advances *cursor past the newest. Only the undrained tail
  /// is visited — a drain that finds nothing new costs one comparison, not
  /// a copy of the ring. Returns the number of records that were evicted
  /// before they could be drained (the seq gap between the cursor and the
  /// oldest retained record); the caller accounts those as losses.
  template <typename Fn>
  uint64_t DrainInto(uint64_t* cursor, Fn&& fn) const {
    if (empty() || *cursor >= next_seq_) return 0;
    uint64_t missed = 0;
    const uint64_t oldest = front().seq;
    if (*cursor < oldest) {
      missed = oldest - *cursor;
      *cursor = oldest;
    }
    for (size_t i = static_cast<size_t>(*cursor - oldest); i < size(); ++i) {
      fn((*this)[i]);
    }
    *cursor = back().seq + 1;
    return missed;
  }

  /// Sequence the next pushed record will receive; a cursor equal to this
  /// value has drained everything.
  uint64_t next_seq() const { return next_seq_; }

  /// Resizes the trail; when shrinking, the oldest surplus records are
  /// dropped (counted as overflow).
  void set_capacity(size_t capacity) {
    std::vector<DecisionRecord> kept;
    const size_t keep = capacity < size() ? capacity : size();
    BumpOverflow(size() - keep);
    kept.reserve(keep);
    for (size_t i = size() - keep; i < size(); ++i) {
      kept.push_back(std::move((*this)[i]));
    }
    buffer_ = std::move(kept);
    head_ = 0;
    capacity_ = capacity;
  }

  size_t size() const { return buffer_.size(); }
  bool empty() const { return buffer_.empty(); }
  size_t capacity() const { return capacity_; }
  /// Number of records dropped (evicted or rejected) so far.
  uint64_t overflow() const { return overflow_; }

  /// Mirrors the overflow count into a registry counter so it shows up in
  /// RenderMetrics alongside the other per-shard series (the engine binds
  /// its `decision_log_overflow_total` here at construction). Single-writer,
  /// like the log itself. Not owned.
  void set_overflow_counter(telemetry::Counter* counter) {
    overflow_counter_ = counter;
    if (counter != nullptr && overflow_ > counter->value()) {
      counter->Inc(overflow_ - counter->value());
    }
  }

  /// Oldest-first access: [0] is the oldest retained record.
  const DecisionRecord& operator[](size_t i) const {
    return buffer_[(head_ + i) % buffer_.size()];
  }
  DecisionRecord& operator[](size_t i) {
    return buffer_[(head_ + i) % buffer_.size()];
  }
  const DecisionRecord& front() const { return (*this)[0]; }
  const DecisionRecord& back() const { return (*this)[size() - 1]; }

  /// Random-access const iterator in logical (oldest-first) order.
  class const_iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = DecisionRecord;
    using difference_type = ptrdiff_t;
    using pointer = const DecisionRecord*;
    using reference = const DecisionRecord&;

    const_iterator() = default;
    const_iterator(const DecisionLog* log, size_t pos)
        : log_(log), pos_(pos) {}

    reference operator*() const { return (*log_)[pos_]; }
    pointer operator->() const { return &(*log_)[pos_]; }
    reference operator[](difference_type n) const { return (*log_)[pos_ + n]; }

    const_iterator& operator++() { ++pos_; return *this; }
    const_iterator operator++(int) { auto c = *this; ++pos_; return c; }
    const_iterator& operator--() { --pos_; return *this; }
    const_iterator operator--(int) { auto c = *this; --pos_; return c; }
    const_iterator& operator+=(difference_type n) { pos_ += n; return *this; }
    const_iterator& operator-=(difference_type n) { pos_ -= n; return *this; }
    friend const_iterator operator+(const_iterator it, difference_type n) {
      return it += n;
    }
    friend const_iterator operator-(const_iterator it, difference_type n) {
      return it -= n;
    }
    friend difference_type operator-(const_iterator a, const_iterator b) {
      return static_cast<difference_type>(a.pos_) -
             static_cast<difference_type>(b.pos_);
    }
    friend bool operator==(const_iterator a, const_iterator b) {
      return a.pos_ == b.pos_;
    }
    friend bool operator!=(const_iterator a, const_iterator b) {
      return a.pos_ != b.pos_;
    }
    friend bool operator<(const_iterator a, const_iterator b) {
      return a.pos_ < b.pos_;
    }

   private:
    const DecisionLog* log_ = nullptr;
    size_t pos_ = 0;
  };
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size()); }
  const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

 private:
  void BumpOverflow(uint64_t n = 1) {
    overflow_ += n;
    if (overflow_counter_ != nullptr) overflow_counter_->Inc(n);
  }

  std::vector<DecisionRecord> buffer_;
  size_t head_ = 0;  // Index of the oldest record once the buffer is full.
  size_t capacity_;
  uint64_t overflow_ = 0;
  uint64_t next_seq_ = 0;
  telemetry::Counter* overflow_counter_ = nullptr;  // Not owned.
};

}  // namespace sentinel

#endif  // SENTINELPP_CORE_DECISION_LOG_H_
