#ifndef SENTINELPP_CORE_DECISION_LOG_H_
#define SENTINELPP_CORE_DECISION_LOG_H_

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "common/value.h"
#include "rules/decision.h"

namespace sentinel {

/// One entry of the engine's decision audit trail.
struct DecisionRecord {
  Time when = 0;
  /// The request event's name, e.g. "rbac.addActiveRole".
  std::string operation;
  Decision decision;
};

/// \brief Fixed-size ring buffer over the most recent DecisionRecords.
///
/// Under sustained traffic the audit trail must stay O(capacity): once full,
/// each Push overwrites the oldest record in place (no allocation, no
/// deque-block churn) and bumps the overflow counter so administrators can
/// tell how much history was shed. Indexing and iteration are oldest-first,
/// mirroring the deque this replaces; capacity 0 disables recording
/// entirely (every Push counts as overflow).
class DecisionLog {
 public:
  explicit DecisionLog(size_t capacity = 256) : capacity_(capacity) {}

  /// Appends a record, evicting the oldest when full.
  void Push(DecisionRecord record) {
    if (capacity_ == 0) {
      ++overflow_;
      return;
    }
    if (buffer_.size() < capacity_) {
      buffer_.push_back(std::move(record));
      return;
    }
    buffer_[head_] = std::move(record);
    head_ = (head_ + 1) % capacity_;
    ++overflow_;
  }

  /// Resizes the trail; when shrinking, the oldest surplus records are
  /// dropped (counted as overflow).
  void set_capacity(size_t capacity) {
    std::vector<DecisionRecord> kept;
    const size_t keep = capacity < size() ? capacity : size();
    overflow_ += size() - keep;
    kept.reserve(keep);
    for (size_t i = size() - keep; i < size(); ++i) {
      kept.push_back(std::move((*this)[i]));
    }
    buffer_ = std::move(kept);
    head_ = 0;
    capacity_ = capacity;
  }

  size_t size() const { return buffer_.size(); }
  bool empty() const { return buffer_.empty(); }
  size_t capacity() const { return capacity_; }
  /// Number of records dropped (evicted or rejected) so far.
  uint64_t overflow() const { return overflow_; }

  /// Oldest-first access: [0] is the oldest retained record.
  const DecisionRecord& operator[](size_t i) const {
    return buffer_[(head_ + i) % buffer_.size()];
  }
  DecisionRecord& operator[](size_t i) {
    return buffer_[(head_ + i) % buffer_.size()];
  }
  const DecisionRecord& front() const { return (*this)[0]; }
  const DecisionRecord& back() const { return (*this)[size() - 1]; }

  /// Random-access const iterator in logical (oldest-first) order.
  class const_iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = DecisionRecord;
    using difference_type = ptrdiff_t;
    using pointer = const DecisionRecord*;
    using reference = const DecisionRecord&;

    const_iterator() = default;
    const_iterator(const DecisionLog* log, size_t pos)
        : log_(log), pos_(pos) {}

    reference operator*() const { return (*log_)[pos_]; }
    pointer operator->() const { return &(*log_)[pos_]; }
    reference operator[](difference_type n) const { return (*log_)[pos_ + n]; }

    const_iterator& operator++() { ++pos_; return *this; }
    const_iterator operator++(int) { auto c = *this; ++pos_; return c; }
    const_iterator& operator--() { --pos_; return *this; }
    const_iterator operator--(int) { auto c = *this; --pos_; return c; }
    const_iterator& operator+=(difference_type n) { pos_ += n; return *this; }
    const_iterator& operator-=(difference_type n) { pos_ -= n; return *this; }
    friend const_iterator operator+(const_iterator it, difference_type n) {
      return it += n;
    }
    friend const_iterator operator-(const_iterator it, difference_type n) {
      return it -= n;
    }
    friend difference_type operator-(const_iterator a, const_iterator b) {
      return static_cast<difference_type>(a.pos_) -
             static_cast<difference_type>(b.pos_);
    }
    friend bool operator==(const_iterator a, const_iterator b) {
      return a.pos_ == b.pos_;
    }
    friend bool operator!=(const_iterator a, const_iterator b) {
      return a.pos_ != b.pos_;
    }
    friend bool operator<(const_iterator a, const_iterator b) {
      return a.pos_ < b.pos_;
    }

   private:
    const DecisionLog* log_ = nullptr;
    size_t pos_ = 0;
  };
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size()); }
  const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

 private:
  std::vector<DecisionRecord> buffer_;
  size_t head_ = 0;  // Index of the oldest record once the buffer is full.
  size_t capacity_;
  uint64_t overflow_ = 0;
};

}  // namespace sentinel

#endif  // SENTINELPP_CORE_DECISION_LOG_H_
