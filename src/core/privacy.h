#ifndef SENTINELPP_CORE_PRIVACY_H_
#define SENTINELPP_CORE_PRIVACY_H_

#include <map>
#include <set>
#include <string>

#include "common/status.h"
#include "rbac/types.h"

namespace sentinel {

/// A business purpose name (privacy-aware RBAC, He 2003, cited as [19]).
using PurposeName = std::string;

/// \brief Purposes, the purpose hierarchy, and per-object purpose policies.
///
/// Privacy-aware RBAC adds two elements to the ER model: "purpose" and
/// "object-policy". An access request carries the purpose for which the
/// operation executes; an object's policy names the purposes it may be
/// used for. A request purpose satisfies a policy purpose when it equals
/// it or is one of its descendants (a more specific business purpose).
class PrivacyStore {
 public:
  PrivacyStore() = default;

  /// Registers a purpose, optionally under a parent (general -> specific).
  Status AddPurpose(const PurposeName& purpose,
                    const PurposeName& parent = "");
  Status DeletePurpose(const PurposeName& purpose);
  bool HasPurpose(const PurposeName& purpose) const {
    return parents_.count(purpose) > 0;
  }

  /// Sets the purposes object `obj` may be accessed for (replaces any
  /// previous policy). An empty set removes the policy.
  Status SetObjectPolicy(const ObjectName& obj, std::set<PurposeName> allowed);

  bool ObjectHasPolicy(const ObjectName& obj) const {
    return object_policies_.count(obj) > 0;
  }

  /// True iff `purpose` equals `ancestor` or descends from it.
  bool PurposeEntails(const PurposeName& purpose,
                      const PurposeName& ancestor) const;

  /// Privacy verdict for accessing `obj` for `purpose`:
  ///  - objects without a policy are unconstrained (always permitted);
  ///  - otherwise the purpose must be registered and entail one of the
  ///    allowed purposes; the empty purpose never satisfies a policy.
  bool AccessPermitted(const ObjectName& obj,
                       const PurposeName& purpose) const;

  const std::set<PurposeName>* ObjectPolicy(const ObjectName& obj) const;
  size_t purpose_count() const { return parents_.size(); }

 private:
  /// purpose -> parent ("" for roots).
  std::map<PurposeName, PurposeName> parents_;
  std::map<ObjectName, std::set<PurposeName>> object_policies_;
};

}  // namespace sentinel

#endif  // SENTINELPP_CORE_PRIVACY_H_
