#include "audit/record.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace sentinel {
namespace audit {

AuditRecord FromDecisionRecord(const DecisionRecord& record, int shard,
                               uint64_t epoch) {
  AuditRecord out;
  out.seq = record.seq;
  out.shard = shard;
  out.epoch = epoch;
  out.wall_us = record.wall_us;
  out.sim_us = record.when;
  out.kind = record.operation;
  out.user = record.user;
  out.session = record.session;
  out.role = record.role;
  out.op = record.op;
  out.object = record.object;
  out.purpose = record.purpose;
  out.allowed = record.decision.allowed;
  out.outcome = 0;
  out.rule = record.decision.rule;
  out.reason = record.decision.reason;
  out.failed_condition = record.decision.failed_condition;
  out.latency_us = record.latency_us;
  return out;
}

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

namespace {

void AppendKey(std::string_view key, std::string* out) {
  if (out->back() != '{') out->push_back(',');
  AppendJsonString(key, out);
  out->push_back(':');
}

void AppendInt(std::string_view key, int64_t value, std::string* out) {
  AppendKey(key, out);
  out->append(std::to_string(value));
}

void AppendUint(std::string_view key, uint64_t value, std::string* out) {
  AppendKey(key, out);
  out->append(std::to_string(value));
}

void AppendStringIf(std::string_view key, const std::string& value,
                    std::string* out) {
  if (value.empty()) return;
  AppendKey(key, out);
  AppendJsonString(value, out);
}

}  // namespace

void AppendJsonLine(const AuditRecord& record, std::string* out) {
  out->push_back('{');
  AppendInt("v", record.v, out);
  AppendUint("seq", record.seq, out);
  AppendInt("shard", record.shard, out);
  AppendUint("epoch", record.epoch, out);
  AppendInt("wall_us", record.wall_us, out);
  AppendInt("sim_us", record.sim_us, out);
  AppendKey("kind", out);
  AppendJsonString(record.kind, out);
  AppendStringIf("user", record.user, out);
  AppendStringIf("session", record.session, out);
  AppendStringIf("role", record.role, out);
  AppendStringIf("op", record.op, out);
  AppendStringIf("obj", record.object, out);
  AppendStringIf("purpose", record.purpose, out);
  AppendKey("allowed", out);
  out->append(record.allowed ? "true" : "false");
  if (record.outcome != 0) AppendInt("outcome", record.outcome, out);
  AppendStringIf("rule", record.rule, out);
  AppendStringIf("reason", record.reason, out);
  AppendStringIf("failed_condition", record.failed_condition, out);
  if (record.latency_us != 0) AppendInt("latency_us", record.latency_us, out);
  out->append("}\n");
}

namespace {

// Hand-rolled flat-object scanner: the schema is one level deep with
// string / integer / boolean values only, so a full JSON library would be
// dead weight — but escapes (including \uXXXX) must decode exactly, since
// policy names are user-controlled.
class LineParser {
 public:
  LineParser(std::string_view line, std::string* error)
      : p_(line.data()), end_(line.data() + line.size()), error_(error) {}

  bool Parse(AuditRecord* out) {
    SkipSpace();
    if (!Consume('{')) return Fail("expected '{'");
    SkipSpace();
    if (Consume('}')) return AtEnd();
    while (true) {
      std::string key;
      SkipSpace();
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':'");
      SkipSpace();
      if (!ParseValue(key, out)) return false;
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return AtEnd();
      return Fail("expected ',' or '}'");
    }
  }

 private:
  bool AtEnd() {
    SkipSpace();
    if (p_ != end_) return Fail("trailing content after object");
    return true;
  }

  bool Fail(const char* what) {
    if (error_ != nullptr) *error_ = what;
    return false;
  }

  void SkipSpace() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool Consume(char c) {
    if (p_ == end_ || *p_ != c) return false;
    ++p_;
    return true;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseHex4(uint32_t* out) {
    if (end_ - p_ < 4) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = *p_++;
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    *out = value;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (true) {
      if (p_ == end_) return Fail("unterminated string");
      const char c = *p_++;
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p_ == end_) return Fail("truncated escape");
      const char e = *p_++;
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          if (!ParseHex4(&cp)) return false;
          // Surrogate pair: a high surrogate must be chased by \uDC00..DFFF.
          if (cp >= 0xD800 && cp <= 0xDBFF && end_ - p_ >= 6 &&
              p_[0] == '\\' && p_[1] == 'u') {
            const char* mark = p_;
            p_ += 2;
            uint32_t low = 0;
            if (!ParseHex4(&low)) return false;
            if (low >= 0xDC00 && low <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else {
              p_ = mark;  // Not a pair; emit the lone surrogate as-is.
            }
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
  }

  bool ParseValue(const std::string& key, AuditRecord* out) {
    if (p_ == end_) return Fail("missing value");
    if (*p_ == '"') {
      std::string value;
      if (!ParseString(&value)) return false;
      if (key == "kind") out->kind = std::move(value);
      else if (key == "user") out->user = std::move(value);
      else if (key == "session") out->session = std::move(value);
      else if (key == "role") out->role = std::move(value);
      else if (key == "op") out->op = std::move(value);
      else if (key == "obj") out->object = std::move(value);
      else if (key == "purpose") out->purpose = std::move(value);
      else if (key == "rule") out->rule = std::move(value);
      else if (key == "reason") out->reason = std::move(value);
      else if (key == "failed_condition") out->failed_condition = std::move(value);
      // Unknown string key: ignored (add-only schema).
      return true;
    }
    if (*p_ == 't' || *p_ == 'f') {
      const bool value = *p_ == 't';
      const std::string_view want = value ? "true" : "false";
      if (static_cast<size_t>(end_ - p_) < want.size() ||
          std::string_view(p_, want.size()) != want) {
        return Fail("bad literal");
      }
      p_ += want.size();
      if (key == "allowed") out->allowed = value;
      return true;
    }
    // Number (integers only in this schema; tolerate a sign).
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    if (p_ == start || (p_ - start == 1 && !std::isdigit(
                            static_cast<unsigned char>(*start)))) {
      return Fail("bad value");
    }
    const int64_t value = std::strtoll(std::string(start, p_).c_str(),
                                       nullptr, 10);
    if (key == "v") out->v = static_cast<int>(value);
    else if (key == "seq") out->seq = static_cast<uint64_t>(value);
    else if (key == "shard") out->shard = static_cast<int>(value);
    else if (key == "epoch") out->epoch = static_cast<uint64_t>(value);
    else if (key == "wall_us") out->wall_us = value;
    else if (key == "sim_us") out->sim_us = value;
    else if (key == "outcome") out->outcome = static_cast<int>(value);
    else if (key == "latency_us") out->latency_us = value;
    // Unknown numeric key: ignored (add-only schema).
    return true;
  }

  const char* p_;
  const char* end_;
  std::string* error_;
};

}  // namespace

bool ParseJsonLine(std::string_view line, AuditRecord* out,
                   std::string* error) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  *out = AuditRecord();
  return LineParser(line, error).Parse(out);
}

}  // namespace audit
}  // namespace sentinel
