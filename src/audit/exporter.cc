#include "audit/exporter.h"

#include <chrono>
#include <utility>

namespace sentinel {
namespace audit {

AuditExporter::AuditExporter(Options options) : options_(std::move(options)) {
  pending_.reserve(options_.queue_capacity < 4096 ? options_.queue_capacity
                                                  : 4096);
  writer_ = std::thread([this] { WriterLoop(); });
}

AuditExporter::~AuditExporter() { Close(); }

void AuditExporter::Offer(AuditRecord record) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!closing_ && pending_.size() < options_.queue_capacity) {
      // Wake the writer only on the empty->non-empty transition (or when a
      // large backlog says "stop lingering"); it coalesces the rest. A
      // notify per record would context-switch the writer per decision.
      const bool wake = pending_.empty() || pending_.size() + 1 >= kCoalesceBatch;
      pending_.push_back(std::move(record));
      ++enqueued_;
      if (wake) wake_writer_.notify_one();
      return;
    }
  }
  drops_.fetch_add(1, std::memory_order_relaxed);
}

void AuditExporter::AddUpstreamLoss(uint64_t n) {
  if (n > 0) drops_.fetch_add(n, std::memory_order_relaxed);
}

void AuditExporter::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t target = enqueued_;
  flush_requested_ = true;  // Cuts the writer's coalescing linger short.
  wake_writer_.notify_one();
  flush_done_.wait(lock, [this, target] { return consumed_ >= target; });
}

void AuditExporter::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closing_) {
      // Already closed (or closing): just make sure the thread is joined.
    }
    closing_ = true;
    wake_writer_.notify_one();
  }
  if (writer_.joinable()) writer_.join();
  if (out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
}

bool AuditExporter::failed() const {
  return failed_.load(std::memory_order_relaxed);
}

AuditExporter::Counters AuditExporter::counters() const {
  Counters c;
  c.records = records_.load(std::memory_order_relaxed);
  c.drops = drops_.load(std::memory_order_relaxed);
  c.bytes = bytes_.load(std::memory_order_relaxed);
  return c;
}

void AuditExporter::InjectWriterStallForTest(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  stall_hook_ = std::move(hook);
}

void AuditExporter::OpenOutput() {
  out_ = std::fopen(options_.path.c_str(), "ab");
  if (out_ == nullptr) {
    failed_.store(true, std::memory_order_relaxed);
    current_file_bytes_ = 0;
    return;
  }
  // Appending to a pre-existing file (restart): resume its size so the
  // rotation threshold keeps meaning "bytes in this file".
  std::fseek(out_, 0, SEEK_END);
  const long size = std::ftell(out_);
  current_file_bytes_ = size > 0 ? static_cast<uint64_t>(size) : 0;
}

void AuditExporter::RotateIfNeeded() {
  if (out_ == nullptr || options_.rotate_bytes == 0 ||
      current_file_bytes_ <= options_.rotate_bytes) {
    return;
  }
  std::fclose(out_);
  out_ = nullptr;
  const std::string rotated =
      options_.path + "." + std::to_string(++rotation_count_);
  if (std::rename(options_.path.c_str(), rotated.c_str()) != 0) {
    failed_.store(true, std::memory_order_relaxed);
  }
  OpenOutput();
}

void AuditExporter::WriterLoop() {
  OpenOutput();
  std::vector<AuditRecord> batch;
  while (true) {
    std::function<void()> stall;
    bool last_round = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_writer_.wait(lock,
                        [this] { return closing_ || !pending_.empty(); });
      // Linger briefly so one wakeup drains many records: serialization,
      // fwrite, and fflush then amortize across the whole batch instead of
      // costing a syscall round-trip per decision. Close and Flush (and a
      // backlog of kCoalesceBatch) cut the linger short.
      if (!closing_ && !flush_requested_ &&
          pending_.size() < kCoalesceBatch) {
        wake_writer_.wait_for(lock, std::chrono::milliseconds(1), [this] {
          return closing_ || flush_requested_ ||
                 pending_.size() >= kCoalesceBatch;
        });
      }
      flush_requested_ = false;
      // O(1) hand-off: producers never wait behind serialization or I/O.
      batch.swap(pending_);
      stall = stall_hook_;
      last_round = closing_ && pending_.empty() && batch.empty();
    }
    if (last_round) {
      if (out_ != nullptr) std::fflush(out_);
      std::lock_guard<std::mutex> lock(mu_);
      flush_done_.notify_all();
      return;
    }
    if (stall) stall();
    scratch_.clear();
    for (const AuditRecord& record : batch) {
      AppendJsonLine(record, &scratch_);
    }
    bool wrote = false;
    if (out_ != nullptr && !scratch_.empty()) {
      wrote = std::fwrite(scratch_.data(), 1, scratch_.size(), out_) ==
              scratch_.size();
      if (!wrote) failed_.store(true, std::memory_order_relaxed);
      std::fflush(out_);
    }
    if (wrote) {
      records_.fetch_add(batch.size(), std::memory_order_relaxed);
      bytes_.fetch_add(scratch_.size(), std::memory_order_relaxed);
      current_file_bytes_ += scratch_.size();
      RotateIfNeeded();
    } else if (!batch.empty()) {
      // Failed output: the records are gone; keep the books balanced.
      drops_.fetch_add(batch.size(), std::memory_order_relaxed);
    }
    const uint64_t done = batch.size();
    batch.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      consumed_ += done;
      flush_done_.notify_all();
    }
  }
}

}  // namespace audit
}  // namespace sentinel
