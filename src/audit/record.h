#ifndef SENTINELPP_AUDIT_RECORD_H_
#define SENTINELPP_AUDIT_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/decision_log.h"

namespace sentinel {
namespace audit {

/// \brief One line of the durable audit stream — the exporter's stable,
/// add-only schema (version field `v`, currently 1).
///
/// "Add-only" is the compatibility contract: a future version may introduce
/// new keys but never rename, retype or remove existing ones, and the parser
/// ignores keys it does not know — so an old reader survives a new stream
/// and a new reader survives an old one. Keep that in mind before touching
/// any field here.
///
/// Records carry both clocks: `sim_us` is the engine's simulated time (what
/// temporal rules evaluated against — replay re-warps to it), `wall_us` the
/// wall-clock capture instant (what external log correlation joins on).
struct AuditRecord {
  int v = 1;
  /// Per-shard DecisionLog sequence. 0 marks a service-level record that
  /// never reached an engine (overload shed, deadline expiry, fast-path
  /// answer) — such records have no total order against the shard stream
  /// and are skipped by replay.
  uint64_t seq = 0;
  int shard = 0;
  /// Service admin epoch at drain time: which generation of the policy the
  /// surrounding records were decided under. Drain-time, not decision-time,
  /// so records raced by an in-flight admin broadcast may carry the new
  /// epoch — a correlation hint, not a proof.
  uint64_t epoch = 0;
  int64_t wall_us = 0;
  int64_t sim_us = 0;
  /// The request event's name ("rbac.checkAccess", "rbac.addActiveRole",
  /// ...), or a service-level marker ("service.overload", "service.fastpath").
  std::string kind;
  // Request attribution; empty fields are omitted from the line.
  std::string user;
  std::string session;
  std::string role;
  std::string op;
  std::string object;
  std::string purpose;
  bool allowed = false;
  /// Mirrors AccessOutcome: 0 decided, 1 overloaded, 2 shutdown.
  int outcome = 0;
  std::string rule;
  std::string reason;
  std::string failed_condition;
  /// Sampled dispatch latency (us); 0 when this request was unsampled.
  int64_t latency_us = 0;
};

/// Builds the exportable record for one engine decision. `epoch` is the
/// service admin epoch at drain time.
AuditRecord FromDecisionRecord(const DecisionRecord& record, int shard,
                               uint64_t epoch);

/// Serializes `record` as one JSON object and appends it plus '\n' to *out.
/// Empty string fields and a zero latency are omitted; key order is fixed,
/// so identical records serialize identically (replay corpora diff cleanly).
void AppendJsonLine(const AuditRecord& record, std::string* out);

/// Parses one exported line (with or without the trailing newline) back into
/// *out. Unknown keys are ignored per the add-only contract; missing keys
/// keep their defaults. Returns false on malformed input, with a short
/// description in *error when non-null.
bool ParseJsonLine(std::string_view line, AuditRecord* out,
                   std::string* error = nullptr);

/// Appends the JSON string escape of `s` (including the surrounding quotes):
/// `"` `\` and control characters are escaped, all other bytes — UTF-8
/// included — pass through verbatim.
void AppendJsonString(std::string_view s, std::string* out);

}  // namespace audit
}  // namespace sentinel

#endif  // SENTINELPP_AUDIT_RECORD_H_
