#include "audit/replay.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <utility>

#include "common/clock.h"
#include "core/engine.h"

namespace sentinel {
namespace audit {

Result<std::vector<AuditRecord>> LoadCaptureFile(const std::string& path,
                                                 uint64_t* parse_errors) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open capture file: " + path);
  }
  std::vector<AuditRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    AuditRecord record;
    if (ParseJsonLine(line, &record)) {
      records.push_back(std::move(record));
    } else if (parse_errors != nullptr) {
      ++*parse_errors;
    }
  }
  return records;
}

namespace {

/// Re-executes one record through `engine` and returns the fresh verdict;
/// returns false when the kind is not replayable (caller counts a skip).
bool ReExecute(AuthorizationEngine& engine, const AuditRecord& r,
               Decision* out) {
  const std::string& kind = r.kind;
  if (kind == "rbac.checkAccess") {
    *out = engine.CheckAccess(r.session, r.op, r.object, r.purpose);
  } else if (kind == "rbac.createSession") {
    *out = engine.CreateSession(r.user, r.session);
  } else if (kind == "rbac.deleteSession") {
    *out = engine.DeleteSession(r.session);
  } else if (kind == "rbac.addActiveRole") {
    *out = engine.AddActiveRole(r.user, r.session, r.role);
  } else if (kind == "rbac.dropActiveRole") {
    *out = engine.DropActiveRole(r.user, r.session, r.role);
  } else if (kind == "rbac.assignUser") {
    *out = engine.AssignUser(r.user, r.role);
  } else if (kind == "rbac.deassignUser") {
    *out = engine.DeassignUser(r.user, r.role);
  } else if (kind == "rbac.enableRole") {
    *out = engine.EnableRole(r.role);
  } else if (kind == "rbac.disableRole") {
    *out = engine.DisableRole(r.role);
  } else if (kind == "rbac.contextChanged") {
    // State-bearing but verdict-free: apply for its effect on later
    // records, nothing to diff (the capture side logs a synthetic allow).
    engine.SetContext(r.op, r.object);
    return false;
  } else {
    return false;
  }
  return true;
}

const char* kDefaultDenyKey = "(default-deny)";

}  // namespace

Result<ReplayReport> ReplayCapture(const std::vector<AuditRecord>& records,
                                   const Policy& candidate,
                                   const ReplayOptions& options) {
  SENTINEL_RETURN_IF_ERROR(candidate.Validate());

  // Group into per-shard streams; within a shard the exporter preserved
  // drain order, but interleaved batches make the file order global-ish —
  // a stable sort by seq restores each shard's exact decision order.
  std::map<int, std::vector<const AuditRecord*>> by_shard;
  ReplayReport report;
  for (const AuditRecord& r : records) {
    if (r.seq == 0 && r.kind.rfind("service.", 0) == 0) {
      ++report.skipped;  // Never reached an engine; nothing to re-decide.
      continue;
    }
    by_shard[r.shard].push_back(&r);
  }

  for (auto& [shard, stream] : by_shard) {
    std::stable_sort(stream.begin(), stream.end(),
                     [](const AuditRecord* a, const AuditRecord* b) {
                       return a->seq < b->seq;
                     });
    // Each shard replays in its own fresh single-threaded world, exactly
    // like the capture-side shard thread it mirrors.
    SimulatedClock clock;
    auto engine = std::make_unique<AuthorizationEngine>(&clock);
    engine->set_decision_log_capacity(0);  // The replay *is* the audit.
    SENTINEL_RETURN_IF_ERROR(engine->LoadPolicy(candidate));
    for (const AuditRecord* r : stream) {
      // Time-warp first: temporal rules (PERIODIC windows, PLUS expiries)
      // must have fired exactly as far as they had at capture time.
      if (r->sim_us > engine->Now()) engine->AdvanceTo(r->sim_us);
      Decision fresh;
      if (!ReExecute(*engine, *r, &fresh)) {
        ++report.skipped;
        continue;
      }
      ++report.replayed;
      const bool flipped = fresh.allowed != r->allowed;
      const bool moved =
          !flipped && (fresh.rule != r->rule || fresh.reason != r->reason);
      if (flipped) {
        if (r->allowed) {
          ++report.allow_to_deny;
        } else {
          ++report.deny_to_allow;
        }
        const std::string& key =
            fresh.rule.empty() ? kDefaultDenyKey : fresh.rule;
        ++report.flips_by_rule[key];
      } else if (moved) {
        ++report.outcome_changes;
      }
      if ((flipped || (moved && options.include_outcome_changes)) &&
          report.diffs.size() < options.max_diff_details) {
        VerdictDiff diff;
        diff.recorded = *r;
        diff.new_allowed = fresh.allowed;
        diff.new_rule = fresh.rule;
        diff.new_reason = fresh.reason;
        report.diffs.push_back(std::move(diff));
      }
    }
  }
  return report;
}

std::string ReportToText(const ReplayReport& report) {
  std::string out;
  out += "replayed: " + std::to_string(report.replayed) + "\n";
  out += "skipped: " + std::to_string(report.skipped) + "\n";
  out += "allow_to_deny: " + std::to_string(report.allow_to_deny) + "\n";
  out += "deny_to_allow: " + std::to_string(report.deny_to_allow) + "\n";
  out += "outcome_changes: " + std::to_string(report.outcome_changes) + "\n";
  out += "verdict_diffs: " + std::to_string(report.flips()) + "\n";
  for (const auto& [rule, count] : report.flips_by_rule) {
    out += "  flips by " + rule + ": " + std::to_string(count) + "\n";
  }
  size_t shown = 0;
  for (const VerdictDiff& diff : report.diffs) {
    const AuditRecord& r = diff.recorded;
    out += "  [" + std::to_string(r.shard) + "/" + std::to_string(r.seq) +
           "] " + r.kind;
    if (!r.user.empty()) out += " user=" + r.user;
    if (!r.session.empty()) out += " session=" + r.session;
    if (!r.role.empty()) out += " role=" + r.role;
    if (!r.op.empty()) out += " op=" + r.op;
    if (!r.object.empty()) out += " obj=" + r.object;
    out += std::string(": ") + (r.allowed ? "allow" : "deny") + " -> " +
           (diff.new_allowed ? "allow" : "deny");
    if (!diff.new_rule.empty()) out += " by " + diff.new_rule;
    if (!diff.new_reason.empty()) out += " (" + diff.new_reason + ")";
    out += "\n";
    if (++shown >= 50) {
      out += "  ... " + std::to_string(report.diffs.size() - shown) +
             " more\n";
      break;
    }
  }
  return out;
}

std::string ReportToJson(const ReplayReport& report) {
  std::string out = "{";
  out += "\"replayed\":" + std::to_string(report.replayed);
  out += ",\"skipped\":" + std::to_string(report.skipped);
  out += ",\"allow_to_deny\":" + std::to_string(report.allow_to_deny);
  out += ",\"deny_to_allow\":" + std::to_string(report.deny_to_allow);
  out += ",\"outcome_changes\":" + std::to_string(report.outcome_changes);
  out += ",\"flips_by_rule\":{";
  bool first = true;
  for (const auto& [rule, count] : report.flips_by_rule) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(rule, &out);
    out += ":" + std::to_string(count);
  }
  out += "},\"diffs\":[";
  first = true;
  for (const VerdictDiff& diff : report.diffs) {
    if (!first) out += ",";
    first = false;
    out += "{\"shard\":" + std::to_string(diff.recorded.shard);
    out += ",\"seq\":" + std::to_string(diff.recorded.seq);
    out += ",\"kind\":";
    AppendJsonString(diff.recorded.kind, &out);
    out += ",\"was\":";
    out += diff.recorded.allowed ? "true" : "false";
    out += ",\"now\":";
    out += diff.new_allowed ? "true" : "false";
    out += ",\"rule\":";
    AppendJsonString(diff.new_rule, &out);
    out += ",\"reason\":";
    AppendJsonString(diff.new_reason, &out);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace audit
}  // namespace sentinel
