#ifndef SENTINELPP_AUDIT_REPLAY_H_
#define SENTINELPP_AUDIT_REPLAY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "audit/record.h"
#include "common/status.h"
#include "core/policy.h"

namespace sentinel {
namespace audit {

/// One verdict that changed between the capture and the candidate policy.
struct VerdictDiff {
  AuditRecord recorded;      // What production decided.
  bool new_allowed = false;  // What the candidate policy decides.
  std::string new_rule;
  std::string new_reason;
};

/// \brief Outcome of replaying a captured decision stream against a
/// candidate policy — the answer to "what breaks if I ship this change?".
struct ReplayReport {
  uint64_t replayed = 0;  // Records re-executed through an engine.
  uint64_t skipped = 0;   // seq==0 service records, context markers,
                          // unknown kinds (forward compat).
  uint64_t allow_to_deny = 0;
  uint64_t deny_to_allow = 0;
  /// Verdict kept its allow/deny but the deciding rule or denial reason
  /// moved — the "same answer, different law" class of change.
  uint64_t outcome_changes = 0;
  /// Flip counts keyed by the candidate policy's deciding rule (the rule
  /// that now denies what was allowed, or allows what was denied) —
  /// per-rule attribution for the diff summary. Unattributed fail-safe
  /// denials key as "(default-deny)".
  std::map<std::string, uint64_t> flips_by_rule;
  /// Every flip plus (optionally) every outcome change, in replay order.
  std::vector<VerdictDiff> diffs;

  uint64_t flips() const { return allow_to_deny + deny_to_allow; }
};

struct ReplayOptions {
  /// Record outcome_changes (rule/reason moved, verdict same) as diffs too.
  bool include_outcome_changes = true;
  /// Cap on retained VerdictDiff details (counters are always exact).
  size_t max_diff_details = 1000;
};

/// Loads a JSONL capture (as written by AuditExporter). Lines that fail to
/// parse are counted into *parse_errors (when non-null) and skipped; an
/// unreadable file is an error.
Result<std::vector<AuditRecord>> LoadCaptureFile(const std::string& path,
                                                 uint64_t* parse_errors);

/// \brief Re-executes `records` against `candidate` and diffs the verdicts.
///
/// Records are grouped by their originating shard and each shard's stream
/// replays, in sequence order, through a dedicated fresh engine — the same
/// single-threaded-per-shard world the capture came from. Before each
/// record, the engine's simulated clock is advanced to the record's sim
/// time, so PERIODIC windows, duration expiries and every other temporal
/// rule fire exactly as they did (or would have) at capture time.
///
/// seq==0 records (service-level overload/fast-path markers) have no place
/// in the ordered stream and are skipped, as are kinds this binary does not
/// know (a newer stream, per the add-only schema contract).
Result<ReplayReport> ReplayCapture(const std::vector<AuditRecord>& records,
                                   const Policy& candidate,
                                   const ReplayOptions& options = {});

/// Renders the report as a human-readable summary (stable format — the
/// check.sh replay stage greps it).
std::string ReportToText(const ReplayReport& report);

/// Renders the report as a single JSON object (machine consumption).
std::string ReportToJson(const ReplayReport& report);

}  // namespace audit
}  // namespace sentinel

#endif  // SENTINELPP_AUDIT_REPLAY_H_
