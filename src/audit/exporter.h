#ifndef SENTINELPP_AUDIT_EXPORTER_H_
#define SENTINELPP_AUDIT_EXPORTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "audit/record.h"

namespace sentinel {
namespace audit {

/// \brief Asynchronous JSON-lines audit writer.
///
/// One dedicated writer thread drains a bounded hand-off buffer that any
/// number of producer threads (the service's per-shard export taps) feed
/// through Offer. The contract the decision path depends on: **Offer never
/// blocks on I/O**. Producers and the writer share one mutex, but the writer
/// holds it only to swap the pending buffer for an empty one — O(1), never
/// while serializing or writing — so the worst an Offer can hit is that
/// swap. When the writer falls behind and the pending buffer reaches
/// capacity, new records are dropped and counted, never queued unboundedly
/// and never waited for: audit pressure degrades the audit stream, not the
/// authorization path.
///
/// Wakeups are coalesced: producers signal the writer only on the
/// empty->non-empty transition, and the writer lingers ~1ms before swapping
/// so one wakeup (and one fwrite/fflush) covers every record of the window.
/// Records are therefore durable within ~1ms of Offer in steady state;
/// Flush() and Close() cut the linger short and are exact.
///
/// Output is one JSON object per line (see record.h for the schema), rotated
/// by size: when the current file exceeds rotate_bytes after a batch, it is
/// renamed to `<path>.<n>` (n increasing, oldest = 1) and a fresh `<path>`
/// is opened — `<path>` is always the live tail. Close() (and the
/// destructor) flushes everything already offered before returning.
class AuditExporter {
 public:
  struct Options {
    /// Output file path; the live tail. Must be non-empty.
    std::string path;
    /// Rotate once the current file exceeds this many bytes (checked after
    /// each batch, so files overshoot by at most one batch). 0 disables.
    uint64_t rotate_bytes = 0;
    /// Max records buffered between producers and the writer; beyond it,
    /// Offer drops (counted). The default rides out ~100ms of a saturated
    /// service's decision rate.
    size_t queue_capacity = 65536;
  };

  explicit AuditExporter(Options options);
  ~AuditExporter();

  AuditExporter(const AuditExporter&) = delete;
  AuditExporter& operator=(const AuditExporter&) = delete;

  /// Hands one record to the writer. Thread-safe, never blocks on I/O;
  /// drops (and counts) when the buffer is full or the exporter is closed.
  void Offer(AuditRecord record);

  /// Accounts `n` records lost upstream (evicted from a shard's DecisionLog
  /// ring before the tap drained them). They join the same drops counter:
  /// one number answers "is the stream complete?".
  void AddUpstreamLoss(uint64_t n);

  /// Blocks until every record offered before this call is written and
  /// fflush'ed. Producers may keep offering concurrently.
  void Flush();

  /// Flush, stop the writer thread, close the file. Idempotent. Offers
  /// arriving after Close are counted as drops.
  void Close();

  /// True once the output file failed to open or a write failed; records
  /// consumed while failed count as drops, so accounting stays exact.
  bool failed() const;

  struct Counters {
    uint64_t records = 0;  // Lines durably handed to the OS.
    uint64_t drops = 0;    // Offered-but-lost + upstream ring losses.
    uint64_t bytes = 0;    // Serialized bytes written.
  };
  Counters counters() const;

  /// Test hook: the writer thread calls `hook` before each batch write
  /// (outside the producer lock). A sleeping hook simulates a slow disk so
  /// tests can force queue-full drops deterministically. Set before traffic.
  void InjectWriterStallForTest(std::function<void()> hook);

 private:
  void WriterLoop();
  /// Opens `path` for append; returns the current size. Sets failed_.
  void OpenOutput();
  void RotateIfNeeded();

  const Options options_;

  /// Backlog size at which the writer stops lingering and producers wake it
  /// eagerly; below it, one wakeup per ~1ms linger window drains everything
  /// accumulated, so wakeups, fwrite, and fflush amortize across the batch.
  static constexpr size_t kCoalesceBatch = 256;

  std::mutex mu_;
  std::condition_variable wake_writer_;   // Signaled on first Offer/Flush/Close.
  std::condition_variable flush_done_;    // Signaled after each batch.
  std::vector<AuditRecord> pending_;      // Guarded by mu_.
  uint64_t enqueued_ = 0;                 // Records ever accepted. (mu_)
  uint64_t consumed_ = 0;                 // Records written or failed. (mu_)
  bool closing_ = false;                  // (mu_)
  bool flush_requested_ = false;          // Cuts the linger short. (mu_)
  std::function<void()> stall_hook_;      // (mu_ to set; writer reads copy)

  // Writer-thread state (no lock needed).
  std::FILE* out_ = nullptr;
  uint64_t current_file_bytes_ = 0;
  int rotation_count_ = 0;
  std::string scratch_;  // Reused serialization buffer.

  // Counters: relaxed atomics — monotone, read by any thread.
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> drops_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<bool> failed_{false};

  std::thread writer_;
};

}  // namespace audit
}  // namespace sentinel

#endif  // SENTINELPP_AUDIT_EXPORTER_H_
