#ifndef SENTINELPP_RBAC_HIERARCHY_H_
#define SENTINELPP_RBAC_HIERARCHY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/status.h"
#include "rbac/types.h"

namespace sentinel {

/// \brief General role hierarchies (NIST Hierarchical RBAC).
///
/// The inheritance relation is a partial order: senior >= junior means the
/// senior role acquires the junior's permissions and the junior acquires
/// the senior's user membership. Stored as the immediate relation
/// (senior -> juniors); queries compute reachability. Cycle creation is
/// rejected so the relation stays a partial order.
class RoleHierarchy {
 public:
  RoleHierarchy() = default;

  /// Adds an immediate inheritance senior >>= junior. Fails when it would
  /// create a cycle (including senior == junior) or already exists.
  Status AddInheritance(const RoleName& senior, const RoleName& junior);

  /// Removes an immediate inheritance edge.
  Status DeleteInheritance(const RoleName& senior, const RoleName& junior);

  /// Removes a role from the relation entirely (on role deletion).
  void EraseRole(const RoleName& role);

  /// True iff senior >= junior in the transitive-reflexive closure.
  bool Dominates(const RoleName& senior, const RoleName& junior) const;

  /// All juniors of `role` including itself — the roles whose permissions
  /// `role` acquires.
  std::set<RoleName> JuniorsOf(const RoleName& role) const;

  /// All seniors of `role` including itself — the roles whose user
  /// membership `role` acquires.
  std::set<RoleName> SeniorsOf(const RoleName& role) const;

  const std::set<RoleName>& ImmediateJuniors(const RoleName& role) const;
  const std::set<RoleName>& ImmediateSeniors(const RoleName& role) const;

  bool empty() const { return juniors_.empty(); }
  /// Number of immediate inheritance edges.
  int edge_count() const;

  /// Bumped on every structural change; closure caches key their validity
  /// on it instead of subscribing to mutations.
  uint64_t epoch() const { return epoch_; }

  /// Successful edge removals (DeleteInheritance, and EraseRole when the
  /// role had edges) since construction; see RbacDatabase::removals().
  uint64_t removals() const { return removals_; }

 private:
  std::map<RoleName, std::set<RoleName>> juniors_;  // senior -> juniors
  std::map<RoleName, std::set<RoleName>> seniors_;  // junior -> seniors
  uint64_t epoch_ = 0;
  uint64_t removals_ = 0;
};

}  // namespace sentinel

#endif  // SENTINELPP_RBAC_HIERARCHY_H_
