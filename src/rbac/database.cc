#include "rbac/database.h"

#include <algorithm>

namespace sentinel {

namespace {

const std::set<RoleName>& EmptyRoleSet() {
  static const std::set<RoleName>* kEmpty = new std::set<RoleName>();
  return *kEmpty;
}

const std::set<UserName>& EmptyUserSet() {
  static const std::set<UserName>* kEmpty = new std::set<UserName>();
  return *kEmpty;
}

const std::set<Permission>& EmptyPermissionSet() {
  static const std::set<Permission>* kEmpty = new std::set<Permission>();
  return *kEmpty;
}

const std::set<SessionId>& EmptySessionSet() {
  static const std::set<SessionId>* kEmpty = new std::set<SessionId>();
  return *kEmpty;
}

}  // namespace

Status RbacDatabase::AddUser(const UserName& user) {
  if (user.empty()) return Status::InvalidArgument("empty user name");
  if (!users_.insert(user).second) {
    return Status::AlreadyExists("user exists: " + user);
  }
  return Status::OK();
}

Status RbacDatabase::DeleteUser(const UserName& user) {
  if (users_.erase(user) == 0) {
    return Status::NotFound("no such user: " + user);
  }
  // Drop assignments.
  auto ua = ua_.find(user);
  if (ua != ua_.end()) {
    for (const RoleName& role : ua->second) ua_inverse_[role].erase(user);
    ua_.erase(ua);
  }
  // NIST DeleteUser: the user's sessions are deleted as well.
  auto us = user_sessions_.find(user);
  if (us != user_sessions_.end()) {
    const std::set<SessionId> doomed = us->second;
    for (const SessionId& session : doomed) {
      (void)DeleteSession(session);
    }
  }
  return Status::OK();
}

Status RbacDatabase::AddRole(const RoleName& role) {
  if (role.empty()) return Status::InvalidArgument("empty role name");
  if (!roles_.insert(role).second) {
    return Status::AlreadyExists("role exists: " + role);
  }
  return Status::OK();
}

Status RbacDatabase::DeleteRole(const RoleName& role) {
  if (roles_.erase(role) == 0) {
    return Status::NotFound("no such role: " + role);
  }
  auto inv = ua_inverse_.find(role);
  if (inv != ua_inverse_.end()) {
    for (const UserName& user : inv->second) ua_[user].erase(role);
    ua_inverse_.erase(inv);
  }
  pa_.erase(role);
  for (auto& [id, session] : sessions_) {
    if (session.active_roles.erase(role) > 0) {
      // Active count bookkeeping handled below via map erase.
    }
  }
  active_counts_.erase(role);
  return Status::OK();
}

Status RbacDatabase::AddOperation(const OperationName& op) {
  if (op.empty()) return Status::InvalidArgument("empty operation name");
  if (!operations_.insert(op).second) {
    return Status::AlreadyExists("operation exists: " + op);
  }
  return Status::OK();
}

Status RbacDatabase::AddObject(const ObjectName& obj) {
  if (obj.empty()) return Status::InvalidArgument("empty object name");
  if (!objects_.insert(obj).second) {
    return Status::AlreadyExists("object exists: " + obj);
  }
  return Status::OK();
}

Status RbacDatabase::Assign(const UserName& user, const RoleName& role) {
  if (!HasUser(user)) return Status::NotFound("no such user: " + user);
  if (!HasRole(role)) return Status::NotFound("no such role: " + role);
  if (!ua_[user].insert(role).second) {
    return Status::AlreadyExists(user + " already assigned to " + role);
  }
  ua_inverse_[role].insert(user);
  return Status::OK();
}

Status RbacDatabase::Deassign(const UserName& user, const RoleName& role) {
  auto it = ua_.find(user);
  if (it == ua_.end() || it->second.erase(role) == 0) {
    return Status::NotFound(user + " is not assigned to " + role);
  }
  ua_inverse_[role].erase(user);
  return Status::OK();
}

bool RbacDatabase::IsAssigned(const UserName& user,
                              const RoleName& role) const {
  auto it = ua_.find(user);
  return it != ua_.end() && it->second.count(role) > 0;
}

const std::set<RoleName>& RbacDatabase::AssignedRoles(
    const UserName& user) const {
  auto it = ua_.find(user);
  return it == ua_.end() ? EmptyRoleSet() : it->second;
}

const std::set<UserName>& RbacDatabase::AssignedUsers(
    const RoleName& role) const {
  auto it = ua_inverse_.find(role);
  return it == ua_inverse_.end() ? EmptyUserSet() : it->second;
}

Status RbacDatabase::Grant(const Permission& perm, const RoleName& role) {
  if (!HasRole(role)) return Status::NotFound("no such role: " + role);
  // Operations and objects are registered implicitly on first grant.
  operations_.insert(perm.operation);
  objects_.insert(perm.object);
  if (!pa_[role].insert(perm).second) {
    return Status::AlreadyExists(perm.ToString() + " already granted to " +
                                 role);
  }
  return Status::OK();
}

Status RbacDatabase::Revoke(const Permission& perm, const RoleName& role) {
  auto it = pa_.find(role);
  if (it == pa_.end() || it->second.erase(perm) == 0) {
    return Status::NotFound(perm.ToString() + " not granted to " + role);
  }
  return Status::OK();
}

bool RbacDatabase::IsGranted(const Permission& perm,
                             const RoleName& role) const {
  auto it = pa_.find(role);
  return it != pa_.end() && it->second.count(perm) > 0;
}

const std::set<Permission>& RbacDatabase::RolePermissions(
    const RoleName& role) const {
  auto it = pa_.find(role);
  return it == pa_.end() ? EmptyPermissionSet() : it->second;
}

Status RbacDatabase::CreateSession(const UserName& user,
                                   const SessionId& session) {
  if (!HasUser(user)) return Status::NotFound("no such user: " + user);
  if (session.empty()) return Status::InvalidArgument("empty session id");
  if (sessions_.count(session) > 0) {
    return Status::AlreadyExists("session exists: " + session);
  }
  sessions_.emplace(session, Session{session, user, {}});
  user_sessions_[user].insert(session);
  return Status::OK();
}

Status RbacDatabase::DeleteSession(const SessionId& session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + session);
  }
  for (const RoleName& role : it->second.active_roles) {
    auto ac = active_counts_.find(role);
    if (ac != active_counts_.end() && --ac->second <= 0) {
      active_counts_.erase(ac);
    }
  }
  user_sessions_[it->second.user].erase(session);
  sessions_.erase(it);
  return Status::OK();
}

Result<const Session*> RbacDatabase::GetSession(
    const SessionId& session) const {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + session);
  }
  return &it->second;
}

const std::set<SessionId>& RbacDatabase::UserSessions(
    const UserName& user) const {
  auto it = user_sessions_.find(user);
  return it == user_sessions_.end() ? EmptySessionSet() : it->second;
}

Status RbacDatabase::AddSessionRole(const SessionId& session,
                                    const RoleName& role) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + session);
  }
  if (!HasRole(role)) return Status::NotFound("no such role: " + role);
  if (!it->second.active_roles.insert(role).second) {
    return Status::AlreadyExists(role + " already active in " + session);
  }
  ++active_counts_[role];
  return Status::OK();
}

Status RbacDatabase::DropSessionRole(const SessionId& session,
                                     const RoleName& role) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + session);
  }
  if (it->second.active_roles.erase(role) == 0) {
    return Status::NotFound(role + " not active in " + session);
  }
  auto ac = active_counts_.find(role);
  if (ac != active_counts_.end() && --ac->second <= 0) {
    active_counts_.erase(ac);
  }
  return Status::OK();
}

bool RbacDatabase::IsSessionRoleActive(const SessionId& session,
                                       const RoleName& role) const {
  auto it = sessions_.find(session);
  return it != sessions_.end() && it->second.active_roles.count(role) > 0;
}

int RbacDatabase::ActiveSessionCount(const RoleName& role) const {
  auto it = active_counts_.find(role);
  return it == active_counts_.end() ? 0 : it->second;
}

std::vector<SessionId> RbacDatabase::SessionIds() const {
  std::vector<SessionId> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) out.push_back(id);
  return out;
}

}  // namespace sentinel
