#include "rbac/database.h"

#include <algorithm>

namespace sentinel {

namespace {

const std::set<RoleName>& EmptyRoleSet() {
  static const std::set<RoleName>* kEmpty = new std::set<RoleName>();
  return *kEmpty;
}

const std::set<UserName>& EmptyUserSet() {
  static const std::set<UserName>* kEmpty = new std::set<UserName>();
  return *kEmpty;
}

const std::set<Permission>& EmptyPermissionSet() {
  static const std::set<Permission>* kEmpty = new std::set<Permission>();
  return *kEmpty;
}

const std::set<SessionId>& EmptySessionSet() {
  static const std::set<SessionId>* kEmpty = new std::set<SessionId>();
  return *kEmpty;
}

// Sorted-vector set operations for the small per-user / per-session role
// lists in the symbol mirrors.
void SortedInsert(std::vector<Symbol>& v, Symbol s) {
  auto it = std::lower_bound(v.begin(), v.end(), s);
  if (it == v.end() || *it != s) v.insert(it, s);
}

void SortedErase(std::vector<Symbol>& v, Symbol s) {
  auto it = std::lower_bound(v.begin(), v.end(), s);
  if (it != v.end() && *it == s) v.erase(it);
}

}  // namespace

RbacDatabase::RbacDatabase(SymbolTable* symbols) {
  if (symbols == nullptr) {
    owned_symbols_ = std::make_unique<SymbolTable>();
    symbols_ = owned_symbols_.get();
  } else {
    symbols_ = symbols;
  }
}

Symbol RbacDatabase::InternName(const std::string& name) {
  Symbol s = symbols_->Intern(name);
  if (s.id() >= kind_bits_.size()) kind_bits_.resize(s.id() + 1, 0);
  return s;
}

void RbacDatabase::SetKind(Symbol s, uint8_t bit) {
  if (s.id() >= kind_bits_.size()) kind_bits_.resize(s.id() + 1, 0);
  kind_bits_[s.id()] |= bit;
}

void RbacDatabase::ClearKind(Symbol s, uint8_t bit) {
  if (s.valid() && s.id() < kind_bits_.size()) {
    kind_bits_[s.id()] &= static_cast<uint8_t>(~bit);
  }
}

Status RbacDatabase::AddUser(const UserName& user) {
  if (user.empty()) return Status::InvalidArgument("empty user name");
  if (!users_.insert(user).second) {
    return Status::AlreadyExists("user exists: " + user);
  }
  SetKind(InternName(user), kUserBit);
  return Status::OK();
}

Status RbacDatabase::DeleteUser(const UserName& user) {
  if (users_.erase(user) == 0) {
    return Status::NotFound("no such user: " + user);
  }
  const Symbol user_sym = symbols_->Find(user);
  ClearKind(user_sym, kUserBit);
  ++removals_;
  // Drop assignments.
  auto ua = ua_.find(user);
  if (ua != ua_.end()) {
    for (const RoleName& role : ua->second) ua_inverse_[role].erase(user);
    ua_.erase(ua);
  }
  ua_sym_.erase(user_sym.id());
  // NIST DeleteUser: the user's sessions are deleted as well.
  auto us = user_sessions_.find(user);
  if (us != user_sessions_.end()) {
    const std::set<SessionId> doomed = us->second;
    for (const SessionId& session : doomed) {
      (void)DeleteSession(session);
    }
  }
  return Status::OK();
}

Status RbacDatabase::AddRole(const RoleName& role) {
  if (role.empty()) return Status::InvalidArgument("empty role name");
  if (!roles_.insert(role).second) {
    return Status::AlreadyExists("role exists: " + role);
  }
  SetKind(InternName(role), kRoleBit);
  return Status::OK();
}

Status RbacDatabase::DeleteRole(const RoleName& role) {
  if (roles_.erase(role) == 0) {
    return Status::NotFound("no such role: " + role);
  }
  const Symbol role_sym = symbols_->Find(role);
  ClearKind(role_sym, kRoleBit);
  ++removals_;
  auto inv = ua_inverse_.find(role);
  if (inv != ua_inverse_.end()) {
    for (const UserName& user : inv->second) {
      ua_[user].erase(role);
      auto uas = ua_sym_.find(symbols_->Find(user).id());
      if (uas != ua_sym_.end()) SortedErase(uas->second, role_sym);
    }
    ua_inverse_.erase(inv);
  }
  pa_.erase(role);
  pa_sym_.erase(role_sym.id());
  for (auto& [id, session] : sessions_) {
    session.active_roles.erase(role);
  }
  for (auto& [id, state] : sessions_sym_) {
    if (state.IsActive(role_sym)) {
      SortedErase(state.active_roles, role_sym);
      BumpSessionGeneration(Symbol(id));
    }
  }
  active_counts_.erase(role);
  active_counts_sym_.erase(role_sym.id());
  return Status::OK();
}

Status RbacDatabase::AddOperation(const OperationName& op) {
  if (op.empty()) return Status::InvalidArgument("empty operation name");
  if (!operations_.insert(op).second) {
    return Status::AlreadyExists("operation exists: " + op);
  }
  SetKind(InternName(op), kOperationBit);
  return Status::OK();
}

Status RbacDatabase::AddObject(const ObjectName& obj) {
  if (obj.empty()) return Status::InvalidArgument("empty object name");
  if (!objects_.insert(obj).second) {
    return Status::AlreadyExists("object exists: " + obj);
  }
  SetKind(InternName(obj), kObjectBit);
  return Status::OK();
}

Status RbacDatabase::Assign(const UserName& user, const RoleName& role) {
  if (!HasUser(user)) return Status::NotFound("no such user: " + user);
  if (!HasRole(role)) return Status::NotFound("no such role: " + role);
  if (!ua_[user].insert(role).second) {
    return Status::AlreadyExists(user + " already assigned to " + role);
  }
  ua_inverse_[role].insert(user);
  SortedInsert(ua_sym_[symbols_->Find(user).id()], symbols_->Find(role));
  return Status::OK();
}

Status RbacDatabase::Deassign(const UserName& user, const RoleName& role) {
  auto it = ua_.find(user);
  if (it == ua_.end() || it->second.erase(role) == 0) {
    return Status::NotFound(user + " is not assigned to " + role);
  }
  ua_inverse_[role].erase(user);
  auto uas = ua_sym_.find(symbols_->Find(user).id());
  if (uas != ua_sym_.end()) SortedErase(uas->second, symbols_->Find(role));
  ++removals_;
  return Status::OK();
}

bool RbacDatabase::IsAssigned(const UserName& user,
                              const RoleName& role) const {
  auto it = ua_.find(user);
  return it != ua_.end() && it->second.count(role) > 0;
}

bool RbacDatabase::IsAssigned(Symbol user, Symbol role) const {
  auto it = ua_sym_.find(user.id());
  return it != ua_sym_.end() &&
         std::binary_search(it->second.begin(), it->second.end(), role);
}

const std::set<RoleName>& RbacDatabase::AssignedRoles(
    const UserName& user) const {
  auto it = ua_.find(user);
  return it == ua_.end() ? EmptyRoleSet() : it->second;
}

const std::set<UserName>& RbacDatabase::AssignedUsers(
    const RoleName& role) const {
  auto it = ua_inverse_.find(role);
  return it == ua_inverse_.end() ? EmptyUserSet() : it->second;
}

Status RbacDatabase::Grant(const Permission& perm, const RoleName& role) {
  if (!HasRole(role)) return Status::NotFound("no such role: " + role);
  // Operations and objects are registered implicitly on first grant.
  if (operations_.insert(perm.operation).second) {
    SetKind(InternName(perm.operation), kOperationBit);
  }
  if (objects_.insert(perm.object).second) {
    SetKind(InternName(perm.object), kObjectBit);
  }
  if (!pa_[role].insert(perm).second) {
    return Status::AlreadyExists(perm.ToString() + " already granted to " +
                                 role);
  }
  pa_sym_[symbols_->Find(role).id()].insert(PackPermission(
      symbols_->Find(perm.operation), symbols_->Find(perm.object)));
  return Status::OK();
}

Status RbacDatabase::Revoke(const Permission& perm, const RoleName& role) {
  auto it = pa_.find(role);
  if (it == pa_.end() || it->second.erase(perm) == 0) {
    return Status::NotFound(perm.ToString() + " not granted to " + role);
  }
  auto pas = pa_sym_.find(symbols_->Find(role).id());
  if (pas != pa_sym_.end()) {
    pas->second.erase(PackPermission(symbols_->Find(perm.operation),
                                     symbols_->Find(perm.object)));
    if (pas->second.empty()) pa_sym_.erase(pas);
  }
  ++removals_;
  return Status::OK();
}

bool RbacDatabase::IsGranted(const Permission& perm,
                             const RoleName& role) const {
  auto it = pa_.find(role);
  return it != pa_.end() && it->second.count(perm) > 0;
}

bool RbacDatabase::IsGranted(Symbol op, Symbol obj, Symbol role) const {
  auto it = pa_sym_.find(role.id());
  return it != pa_sym_.end() &&
         it->second.count(PackPermission(op, obj)) > 0;
}

const std::set<Permission>& RbacDatabase::RolePermissions(
    const RoleName& role) const {
  auto it = pa_.find(role);
  return it == pa_.end() ? EmptyPermissionSet() : it->second;
}

Status RbacDatabase::CreateSession(const UserName& user,
                                   const SessionId& session) {
  if (!HasUser(user)) return Status::NotFound("no such user: " + user);
  if (session.empty()) return Status::InvalidArgument("empty session id");
  if (sessions_.count(session) > 0) {
    return Status::AlreadyExists("session exists: " + session);
  }
  sessions_.emplace(session, Session{session, user, {}});
  user_sessions_[user].insert(session);
  const Symbol session_sym = InternName(session);
  sessions_sym_.emplace(session_sym.id(),
                        SessionState{symbols_->Find(user), {}});
  BumpSessionGeneration(session_sym);
  return Status::OK();
}

Status RbacDatabase::DeleteSession(const SessionId& session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + session);
  }
  for (const RoleName& role : it->second.active_roles) {
    auto ac = active_counts_.find(role);
    if (ac != active_counts_.end() && --ac->second <= 0) {
      active_counts_.erase(ac);
    }
    auto acs = active_counts_sym_.find(symbols_->Find(role).id());
    if (acs != active_counts_sym_.end() && --acs->second <= 0) {
      active_counts_sym_.erase(acs);
    }
  }
  user_sessions_[it->second.user].erase(session);
  const Symbol session_sym = symbols_->Find(session);
  sessions_sym_.erase(session_sym.id());
  sessions_.erase(it);
  BumpSessionGeneration(session_sym);
  return Status::OK();
}

Result<const Session*> RbacDatabase::GetSession(
    const SessionId& session) const {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + session);
  }
  return &it->second;
}

const RbacDatabase::SessionState* RbacDatabase::GetSessionState(
    Symbol session) const {
  auto it = sessions_sym_.find(session.id());
  return it == sessions_sym_.end() ? nullptr : &it->second;
}

const std::set<SessionId>& RbacDatabase::UserSessions(
    const UserName& user) const {
  auto it = user_sessions_.find(user);
  return it == user_sessions_.end() ? EmptySessionSet() : it->second;
}

Status RbacDatabase::AddSessionRole(const SessionId& session,
                                    const RoleName& role) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + session);
  }
  if (!HasRole(role)) return Status::NotFound("no such role: " + role);
  if (!it->second.active_roles.insert(role).second) {
    return Status::AlreadyExists(role + " already active in " + session);
  }
  ++active_counts_[role];
  const Symbol role_sym = symbols_->Find(role);
  const Symbol session_sym = symbols_->Find(session);
  auto ss = sessions_sym_.find(session_sym.id());
  if (ss != sessions_sym_.end()) SortedInsert(ss->second.active_roles, role_sym);
  ++active_counts_sym_[role_sym.id()];
  BumpSessionGeneration(session_sym);
  return Status::OK();
}

Status RbacDatabase::DropSessionRole(const SessionId& session,
                                     const RoleName& role) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + session);
  }
  if (it->second.active_roles.erase(role) == 0) {
    return Status::NotFound(role + " not active in " + session);
  }
  auto ac = active_counts_.find(role);
  if (ac != active_counts_.end() && --ac->second <= 0) {
    active_counts_.erase(ac);
  }
  const Symbol role_sym = symbols_->Find(role);
  const Symbol session_sym = symbols_->Find(session);
  auto ss = sessions_sym_.find(session_sym.id());
  if (ss != sessions_sym_.end()) SortedErase(ss->second.active_roles, role_sym);
  auto acs = active_counts_sym_.find(role_sym.id());
  if (acs != active_counts_sym_.end() && --acs->second <= 0) {
    active_counts_sym_.erase(acs);
  }
  BumpSessionGeneration(session_sym);
  return Status::OK();
}

Status RbacDatabase::AddSessionRole(Symbol session, Symbol role) {
  return AddSessionRole(symbols_->NameOf(session), symbols_->NameOf(role));
}

Status RbacDatabase::DropSessionRole(Symbol session, Symbol role) {
  return DropSessionRole(symbols_->NameOf(session), symbols_->NameOf(role));
}

bool RbacDatabase::IsSessionRoleActive(const SessionId& session,
                                       const RoleName& role) const {
  auto it = sessions_.find(session);
  return it != sessions_.end() && it->second.active_roles.count(role) > 0;
}

bool RbacDatabase::IsSessionRoleActive(Symbol session, Symbol role) const {
  auto it = sessions_sym_.find(session.id());
  return it != sessions_sym_.end() && it->second.IsActive(role);
}

int RbacDatabase::ActiveSessionCount(const RoleName& role) const {
  auto it = active_counts_.find(role);
  return it == active_counts_.end() ? 0 : it->second;
}

int RbacDatabase::ActiveSessionCount(Symbol role) const {
  auto it = active_counts_sym_.find(role.id());
  return it == active_counts_sym_.end() ? 0 : it->second;
}

std::vector<SessionId> RbacDatabase::SessionIds() const {
  std::vector<SessionId> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) out.push_back(id);
  return out;
}

}  // namespace sentinel
