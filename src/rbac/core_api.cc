#include "rbac/core_api.h"

namespace sentinel {

Status RbacSystem::DeleteRole(const RoleName& role) {
  SENTINEL_RETURN_IF_ERROR(db_.DeleteRole(role));
  hierarchy_.EraseRole(role);
  ssd_.EraseRole(role);
  dsd_.EraseRole(role);
  return Status::OK();
}

Status RbacSystem::AssignUser(const UserName& user, const RoleName& role) {
  if (!db_.HasUser(user)) return Status::NotFound("no such user: " + user);
  if (!db_.HasRole(role)) return Status::NotFound("no such role: " + role);
  if (db_.IsAssigned(user, role)) {
    return Status::AlreadyExists(user + " already assigned to " + role);
  }
  if (!SsdSatisfiedWith(user, role)) {
    return Status::ConstraintViolation(
        "assigning " + user + " to " + role +
        " violates a static separation-of-duty relation");
  }
  return db_.Assign(user, role);
}

Status RbacSystem::DeassignUser(const UserName& user, const RoleName& role) {
  SENTINEL_RETURN_IF_ERROR(db_.Deassign(user, role));
  // The standard drops an active role from the user's sessions when the
  // assignment that authorized it disappears — including juniors that
  // were only reachable through the removed assignment.
  for (const SessionId& session : db_.UserSessions(user)) {
    auto info = db_.GetSession(session);
    if (!info.ok()) continue;
    const std::set<RoleName> active = (*info)->active_roles;
    for (const RoleName& r : active) {
      if (!IsAuthorized(user, r)) {
        (void)db_.DropSessionRole(session, r);
      }
    }
  }
  return Status::OK();
}

Status RbacSystem::AddInheritance(const RoleName& senior,
                                  const RoleName& junior) {
  if (!db_.HasRole(senior)) {
    return Status::NotFound("no such role: " + senior);
  }
  if (!db_.HasRole(junior)) {
    return Status::NotFound("no such role: " + junior);
  }
  SENTINEL_RETURN_IF_ERROR(hierarchy_.AddInheritance(senior, junior));
  const std::string violation = FindSsdViolation();
  if (!violation.empty()) {
    // Roll back: the enlarged authorized sets broke an SSD relation.
    (void)hierarchy_.DeleteInheritance(senior, junior);
    return Status::ConstraintViolation("inheritance " + senior + " >>= " +
                                       junior + " rejected: " + violation);
  }
  return Status::OK();
}

Status RbacSystem::DeleteInheritance(const RoleName& senior,
                                     const RoleName& junior) {
  SENTINEL_RETURN_IF_ERROR(hierarchy_.DeleteInheritance(senior, junior));
  // Dropping inheritance can only shrink authorized sets; active roles
  // that lost their authorization are dropped from sessions.
  for (const UserName& user : db_.users()) {
    for (const SessionId& session : db_.UserSessions(user)) {
      auto session_info = db_.GetSession(session);
      if (!session_info.ok()) continue;
      const std::set<RoleName> active = (*session_info)->active_roles;
      for (const RoleName& role : active) {
        if (!IsAuthorized(user, role)) {
          (void)db_.DropSessionRole(session, role);
        }
      }
    }
  }
  return Status::OK();
}

Status RbacSystem::CreateSsdSet(const std::string& name,
                                std::set<RoleName> roles, int n) {
  for (const RoleName& role : roles) {
    if (!db_.HasRole(role)) return Status::NotFound("no such role: " + role);
  }
  SENTINEL_RETURN_IF_ERROR(ssd_.CreateSet(name, std::move(roles), n));
  const std::string violation = FindSsdViolation();
  if (!violation.empty()) {
    (void)ssd_.DeleteSet(name);
    return Status::ConstraintViolation("SSD set " + name +
                                       " rejected: " + violation);
  }
  return Status::OK();
}

Status RbacSystem::AddSsdRoleMember(const std::string& name,
                                    const RoleName& role) {
  if (!db_.HasRole(role)) return Status::NotFound("no such role: " + role);
  SENTINEL_RETURN_IF_ERROR(ssd_.AddRoleMember(name, role));
  const std::string violation = FindSsdViolation();
  if (!violation.empty()) {
    (void)ssd_.DeleteRoleMember(name, role);
    return Status::ConstraintViolation("adding " + role + " to SSD set " +
                                       name + " rejected: " + violation);
  }
  return Status::OK();
}

Status RbacSystem::SetSsdCardinality(const std::string& name, int n) {
  SENTINEL_ASSIGN_OR_RETURN(set, ssd_.GetSet(name));
  const int old_n = set->n;
  SENTINEL_RETURN_IF_ERROR(ssd_.SetCardinality(name, n));
  const std::string violation = FindSsdViolation();
  if (!violation.empty()) {
    (void)ssd_.SetCardinality(name, old_n);
    return Status::ConstraintViolation("SSD cardinality change on " + name +
                                       " rejected: " + violation);
  }
  return Status::OK();
}

Status RbacSystem::CreateDsdSet(const std::string& name,
                                std::set<RoleName> roles, int n) {
  for (const RoleName& role : roles) {
    if (!db_.HasRole(role)) return Status::NotFound("no such role: " + role);
  }
  SENTINEL_RETURN_IF_ERROR(dsd_.CreateSet(name, std::move(roles), n));
  for (const SessionId& session : db_.SessionIds()) {
    auto info = db_.GetSession(session);
    if (info.ok() && !dsd_.Satisfies((*info)->active_roles)) {
      (void)dsd_.DeleteSet(name);
      return Status::ConstraintViolation(
          "DSD set " + name + " rejected: session " + session +
          " already violates it");
    }
  }
  return Status::OK();
}

Status RbacSystem::InstallSsdSet(const std::string& name,
                                 std::set<RoleName> roles, int n) {
  for (const RoleName& role : roles) {
    if (!db_.HasRole(role)) return Status::NotFound("no such role: " + role);
  }
  return ssd_.CreateSet(name, std::move(roles), n);
}

Status RbacSystem::InstallDsdSet(const std::string& name,
                                 std::set<RoleName> roles, int n) {
  for (const RoleName& role : roles) {
    if (!db_.HasRole(role)) return Status::NotFound("no such role: " + role);
  }
  return dsd_.CreateSet(name, std::move(roles), n);
}

Status RbacSystem::AddDsdRoleMember(const std::string& name,
                                    const RoleName& role) {
  if (!db_.HasRole(role)) return Status::NotFound("no such role: " + role);
  SENTINEL_RETURN_IF_ERROR(dsd_.AddRoleMember(name, role));
  for (const SessionId& session : db_.SessionIds()) {
    auto info = db_.GetSession(session);
    if (info.ok() && !dsd_.Satisfies((*info)->active_roles)) {
      (void)dsd_.DeleteRoleMember(name, role);
      return Status::ConstraintViolation(
          "adding " + role + " to DSD set " + name + " rejected: session " +
          session + " would violate it");
    }
  }
  return Status::OK();
}

Status RbacSystem::SetDsdCardinality(const std::string& name, int n) {
  SENTINEL_ASSIGN_OR_RETURN(set, dsd_.GetSet(name));
  const int old_n = set->n;
  SENTINEL_RETURN_IF_ERROR(dsd_.SetCardinality(name, n));
  for (const SessionId& session : db_.SessionIds()) {
    auto info = db_.GetSession(session);
    if (info.ok() && !dsd_.Satisfies((*info)->active_roles)) {
      (void)dsd_.SetCardinality(name, old_n);
      return Status::ConstraintViolation(
          "DSD cardinality change on " + name + " rejected: session " +
          session + " would violate it");
    }
  }
  return Status::OK();
}

Status RbacSystem::AddActiveRole(const UserName& user,
                                 const SessionId& session,
                                 const RoleName& role) {
  if (!db_.HasUser(user)) return Status::NotFound("no such user: " + user);
  SENTINEL_ASSIGN_OR_RETURN(info, db_.GetSession(session));
  if (info->user != user) {
    return Status::FailedPrecondition("session " + session +
                                      " is not owned by " + user);
  }
  if (!db_.HasRole(role)) return Status::NotFound("no such role: " + role);
  if (db_.IsSessionRoleActive(session, role)) {
    return Status::AlreadyExists(role + " already active in " + session);
  }
  if (!IsAuthorized(user, role)) {
    return Status::ConstraintViolation(user + " is not authorized for " +
                                       role);
  }
  if (!DsdSatisfiedWith(session, role)) {
    return Status::ConstraintViolation(
        "activating " + role + " in " + session +
        " violates a dynamic separation-of-duty relation");
  }
  return db_.AddSessionRole(session, role);
}

Status RbacSystem::DropActiveRole(const UserName& user,
                                  const SessionId& session,
                                  const RoleName& role) {
  SENTINEL_ASSIGN_OR_RETURN(info, db_.GetSession(session));
  if (info->user != user) {
    return Status::FailedPrecondition("session " + session +
                                      " is not owned by " + user);
  }
  return db_.DropSessionRole(session, role);
}

Result<bool> RbacSystem::CheckAccess(const SessionId& session,
                                     const OperationName& op,
                                     const ObjectName& obj) const {
  SENTINEL_ASSIGN_OR_RETURN(info, db_.GetSession(session));
  const Permission perm{op, obj};
  for (const RoleName& role : info->active_roles) {
    // An active role conveys its own permissions and its juniors'.
    for (const RoleName& source : hierarchy_.JuniorsOf(role)) {
      if (db_.IsGranted(perm, source)) return true;
    }
  }
  return false;
}

Result<bool> RbacSystem::CheckAccess(Symbol session, Symbol op,
                                     Symbol obj) const {
  const RbacDatabase::SessionState* state = db_.GetSessionState(session);
  if (state == nullptr) {
    return Status::NotFound("no such session: " +
                            db_.symbols().NameOf(session));
  }
  if (hierarchy_.empty()) {
    for (Symbol role : state->active_roles) {
      if (db_.IsGranted(op, obj, role)) return true;
    }
    return false;
  }
  for (Symbol role : state->active_roles) {
    for (Symbol source : JuniorsClosure(role)) {
      if (db_.IsGranted(op, obj, source)) return true;
    }
  }
  return false;
}

std::set<UserName> RbacSystem::AuthorizedUsers(const RoleName& role) const {
  std::set<UserName> out;
  for (const RoleName& senior : hierarchy_.SeniorsOf(role)) {
    const auto& assigned = db_.AssignedUsers(senior);
    out.insert(assigned.begin(), assigned.end());
  }
  return out;
}

std::set<RoleName> RbacSystem::AuthorizedRoles(const UserName& user) const {
  std::set<RoleName> out;
  for (const RoleName& assigned : db_.AssignedRoles(user)) {
    const std::set<RoleName> juniors = hierarchy_.JuniorsOf(assigned);
    out.insert(juniors.begin(), juniors.end());
  }
  return out;
}

std::set<Permission> RbacSystem::RolePermissions(const RoleName& role,
                                                 bool inherited) const {
  if (!inherited) return db_.RolePermissions(role);
  std::set<Permission> out;
  for (const RoleName& source : hierarchy_.JuniorsOf(role)) {
    const auto& perms = db_.RolePermissions(source);
    out.insert(perms.begin(), perms.end());
  }
  return out;
}

std::set<Permission> RbacSystem::UserPermissions(const UserName& user) const {
  std::set<Permission> out;
  for (const RoleName& role : AuthorizedRoles(user)) {
    const auto& perms = db_.RolePermissions(role);
    out.insert(perms.begin(), perms.end());
  }
  return out;
}

std::set<RoleName> RbacSystem::SessionRoles(const SessionId& session) const {
  auto info = db_.GetSession(session);
  if (!info.ok()) return {};
  return (*info)->active_roles;
}

std::set<Permission> RbacSystem::SessionPermissions(
    const SessionId& session) const {
  std::set<Permission> out;
  auto info = db_.GetSession(session);
  if (!info.ok()) return out;
  for (const RoleName& role : (*info)->active_roles) {
    const std::set<Permission> perms = RolePermissions(role, true);
    out.insert(perms.begin(), perms.end());
  }
  return out;
}

std::set<OperationName> RbacSystem::RoleOperationsOnObject(
    const RoleName& role, const ObjectName& obj) const {
  std::set<OperationName> out;
  for (const Permission& perm : RolePermissions(role, true)) {
    if (perm.object == obj) out.insert(perm.operation);
  }
  return out;
}

std::set<OperationName> RbacSystem::UserOperationsOnObject(
    const UserName& user, const ObjectName& obj) const {
  std::set<OperationName> out;
  for (const Permission& perm : UserPermissions(user)) {
    if (perm.object == obj) out.insert(perm.operation);
  }
  return out;
}

bool RbacSystem::IsAuthorized(const UserName& user,
                              const RoleName& role) const {
  if (db_.IsAssigned(user, role)) return true;
  if (hierarchy_.empty()) return false;
  for (const RoleName& senior : hierarchy_.SeniorsOf(role)) {
    if (db_.IsAssigned(user, senior)) return true;
  }
  return false;
}

bool RbacSystem::IsAuthorized(Symbol user, Symbol role) const {
  if (db_.IsAssigned(user, role)) return true;
  if (hierarchy_.empty()) return false;
  for (Symbol senior : SeniorsClosure(role)) {
    if (db_.IsAssigned(user, senior)) return true;
  }
  return false;
}

bool RbacSystem::DsdSatisfiedWith(const SessionId& session,
                                  const RoleName& role) const {
  auto info = db_.GetSession(session);
  if (!info.ok()) return false;
  std::set<RoleName> hypothetical = (*info)->active_roles;
  hypothetical.insert(role);
  return dsd_.Satisfies(hypothetical);
}

bool RbacSystem::DsdSatisfiedWith(Symbol session, Symbol role) const {
  const RbacDatabase::SessionState* state = db_.GetSessionState(session);
  if (state == nullptr) return false;
  if (dsd_.size() == 0) return true;
  return DsdSatisfiedWith(db_.symbols().NameOf(session),
                          db_.symbols().NameOf(role));
}

bool RbacSystem::SsdSatisfiedWith(const UserName& user,
                                  const RoleName& role) const {
  std::set<RoleName> hypothetical = AuthorizedRoles(user);
  const std::set<RoleName> juniors = hierarchy_.JuniorsOf(role);
  hypothetical.insert(juniors.begin(), juniors.end());
  return ssd_.Satisfies(hypothetical);
}

const std::vector<Symbol>& RbacSystem::JuniorsClosure(Symbol role) const {
  if (cache_epoch_ != hierarchy_.epoch()) {
    juniors_cache_.clear();
    seniors_cache_.clear();
    cache_epoch_ = hierarchy_.epoch();
  }
  auto it = juniors_cache_.find(role.id());
  if (it != juniors_cache_.end()) return it->second;
  const SymbolTable& syms = db_.symbols();
  std::vector<Symbol> closure;
  for (const RoleName& junior : hierarchy_.JuniorsOf(syms.NameOf(role))) {
    // Registered roles are interned at AddRole; Find never misses here.
    closure.push_back(syms.Find(junior));
  }
  return juniors_cache_.emplace(role.id(), std::move(closure)).first->second;
}

const std::vector<Symbol>& RbacSystem::SeniorsClosure(Symbol role) const {
  if (cache_epoch_ != hierarchy_.epoch()) {
    juniors_cache_.clear();
    seniors_cache_.clear();
    cache_epoch_ = hierarchy_.epoch();
  }
  auto it = seniors_cache_.find(role.id());
  if (it != seniors_cache_.end()) return it->second;
  const SymbolTable& syms = db_.symbols();
  std::vector<Symbol> closure;
  for (const RoleName& senior : hierarchy_.SeniorsOf(syms.NameOf(role))) {
    closure.push_back(syms.Find(senior));
  }
  return seniors_cache_.emplace(role.id(), std::move(closure)).first->second;
}

std::string RbacSystem::FindSsdViolation() const {
  for (const UserName& user : db_.users()) {
    const std::string set_name = ssd_.FirstViolated(AuthorizedRoles(user));
    if (!set_name.empty()) {
      return "user " + user + " would violate SSD set " + set_name;
    }
  }
  return "";
}

}  // namespace sentinel
