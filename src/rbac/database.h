#ifndef SENTINELPP_RBAC_DATABASE_H_
#define SENTINELPP_RBAC_DATABASE_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "rbac/types.h"

namespace sentinel {

/// \brief Raw RBAC state: element sets (USERS, ROLES, OPS, OBS), the
/// user-assignment (UA) and permission-assignment (PA) relations, and
/// SESSIONS. Maintains referential integrity only; policy constraints
/// (hierarchy semantics, SoD, temporal) live in the layers above.
///
/// Names are interned at registration: every mutator keeps symbol-keyed
/// mirrors of the hot relations in step with the string containers, so the
/// per-request predicates (HasRole, IsAssigned, IsGranted, session lookups)
/// have Symbol overloads that never hash or compare a string. The string
/// API remains the public boundary and the source for ordered
/// introspection.
class RbacDatabase {
 public:
  /// `symbols` is shared with the owning engine so rule-captured symbols
  /// align; when null the database owns a private table.
  explicit RbacDatabase(SymbolTable* symbols = nullptr);

  RbacDatabase(const RbacDatabase&) = delete;
  RbacDatabase& operator=(const RbacDatabase&) = delete;

  const SymbolTable& symbols() const { return *symbols_; }
  SymbolTable& symbols() { return *symbols_; }

  // -------------------------------------------------------- Element sets

  Status AddUser(const UserName& user);
  /// Also removes the user's assignments and sessions.
  Status DeleteUser(const UserName& user);
  bool HasUser(const UserName& user) const { return users_.count(user) > 0; }
  bool HasUser(Symbol user) const { return HasKind(user, kUserBit); }

  Status AddRole(const RoleName& role);
  /// Also removes the role's assignments, grants and active instances.
  Status DeleteRole(const RoleName& role);
  bool HasRole(const RoleName& role) const { return roles_.count(role) > 0; }
  bool HasRole(Symbol role) const { return HasKind(role, kRoleBit); }

  Status AddOperation(const OperationName& op);
  bool HasOperation(const OperationName& op) const {
    return operations_.count(op) > 0;
  }
  bool HasOperation(Symbol op) const { return HasKind(op, kOperationBit); }
  Status AddObject(const ObjectName& obj);
  bool HasObject(const ObjectName& obj) const {
    return objects_.count(obj) > 0;
  }
  bool HasObject(Symbol obj) const { return HasKind(obj, kObjectBit); }

  // ------------------------------------------------------------------ UA

  Status Assign(const UserName& user, const RoleName& role);
  Status Deassign(const UserName& user, const RoleName& role);
  bool IsAssigned(const UserName& user, const RoleName& role) const;
  bool IsAssigned(Symbol user, Symbol role) const;
  const std::set<RoleName>& AssignedRoles(const UserName& user) const;
  const std::set<UserName>& AssignedUsers(const RoleName& role) const;

  // ------------------------------------------------------------------ PA

  Status Grant(const Permission& perm, const RoleName& role);
  Status Revoke(const Permission& perm, const RoleName& role);
  bool IsGranted(const Permission& perm, const RoleName& role) const;
  bool IsGranted(Symbol op, Symbol obj, Symbol role) const;
  const std::set<Permission>& RolePermissions(const RoleName& role) const;

  // ------------------------------------------------------------ Sessions

  /// Symbol mirror of one session: owner plus sorted active-role symbols.
  struct SessionState {
    Symbol user;
    std::vector<Symbol> active_roles;  // Sorted by symbol id.

    bool IsActive(Symbol role) const {
      return std::binary_search(active_roles.begin(), active_roles.end(),
                                role);
    }
  };

  Status CreateSession(const UserName& user, const SessionId& session);
  Status DeleteSession(const SessionId& session);
  bool HasSession(const SessionId& session) const {
    return sessions_.count(session) > 0;
  }
  bool HasSession(Symbol session) const {
    return sessions_sym_.count(session.id()) > 0;
  }
  /// Owner and active-role set; error when unknown.
  Result<const Session*> GetSession(const SessionId& session) const;
  /// Symbol mirror lookup; nullptr when unknown. The pointer is valid until
  /// the next session mutation.
  const SessionState* GetSessionState(Symbol session) const;
  const std::set<SessionId>& UserSessions(const UserName& user) const;

  /// Monotonic mutation counter for the session bound to this symbol:
  /// bumped by create/delete and by every active-role change (including
  /// cascaded drops from DeleteUser / DeleteRole / deassignment). Never
  /// reset — a session id deleted and re-created under the same name keeps
  /// counting up, so a decision-cache stamp taken before the delete can
  /// never match again. Sessions never seen read 0.
  uint32_t SessionGeneration(Symbol session) const {
    return session.valid() && session.id() < session_gen_.size()
               ? session_gen_[session.id()]
               : 0;
  }

  /// Table-wide session mutation counter: bumped whenever *any* session's
  /// generation is. The coarse component of the zero-hop fast stamp — a
  /// caller-side reader cannot recompute a per-session generation, but "no
  /// session anywhere has changed" implies "this session has not changed".
  uint32_t sessions_generation() const { return sessions_generation_; }

  /// Adds/removes an active role in a session. Validity (assignment,
  /// authorization, DSD) is checked by the enforcement layer, not here —
  /// only existence of the session and role.
  Status AddSessionRole(const SessionId& session, const RoleName& role);
  Status DropSessionRole(const SessionId& session, const RoleName& role);
  Status AddSessionRole(Symbol session, Symbol role);
  Status DropSessionRole(Symbol session, Symbol role);
  bool IsSessionRoleActive(const SessionId& session,
                           const RoleName& role) const;
  bool IsSessionRoleActive(Symbol session, Symbol role) const;

  /// Number of sessions in which `role` is currently active (counts each
  /// session once) — the quantity cardinality constraints bound.
  int ActiveSessionCount(const RoleName& role) const;
  int ActiveSessionCount(Symbol role) const;

  // ------------------------------------------------------ Introspection

  const std::set<UserName>& users() const { return users_; }
  const std::set<RoleName>& roles() const { return roles_; }
  const std::set<OperationName>& operations() const { return operations_; }
  const std::set<ObjectName>& objects() const { return objects_; }
  std::vector<SessionId> SessionIds() const;
  size_t session_count() const { return sessions_.size(); }

  /// Successful base-relation removals (DeleteUser, DeleteRole, Deassign,
  /// Revoke) since construction. Counted here — not in the facade — so
  /// generated rule actions that mutate the database directly are seen.
  /// Policy-update commits use the aggregate (RbacSystem::base_removals)
  /// to decide between the O(diff) add replay and a full re-sync scan.
  uint64_t removals() const { return removals_; }

 private:
  // What element kinds a symbol is registered as (a name may be reused
  // across kinds, e.g. an object named like a role).
  static constexpr uint8_t kUserBit = 1;
  static constexpr uint8_t kRoleBit = 2;
  static constexpr uint8_t kOperationBit = 4;
  static constexpr uint8_t kObjectBit = 8;

  bool HasKind(Symbol s, uint8_t bit) const {
    return s.valid() && s.id() < kind_bits_.size() &&
           (kind_bits_[s.id()] & bit) != 0;
  }
  Symbol InternName(const std::string& name);
  void SetKind(Symbol s, uint8_t bit);
  void ClearKind(Symbol s, uint8_t bit);
  void BumpSessionGeneration(Symbol session) {
    if (!session.valid()) return;
    if (session.id() >= session_gen_.size()) {
      session_gen_.resize(session.id() + 1, 0);
    }
    ++session_gen_[session.id()];
    ++sessions_generation_;
  }
  static uint64_t PackPermission(Symbol op, Symbol obj) {
    return (static_cast<uint64_t>(op.id()) << 32) | obj.id();
  }

  std::set<UserName> users_;
  std::set<RoleName> roles_;
  std::set<OperationName> operations_;
  std::set<ObjectName> objects_;

  std::map<UserName, std::set<RoleName>> ua_;
  std::map<RoleName, std::set<UserName>> ua_inverse_;
  std::map<RoleName, std::set<Permission>> pa_;
  std::map<SessionId, Session> sessions_;
  std::map<UserName, std::set<SessionId>> user_sessions_;
  std::map<RoleName, int> active_counts_;

  // Symbol mirrors of the relations above, maintained by the same mutators.
  // All keys are dense symbol ids; values holding role lists are sorted.
  std::unique_ptr<SymbolTable> owned_symbols_;
  SymbolTable* symbols_;
  std::vector<uint8_t> kind_bits_;  // Indexed by symbol id.
  std::unordered_map<uint32_t, std::vector<Symbol>> ua_sym_;
  std::unordered_map<uint32_t, std::unordered_set<uint64_t>> pa_sym_;
  std::unordered_map<uint32_t, SessionState> sessions_sym_;
  std::unordered_map<uint32_t, int> active_counts_sym_;
  std::vector<uint32_t> session_gen_;  // Indexed by session symbol id.
  uint32_t sessions_generation_ = 0;   // Sum of all per-session bumps.
  uint64_t removals_ = 0;              // Successful base-relation removals.
};

}  // namespace sentinel

#endif  // SENTINELPP_RBAC_DATABASE_H_
