#ifndef SENTINELPP_RBAC_DATABASE_H_
#define SENTINELPP_RBAC_DATABASE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "rbac/types.h"

namespace sentinel {

/// \brief Raw RBAC state: element sets (USERS, ROLES, OPS, OBS), the
/// user-assignment (UA) and permission-assignment (PA) relations, and
/// SESSIONS. Maintains referential integrity only; policy constraints
/// (hierarchy semantics, SoD, temporal) live in the layers above.
class RbacDatabase {
 public:
  RbacDatabase() = default;

  RbacDatabase(const RbacDatabase&) = delete;
  RbacDatabase& operator=(const RbacDatabase&) = delete;

  // -------------------------------------------------------- Element sets

  Status AddUser(const UserName& user);
  /// Also removes the user's assignments and sessions.
  Status DeleteUser(const UserName& user);
  bool HasUser(const UserName& user) const { return users_.count(user) > 0; }

  Status AddRole(const RoleName& role);
  /// Also removes the role's assignments, grants and active instances.
  Status DeleteRole(const RoleName& role);
  bool HasRole(const RoleName& role) const { return roles_.count(role) > 0; }

  Status AddOperation(const OperationName& op);
  bool HasOperation(const OperationName& op) const {
    return operations_.count(op) > 0;
  }
  Status AddObject(const ObjectName& obj);
  bool HasObject(const ObjectName& obj) const {
    return objects_.count(obj) > 0;
  }

  // ------------------------------------------------------------------ UA

  Status Assign(const UserName& user, const RoleName& role);
  Status Deassign(const UserName& user, const RoleName& role);
  bool IsAssigned(const UserName& user, const RoleName& role) const;
  const std::set<RoleName>& AssignedRoles(const UserName& user) const;
  const std::set<UserName>& AssignedUsers(const RoleName& role) const;

  // ------------------------------------------------------------------ PA

  Status Grant(const Permission& perm, const RoleName& role);
  Status Revoke(const Permission& perm, const RoleName& role);
  bool IsGranted(const Permission& perm, const RoleName& role) const;
  const std::set<Permission>& RolePermissions(const RoleName& role) const;

  // ------------------------------------------------------------ Sessions

  Status CreateSession(const UserName& user, const SessionId& session);
  Status DeleteSession(const SessionId& session);
  bool HasSession(const SessionId& session) const {
    return sessions_.count(session) > 0;
  }
  /// Owner and active-role set; error when unknown.
  Result<const Session*> GetSession(const SessionId& session) const;
  const std::set<SessionId>& UserSessions(const UserName& user) const;

  /// Adds/removes an active role in a session. Validity (assignment,
  /// authorization, DSD) is checked by the enforcement layer, not here —
  /// only existence of the session and role.
  Status AddSessionRole(const SessionId& session, const RoleName& role);
  Status DropSessionRole(const SessionId& session, const RoleName& role);
  bool IsSessionRoleActive(const SessionId& session,
                           const RoleName& role) const;

  /// Number of sessions in which `role` is currently active (counts each
  /// session once) — the quantity cardinality constraints bound.
  int ActiveSessionCount(const RoleName& role) const;

  // ------------------------------------------------------ Introspection

  const std::set<UserName>& users() const { return users_; }
  const std::set<RoleName>& roles() const { return roles_; }
  const std::set<OperationName>& operations() const { return operations_; }
  const std::set<ObjectName>& objects() const { return objects_; }
  std::vector<SessionId> SessionIds() const;
  size_t session_count() const { return sessions_.size(); }

 private:
  std::set<UserName> users_;
  std::set<RoleName> roles_;
  std::set<OperationName> operations_;
  std::set<ObjectName> objects_;

  std::map<UserName, std::set<RoleName>> ua_;
  std::map<RoleName, std::set<UserName>> ua_inverse_;
  std::map<RoleName, std::set<Permission>> pa_;
  std::map<SessionId, Session> sessions_;
  std::map<UserName, std::set<SessionId>> user_sessions_;
  std::map<RoleName, int> active_counts_;
};

}  // namespace sentinel

#endif  // SENTINELPP_RBAC_DATABASE_H_
