#include "rbac/sod.h"

namespace sentinel {

Status SodStore::CreateSet(const std::string& name, std::set<RoleName> roles,
                           int n) {
  if (name.empty()) {
    return Status::InvalidArgument(kind_ + " set name must not be empty");
  }
  if (sets_.count(name) > 0) {
    return Status::AlreadyExists(kind_ + " set exists: " + name);
  }
  if (n < 2) {
    return Status::InvalidArgument(kind_ + " cardinality must be >= 2");
  }
  if (static_cast<int>(roles.size()) < n) {
    return Status::InvalidArgument(
        kind_ + " set " + name +
        " must contain at least as many roles as its cardinality");
  }
  for (const RoleName& role : roles) by_role_[role].insert(name);
  sets_.emplace(name, SodSet{name, std::move(roles), n});
  return Status::OK();
}

Status SodStore::DeleteSet(const std::string& name) {
  auto it = sets_.find(name);
  if (it == sets_.end()) {
    return Status::NotFound("no such " + kind_ + " set: " + name);
  }
  for (const RoleName& role : it->second.roles) by_role_[role].erase(name);
  sets_.erase(it);
  ++removals_;
  return Status::OK();
}

Status SodStore::AddRoleMember(const std::string& name,
                               const RoleName& role) {
  auto it = sets_.find(name);
  if (it == sets_.end()) {
    return Status::NotFound("no such " + kind_ + " set: " + name);
  }
  if (!it->second.roles.insert(role).second) {
    return Status::AlreadyExists(role + " already in " + kind_ + " set " +
                                 name);
  }
  by_role_[role].insert(name);
  return Status::OK();
}

Status SodStore::DeleteRoleMember(const std::string& name,
                                  const RoleName& role) {
  auto it = sets_.find(name);
  if (it == sets_.end()) {
    return Status::NotFound("no such " + kind_ + " set: " + name);
  }
  if (static_cast<int>(it->second.roles.size()) - 1 < it->second.n) {
    return Status::ConstraintViolation(
        "removing " + role + " would make " + kind_ + " set " + name +
        " smaller than its cardinality");
  }
  if (it->second.roles.erase(role) == 0) {
    return Status::NotFound(role + " not in " + kind_ + " set " + name);
  }
  by_role_[role].erase(name);
  return Status::OK();
}

Status SodStore::SetCardinality(const std::string& name, int n) {
  auto it = sets_.find(name);
  if (it == sets_.end()) {
    return Status::NotFound("no such " + kind_ + " set: " + name);
  }
  if (n < 2 || n > static_cast<int>(it->second.roles.size())) {
    return Status::InvalidArgument("invalid cardinality for " + kind_ +
                                   " set " + name);
  }
  it->second.n = n;
  return Status::OK();
}

Result<const SodSet*> SodStore::GetSet(const std::string& name) const {
  auto it = sets_.find(name);
  if (it == sets_.end()) {
    return Status::NotFound("no such " + kind_ + " set: " + name);
  }
  return &it->second;
}

std::vector<const SodSet*> SodStore::AllSets() const {
  std::vector<const SodSet*> out;
  out.reserve(sets_.size());
  for (const auto& [name, set] : sets_) out.push_back(&set);
  return out;
}

std::vector<const SodSet*> SodStore::SetsContaining(
    const RoleName& role) const {
  std::vector<const SodSet*> out;
  auto it = by_role_.find(role);
  if (it == by_role_.end()) return out;
  for (const std::string& name : it->second) {
    out.push_back(&sets_.at(name));
  }
  return out;
}

bool SodStore::RoleConstrained(const RoleName& role) const {
  auto it = by_role_.find(role);
  return it != by_role_.end() && !it->second.empty();
}

void SodStore::EraseRole(const RoleName& role) {
  auto it = by_role_.find(role);
  if (it == by_role_.end()) return;
  const std::set<std::string> names = it->second;
  for (const std::string& name : names) {
    SodSet& set = sets_.at(name);
    set.roles.erase(role);
    if (static_cast<int>(set.roles.size()) < set.n) {
      (void)DeleteSet(name);
    }
  }
  by_role_.erase(role);
}

bool SodStore::Satisfies(const std::set<RoleName>& roles) const {
  return FirstViolated(roles).empty();
}

std::string SodStore::FirstViolated(const std::set<RoleName>& roles) const {
  // Count memberships per set touched by `roles`.
  std::map<std::string, int> hits;
  for (const RoleName& role : roles) {
    auto it = by_role_.find(role);
    if (it == by_role_.end()) continue;
    for (const std::string& name : it->second) {
      if (++hits[name] >= sets_.at(name).n) return name;
    }
  }
  return "";
}

}  // namespace sentinel
