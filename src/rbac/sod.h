#ifndef SENTINELPP_RBAC_SOD_H_
#define SENTINELPP_RBAC_SOD_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "rbac/types.h"

namespace sentinel {

/// \brief One separation-of-duty relation: a named set of mutually
/// exclusive roles with a cardinality n >= 2. For SSD: no user may be
/// assigned (authorized, with hierarchies) to n or more of the roles. For
/// DSD: no session may have n or more of the roles active simultaneously
/// (the paper's "assigned to M, active in fewer than N").
struct SodSet {
  std::string name;
  std::set<RoleName> roles;
  int n = 2;

  friend bool operator==(const SodSet&, const SodSet&) = default;
};

/// \brief A collection of SoD relations (used for both SSD and DSD; the
/// enforcement layer decides what the sets constrain).
class SodStore {
 public:
  explicit SodStore(std::string kind) : kind_(std::move(kind)) {}

  /// Creates a named set. Requires n >= 2 and |roles| >= n (NIST: the
  /// constraint must be satisfiable and non-vacuous).
  Status CreateSet(const std::string& name, std::set<RoleName> roles, int n);
  Status DeleteSet(const std::string& name);
  Status AddRoleMember(const std::string& name, const RoleName& role);
  Status DeleteRoleMember(const std::string& name, const RoleName& role);
  Status SetCardinality(const std::string& name, int n);

  /// Successful whole-set removals (DeleteSet, including the cascades
  /// inside EraseRole) since construction; see RbacDatabase::removals().
  uint64_t removals() const { return removals_; }

  Result<const SodSet*> GetSet(const std::string& name) const;
  std::vector<const SodSet*> AllSets() const;
  /// Sets that contain `role`.
  std::vector<const SodSet*> SetsContaining(const RoleName& role) const;
  bool RoleConstrained(const RoleName& role) const;

  /// Removes `role` from every set (on role deletion). A set shrinking
  /// below its cardinality is dropped entirely (it can no longer bind).
  void EraseRole(const RoleName& role);

  /// True iff `roles` satisfies every set: fewer than n members of each.
  bool Satisfies(const std::set<RoleName>& roles) const;

  /// Name of the first violated set for `roles`, or empty when none.
  std::string FirstViolated(const std::set<RoleName>& roles) const;

  size_t size() const { return sets_.size(); }

 private:
  std::string kind_;  // "SSD" or "DSD", for messages.
  std::map<std::string, SodSet> sets_;
  std::map<RoleName, std::set<std::string>> by_role_;
  uint64_t removals_ = 0;  // Successful whole-set removals.
};

}  // namespace sentinel

#endif  // SENTINELPP_RBAC_SOD_H_
