#ifndef SENTINELPP_RBAC_TYPES_H_
#define SENTINELPP_RBAC_TYPES_H_

#include <set>
#include <string>

namespace sentinel {

/// RBAC element names. The standard's element sets USERS, ROLES, OPS, OBS
/// are modeled as registered string names (instances of the entities U and
/// R in the paper's ER model).
using UserName = std::string;
using RoleName = std::string;
using OperationName = std::string;
using ObjectName = std::string;
using SessionId = std::string;

/// \brief A permission: an approval to perform `operation` on `object`
/// (NIST PRMS = 2^(OPS x OBS); we use the atomic pairs).
struct Permission {
  OperationName operation;
  ObjectName object;

  auto operator<=>(const Permission&) const = default;

  std::string ToString() const { return operation + "(" + object + ")"; }
};

/// \brief A user session: one user, a subset of that user's (authorized)
/// roles currently active. NIST SESSIONS.
struct Session {
  SessionId id;
  UserName user;
  std::set<RoleName> active_roles;
};

}  // namespace sentinel

#endif  // SENTINELPP_RBAC_TYPES_H_
