#include "rbac/hierarchy.h"

#include <deque>

namespace sentinel {

namespace {

const std::set<RoleName>& EmptySet() {
  static const std::set<RoleName>* kEmpty = new std::set<RoleName>();
  return *kEmpty;
}

// Collects reachability over `edges` starting at `start`, inclusive.
std::set<RoleName> Reach(const std::map<RoleName, std::set<RoleName>>& edges,
                         const RoleName& start) {
  std::set<RoleName> seen = {start};
  std::deque<RoleName> frontier = {start};
  while (!frontier.empty()) {
    const RoleName current = std::move(frontier.front());
    frontier.pop_front();
    auto it = edges.find(current);
    if (it == edges.end()) continue;
    for (const RoleName& next : it->second) {
      if (seen.insert(next).second) frontier.push_back(next);
    }
  }
  return seen;
}

}  // namespace

Status RoleHierarchy::AddInheritance(const RoleName& senior,
                                     const RoleName& junior) {
  if (senior == junior) {
    return Status::InvalidArgument("role cannot inherit from itself: " +
                                   senior);
  }
  // A cycle would arise iff junior already dominates senior.
  if (Dominates(junior, senior)) {
    return Status::ConstraintViolation("inheritance " + senior + " >>= " +
                                       junior + " would create a cycle");
  }
  if (!juniors_[senior].insert(junior).second) {
    return Status::AlreadyExists("inheritance exists: " + senior + " >>= " +
                                 junior);
  }
  seniors_[junior].insert(senior);
  ++epoch_;
  return Status::OK();
}

Status RoleHierarchy::DeleteInheritance(const RoleName& senior,
                                        const RoleName& junior) {
  auto it = juniors_.find(senior);
  if (it == juniors_.end() || it->second.erase(junior) == 0) {
    return Status::NotFound("no inheritance: " + senior + " >>= " + junior);
  }
  seniors_[junior].erase(senior);
  ++epoch_;
  ++removals_;
  return Status::OK();
}

void RoleHierarchy::EraseRole(const RoleName& role) {
  auto down = juniors_.find(role);
  if (down != juniors_.end()) {
    for (const RoleName& junior : down->second) seniors_[junior].erase(role);
    juniors_.erase(down);
    ++removals_;
  }
  auto up = seniors_.find(role);
  if (up != seniors_.end()) {
    for (const RoleName& senior : up->second) juniors_[senior].erase(role);
    seniors_.erase(up);
    ++removals_;
  }
  ++epoch_;
}

bool RoleHierarchy::Dominates(const RoleName& senior,
                              const RoleName& junior) const {
  if (senior == junior) return true;
  return Reach(juniors_, senior).count(junior) > 0;
}

std::set<RoleName> RoleHierarchy::JuniorsOf(const RoleName& role) const {
  return Reach(juniors_, role);
}

std::set<RoleName> RoleHierarchy::SeniorsOf(const RoleName& role) const {
  return Reach(seniors_, role);
}

const std::set<RoleName>& RoleHierarchy::ImmediateJuniors(
    const RoleName& role) const {
  auto it = juniors_.find(role);
  return it == juniors_.end() ? EmptySet() : it->second;
}

const std::set<RoleName>& RoleHierarchy::ImmediateSeniors(
    const RoleName& role) const {
  auto it = seniors_.find(role);
  return it == seniors_.end() ? EmptySet() : it->second;
}

int RoleHierarchy::edge_count() const {
  int n = 0;
  for (const auto& [senior, juniors] : juniors_) {
    n += static_cast<int>(juniors.size());
  }
  return n;
}

}  // namespace sentinel
