#ifndef SENTINELPP_RBAC_CORE_API_H_
#define SENTINELPP_RBAC_CORE_API_H_

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rbac/database.h"
#include "rbac/hierarchy.h"
#include "rbac/sod.h"
#include "rbac/types.h"

namespace sentinel {

/// \brief The NIST RBAC reference model (ANSI INCITS 359-2004): core,
/// general role hierarchies, SSD and DSD relations, with the standard's
/// administrative commands, system functions and review functions.
///
/// This class enforces constraints with straight-line code. It serves two
/// purposes in the reproduction: (1) it is the mutable object base the
/// OWTE engine's generated rules read and update through fine-grained
/// predicates/mutators, and (2) wrapped by baseline::DirectEnforcer it is
/// the hand-coded comparator the paper argues rule generation replaces.
class RbacSystem {
 public:
  /// `symbols` is shared with the owning engine (see RbacDatabase); null
  /// gives the database a private table.
  explicit RbacSystem(SymbolTable* symbols = nullptr)
      : db_(symbols), ssd_("SSD"), dsd_("DSD") {}

  RbacSystem(const RbacSystem&) = delete;
  RbacSystem& operator=(const RbacSystem&) = delete;

  // ------------------------------------- Administrative commands (users)

  Status AddUser(const UserName& user) { return db_.AddUser(user); }
  Status DeleteUser(const UserName& user) { return db_.DeleteUser(user); }
  Status AddRole(const RoleName& role) { return db_.AddRole(role); }
  /// Removes the role everywhere: UA, PA, sessions, hierarchy, SoD sets.
  Status DeleteRole(const RoleName& role);

  /// Assigns `user` to `role`; rejected when the user's authorized role
  /// set would violate an SSD relation (hierarchy-aware, per the standard).
  Status AssignUser(const UserName& user, const RoleName& role);
  Status DeassignUser(const UserName& user, const RoleName& role);

  Status GrantPermission(const OperationName& op, const ObjectName& obj,
                         const RoleName& role) {
    return db_.Grant(Permission{op, obj}, role);
  }
  Status RevokePermission(const OperationName& op, const ObjectName& obj,
                          const RoleName& role) {
    return db_.Revoke(Permission{op, obj}, role);
  }

  // --------------------------------------------- Hierarchy administration

  /// Adds senior >>= junior; rejected on cycles and when any user's
  /// enlarged authorized role set would violate an SSD relation.
  Status AddInheritance(const RoleName& senior, const RoleName& junior);
  Status DeleteInheritance(const RoleName& senior, const RoleName& junior);

  // --------------------------------------------------- SoD administration

  /// Creates an SSD relation; rejected when an existing user's authorized
  /// roles already violate it.
  Status CreateSsdSet(const std::string& name, std::set<RoleName> roles,
                      int n);
  Status DeleteSsdSet(const std::string& name) { return ssd_.DeleteSet(name); }
  Status AddSsdRoleMember(const std::string& name, const RoleName& role);
  Status DeleteSsdRoleMember(const std::string& name, const RoleName& role) {
    return ssd_.DeleteRoleMember(name, role);
  }
  Status SetSsdCardinality(const std::string& name, int n);

  /// Creates a DSD relation; rejected when an existing session's active
  /// roles already violate it.
  Status CreateDsdSet(const std::string& name, std::set<RoleName> roles,
                      int n);

  /// Policy-reconcile installers: create an SoD set WITHOUT the runtime
  /// violation sweep the admin-facing Create*Set calls run. Reconciles
  /// install sets from a statically-validated policy, and pre-existing
  /// runtime state that violates a new set is grandfathered (the
  /// constraint binds future assignments/activations). The sweep would
  /// also make installation depend on whole-system runtime state, which
  /// in the sharded service legitimately differs per replica — a
  /// state-dependent refusal there would install the set on some shards
  /// and not others.
  Status InstallSsdSet(const std::string& name, std::set<RoleName> roles,
                       int n);
  Status InstallDsdSet(const std::string& name, std::set<RoleName> roles,
                       int n);
  Status DeleteDsdSet(const std::string& name) { return dsd_.DeleteSet(name); }
  Status AddDsdRoleMember(const std::string& name, const RoleName& role);
  Status DeleteDsdRoleMember(const std::string& name, const RoleName& role) {
    return dsd_.DeleteRoleMember(name, role);
  }
  Status SetDsdCardinality(const std::string& name, int n);

  // ------------------------------------------------------ System functions

  Status CreateSession(const UserName& user, const SessionId& session) {
    return db_.CreateSession(user, session);
  }
  Status DeleteSession(const SessionId& session) {
    return db_.DeleteSession(session);
  }

  /// Activates `role` in `session` for `user`. Checks, in the paper's AAR
  /// order: user known, session known and owned, role known and not yet
  /// active, user authorized (assignment + hierarchy), DSD satisfied.
  Status AddActiveRole(const UserName& user, const SessionId& session,
                       const RoleName& role);
  Status DropActiveRole(const UserName& user, const SessionId& session,
                        const RoleName& role);

  /// True iff some active role of the session is authorized (directly or
  /// via a junior) for operation `op` on object `obj`.
  Result<bool> CheckAccess(const SessionId& session, const OperationName& op,
                           const ObjectName& obj) const;
  /// Symbol hot path: session lookup, hierarchy closure and permission
  /// membership are all integer operations (closures cached per hierarchy
  /// epoch). Unknown session yields NotFound like the string overload.
  Result<bool> CheckAccess(Symbol session, Symbol op, Symbol obj) const;

  // ------------------------------------------------------ Review functions

  const std::set<UserName>& AssignedUsers(const RoleName& role) const {
    return db_.AssignedUsers(role);
  }
  const std::set<RoleName>& AssignedRoles(const UserName& user) const {
    return db_.AssignedRoles(user);
  }
  /// Users assigned to `role` or to any of its seniors.
  std::set<UserName> AuthorizedUsers(const RoleName& role) const;
  /// Roles the user is assigned to, plus all their juniors.
  std::set<RoleName> AuthorizedRoles(const UserName& user) const;
  /// Permissions granted to `role`; with `inherited`, includes juniors'.
  std::set<Permission> RolePermissions(const RoleName& role,
                                       bool inherited) const;
  /// Permissions the user can obtain through any authorized role.
  std::set<Permission> UserPermissions(const UserName& user) const;
  std::set<RoleName> SessionRoles(const SessionId& session) const;
  /// Permissions available in the session via active roles (inherited).
  std::set<Permission> SessionPermissions(const SessionId& session) const;
  std::set<OperationName> RoleOperationsOnObject(const RoleName& role,
                                                 const ObjectName& obj) const;
  std::set<OperationName> UserOperationsOnObject(const UserName& user,
                                                 const ObjectName& obj) const;

  // ----------------------------- Fine-grained predicates (rule conditions)

  /// True iff the user is assigned to `role` or to one of its seniors —
  /// the paper's checkAuthorizationR1 (reduces to checkAssignedR1 when the
  /// role takes part in no hierarchy).
  bool IsAuthorized(const UserName& user, const RoleName& role) const;
  bool IsAuthorized(Symbol user, Symbol role) const;

  /// True iff activating `role` in `session` keeps every DSD relation
  /// satisfied — the paper's checkDynamicSoDSet.
  bool DsdSatisfiedWith(const SessionId& session, const RoleName& role) const;
  /// With no DSD relations defined (the common case) this is a single
  /// session lookup; otherwise it falls back to the string evaluation.
  bool DsdSatisfiedWith(Symbol session, Symbol role) const;

  /// True iff assigning `role` to `user` keeps every SSD relation
  /// satisfied over the user's authorized roles.
  bool SsdSatisfiedWith(const UserName& user, const RoleName& role) const;

  // ----------------------------------------------------- Component access

  RbacDatabase& db() { return db_; }
  const RbacDatabase& db() const { return db_; }
  RoleHierarchy& hierarchy() { return hierarchy_; }
  const RoleHierarchy& hierarchy() const { return hierarchy_; }
  SodStore& ssd() { return ssd_; }
  const SodStore& ssd() const { return ssd_; }
  SodStore& dsd() { return dsd_; }
  const SodStore& dsd() const { return dsd_; }

  const SymbolTable& symbols() const { return db_.symbols(); }
  SymbolTable& symbols() { return db_.symbols(); }

  /// Count of successful base-state REMOVALS (deassign, revoke, delete
  /// user/role/edge/SoD-set) since construction, summed across the
  /// component stores — counted at the store layer so generated rule
  /// actions that mutate through db()/hierarchy()/ssd()/dsd() directly are
  /// seen too. A policy-update commit compares this against the mark it
  /// captured at the last reconcile: if unchanged, the runtime DB still
  /// holds everything the previous policy installed, and the commit may
  /// replay the precomputed add delta instead of re-scanning the whole
  /// target policy (see BaseStateDelta).
  uint64_t base_removals() const {
    return db_.removals() + hierarchy_.removals() + ssd_.removals() +
           dsd_.removals();
  }

 private:
  /// Every user's authorized role set satisfies every SSD relation; used
  /// to validate hierarchy and SSD administration. Returns the offending
  /// (user, set) description, or empty when fine.
  std::string FindSsdViolation() const;

  /// Hierarchy closures as symbol vectors, memoized until the hierarchy's
  /// epoch moves (administration is rare; decisions are hot).
  const std::vector<Symbol>& JuniorsClosure(Symbol role) const;
  const std::vector<Symbol>& SeniorsClosure(Symbol role) const;

  RbacDatabase db_;
  RoleHierarchy hierarchy_;
  SodStore ssd_;
  SodStore dsd_;

  mutable std::unordered_map<uint32_t, std::vector<Symbol>> juniors_cache_;
  mutable std::unordered_map<uint32_t, std::vector<Symbol>> seniors_cache_;
  mutable uint64_t cache_epoch_ = 0;
};

}  // namespace sentinel

#endif  // SENTINELPP_RBAC_CORE_API_H_
