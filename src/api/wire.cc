#include "api/wire.h"

namespace sentinel {
namespace wire {

namespace {

/// Frame scaffolding: appends the length prefix (backpatched) + fixed
/// header, returns the offset of the length field for Finish.
size_t BeginFrame(MsgType type, uint64_t request_id, std::string* out) {
  const size_t length_at = out->size();
  PutU32(0, out);  // Backpatched by FinishFrame.
  out->push_back(static_cast<char>(kWireVersion));
  out->push_back(static_cast<char>(type));
  PutU16(0, out);  // reserved
  PutU64(request_id, out);
  return length_at;
}

void FinishFrame(size_t length_at, std::string* out) {
  const uint32_t length =
      static_cast<uint32_t>(out->size() - length_at - kLengthPrefixBytes);
  for (int i = 0; i < 4; ++i) {
    (*out)[length_at + i] = static_cast<char>((length >> (8 * i)) & 0xff);
  }
}

Status CheckFieldLength(std::string_view name, std::string_view value) {
  if (value.size() > UINT16_MAX) {
    return Status::InvalidArgument(std::string("wire field '") +
                                   std::string(name) +
                                   "' exceeds 65535 bytes");
  }
  return Status::OK();
}

/// Sequential payload reader with bounds checking.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool Need(size_t n) const { return pos_ + n <= data_.size(); }
  bool AtEnd() const { return pos_ == data_.size(); }

  uint16_t U16() { return GetU16(Take(2)); }
  uint32_t U32() { return GetU32(Take(4)); }
  uint64_t U64() { return GetU64(Take(8)); }
  int64_t I64() { return GetI64(Take(8)); }
  uint8_t U8() { return static_cast<uint8_t>(*Take(1)); }
  std::string Bytes(size_t n) {
    const char* p = Take(n);
    return std::string(p, n);
  }

 private:
  const char* Take(size_t n) {
    const char* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

bool Malformed(std::string message, ProtocolError* error) {
  error->code = WireError::kMalformedFrame;
  error->message = std::move(message);
  error->fatal = true;
  return false;
}

}  // namespace

const char* WireErrorToString(WireError code) {
  switch (code) {
    case WireError::kUnsupportedVersion:
      return "unsupported protocol version";
    case WireError::kUnknownMessageType:
      return "unknown message type";
    case WireError::kFrameTooLarge:
      return "frame exceeds maximum size";
    case WireError::kMalformedFrame:
      return "malformed frame";
    case WireError::kInvalidDeadline:
      return "invalid (negative non-sentinel) deadline";
    case WireError::kShuttingDown:
      return "server shutting down";
    case WireError::kFieldTooLong:
      return "string field too long";
  }
  return "unknown wire error";
}

// ---------------------------------------------------------------- Encoding

Status EncodeCheckRequest(uint64_t request_id, const AccessRequest& request,
                          std::string* out) {
  SENTINEL_RETURN_IF_ERROR(CheckFieldLength("user", request.user));
  SENTINEL_RETURN_IF_ERROR(CheckFieldLength("session", request.session));
  SENTINEL_RETURN_IF_ERROR(CheckFieldLength("operation", request.operation));
  SENTINEL_RETURN_IF_ERROR(CheckFieldLength("object", request.object));
  SENTINEL_RETURN_IF_ERROR(CheckFieldLength("purpose", request.purpose));
  const size_t at = BeginFrame(MsgType::kCheckRequest, request_id, out);
  PutI64(request.deadline, out);
  PutU16(static_cast<uint16_t>(request.user.size()), out);
  PutU16(static_cast<uint16_t>(request.session.size()), out);
  PutU16(static_cast<uint16_t>(request.operation.size()), out);
  PutU16(static_cast<uint16_t>(request.object.size()), out);
  PutU16(static_cast<uint16_t>(request.purpose.size()), out);
  out->append(request.user);
  out->append(request.session);
  out->append(request.operation);
  out->append(request.object);
  out->append(request.purpose);
  FinishFrame(at, out);
  return Status::OK();
}

Status EncodeDecision(uint64_t request_id, const AccessDecision& decision,
                      std::string* out) {
  SENTINEL_RETURN_IF_ERROR(CheckFieldLength("rule", decision.rule));
  SENTINEL_RETURN_IF_ERROR(CheckFieldLength("reason", decision.reason));
  SENTINEL_RETURN_IF_ERROR(
      CheckFieldLength("failed_condition", decision.failed_condition));
  const size_t at = BeginFrame(MsgType::kDecision, request_id, out);
  out->push_back(decision.allowed ? 1 : 0);
  out->push_back(static_cast<char>(ToWireOutcome(decision.outcome)));
  PutU16(0, out);  // reserved
  PutU32(decision.shard, out);
  PutU64(decision.epoch, out);
  PutI64(decision.latency, out);
  PutU16(static_cast<uint16_t>(decision.rule.size()), out);
  PutU16(static_cast<uint16_t>(decision.reason.size()), out);
  PutU16(static_cast<uint16_t>(decision.failed_condition.size()), out);
  out->append(decision.rule);
  out->append(decision.reason);
  out->append(decision.failed_condition);
  FinishFrame(at, out);
  return Status::OK();
}

void EncodeError(uint64_t request_id, WireError code, std::string_view message,
                 std::string* out) {
  // Error messages are advisory; clamp instead of failing the failure path.
  if (message.size() > UINT16_MAX) message = message.substr(0, UINT16_MAX);
  const size_t at = BeginFrame(MsgType::kError, request_id, out);
  PutU16(static_cast<uint16_t>(code), out);
  PutU16(0, out);  // reserved
  PutU16(static_cast<uint16_t>(message.size()), out);
  out->append(message);
  FinishFrame(at, out);
}

void EncodePing(uint64_t request_id, std::string* out) {
  FinishFrame(BeginFrame(MsgType::kPing, request_id, out), out);
}

void EncodePong(uint64_t request_id, std::string* out) {
  FinishFrame(BeginFrame(MsgType::kPong, request_id, out), out);
}

// ---------------------------------------------------------------- Decoding

bool DecodeFrame(std::string_view data, FrameView* frame,
                 ProtocolError* error) {
  if (data.size() < kFrameHeaderBytes) {
    return Malformed("frame shorter than fixed header", error);
  }
  frame->version = static_cast<uint8_t>(data[0]);
  if (frame->version != kWireVersion) {
    error->code = WireError::kUnsupportedVersion;
    error->message = "version " + std::to_string(frame->version) +
                     " (this peer speaks " + std::to_string(kWireVersion) +
                     ")";
    error->fatal = true;
    return false;
  }
  frame->raw_type = static_cast<uint8_t>(data[1]);
  frame->type = static_cast<MsgType>(frame->raw_type);
  // data[2..3] reserved: ignored (forward compatibility).
  frame->request_id = GetU64(data.data() + 4);
  frame->payload = data.substr(kFrameHeaderBytes);
  return true;
}

bool DecodeCheckRequest(const FrameView& frame, CheckRequestMsg* out,
                        ProtocolError* error) {
  Reader r(frame.payload);
  if (!r.Need(8 + 5 * 2)) {
    return Malformed("check-request payload truncated", error);
  }
  out->request_id = frame.request_id;
  AccessRequest& req = out->request;
  req.deadline = r.I64();
  const uint16_t user_len = r.U16();
  const uint16_t session_len = r.U16();
  const uint16_t operation_len = r.U16();
  const uint16_t object_len = r.U16();
  const uint16_t purpose_len = r.U16();
  const size_t total = static_cast<size_t>(user_len) + session_len +
                       operation_len + object_len + purpose_len;
  if (!r.Need(total)) {
    return Malformed("check-request strings exceed payload", error);
  }
  req.user = r.Bytes(user_len);
  req.session = r.Bytes(session_len);
  req.operation = r.Bytes(operation_len);
  req.object = r.Bytes(object_len);
  req.purpose = r.Bytes(purpose_len);
  // The wire boundary enforces what the in-process API only documents: a
  // negative deadline is either *the* sentinel or a caller bug. Reject the
  // bug with a typed, request-scoped error instead of silently treating it
  // as "no deadline".
  if (req.deadline < 0 && req.deadline != AccessRequest::kNoDeadline) {
    error->code = WireError::kInvalidDeadline;
    error->message =
        "deadline " + std::to_string(req.deadline) +
        "us is negative but not the kNoDeadline sentinel (-1)";
    error->fatal = false;
    return false;
  }
  return true;
}

bool DecodeDecision(const FrameView& frame, DecisionMsg* out,
                    ProtocolError* error) {
  Reader r(frame.payload);
  if (!r.Need(1 + 1 + 2 + 4 + 8 + 8 + 3 * 2)) {
    return Malformed("decision payload truncated", error);
  }
  out->request_id = frame.request_id;
  AccessDecision& d = out->decision;
  d.allowed = r.U8() != 0;
  const uint8_t outcome_id = r.U8();
  const std::optional<AccessOutcome> outcome = FromWireOutcome(outcome_id);
  if (!outcome.has_value()) {
    return Malformed("unknown AccessOutcome wire id " +
                         std::to_string(outcome_id),
                     error);
  }
  d.outcome = *outcome;
  (void)r.U16();  // reserved
  d.shard = r.U32();
  d.epoch = r.U64();
  d.latency = r.I64();
  const uint16_t rule_len = r.U16();
  const uint16_t reason_len = r.U16();
  const uint16_t failed_len = r.U16();
  const size_t total =
      static_cast<size_t>(rule_len) + reason_len + failed_len;
  if (!r.Need(total)) {
    return Malformed("decision strings exceed payload", error);
  }
  d.rule = r.Bytes(rule_len);
  d.reason = r.Bytes(reason_len);
  d.failed_condition = r.Bytes(failed_len);
  return true;
}

bool DecodeError(const FrameView& frame, ErrorMsg* out, ProtocolError* error) {
  Reader r(frame.payload);
  if (!r.Need(2 + 2 + 2)) {
    return Malformed("error payload truncated", error);
  }
  out->request_id = frame.request_id;
  out->code = static_cast<WireError>(r.U16());
  (void)r.U16();  // reserved
  const uint16_t message_len = r.U16();
  if (!r.Need(message_len)) {
    return Malformed("error message exceeds payload", error);
  }
  out->message = r.Bytes(message_len);
  return true;
}

}  // namespace wire
}  // namespace sentinel
