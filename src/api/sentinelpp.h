/// \file
/// \brief sentinelpp public facade.
///
/// This is the one header an embedding application includes. It defines the
/// stable request/decision value types of the service boundary and pulls in
/// the concurrent AuthorizationService plus the policy toolchain (DSL
/// parser, clock, calendar, reports).
///
/// The boundary contract: callers describe an access check as an
/// `AccessRequest` value and receive an `AccessDecision` value — no
/// positional string-parameter overloads, no engine internals. The
/// string-keyed `AuthorizationEngine` signatures remain as the internal
/// layer underneath `AuthorizationService`.
///
/// Layout note: the value types live under their own include guard, and the
/// umbrella includes under a second one, so that
/// `service/authorization_service.h` can include this header for the types
/// without an include cycle.

#ifndef SENTINELPP_API_SENTINELPP_TYPES_H_
#define SENTINELPP_API_SENTINELPP_TYPES_H_

#include <cstdint>
#include <string>

#include "common/value.h"
#include "rbac/types.h"

namespace sentinel {

/// \brief One access-check request at the service boundary.
///
/// `user` is the routing key: every request for the same user is handled by
/// the same engine shard, which keeps that user's sessions, DSD state and
/// activation history shard-local. It may be left empty for pure
/// session-keyed checks (legacy callers); the service then resolves the
/// session's home shard through its session registry.
struct AccessRequest {
  UserName user;
  SessionId session;
  OperationName operation;
  ObjectName object;
  /// Optional; required when the object carries a privacy policy.
  std::string purpose;
};

/// \brief The service's verdict for one request.
///
/// A value type: safe to copy across threads, carries everything an
/// embedding application audits on — the verdict, the generated rule that
/// produced it, the paper-style denial reason, and service metadata
/// (which shard decided, under which administrative epoch, and the
/// submit-to-decision latency).
struct AccessDecision {
  bool allowed = false;
  /// Name of the generated OWTE rule that produced the verdict
  /// (e.g. "CA.global"); empty for the fail-safe default deny.
  std::string rule;
  /// Denial reason ("Permission Denied", ...). Empty for allows.
  std::string reason;
  /// The WHEN condition whose failure routed the deciding rule into its
  /// ELSE branch. Diagnostic only.
  std::string failed_condition;
  /// Submit-to-decision latency in microseconds of wall time (includes
  /// mailbox queueing in concurrent mode; 0 is possible for sub-µs calls).
  Duration latency = 0;
  /// Shard whose engine decided the request.
  uint32_t shard = 0;
  /// Administrative epoch the deciding shard had applied. Monotonic:
  /// once an admin broadcast returns, every later decision carries an
  /// epoch >= that broadcast's epoch on every shard.
  uint64_t epoch = 0;
};

}  // namespace sentinel

#endif  // SENTINELPP_API_SENTINELPP_TYPES_H_

// ----------------------------------------------------------- Facade umbrella
// (separately guarded; see the layout note above).
#ifndef SENTINELPP_API_SENTINELPP_H_
#define SENTINELPP_API_SENTINELPP_H_

#include "common/calendar.h"
#include "common/clock.h"
#include "core/policy_parser.h"
#include "core/report.h"
#include "rules/decision.h"
#include "service/authorization_service.h"
#include "telemetry/exposition.h"

#endif  // SENTINELPP_API_SENTINELPP_H_
