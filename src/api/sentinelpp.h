/// \file
/// \brief sentinelpp public facade.
///
/// This is the one header an embedding application includes. It defines the
/// stable request/decision value types of the service boundary and pulls in
/// the concurrent AuthorizationService plus the policy toolchain (DSL
/// parser, clock, calendar, reports).
///
/// The boundary contract: callers describe an access check as an
/// `AccessRequest` value and receive an `AccessDecision` value — no
/// positional string-parameter overloads, no engine internals. The
/// string-keyed `AuthorizationEngine` signatures remain as the internal
/// layer underneath `AuthorizationService`.
///
/// Layout note: the value types live under their own include guard, and the
/// umbrella includes under a second one, so that
/// `service/authorization_service.h` can include this header for the types
/// without an include cycle.

#ifndef SENTINELPP_API_SENTINELPP_TYPES_H_
#define SENTINELPP_API_SENTINELPP_TYPES_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/value.h"
#include "rbac/types.h"

namespace sentinel {

/// \brief One access-check request at the service boundary.
///
/// `user` is the routing key: every request for the same user is handled by
/// the same engine shard, which keeps that user's sessions, DSD state and
/// activation history shard-local. It may be left empty for pure
/// session-keyed checks (legacy callers); the service then resolves the
/// session's home shard through its session registry.
struct AccessRequest {
  /// `deadline` sentinel: opt this request out of the service-wide
  /// ServiceConfig::default_deadline. This is the *only* meaningful
  /// negative deadline; the wire boundary (api/wire.h) rejects every other
  /// negative value with a typed protocol error, and the in-process path
  /// treats them as the sentinel via EffectiveDeadline below.
  static constexpr Duration kNoDeadline = -1;

  UserName user;
  SessionId session;
  OperationName operation;
  ObjectName object;
  /// Optional; required when the object carries a privacy policy.
  std::string purpose;
  /// Wall-clock decision budget in microseconds, measured from submission.
  /// A request still queued when its budget runs out is answered
  /// `AccessOutcome::kOverloaded` instead of consuming engine time. 0 (the
  /// default) inherits ServiceConfig::default_deadline; kNoDeadline makes
  /// this request wait however long it takes.
  Duration deadline = 0;

  /// The one place the deadline sentinel is interpreted. Resolves this
  /// request's wall budget against the service-wide default `fallback`:
  /// a positive return is the budget in microseconds, 0 means "no budget".
  /// 0 inherits `fallback`; kNoDeadline (and, in-process, any negative —
  /// the wire boundary has already rejected non-sentinel negatives)
  /// disables the budget even when a default is configured.
  Duration EffectiveDeadline(Duration fallback) const {
    if (deadline == 0) return fallback > 0 ? fallback : 0;
    if (deadline < 0) return 0;
    return deadline;
  }
};

/// \brief How the service arrived at an AccessDecision.
///
/// Distinguishes "the policy said no" from "the service never asked the
/// policy" — a load balancer retries kOverloaded, but must never retry its
/// way around a real denial.
enum class AccessOutcome : uint8_t {
  /// A rule-pool verdict: `allowed` is the policy's answer.
  kDecided = 0,
  /// Shed at a full mailbox or expired before dispatch; `allowed` is false
  /// but no policy evaluation happened. Maps to Status::ResourceExhausted.
  kOverloaded = 1,
  /// Submitted after Shutdown(); nothing was evaluated.
  kShutdown = 2,
};

/// \brief The service's verdict for one request.
///
/// A value type: safe to copy across threads, carries everything an
/// embedding application audits on — the verdict, the generated rule that
/// produced it, the paper-style denial reason, and service metadata
/// (which shard decided, under which administrative epoch, and the
/// submit-to-decision latency).
struct AccessDecision {
  bool allowed = false;
  /// Name of the generated OWTE rule that produced the verdict
  /// (e.g. "CA.global"); empty for the fail-safe default deny.
  std::string rule;
  /// Denial reason ("Permission Denied", ...). Empty for allows.
  std::string reason;
  /// The WHEN condition whose failure routed the deciding rule into its
  /// ELSE branch. Diagnostic only.
  std::string failed_condition;
  /// Submit-to-decision latency in microseconds of wall time (includes
  /// mailbox queueing in concurrent mode; 0 is possible for sub-µs calls).
  Duration latency = 0;
  /// Shard whose engine decided the request.
  uint32_t shard = 0;
  /// Administrative epoch the deciding shard had applied. Monotonic:
  /// once an admin broadcast returns, every later decision carries an
  /// epoch >= that broadcast's epoch on every shard.
  uint64_t epoch = 0;
  /// Whether `allowed` is a policy verdict at all — see AccessOutcome.
  AccessOutcome outcome = AccessOutcome::kDecided;
};

/// Maps the service-layer outcome onto the library's Status vocabulary:
/// OK for decided requests (allowed or denied — both are answers),
/// ResourceExhausted for overload, FailedPrecondition after shutdown.
inline Status ToStatus(const AccessDecision& decision) {
  switch (decision.outcome) {
    case AccessOutcome::kDecided:
      return Status::OK();
    case AccessOutcome::kOverloaded:
      return Status::ResourceExhausted(decision.reason);
    case AccessOutcome::kShutdown:
      return Status::FailedPrecondition(decision.reason);
  }
  return Status::Internal("unknown AccessOutcome");
}

/// \brief Result of a service mutator (session lifecycle, user/role
/// administration, role enable/disable).
///
/// Mutators used to return AccessDecision, overloading a type whose fields
/// (`rule`, `failed_condition`, fast-path semantics) only make sense for
/// access checks. AdminResult carries exactly what a mutating caller can
/// act on: did the mutation apply, under which administrative epoch, on
/// which shard.
struct AdminResult {
  /// OK — the mutation was applied. ConstraintViolation — the policy
  /// refused it (denial reason in the message). ResourceExhausted — shed
  /// or expired before evaluation (retryable). FailedPrecondition —
  /// submitted after Shutdown().
  Status status;
  /// Same vocabulary as AccessDecision::outcome: kDecided covers both
  /// applied and policy-refused; kOverloaded/kShutdown mean the policy was
  /// never asked.
  AccessOutcome outcome = AccessOutcome::kDecided;
  /// Administrative epoch the deciding shard had applied.
  uint64_t epoch = 0;
  /// Shard that decided (the authoritative shard for broadcast mutators).
  uint32_t shard = 0;
  /// Submit-to-decision latency in microseconds of wall time.
  Duration latency = 0;

  bool ok() const { return status.ok(); }

  /// Lossy adaptation to the old return type: `rule` and
  /// `failed_condition` are gone (they never meant anything for
  /// mutators), `reason` is the status message. Prefer `.ok()`/`.status`.
  AccessDecision ToDecision() const {
    AccessDecision decision;
    decision.allowed = status.ok();
    decision.reason = status.message();
    decision.outcome = outcome;
    decision.epoch = epoch;
    decision.shard = shard;
    decision.latency = latency;
    return decision;
  }

  /// Deprecated bridge so pre-AdminResult callers that bind the result to
  /// an AccessDecision still compile. New code reads the typed fields.
  [[deprecated("service mutators return AdminResult; use .ok()/.status or "
               "the explicit ToDecision()")]]
  operator AccessDecision() const {  // NOLINT(google-explicit-constructor)
    return ToDecision();
  }
};

}  // namespace sentinel

#endif  // SENTINELPP_API_SENTINELPP_TYPES_H_

// ----------------------------------------------------------- Facade umbrella
// (separately guarded; see the layout note above).
#ifndef SENTINELPP_API_SENTINELPP_H_
#define SENTINELPP_API_SENTINELPP_H_

#include "common/calendar.h"
#include "common/clock.h"
#include "core/policy_parser.h"
#include "core/report.h"
#include "rules/decision.h"
#include "service/authorization_service.h"
#include "telemetry/exposition.h"

#endif  // SENTINELPP_API_SENTINELPP_H_
