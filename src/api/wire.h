/// \file
/// \brief sentinelpp versioned binary wire schema — the network twin of the
/// in-process facade types.
///
/// This header is the single source of truth for what `AccessRequest`,
/// `AccessDecision` and `AccessOutcome` look like on a socket. It is shared
/// by the server (src/net/server.*), the client (src/net/client.*) and the
/// tests, so the in-process API and the wire API cannot drift: every
/// wire-visible enumerator is pinned to a fixed numeric id below and
/// `static_assert`ed against the in-process enum.
///
/// ## Framing
///
/// A connection is a byte stream of *frames*. Every frame is:
///
///     u32  length     — byte count of everything after this field
///     u8   version    — kWireVersion; unknown values are a fatal
///                       kUnsupportedVersion protocol error
///     u8   type       — MsgType id
///     u16  reserved   — writers send 0, readers ignore (forward compat)
///     u64  request_id — caller-chosen correlation id, echoed verbatim in
///                       the response (decision or error) for pipelining
///     ...  payload    — per-MsgType, see the layouts below
///
/// All integers are little-endian, encoded and decoded byte-by-byte (no
/// struct punning, no host-order assumptions). Strings are u16-length-
/// prefixed raw bytes (no NUL terminator, no encoding constraint). Fields
/// are fixed-width: a reader can locate every field of a known message
/// type without parsing its predecessors' contents.
///
/// ## Compatibility rule (add-only, never renumber)
///
/// The ids in this header — kWireVersion payload layouts, MsgType values,
/// AccessOutcome values, WireError values — are wire-stable:
///
///  * **Never renumber or reuse an id.** A retired message type or error
///    code keeps its number forever (comment it `// retired`).
///  * **Add, don't mutate.** New fields go at the *end* of a payload (old
///    readers ignore trailing bytes they don't know; new readers treat
///    their absence as the documented default). New message types, outcome
///    values and error codes take the next free id.
///  * **Version bumps are for breaking changes only** — reordering or
///    resizing existing fields requires a new kWireVersion, and servers
///    answer the old version with kUnsupportedVersion rather than
///    guessing.
///
/// The `static_assert`s below enforce the pinning against the in-process
/// enums: if someone renumbers `AccessOutcome`, this header refuses to
/// compile instead of silently shipping a different meaning of
/// "overloaded" on the wire.

#ifndef SENTINELPP_API_WIRE_H_
#define SENTINELPP_API_WIRE_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>

#include "api/sentinelpp.h"

namespace sentinel {
namespace wire {

/// Current protocol version. Bump only for breaking layout changes.
inline constexpr uint8_t kWireVersion = 1;

/// Hard cap on `length` (bytes after the length prefix). A peer announcing
/// more is either broken or hostile; the connection cannot resync past an
/// unread multi-megabyte body, so this is a fatal protocol error.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

/// Size of the length prefix and of the fixed header that follows it.
inline constexpr size_t kLengthPrefixBytes = 4;
inline constexpr size_t kFrameHeaderBytes = 12;  // version..request_id

/// Message-type ids (wire-stable; add-only, never renumber).
enum class MsgType : uint8_t {
  kCheckRequest = 1,  ///< client -> server: one AccessRequest
  kDecision = 2,      ///< server -> client: the full typed AccessDecision
  kError = 3,         ///< server -> client: typed protocol error
  kPing = 4,          ///< either direction: liveness probe
  kPong = 5,          ///< reply to kPing, request_id echoed
};

/// Typed protocol-error codes (wire-stable; add-only, never renumber).
/// "Fatal" errors poison the byte stream — the sender of the error closes
/// the connection after flushing it. Request-scoped errors answer one
/// request_id and the connection continues. Framing-level errors (no
/// decodable frame to attribute) carry request_id 0 — 0 is reserved to
/// mean "not request-scoped", so clients should start correlation ids
/// at 1.
enum class WireError : uint16_t {
  kUnsupportedVersion = 1,  ///< fatal: unknown version byte
  kUnknownMessageType = 2,  ///< request-scoped: framing intact, type unknown
  kFrameTooLarge = 3,       ///< fatal: length prefix exceeds kMaxFrameBytes
  kMalformedFrame = 4,      ///< fatal: payload inconsistent with its type
  kInvalidDeadline = 5,     ///< request-scoped: negative non-sentinel deadline
  kShuttingDown = 6,        ///< request-scoped: server is draining
  kFieldTooLong = 7,        ///< encode-side: string exceeds u16 length
};

const char* WireErrorToString(WireError code);

/// A typed protocol error: what went wrong, and whether the byte stream
/// can still be trusted afterwards.
struct ProtocolError {
  WireError code = WireError::kMalformedFrame;
  std::string message;
  /// Fatal errors (framing poisoned) require closing the connection.
  bool fatal = true;
};

// ------------------------------------------------------- Outcome id pinning
//
// AccessOutcome travels as its numeric value. Pin every enumerator here;
// adding a new outcome means adding a line (add-only), renumbering one
// breaks the build.

static_assert(static_cast<uint8_t>(AccessOutcome::kDecided) == 0,
              "wire id of AccessOutcome::kDecided is pinned to 0");
static_assert(static_cast<uint8_t>(AccessOutcome::kOverloaded) == 1,
              "wire id of AccessOutcome::kOverloaded is pinned to 1");
static_assert(static_cast<uint8_t>(AccessOutcome::kShutdown) == 2,
              "wire id of AccessOutcome::kShutdown is pinned to 2");

/// Highest AccessOutcome id this protocol version knows. Decoders treat
/// anything above it as malformed rather than casting blindly.
inline constexpr uint8_t kMaxOutcomeId = 2;

/// Outcome -> wire id. The switch is exhaustive on purpose: a new
/// enumerator makes -Wswitch flag this function until it is pinned above
/// and handled here.
constexpr uint8_t ToWireOutcome(AccessOutcome outcome) {
  switch (outcome) {
    case AccessOutcome::kDecided:
    case AccessOutcome::kOverloaded:
    case AccessOutcome::kShutdown:
      return static_cast<uint8_t>(outcome);
  }
  return static_cast<uint8_t>(outcome);
}

/// Wire id -> outcome; nullopt for ids this version does not know.
constexpr std::optional<AccessOutcome> FromWireOutcome(uint8_t id) {
  if (id > kMaxOutcomeId) return std::nullopt;
  return static_cast<AccessOutcome>(id);
}

// ------------------------------------------------------- Deadline sentinel
//
// AccessRequest::deadline crosses the wire as a signed 64-bit microsecond
// budget. 0 inherits the server's configured default;
// kWireNoDeadline (-1, matching AccessRequest::kNoDeadline) opts out of
// any budget. Every *other* negative value is a request-scoped
// kInvalidDeadline protocol error — the wire boundary rejects what the
// in-process API used to silently coerce.

inline constexpr int64_t kWireNoDeadline = -1;
static_assert(AccessRequest::kNoDeadline == kWireNoDeadline,
              "wire deadline sentinel is pinned to the in-process sentinel");

// ----------------------------------------------------------- Message values

/// Decoded frame header + raw payload view (valid only while the backing
/// buffer lives).
struct FrameView {
  uint8_t version = 0;
  MsgType type = MsgType::kPing;
  uint8_t raw_type = 0;  ///< on-wire byte, meaningful when type is unknown
  uint64_t request_id = 0;
  std::string_view payload;
};

/// kCheckRequest payload:
///     i64 deadline_us
///     u16 user_len, u16 session_len, u16 operation_len, u16 object_len,
///     u16 purpose_len
///     bytes user, session, operation, object, purpose
struct CheckRequestMsg {
  uint64_t request_id = 0;
  AccessRequest request;
};

/// kDecision payload:
///     u8  allowed, u8 outcome, u16 reserved
///     u32 shard
///     u64 epoch
///     i64 latency_us
///     u16 rule_len, u16 reason_len, u16 failed_condition_len
///     bytes rule, reason, failed_condition
struct DecisionMsg {
  uint64_t request_id = 0;
  AccessDecision decision;
};

/// kError payload:
///     u16 code, u16 reserved
///     u16 message_len
///     bytes message
struct ErrorMsg {
  uint64_t request_id = 0;
  WireError code = WireError::kMalformedFrame;
  std::string message;
};

// -------------------------------------------------------------- Encoding
//
// Encoders append one complete frame (length prefix included) to `*out`,
// which doubles as a connection write buffer. They fail (Status, nothing
// appended) only on fields too long for their u16 length prefix.

Status EncodeCheckRequest(uint64_t request_id, const AccessRequest& request,
                          std::string* out);
Status EncodeDecision(uint64_t request_id, const AccessDecision& decision,
                      std::string* out);
void EncodeError(uint64_t request_id, WireError code, std::string_view message,
                 std::string* out);
void EncodePing(uint64_t request_id, std::string* out);
void EncodePong(uint64_t request_id, std::string* out);

// -------------------------------------------------------------- Decoding

/// Parses the fixed header of one complete frame (`data` spans version
/// through payload end — the length prefix already stripped and validated
/// by the framing layer). Fails only on an unsupported version or a body
/// shorter than the fixed header; an unknown MsgType id *succeeds* with
/// `raw_type` set, so the caller can answer kUnknownMessageType without
/// killing the connection.
bool DecodeFrame(std::string_view data, FrameView* frame, ProtocolError* error);

/// Payload decoders for the typed messages. `frame` must be the matching
/// type. On failure the error is request-scoped (kInvalidDeadline) or
/// fatal (kMalformedFrame), per ProtocolError::fatal.
bool DecodeCheckRequest(const FrameView& frame, CheckRequestMsg* out,
                        ProtocolError* error);
bool DecodeDecision(const FrameView& frame, DecisionMsg* out,
                    ProtocolError* error);
bool DecodeError(const FrameView& frame, ErrorMsg* out, ProtocolError* error);

// --------------------------------------------------- Low-level primitives
//
// Exposed for the framing layer and the torture tests.

inline void PutU16(uint16_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}
inline void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
inline void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
inline void PutI64(int64_t v, std::string* out) {
  PutU64(static_cast<uint64_t>(v), out);
}

inline uint16_t GetU16(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint16_t>(u[0] | (u[1] << 8));
}
inline uint32_t GetU32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}
inline uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(u[i]) << (8 * i);
  return v;
}
inline int64_t GetI64(const char* p) { return static_cast<int64_t>(GetU64(p)); }

}  // namespace wire
}  // namespace sentinel

#endif  // SENTINELPP_API_WIRE_H_
