#include "gtrbac/temporal_constraint.h"

#include <sstream>

namespace sentinel {

const char* TimeSodKindToString(TimeSodKind kind) {
  switch (kind) {
    case TimeSodKind::kDisabling:
      return "disabling";
    case TimeSodKind::kEnabling:
      return "enabling";
  }
  return "unknown";
}

std::string EnablingWindow::ToString() const {
  return "enable " + role + " during " + period.ToString();
}

std::string ActivationDuration::ToString() const {
  std::ostringstream os;
  os << "deactivate " << role;
  if (!user.empty()) os << " (user " << user << ")";
  os << " after " << (max_active / kMinute) << "min";
  return os.str();
}

std::string TimeSod::ToString() const {
  std::ostringstream os;
  os << TimeSodKindToString(kind) << "-time SoD " << name << " {";
  bool first = true;
  for (const RoleName& role : roles) {
    if (!first) os << ", ";
    first = false;
    os << role;
  }
  os << "} during " << period.ToString();
  return os.str();
}

}  // namespace sentinel
