#include "gtrbac/role_state.h"

namespace sentinel {

void RoleStateTable::Enable(const RoleName& role, Time when) {
  disabled_.erase(role);
  last_transition_[role] = when;
}

void RoleStateTable::Disable(const RoleName& role, Time when) {
  disabled_.insert(role);
  last_transition_[role] = when;
}

bool RoleStateTable::IsEnabled(const RoleName& role) const {
  return disabled_.count(role) == 0;
}

std::optional<Time> RoleStateTable::LastTransition(
    const RoleName& role) const {
  auto it = last_transition_.find(role);
  if (it == last_transition_.end()) return std::nullopt;
  return it->second;
}

void RoleStateTable::EraseRole(const RoleName& role) {
  disabled_.erase(role);
  last_transition_.erase(role);
}

std::set<RoleName> RoleStateTable::DisabledRoles() const { return disabled_; }

}  // namespace sentinel
