#include "gtrbac/role_state.h"

namespace sentinel {

RoleStateTable::RoleStateTable(SymbolTable* symbols) {
  if (symbols == nullptr) {
    owned_symbols_ = std::make_unique<SymbolTable>();
    symbols_ = owned_symbols_.get();
  } else {
    symbols_ = symbols;
  }
}

void RoleStateTable::Enable(const RoleName& role, Time when) {
  disabled_.erase(role);
  const Symbol sym = symbols_->Intern(role);
  disabled_sym_.erase(sym.id());
  last_transition_[role] = when;
  BumpGeneration(sym);
}

void RoleStateTable::Disable(const RoleName& role, Time when) {
  disabled_.insert(role);
  const Symbol sym = symbols_->Intern(role);
  disabled_sym_.insert(sym.id());
  last_transition_[role] = when;
  BumpGeneration(sym);
}

bool RoleStateTable::IsEnabled(const RoleName& role) const {
  return disabled_.count(role) == 0;
}

std::optional<Time> RoleStateTable::LastTransition(
    const RoleName& role) const {
  auto it = last_transition_.find(role);
  if (it == last_transition_.end()) return std::nullopt;
  return it->second;
}

void RoleStateTable::EraseRole(const RoleName& role) {
  disabled_.erase(role);
  const Symbol sym = symbols_->Intern(role);
  disabled_sym_.erase(sym.id());
  last_transition_.erase(role);
  BumpGeneration(sym);
}

std::set<RoleName> RoleStateTable::DisabledRoles() const { return disabled_; }

}  // namespace sentinel
