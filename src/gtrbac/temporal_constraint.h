#ifndef SENTINELPP_GTRBAC_TEMPORAL_CONSTRAINT_H_
#define SENTINELPP_GTRBAC_TEMPORAL_CONSTRAINT_H_

#include <set>
#include <string>

#include "common/value.h"
#include "gtrbac/periodic_expression.h"
#include "rbac/types.h"

namespace sentinel {

/// \brief Periodic role enabling: the role is enabled exactly inside the
/// periodic expression's windows (GTRBAC role enabling/disabling; the
/// paper's "shift time of role day doctor" example).
struct EnablingWindow {
  RoleName role;
  PeriodicExpression period;

  std::string ToString() const;
};

/// \brief Per-activation duration bound (paper Rule 7): each activation of
/// `role` is force-deactivated after `max_active`. When `user` is empty the
/// bound applies to every user (localized rule); otherwise only to that
/// user (specialized rule).
struct ActivationDuration {
  RoleName role;
  UserName user;  // Empty: any user.
  Duration max_active = 0;

  std::string ToString() const;
};

/// Which transition a time-based SoD constraint guards.
enum class TimeSodKind : int {
  kDisabling = 0,  // Paper Rule 6: roles cannot all be disabled in (I,P).
  kEnabling = 1,   // Dual: roles cannot all be enabled in (I,P).
};

/// \brief Time-based separation of duty over role enablement (GTRBAC
/// dependencies paper, enforced by the paper's Rule 6): within the periodic
/// time (I, P), the *last* remaining counter-role of the set cannot make
/// the guarded transition — e.g. "Nurse" and "Doctor" cannot both be
/// disabled between 10:00 and 17:00.
struct TimeSod {
  std::string name;
  TimeSodKind kind = TimeSodKind::kDisabling;
  std::set<RoleName> roles;
  PeriodicExpression period;

  std::string ToString() const;

  friend bool operator==(const TimeSod&, const TimeSod&) = default;
};

const char* TimeSodKindToString(TimeSodKind kind);

}  // namespace sentinel

#endif  // SENTINELPP_GTRBAC_TEMPORAL_CONSTRAINT_H_
