#include "gtrbac/periodic_expression.h"

#include "common/calendar.h"

namespace sentinel {

Result<PeriodicExpression> PeriodicExpression::Create(
    const TimePattern& window_start, const TimePattern& window_end) {
  return Create(kMinTime, kMaxTime, window_start, window_end);
}

Result<PeriodicExpression> PeriodicExpression::Create(
    Time begin, Time end, const TimePattern& window_start,
    const TimePattern& window_end) {
  if (begin >= end) {
    return Status::InvalidArgument(
        "periodic expression bounds must satisfy begin < end");
  }
  if (window_start == window_end) {
    return Status::InvalidArgument(
        "window start and end patterns must differ");
  }
  return PeriodicExpression(begin, end, window_start, window_end);
}

Result<PeriodicExpression> PeriodicExpression::Parse(
    const std::string& text) {
  const size_t dash = text.find('-');
  if (dash == std::string::npos) {
    return Status::ParseError("expected 'start-end' in periodic expression: " +
                              text);
  }
  auto trim = [](std::string s) {
    const size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos) return std::string();
    const size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
  };
  SENTINEL_ASSIGN_OR_RETURN(start,
                            TimePattern::Parse(trim(text.substr(0, dash))));
  SENTINEL_ASSIGN_OR_RETURN(
      end, TimePattern::Parse(trim(text.substr(dash + 1))));
  return Create(start, end);
}

bool PeriodicExpression::Contains(Time t) const {
  if (t < begin_ || t >= end_) return false;
  // A window opening exactly at t puts t inside (starts inclusive).
  if (window_start_.Matches(t) && (t / kSecond) * kSecond == t) return true;
  // Otherwise t is inside a window iff the next boundary to occur is a
  // close (patterns alternate strictly).
  const std::optional<Time> next_end = window_end_.NextMatchAfter(t);
  if (!next_end.has_value()) return false;
  const std::optional<Time> next_start = window_start_.NextMatchAfter(t);
  if (!next_start.has_value()) return true;  // Window never re-opens.
  return *next_end < *next_start;
}

std::optional<Time> PeriodicExpression::NextWindowStart(Time t) const {
  Time from = t;
  if (begin_ != kMinTime && begin_ - 1 > from) from = begin_ - 1;
  const std::optional<Time> next = window_start_.NextMatchAfter(from);
  if (!next.has_value() || *next >= end_) return std::nullopt;
  return next;
}

std::optional<Time> PeriodicExpression::NextWindowEnd(Time t) const {
  Time from = t;
  if (begin_ != kMinTime && begin_ - 1 > from) from = begin_ - 1;
  const std::optional<Time> next = window_end_.NextMatchAfter(from);
  if (!next.has_value() || *next >= end_) return std::nullopt;
  return next;
}

std::string PeriodicExpression::ToString() const {
  std::string out = window_start_.ToString() + " - " + window_end_.ToString();
  if (begin_ != kMinTime || end_ != kMaxTime) {
    out += " in [";
    out += (begin_ == kMinTime) ? "-inf" : FormatTime(begin_);
    out += ", ";
    out += (end_ == kMaxTime) ? "+inf" : FormatTime(end_);
    out += ")";
  }
  return out;
}

}  // namespace sentinel
