#ifndef SENTINELPP_GTRBAC_ROLE_STATE_H_
#define SENTINELPP_GTRBAC_ROLE_STATE_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "common/value.h"
#include "rbac/types.h"

namespace sentinel {

/// \brief GTRBAC role enablement state.
///
/// GTRBAC distinguishes a role being *enabled* (may be activated) from
/// being *active* (in some session). Periodic enabling constraints and
/// time-based SoD act on this table; activation rules consult it. Roles
/// without an entry are enabled by default.
///
/// The disabled set is mirrored by symbol id so the per-activation
/// IsEnabled check on the rule path costs one integer-set probe (and
/// nothing at all while no role is disabled, the common case).
class RoleStateTable {
 public:
  /// `symbols` is shared with the owning engine; when null the table owns
  /// a private one.
  explicit RoleStateTable(SymbolTable* symbols = nullptr);

  /// Enables the role; records the transition time.
  void Enable(const RoleName& role, Time when);
  /// Disables the role; records the transition time.
  void Disable(const RoleName& role, Time when);

  bool IsEnabled(const RoleName& role) const;
  bool IsEnabled(Symbol role) const {
    return disabled_sym_.empty() || disabled_sym_.count(role.id()) == 0;
  }

  /// Time of the last enable/disable transition, or nullopt if none.
  std::optional<Time> LastTransition(const RoleName& role) const;

  /// Drops the role's entry (on role deletion).
  void EraseRole(const RoleName& role);

  /// Roles currently explicitly disabled.
  std::set<RoleName> DisabledRoles() const;

  int disabled_count() const { return static_cast<int>(disabled_.size()); }

  /// Monotonic per-role transition counter, bumped by every Enable /
  /// Disable / EraseRole — the GTRBAC firing sites. The decision cache sums
  /// these over a session's active roles into its validity stamp, so a
  /// periodic boundary that flips a role kills every memoized verdict that
  /// depended on it, lazily. Roles never touched by a transition read 0.
  uint32_t Generation(Symbol role) const {
    return role.valid() && role.id() < generation_.size()
               ? generation_[role.id()]
               : 0;
  }

  /// Table-wide transition counter: bumped whenever *any* role's generation
  /// is. The coarse component of the zero-hop fast stamp — "no role anywhere
  /// has transitioned" implies "this session's active-role sum is intact".
  uint32_t roles_generation() const { return roles_generation_; }

 private:
  void BumpGeneration(Symbol role) {
    if (!role.valid()) return;
    if (role.id() >= generation_.size()) generation_.resize(role.id() + 1, 0);
    ++generation_[role.id()];
    ++roles_generation_;
  }

  std::set<RoleName> disabled_;
  std::map<RoleName, Time> last_transition_;

  std::unique_ptr<SymbolTable> owned_symbols_;
  SymbolTable* symbols_;
  std::unordered_set<uint32_t> disabled_sym_;
  std::vector<uint32_t> generation_;  // Indexed by role symbol id.
  uint32_t roles_generation_ = 0;     // Sum of all per-role bumps.
};

}  // namespace sentinel

#endif  // SENTINELPP_GTRBAC_ROLE_STATE_H_
