#ifndef SENTINELPP_GTRBAC_PERIODIC_EXPRESSION_H_
#define SENTINELPP_GTRBAC_PERIODIC_EXPRESSION_H_

#include <limits>
#include <optional>
#include <string>

#include "common/status.h"
#include "common/value.h"
#include "event/time_pattern.h"

namespace sentinel {

/// \brief A GTRBAC periodic time (I, P): an infinite set of recurring
/// windows clipped to a bounding interval I = [begin, end].
///
/// P is expressed as a pair of calendar patterns in the paper's notation
/// (footnote 10): `window_start` opens each window, `window_end` closes it
/// — e.g. 10:00:00/*/*/* .. 17:00:00/*/*/* is "10 a.m. to 5 p.m. every
/// day". Patterns must alternate strictly (every start is followed by an
/// end before the next start); overnight windows (22:00 .. 06:00) satisfy
/// this and are supported. Window starts are inclusive, ends exclusive.
class PeriodicExpression {
 public:
  static constexpr Time kMinTime = std::numeric_limits<Time>::min();
  static constexpr Time kMaxTime = std::numeric_limits<Time>::max();

  /// Unbounded I, windows per the two patterns.
  static Result<PeriodicExpression> Create(const TimePattern& window_start,
                                           const TimePattern& window_end);
  /// Bounded I = [begin, end] (end exclusive).
  static Result<PeriodicExpression> Create(Time begin, Time end,
                                           const TimePattern& window_start,
                                           const TimePattern& window_end);

  /// Parses "HH:MM:SS[/mm/dd/yyyy]-HH:MM:SS[/mm/dd/yyyy]".
  static Result<PeriodicExpression> Parse(const std::string& text);

  PeriodicExpression() = default;

  /// True iff `t` lies inside I and inside one of P's windows.
  bool Contains(Time t) const;

  /// Next window-opening instant strictly after `t` that lies within I,
  /// or nullopt when none remains before `end`.
  std::optional<Time> NextWindowStart(Time t) const;

  /// Next window-closing instant strictly after `t` within I.
  std::optional<Time> NextWindowEnd(Time t) const;

  Time begin() const { return begin_; }
  Time end() const { return end_; }
  const TimePattern& window_start() const { return window_start_; }
  const TimePattern& window_end() const { return window_end_; }

  std::string ToString() const;

  friend bool operator==(const PeriodicExpression&,
                         const PeriodicExpression&) = default;

 private:
  PeriodicExpression(Time begin, Time end, const TimePattern& start,
                     const TimePattern& end_pattern)
      : begin_(begin),
        end_(end),
        window_start_(start),
        window_end_(end_pattern) {}

  Time begin_ = kMinTime;
  Time end_ = kMaxTime;
  TimePattern window_start_;
  TimePattern window_end_;
};

}  // namespace sentinel

#endif  // SENTINELPP_GTRBAC_PERIODIC_EXPRESSION_H_
