#ifndef SENTINELPP_SERVICE_POLICER_H_
#define SENTINELPP_SERVICE_POLICER_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "telemetry/metrics.h"

namespace sentinel {

/// \brief Lock-free per-principal token-bucket policer (GCRA form) for the
/// service's decision-lane admission control.
///
/// Each principal (user name, or session id for user-less legacy requests,
/// optionally truncated to a tenant prefix by the service) owns one bucket
/// in a fixed open-addressed slot table. The bucket is a single
/// `atomic<int64_t>`: the GCRA *theoretical arrival time* (TAT) in clock
/// nanoseconds. A request conforms iff `tat - now <= tau` where
/// `tau = (burst - 1) * T` and `T = 1e9 / rate` ns is the emission
/// interval; admission advances `tat = max(tat, now) + T` with one CAS.
/// Refill is therefore pure arithmetic on read — no background thread, no
/// per-bucket lock, no stored token count to decay — and an idle bucket's
/// tokens clamp at `burst` automatically because `max(tat, now)` forgets
/// any surplus idle time.
///
/// Concurrency contract: `Admit` may be called from any number of producer
/// threads; `SetQuota` / `ResetQuota` from admin or shard threads
/// concurrently with admission. Slots are claimed by a CAS on the key word
/// (0 = empty); all other slot fields start at 0, which is a valid state
/// ("bucket full, default quota"), so a claim publishes nothing that needs
/// ordering beyond the key CAS itself. Quota words are read individually
/// with relaxed loads — a quota update racing an admission applies to that
/// admission or the next one, never to neither.
///
/// Overflow hygiene: the conformance test is written `tat - now <= tau`
/// (never `now + tau`, which can wrap for a huge `tau`), and the TAT
/// advance saturates at INT64_MAX, so hostile clocks or quotas cannot
/// produce signed-overflow UB — the same bug class as the service's
/// DeadlineNanos fix.
class Policer {
 public:
  /// One principal's quota. rate_per_s <= 0 disables policing for the
  /// bucket (the principal is unpoliced, not unlimited-bucket).
  struct Quota {
    double rate_per_s = 0;
    /// Bucket depth in requests; values < 1 are treated as 1.
    int64_t burst = 1;
  };

  enum class Verdict {
    kUnpoliced,   ///< No quota applies to this principal.
    kConforming,  ///< Within quota; one token debited.
    kOverQuota,   ///< Bucket empty; nothing debited.
  };

  struct Options {
    /// Slot-table capacity; must be a power of two (validated by the
    /// service config). Principals beyond capacity fail open (kUnpoliced)
    /// and are counted in overflows().
    size_t capacity = 1024;
    /// Default quota applied to every principal; rate 0 = no default
    /// policing (only explicit SetQuota overrides police).
    Quota default_quota;
    /// Nanosecond clock; defaults to telemetry::NowNanos. Injectable so
    /// the differential harness and the refill unit tests are exact.
    std::function<int64_t()> clock;
  };

  /// Aggregate view for gauges (table scan; Snapshot-path cost only).
  struct Occupancy {
    uint64_t tracked = 0;     ///< Claimed slots.
    uint64_t over_quota = 0;  ///< Buckets currently empty.
    uint64_t throttled = 0;   ///< Buckets with an explicit quota override.
  };

  explicit Policer(Options options)
      : clock_(options.clock ? std::move(options.clock)
                             : [] { return telemetry::NowNanos(); }),
        mask_(options.capacity - 1),
        slots_(std::make_unique<Slot[]>(options.capacity)) {
    SetDefaultQuota(options.default_quota);
  }

  Policer(const Policer&) = delete;
  Policer& operator=(const Policer&) = delete;

  /// One relaxed load on the hot path when no quota exists anywhere.
  bool active() const { return active_.load(std::memory_order_acquire); }

  /// Checks `principal` against its bucket, debiting one token when
  /// conforming. kUnpoliced costs one atomic load when the policer has
  /// never seen a quota.
  Verdict Admit(std::string_view principal) {
    if (!active()) return Verdict::kUnpoliced;
    Slot* slot = FindSlot(Hash(principal), /*claim=*/true);
    if (slot == nullptr) {
      overflows_.fetch_add(1, std::memory_order_relaxed);
      return Verdict::kUnpoliced;  // Fail open, loudly countable.
    }
    int64_t interval = slot->interval_ns.load(std::memory_order_relaxed);
    int64_t tau = slot->tau_ns.load(std::memory_order_relaxed);
    if (interval == 0) {  // No override: the default quota, if any.
      interval = default_interval_ns_.load(std::memory_order_relaxed);
      tau = default_tau_ns_.load(std::memory_order_relaxed);
      if (interval == 0) return Verdict::kUnpoliced;
    } else if (interval < 0) {
      return Verdict::kUnpoliced;  // Explicit "unpoliced" override.
    }
    const int64_t now = clock_();
    int64_t tat = slot->tat.load(std::memory_order_relaxed);
    for (;;) {
      if (tat - now > tau) {
        over_quota_.fetch_add(1, std::memory_order_relaxed);
        return Verdict::kOverQuota;
      }
      const int64_t base = tat > now ? tat : now;
      const int64_t next =
          base > std::numeric_limits<int64_t>::max() - interval
              ? std::numeric_limits<int64_t>::max()
              : base + interval;
      if (slot->tat.compare_exchange_weak(tat, next,
                                          std::memory_order_relaxed)) {
        if (tat < now) {
          // Tokens regained while the bucket idled — the refill-on-read
          // accounting the telemetry exposes. Clamped to the bucket depth,
          // like the arithmetic itself. Counted only on the winning CAS so
          // contention cannot double-count a refill.
          const int64_t regained = (now - tat) / interval;
          refilled_.fetch_add(
              static_cast<uint64_t>(std::min(regained, tau / interval + 1)),
              std::memory_order_relaxed);
        }
        admitted_.fetch_add(1, std::memory_order_relaxed);
        return Verdict::kConforming;
      }
    }
  }

  /// Installs (or replaces) `principal`'s quota. rate_per_s <= 0 marks the
  /// principal explicitly unpoliced (overriding any default). The bucket's
  /// fill level is preserved across rate changes in TAT form.
  void SetQuota(std::string_view principal, Quota quota) {
    Slot* slot = FindSlot(Hash(principal), /*claim=*/true);
    if (slot == nullptr) {
      overflows_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (quota.rate_per_s <= 0) {
      slot->tau_ns.store(0, std::memory_order_relaxed);
      slot->interval_ns.store(-1, std::memory_order_relaxed);
    } else {
      const int64_t interval = IntervalNs(quota.rate_per_s);
      const int64_t burst = quota.burst < 1 ? 1 : quota.burst;
      slot->tau_ns.store(SaturatingMul(interval, burst - 1),
                         std::memory_order_relaxed);
      slot->interval_ns.store(interval, std::memory_order_relaxed);
      overrides_.fetch_add(1, std::memory_order_relaxed);
      active_.store(true, std::memory_order_release);
    }
  }

  /// Reverts `principal` to the default quota (claims a slot if needed,
  /// same as any first touch).
  void ResetQuota(std::string_view principal) {
    Slot* slot = FindSlot(Hash(principal), /*claim=*/false);
    if (slot == nullptr) return;
    slot->tau_ns.store(0, std::memory_order_relaxed);
    slot->interval_ns.store(0, std::memory_order_relaxed);
  }

  /// Replaces the default quota applied to principals without an override.
  void SetDefaultQuota(Quota quota) {
    if (quota.rate_per_s <= 0) {
      default_tau_ns_.store(0, std::memory_order_relaxed);
      default_interval_ns_.store(0, std::memory_order_relaxed);
      return;
    }
    const int64_t interval = IntervalNs(quota.rate_per_s);
    const int64_t burst = quota.burst < 1 ? 1 : quota.burst;
    default_tau_ns_.store(SaturatingMul(interval, burst - 1),
                          std::memory_order_relaxed);
    default_interval_ns_.store(interval, std::memory_order_relaxed);
    active_.store(true, std::memory_order_release);
  }

  /// Whole tokens currently available to `principal` (bucket depth for a
  /// never-seen principal). Test/introspection surface.
  int64_t TokensAvailable(std::string_view principal) {
    int64_t interval = default_interval_ns_.load(std::memory_order_relaxed);
    int64_t tau = default_tau_ns_.load(std::memory_order_relaxed);
    int64_t tat = 0;
    if (Slot* slot = FindSlot(Hash(principal), /*claim=*/false)) {
      const int64_t override_interval =
          slot->interval_ns.load(std::memory_order_relaxed);
      if (override_interval != 0) {
        interval = override_interval;
        tau = slot->tau_ns.load(std::memory_order_relaxed);
      }
      tat = slot->tat.load(std::memory_order_relaxed);
    }
    if (interval <= 0) return std::numeric_limits<int64_t>::max();
    const int64_t now = clock_();
    const int64_t burst = tau / interval + 1;
    if (tat <= now) return burst;
    const int64_t spent = (tat - now + interval - 1) / interval;
    return spent >= burst ? 0 : burst - spent;
  }

  /// Scans the table (Snapshot-path cost, not hot-path).
  Occupancy Occupy() {
    Occupancy occupancy;
    const int64_t now = clock_();
    const int64_t default_interval =
        default_interval_ns_.load(std::memory_order_relaxed);
    const int64_t default_tau =
        default_tau_ns_.load(std::memory_order_relaxed);
    for (size_t i = 0; i <= mask_; ++i) {
      Slot& slot = slots_[i];
      if (slot.key.load(std::memory_order_acquire) == 0) continue;
      ++occupancy.tracked;
      int64_t interval = slot.interval_ns.load(std::memory_order_relaxed);
      int64_t tau = slot.tau_ns.load(std::memory_order_relaxed);
      if (interval > 0) {
        ++occupancy.throttled;
      } else if (interval == 0) {
        interval = default_interval;
        tau = default_tau;
      }
      if (interval > 0 &&
          slot.tat.load(std::memory_order_relaxed) - now > tau) {
        ++occupancy.over_quota;
      }
    }
    return occupancy;
  }

  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t over_quota_verdicts() const {
    return over_quota_.load(std::memory_order_relaxed);
  }
  uint64_t refilled_tokens() const {
    return refilled_.load(std::memory_order_relaxed);
  }
  uint64_t overflows() const {
    return overflows_.load(std::memory_order_relaxed);
  }
  uint64_t overrides_installed() const {
    return overrides_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<uint64_t> key{0};  ///< 0 = empty; claimed by CAS.
    std::atomic<int64_t> tat{0};   ///< GCRA theoretical arrival time (ns).
    /// Per-principal override: 0 = use default, < 0 = explicitly
    /// unpoliced, > 0 = emission interval in ns.
    std::atomic<int64_t> interval_ns{0};
    std::atomic<int64_t> tau_ns{0};
  };

  static int64_t IntervalNs(double rate_per_s) {
    const double interval = 1e9 / rate_per_s;
    if (interval >= 9.2e18) return std::numeric_limits<int64_t>::max();
    return interval < 1.0 ? 1 : static_cast<int64_t>(interval);
  }

  static int64_t SaturatingMul(int64_t a, int64_t b) {
    if (a <= 0 || b <= 0) return 0;
    if (a > std::numeric_limits<int64_t>::max() / b) {
      return std::numeric_limits<int64_t>::max();
    }
    return a * b;
  }

  /// FNV-1a, matching the service's shard routing hash discipline; 0 is
  /// reserved as the empty-slot marker.
  static uint64_t Hash(std::string_view principal) {
    uint64_t hash = 1469598103934665603ull;
    for (const char c : principal) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
    return hash == 0 ? 1 : hash;
  }

  /// Bounded linear probe; claims an empty slot when `claim`. Returns
  /// nullptr when the probe window holds neither the key nor (claimable)
  /// space — the fail-open path.
  Slot* FindSlot(uint64_t key, bool claim) {
    const size_t table = mask_ + 1;
    const size_t max_probes = table < kMaxProbes ? table : kMaxProbes;
    for (size_t probe = 0; probe < max_probes; ++probe) {
      Slot& slot = slots_[(key + probe) & mask_];
      uint64_t seen = slot.key.load(std::memory_order_acquire);
      if (seen == key) return &slot;
      if (seen == 0) {
        if (!claim) return nullptr;
        if (slot.key.compare_exchange_strong(seen, key,
                                             std::memory_order_acq_rel)) {
          return &slot;
        }
        if (seen == key) return &slot;  // Lost the race to ourselves.
        // Lost to a different principal: keep probing.
      }
    }
    return nullptr;
  }

  static constexpr size_t kMaxProbes = 16;

  const std::function<int64_t()> clock_;
  const size_t mask_;
  std::unique_ptr<Slot[]> slots_;

  std::atomic<bool> active_{false};
  std::atomic<int64_t> default_interval_ns_{0};
  std::atomic<int64_t> default_tau_ns_{0};

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> over_quota_{0};
  std::atomic<uint64_t> refilled_{0};
  std::atomic<uint64_t> overflows_{0};
  std::atomic<uint64_t> overrides_{0};
};

}  // namespace sentinel

#endif  // SENTINELPP_SERVICE_POLICER_H_
