#include "service/authorization_service.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/logging.h"
#include "core/decision_cache.h"
#include "telemetry/exposition.h"

namespace sentinel {
namespace {

using telemetry::NowNanos;

/// Fixed FNV-1a so request placement never depends on platform hash seeds:
/// the same user lands on the same shard in every run and every process.
uint64_t Fnv1a(const std::string& name) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

void AuthorizationService::Latch::Arrive() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--remaining_ == 0) cv_.notify_all();
}

void AuthorizationService::Latch::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return remaining_ <= 0; });
}

Status AuthorizationService::ValidateConfig(const ServiceConfig& config) {
  if (config.num_shards != ServiceConfig::kAutoShards &&
      config.num_shards < 1) {
    return Status::InvalidArgument(
        "num_shards must be >= 1 or ServiceConfig::kAutoShards; got " +
        std::to_string(config.num_shards));
  }
  if (config.decision_cache_capacity != 0 &&
      !DecisionCache::IsPowerOfTwo(config.decision_cache_capacity)) {
    return Status::InvalidArgument(
        "decision_cache_capacity must be 0 or a power of two; got " +
        std::to_string(config.decision_cache_capacity));
  }
  if (config.mailbox_capacity != 0 &&
      !DecisionCache::IsPowerOfTwo(config.mailbox_capacity)) {
    return Status::InvalidArgument(
        "mailbox_capacity must be 0 or a power of two (the decision lane is "
        "a slot ring); got " +
        std::to_string(config.mailbox_capacity));
  }
  if (config.overload_policy == OverloadPolicy::kShed &&
      config.mailbox_capacity == 0) {
    return Status::InvalidArgument(
        "overload_policy kShed requires mailbox_capacity > 0 — an unbounded "
        "mailbox can never shed");
  }
  if (config.decision_cache_fastpath && config.decision_cache_capacity == 0) {
    return Status::InvalidArgument(
        "decision_cache_fastpath requires decision_cache_capacity > 0 — "
        "there is no snapshot to read with the cache off");
  }
  if (config.default_deadline < 0) {
    return Status::InvalidArgument(
        "default_deadline must be >= 0 (0 disables); got " +
        std::to_string(config.default_deadline));
  }
  if (!config.audit_path.empty() && config.audit_queue_capacity == 0) {
    return Status::InvalidArgument(
        "audit_queue_capacity must be > 0 when audit_path is set — a "
        "zero-capacity hand-off would drop every record");
  }
  if (config.quota_rate_per_s < 0) {
    return Status::InvalidArgument(
        "quota_rate_per_s must be >= 0 (0 disables the default quota); got " +
        std::to_string(config.quota_rate_per_s));
  }
  if (config.quota_burst < 0) {
    return Status::InvalidArgument(
        "quota_burst must be >= 0 (0 behaves as 1); got " +
        std::to_string(config.quota_burst));
  }
  if (config.policer_capacity == 0 ||
      !DecisionCache::IsPowerOfTwo(config.policer_capacity)) {
    return Status::InvalidArgument(
        "policer_capacity must be a power of two (the policer is an "
        "open-addressed slot table); got " +
        std::to_string(config.policer_capacity));
  }
  bool any_static_quota = config.quota_rate_per_s > 0;
  for (const PrincipalQuota& quota : config.quota_overrides) {
    if (quota.principal.empty()) {
      return Status::InvalidArgument(
          "quota_overrides entries must name a principal");
    }
    if (quota.rate_per_s > 0) any_static_quota = true;
  }
  if (any_static_quota &&
      config.quota_enforcement == QuotaEnforcement::kOnOverload &&
      config.mailbox_capacity == 0) {
    return Status::InvalidArgument(
        "a static quota with QuotaEnforcement::kOnOverload requires "
        "mailbox_capacity > 0 — an unbounded mailbox never overloads, so "
        "the quota could never refuse anything; bound the mailbox or use "
        "QuotaEnforcement::kAlways");
  }
  return Status::OK();
}

Result<std::unique_ptr<AuthorizationService>> AuthorizationService::Create(
    const ServiceConfig& config) {
  SENTINEL_RETURN_IF_ERROR(ValidateConfig(config));
  return std::make_unique<AuthorizationService>(config);
}

AuthorizationService::AuthorizationService(const ServiceConfig& config)
    : synchronous_(config.synchronous),
      init_status_(ValidateConfig(config)),
      shed_on_full_(config.overload_policy == OverloadPolicy::kShed),
      default_deadline_(config.default_deadline) {
  int count = config.num_shards;
  size_t cache_capacity = config.decision_cache_capacity;
  bool fastpath = config.decision_cache_fastpath;
  if (!init_status_.ok()) {
    SENTINEL_LOG(kError) << "AuthorizationService config rejected ("
                        << init_status_.message()
                        << "); degrading to 1 shard, cache off, fast path "
                           "off, no overload protection";
    count = 1;
    cache_capacity = 0;
    fastpath = false;
    shed_on_full_ = false;
    default_deadline_ = 0;
  }
  if (count <= 0) {
    count = static_cast<int>(std::thread::hardware_concurrency());
    if (count <= 0) count = 1;
  }
  if (synchronous_) count = 1;
  // Synchronous calls already run inline on the caller's thread; the fast
  // path would only add a redundant probe in front of the engine's own
  // cache lookup.
  fastpath_ = fastpath && cache_capacity > 0 && !synchronous_;
  latency_sample_every_ = config.latency_sample_every;
  now_.store(config.start_time, std::memory_order_release);

  // Service-boundary instruments, registered (like the shards' own) before
  // any thread exists — the registry is structurally frozen from here on.
  requests_counter_ = service_metrics_.AddCounter(
      "service_requests_total", "requests accepted at the service boundary");
  batches_counter_ =
      service_metrics_.AddCounter("service_batches_total",
                                  "CheckAccessBatch calls");
  broadcasts_counter_ = service_metrics_.AddCounter(
      "admin_broadcasts_total", "epoch-barriered admin broadcasts");
  sessions_gauge_ = service_metrics_.AddGauge(
      "service_sessions", "sessions tracked in the routing registry");
  batch_size_hist_ = service_metrics_.AddHistogram(
      "batch_size", "requests per CheckAccessBatch call",
      telemetry::Histogram::ExponentialBounds(1, 2.0, 11));
  // Identical name and bounds to the engines' series: snapshot merging
  // folds sampled fast-path hits into the same latency distribution.
  fastpath_latency_hist_ = service_metrics_.AddHistogram(
      "decision_latency_us", "sampled wall-clock dispatch latency (us)",
      telemetry::Histogram::ExponentialBounds(1, 2.0, 15));
  policer_refused_counter_ = service_metrics_.AddCounter(
      "policer_refused_total",
      "requests refused kOverloaded for exceeding their principal's quota");
  // Always constructed: threshold rules can throttle a principal at runtime
  // even when no static quota was configured. Inactive, it costs one
  // relaxed load per request.
  Policer::Options policer_options;
  policer_options.capacity =
      init_status_.ok() ? config.policer_capacity : size_t{1024};
  policer_options.clock = config.quota_clock;
  if (init_status_.ok() && config.quota_rate_per_s > 0) {
    policer_options.default_quota = Policer::Quota{
        config.quota_rate_per_s,
        config.quota_burst < 1 ? int64_t{1} : config.quota_burst};
  }
  policer_ = std::make_unique<Policer>(std::move(policer_options));
  if (init_status_.ok()) {
    for (const PrincipalQuota& quota : config.quota_overrides) {
      policer_->SetQuota(quota.principal,
                         Policer::Quota{quota.rate_per_s, quota.burst});
    }
    quota_always_ = config.quota_enforcement == QuotaEnforcement::kAlways;
    quota_key_delimiter_ = config.quota_key_delimiter;
    // The reserved top quarter of a bounded mailbox: over-quota requests
    // admit only up to this depth, so conformant principals always find
    // headroom an abuser cannot occupy.
    const size_t cap = config.mailbox_capacity;
    over_quota_max_depth_ = cap > 0 ? cap - cap / 4 : 0;
  }
  pauseless_updates_ = config.pauseless_updates;
  policy_swaps_counter_ = service_metrics_.AddCounter(
      "policy_swap_total", "policy generations committed pauselessly");
  policy_swap_failures_counter_ = service_metrics_.AddCounter(
      "policy_swap_failures_total",
      "policy updates rejected at prepare or commit");
  swap_build_hist_ = service_metrics_.AddHistogram(
      "policy_swap_build_us",
      "off-thread prepare cost of a policy update (validate+diff, us)",
      telemetry::Histogram::ExponentialBounds(1, 2.0, 15));

  // The exporter must exist before any shard thread starts: ShardLoop reads
  // audit_ without synchronization, relying on the thread-start fence.
  if (init_status_.ok() && !config.audit_path.empty()) {
    audit::AuditExporter::Options audit_options;
    audit_options.path = config.audit_path;
    audit_options.rotate_bytes = config.audit_rotate_bytes;
    audit_options.queue_capacity = config.audit_queue_capacity;
    audit_ = std::make_unique<audit::AuditExporter>(std::move(audit_options));
  }

  shards_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = static_cast<uint32_t>(i);
    shard->clock = std::make_unique<SimulatedClock>(config.start_time);
    shard->engine = std::make_unique<AuthorizationEngine>(shard->clock.get());
    shard->engine->set_decision_log_capacity(config.decision_log_capacity);
    shard->engine->set_telemetry_sampling(config.latency_sample_every,
                                          config.trace_sample_every);
    // Close the paper's reaction loop: a threshold rule that decides to
    // throttle a principal (ThresholdDirective::throttle_rate_per_s) lands
    // here, on the shard thread, and installs the penalty quota in the
    // shared policer. SetQuota is lock-free and thread-safe.
    shard->engine->set_throttle_sink(
        [this](const std::string& user, double rate_per_s, int64_t burst) {
          policer_->SetQuota(user, Policer::Quota{rate_per_s, burst});
        });
    if (!init_status_.ok()) {
      shard->mailbox.set_capacity(0);
    } else {
      shard->mailbox.set_capacity(config.mailbox_capacity);
    }
    // Overload instruments live in the shard engine's registry so they are
    // merged, rendered and reported alongside its other series. Registered
    // here — still before any thread exists, so the registry stays
    // structurally frozen once the shards start.
    telemetry::Registry& registry = shard->engine->metrics();
    shard->shed_counter = registry.AddCounter(
        "mailbox_shed_total",
        "decision envelopes refused at a full shard mailbox");
    shard->expired_counter = registry.AddCounter(
        "mailbox_expired_total",
        "decision envelopes answered kOverloaded after deadline expiry");
    shard->fastpath_counter = registry.AddCounter(
        "decision_cache_fastpath_hits_total",
        "CheckAccess verdicts answered caller-side from the published cache "
        "snapshot (zero mailbox hops)");
    shard->queue_depth_hist = registry.AddHistogram(
        "mailbox_queue_depth", "shard mailbox depth observed at each push",
        telemetry::Histogram::ExponentialBounds(1, 2.0, 12));
    shard->queue_wait_hist = registry.AddHistogram(
        "mailbox_queue_wait_us",
        "submit-to-dequeue wait of decision envelopes (us)",
        telemetry::Histogram::ExponentialBounds(1, 2.0, 15));
    shard->swap_commit_hist = registry.AddHistogram(
        "policy_swap_commit_us",
        "on-shard-thread cost of one pauseless swap commit (us)",
        telemetry::Histogram::ExponentialBounds(1, 2.0, 15));
    if (cache_capacity > 0) {
      shard->engine->ConfigureDecisionCache(cache_capacity);
    }
    if (config.telemetry_report_interval > 0) {
      telemetry::ReportSink sink;
      if (config.telemetry_sink) {
        // Tag each report with its shard of origin; the engine itself does
        // not know it is sharded.
        sink = [user_sink = config.telemetry_sink,
                index = shard->index](const std::string& body) {
          user_sink("# shard " + std::to_string(index) + '\n' + body);
        };
      }
      // Cannot fail here: the engine is fresh (no "telemetry.*" events yet)
      // and the interval was checked above.
      (void)InstallPeriodicMetricsReporter(
          *shard->engine, config.telemetry_report_interval, std::move(sink));
    }
    shards_.push_back(std::move(shard));
  }
  if (!synchronous_) {
    for (auto& shard : shards_) {
      shard->thread = std::thread(&AuthorizationService::ShardLoop, this,
                                  shard.get());
    }
    timer_thread_ = std::thread(&AuthorizationService::TimerLoop, this);
  }
}

AuthorizationService::~AuthorizationService() { Shutdown(); }

void AuthorizationService::ShardLoop(Shard* shard) {
  std::deque<std::function<void(Shard&)>> batch;
  const bool tap = audit_ != nullptr;
  while (shard->mailbox.PopAll(&batch)) {
    for (auto& task : batch) {
      task(*shard);
      // Tap after every envelope, not every PopAll batch: one envelope can
      // emit at most its own requests' records (a handful; the wire server
      // batches 8), so the ring can never wrap between taps, while a long
      // PopAll batch could outrun the whole ring before a per-batch drain.
      if (tap) DrainShardAudit(*shard);
    }
  }
}

void AuthorizationService::DrainShardAudit(Shard& shard) {
  AuthorizationEngine& engine = *shard.engine;
  if (!engine.HasUndrainedDecisions()) return;
  const uint64_t epoch = shard.applied_epoch.load(std::memory_order_relaxed);
  const uint64_t missed = engine.DrainDecisionLog(
      [this, &shard, epoch](const DecisionRecord& record) {
        audit_->Offer(audit::FromDecisionRecord(
            record, static_cast<int>(shard.index), epoch));
      });
  if (missed > 0) audit_->AddUpstreamLoss(missed);
}

void AuthorizationService::OfferServiceRecord(const char* kind,
                                              const AccessRequest* request,
                                              const AccessDecision& decision) {
  audit::AuditRecord record;
  record.kind = kind;
  record.shard = static_cast<int>(decision.shard);
  record.epoch = decision.epoch;
  record.wall_us = WallTimeMicros();
  record.sim_us = Now();
  record.allowed = decision.allowed;
  record.outcome = static_cast<int>(decision.outcome);
  record.rule = decision.rule;
  record.reason = decision.reason;
  record.latency_us = decision.latency;
  if (request != nullptr) {
    record.user = request->user;
    record.session = request->session;
    record.op = request->operation;
    record.object = request->object;
    record.purpose = request->purpose;
  }
  audit_->Offer(std::move(record));
}

void AuthorizationService::TimerLoop() {
  std::deque<TimerCommand> batch;
  while (timer_mailbox_.PopAll(&batch)) {
    for (TimerCommand& command : batch) {
      ApplyAdvance(command.target);
      command.done->Arrive();
    }
  }
}

void AuthorizationService::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (shut_down_.load(std::memory_order_relaxed)) return;
  shut_down_.store(true, std::memory_order_release);
  if (!synchronous_) {
    // Order matters: the timer thread broadcasts into shard mailboxes, so
    // it must drain and exit before those mailboxes close.
    timer_mailbox_.Close();
    if (timer_thread_.joinable()) timer_thread_.join();
    for (auto& shard : shards_) shard->mailbox.Close();
    for (auto& shard : shards_) {
      if (shard->thread.joinable()) shard->thread.join();
    }
  }
  if (audit_ != nullptr) {
    // Every shard thread is joined (or never existed): a final inline drain
    // collects whatever the last envelopes pushed, then Close flushes the
    // stream to disk before Shutdown returns — the "explicit flush/close on
    // shutdown" half of the exporter contract.
    for (auto& shard : shards_) DrainShardAudit(*shard);
    audit_->Close();
  }
}

// ----------------------------------------------------------------- Routing

uint32_t AuthorizationService::ShardOf(const std::string& user) const {
  return static_cast<uint32_t>(Fnv1a(user) % shards_.size());
}

uint32_t AuthorizationService::RouteSession(const SessionId& session) const {
  {
    std::shared_lock<std::shared_mutex> lock(session_mu_);
    auto it = sessions_.find(session);
    if (it != sessions_.end()) return it->second;
  }
  // Unknown session: any shard denies it identically; pick one
  // deterministically.
  return ShardOf(session);
}

uint32_t AuthorizationService::RouteRequest(
    const AccessRequest& request) const {
  if (!request.user.empty()) return ShardOf(request.user);
  return RouteSession(request.session);
}

// ------------------------------------------------------------- Conversions

AccessDecision AuthorizationService::ShutdownDecision() {
  AccessDecision decision;
  decision.allowed = false;
  decision.reason = "service is shut down";
  decision.outcome = AccessOutcome::kShutdown;
  return decision;
}

AccessDecision AuthorizationService::OverloadDecision(OverloadKind kind,
                                                      uint32_t shard,
                                                      int64_t submit_ns) const {
  AccessDecision decision;
  decision.allowed = false;
  decision.outcome = AccessOutcome::kOverloaded;
  // The outcome enum is wire-pinned; the reason string is what
  // distinguishes indiscriminate shedding, deadline expiry, and quota
  // refusal to callers.
  switch (kind) {
    case OverloadKind::kShed:
      decision.reason = "overloaded: shed";
      break;
    case OverloadKind::kExpired:
      decision.reason = "overloaded: deadline exceeded";
      break;
    case OverloadKind::kOverQuota:
      decision.reason = "overloaded: over quota";
      break;
  }
  decision.shard = shard;
  decision.epoch = admin_epoch();
  decision.latency = (NowNanos() - submit_ns) / 1000;
  return decision;
}

AdminResult AuthorizationService::ToAdminResult(
    const AccessDecision& decision) {
  AdminResult result;
  switch (decision.outcome) {
    case AccessOutcome::kDecided:
      result.status = decision.allowed
                          ? Status::OK()
                          : Status::ConstraintViolation(decision.reason);
      break;
    case AccessOutcome::kOverloaded:
      result.status = Status::ResourceExhausted(decision.reason);
      break;
    case AccessOutcome::kShutdown:
      result.status = Status::FailedPrecondition(decision.reason);
      break;
  }
  result.outcome = decision.outcome;
  result.epoch = decision.epoch;
  result.shard = decision.shard;
  result.latency = decision.latency;
  return result;
}

int64_t AuthorizationService::DeadlineNanos(Duration deadline_us,
                                            int64_t submit_ns) {
  if (deadline_us <= 0) return 0;
  // Saturate both steps: a huge but valid budget must mean "effectively
  // never", and `submit_ns + budget` overflowing would be signed UB that in
  // practice wraps negative — an already-expired deadline that sheds every
  // request carrying it.
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  if (deadline_us > kMax / 1000) return kMax;
  const int64_t budget_ns = static_cast<int64_t>(deadline_us) * 1000;
  if (submit_ns > kMax - budget_ns) return kMax;
  return submit_ns + budget_ns;
}

AccessDecision AuthorizationService::Convert(const Decision& decision,
                                             uint32_t shard, uint64_t epoch,
                                             int64_t submit_ns) const {
  AccessDecision out;
  out.allowed = decision.allowed;
  out.rule = decision.rule;
  out.reason = decision.reason;
  out.failed_condition = decision.failed_condition;
  out.latency = (NowNanos() - submit_ns) / 1000;
  out.shard = shard;
  out.epoch = epoch;
  return out;
}

// ------------------------------------------------------------ Dispatch core

std::string_view AuthorizationService::PrincipalOf(
    const AccessRequest& request) const {
  std::string_view principal = request.user.empty()
                                   ? std::string_view(request.session)
                                   : std::string_view(request.user);
  if (quota_key_delimiter_ != '\0') {
    const size_t cut = principal.find(quota_key_delimiter_);
    if (cut != std::string_view::npos) principal = principal.substr(0, cut);
  }
  return principal;
}

Policer::Verdict AuthorizationService::AdmitPrincipal(
    const AccessRequest& request) {
  if (!policer_->active()) return Policer::Verdict::kUnpoliced;
  return policer_->Admit(PrincipalOf(request));
}

AccessDecision AuthorizationService::RefuseOverQuota(
    const AccessRequest* request, uint32_t shard, int64_t submit_ns) {
  policer_refused_counter_->Add();
  const AccessDecision refused =
      OverloadDecision(OverloadKind::kOverQuota, shard, submit_ns);
  if (audit_ != nullptr) {
    OfferServiceRecord("service.overload", request, refused);
  }
  return refused;
}

void AuthorizationService::SetPrincipalQuota(const std::string& principal,
                                             double rate_per_s,
                                             int64_t burst) {
  if (rate_per_s <= 0) {
    policer_->ResetQuota(principal);
    return;
  }
  policer_->SetQuota(principal, Policer::Quota{rate_per_s, burst});
}

AccessDecision AuthorizationService::RunOnShard(
    uint32_t shard, const std::function<Decision(AuthorizationEngine&)>& op,
    Duration deadline_us, bool over_quota) {
  const int64_t submit_ns = NowNanos();
  requests_counter_->Add();
  Shard& home = *shards_[shard];
  if (synchronous_) {
    // No queue, no admission control: the engine runs inline immediately,
    // so a deadline can never expire before dispatch.
    const Decision decision = op(*home.engine);
    if (audit_ != nullptr) DrainShardAudit(home);
    return Convert(decision, shard,
                   home.applied_epoch.load(std::memory_order_relaxed),
                   submit_ns);
  }
  const int64_t deadline_ns = DeadlineNanos(deadline_us, submit_ns);
  AccessDecision out;
  Latch done(1);
  // Once admitted, the producer always waits for this envelope to run —
  // expiry is decided at dequeue (answered kOverloaded without engine
  // time), never by abandoning an envelope whose captures live on this
  // stack frame.
  auto envelope = [&](Shard& s) {
    const int64_t start_ns = NowNanos();
    s.queue_wait_hist->Record((start_ns - submit_ns) / 1000);
    if (deadline_ns != 0 && start_ns > deadline_ns) {
      s.expired_counter->Add();
      out = OverloadDecision(OverloadKind::kExpired, s.index, submit_ns);
      if (audit_ != nullptr) {
        OfferServiceRecord("service.overload", nullptr, out);
      }
    } else {
      const Decision decision = op(*s.engine);
      out = Convert(decision, s.index,
                    s.applied_epoch.load(std::memory_order_relaxed),
                    submit_ns);
    }
    done.Arrive();
  };
  using PushResult = Mailbox<std::function<void(Shard&)>>::PushResult;
  size_t depth = 0;
  // Weighted admission: an over-quota producer never blocks for space and
  // only fills the non-reserved depth, so at saturation it is refused
  // first while conformant principals keep the full block/shed semantics.
  const bool block = !shed_on_full_ && !over_quota;
  const size_t max_depth = over_quota ? over_quota_max_depth_ : 0;
  switch (home.mailbox.PushBounded(std::move(envelope), block, deadline_ns,
                                   &depth, max_depth)) {
    case PushResult::kClosed:
      return ShutdownDecision();
    case PushResult::kFull: {
      home.shed_counter->Add();
      if (over_quota) return RefuseOverQuota(nullptr, shard, submit_ns);
      const AccessDecision shed =
          OverloadDecision(OverloadKind::kShed, shard, submit_ns);
      if (audit_ != nullptr) {
        OfferServiceRecord("service.overload", nullptr, shed);
      }
      return shed;
    }
    case PushResult::kExpired: {
      home.expired_counter->Add();
      const AccessDecision expired =
          OverloadDecision(OverloadKind::kExpired, shard, submit_ns);
      if (audit_ != nullptr) {
        OfferServiceRecord("service.overload", nullptr, expired);
      }
      return expired;
    }
    case PushResult::kOk:
      break;
  }
  home.queue_depth_hist->RecordShared(static_cast<int64_t>(depth));
  done.Wait();
  return out;
}

void AuthorizationService::Broadcast(
    const std::function<void(AuthorizationEngine&, uint32_t)>& fn,
    bool admin) {
  std::lock_guard<std::mutex> admin_lock(admin_mu_);
  broadcasts_counter_->Add();
  const uint64_t epoch = admin_epoch_.load(std::memory_order_relaxed) + 1;
  if (synchronous_) {
    if (admin) shards_[0]->engine->BumpDecisionCacheEpoch();
    fn(*shards_[0]->engine, 0);
    shards_[0]->applied_epoch.store(epoch, std::memory_order_release);
    admin_epoch_.store(epoch, std::memory_order_release);
    if (audit_ != nullptr) DrainShardAudit(*shards_[0]);
    return;
  }
  Latch done(static_cast<int>(shards_.size()));
  for (auto& shard : shards_) {
    const bool pushed =
        shard->mailbox.Push([&fn, &done, epoch, admin](Shard& s) {
          // Admin envelopes carry the cache-epoch bump with them, so any
          // request queued behind this one already sees every memoized
          // verdict from the old policy world as stale.
          if (admin) s.engine->BumpDecisionCacheEpoch();
          fn(*s.engine, s.index);
          s.applied_epoch.store(epoch, std::memory_order_release);
          done.Arrive();
        });
    // A closed mailbox (shutdown race) can no longer observe the update;
    // count it down so the barrier still completes.
    if (!pushed) done.Arrive();
  }
  done.Wait();
  admin_epoch_.store(epoch, std::memory_order_release);
}

AccessDecision AuthorizationService::BroadcastRequest(
    uint32_t authoritative,
    const std::function<Decision(AuthorizationEngine&)>& op) {
  const int64_t submit_ns = NowNanos();
  Decision authoritative_decision;
  Broadcast([&](AuthorizationEngine& engine, uint32_t shard) {
    const Decision decision = op(engine);
    if (shard == authoritative) authoritative_decision = decision;
  });
  return Convert(authoritative_decision, authoritative, admin_epoch(),
                 submit_ns);
}

// ------------------------------------------------------------------ Policy

Status AuthorizationService::LoadPolicy(const Policy& policy) {
  // One immutable generation shared by every shard: pointer identity is
  // what lets CommitPolicyUpdate reject plans prepared against a policy
  // that is no longer installed. update_mu_ orders the install against any
  // concurrent ApplyPolicyUpdate reading current_policy_.
  std::lock_guard<std::mutex> update_lock(update_mu_);
  auto shared = std::make_shared<const Policy>(policy);
  std::vector<Status> statuses(shards_.size());
  Broadcast([&](AuthorizationEngine& engine, uint32_t shard) {
    statuses[shard] = engine.LoadPolicy(shared);
  });
  for (const Status& status : statuses) {
    SENTINEL_RETURN_IF_ERROR(status);
  }
  current_policy_ = std::move(shared);
  return Status::OK();
}

std::shared_ptr<const Policy> AuthorizationService::current_policy() const {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  return current_policy_;
}

Result<RegenReport> AuthorizationService::ApplyPolicyUpdate(
    const Policy& updated) {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  if (!pauseless_updates_ || current_policy_ == nullptr) {
    // Legacy stop-the-world path (and the fallback when no policy is
    // loaded, where every shard will correctly refuse). Every shard runs
    // the identical validate+diff+regenerate inside the epoch barrier;
    // shard 0's report stands for all of them.
    std::vector<Result<RegenReport>> reports(
        shards_.size(), Result<RegenReport>(Status::Internal("not applied")));
    Broadcast([&](AuthorizationEngine& engine, uint32_t shard) {
      reports[shard] = engine.ApplyPolicyUpdate(updated);
    });
    for (auto& report : reports) {
      if (!report.ok()) return report.status();
    }
    return reports[0];
  }

  // Pauseless swap. Prepare once, off every shard thread: validation and
  // the full-policy diffs happen here, on the admin caller's time.
  const int64_t build_start_ns = NowNanos();
  auto plan = AuthorizationEngine::PreparePolicyUpdate(current_policy_,
                                                       updated);
  swap_build_hist_->RecordShared((NowNanos() - build_start_ns) / 1000);
  if (!plan.ok()) {
    policy_swap_failures_counter_->Add();
    SENTINEL_LOG(kError) << "policy update rejected at prepare: "
                         << plan.status().message();
    return plan.status();
  }

  // Commit per shard as ordinary exempt-lane envelopes — no epoch, no
  // barrier between shards, no cache wipe. Each shard flips mid-stream;
  // the latch below is only the caller's linearization point (on return,
  // every shard serves the new generation).
  std::vector<Result<RegenReport>> reports(
      shards_.size(), Result<RegenReport>(Status::Internal("not applied")));
  if (synchronous_) {
    reports[0] = shards_[0]->engine->CommitPolicyUpdate(*plan);
    if (audit_ != nullptr) DrainShardAudit(*shards_[0]);
  } else {
    Latch done(static_cast<int>(shards_.size()));
    for (auto& shard : shards_) {
      const bool pushed =
          shard->mailbox.Push([&plan, &reports, &done](Shard& s) {
            const int64_t start_ns = NowNanos();
            reports[s.index] = s.engine->CommitPolicyUpdate(*plan);
            s.swap_commit_hist->Record((NowNanos() - start_ns) / 1000);
            done.Arrive();
          });
      // A closed mailbox (shutdown race) can no longer commit; count it
      // down so the caller is not stranded — its slot keeps the
      // "not applied" error.
      if (!pushed) done.Arrive();
    }
    done.Wait();
  }
  for (auto& report : reports) {
    if (!report.ok()) {
      // Loud rollback: validation failures are caught at Prepare before
      // any shard mutates, so a commit failure is the rare builder error
      // (same surface the legacy path had). current_policy_ stays put, the
      // error is returned and logged, and any shard that did flip will
      // reject the next plan with FailedPrecondition rather than diverge
      // silently.
      policy_swap_failures_counter_->Add();
      SENTINEL_LOG(kError) << "policy swap failed to commit: "
                           << report.status().message();
      return report.status();
    }
  }
  current_policy_ = plan->next;
  policy_swaps_counter_->Add();
  if (audit_ != nullptr) {
    AccessDecision marker;
    marker.allowed = true;
    marker.epoch = admin_epoch();
    OfferServiceRecord("service.swap", nullptr, marker);
  }
  return reports[0];
}

// ------------------------------------------------------------ Request path

bool AuthorizationService::TryFastPath(const AccessRequest& request,
                                       AccessDecision* out) {
  // Purpose stays outside the packed cache key (privacy-qualified requests
  // always dispatch), so it bypasses here too.
  if (!request.purpose.empty()) return false;
  // Clock reads are sampled exactly like the engines' dispatch path; an
  // unsampled hit never touches the wall clock and reports latency 0.
  thread_local uint32_t latency_tick = 1;
  const bool timed =
      latency_sample_every_ != 0 && --latency_tick == 0;
  if (timed) latency_tick = latency_sample_every_;
  const int64_t start_ns = timed ? NowNanos() : 0;

  Shard& home = *shards_[RouteRequest(request)];
  // Linearization anchor: the epoch is read before the snapshot probe, so
  // the decision we return is stamped no newer than the state it was
  // validated against.
  const uint64_t epoch = home.applied_epoch.load(std::memory_order_acquire);
  const SymbolTable& symbols = home.engine->symbols();
  // Find, never Intern: interning is the shard thread's privilege. A name
  // this shard has not published yet is simply a miss.
  const Symbol session = symbols.Find(request.session);
  const Symbol op = symbols.Find(request.operation);
  const Symbol obj = symbols.Find(request.object);
  if (!session.valid() || !op.valid() || !obj.valid()) return false;
  const std::optional<uint64_t> key = DecisionCache::PackKey(session, op, obj);
  if (!key.has_value()) return false;
  DecisionCache::Verdict verdict;
  if (!home.engine->decision_cache().SharedLookup(*key, &verdict)) {
    return false;
  }
  out->allowed = verdict.allowed;
  if (verdict.allowed) {
    out->rule = AuthorizationEngine::kCaRuleName;
  } else {
    if (verdict.by_rule) out->rule = AuthorizationEngine::kCaRuleName;
    out->reason = AuthorizationEngine::kDenyReason;
  }
  out->shard = home.index;
  out->epoch = epoch;
  out->outcome = AccessOutcome::kDecided;
  home.fastpath_counter->Add();
  if (timed) {
    const int64_t latency_us = (NowNanos() - start_ns) / 1000;
    out->latency = latency_us;
    fastpath_latency_hist_->RecordShared(latency_us);
  }
  return true;
}

AccessDecision AuthorizationService::CheckAccess(const AccessRequest& request) {
  if (fastpath_) {
    AccessDecision fast;
    if (TryFastPath(request, &fast)) {
      requests_counter_->Add();
      // Fast-path hits bypass the engine and its DecisionLog entirely; the
      // service-level record keeps them in the durable stream.
      if (audit_ != nullptr) {
        OfferServiceRecord("service.fastpath", &request, fast);
      }
      return fast;
    }
  }
  // Policing happens after the fast-path probe: a snapshot hit consumes no
  // decision-lane capacity, which is the resource quotas protect.
  bool over_quota = false;
  if (AdmitPrincipal(request) == Policer::Verdict::kOverQuota) {
    if (quota_always_) {
      requests_counter_->Add();
      return RefuseOverQuota(&request, RouteRequest(request), NowNanos());
    }
    over_quota = true;
  }
  return RunOnShard(RouteRequest(request),
                    [&request](AuthorizationEngine& engine) {
                      return engine.CheckAccess(request.session,
                                                request.operation,
                                                request.object,
                                                request.purpose);
                    },
                    request.EffectiveDeadline(default_deadline_), over_quota);
}

std::vector<AccessDecision> AuthorizationService::CheckAccessBatch(
    std::span<const AccessRequest> requests) {
  std::vector<AccessDecision> results(requests.size());
  CheckAccessBatchInto(requests, results);
  return results;
}

void AuthorizationService::CheckAccessBatchInto(
    std::span<const AccessRequest> requests,
    std::span<AccessDecision> results) {
  assert(requests.size() == results.size());
  const int64_t submit_ns = NowNanos();
  AccessDecision* const out = results.data();
  if (requests.empty()) return;
  batches_counter_->Add();
  requests_counter_->Add(requests.size());
  batch_size_hist_->RecordShared(static_cast<int64_t>(requests.size()));
  if (synchronous_) {
    Shard& shard = *shards_[0];
    for (size_t i = 0; i < requests.size(); ++i) {
      // Inline dispatch still debits quota buckets; only kAlways can turn
      // the verdict into a refusal here (there is no queue to overload).
      if (AdmitPrincipal(requests[i]) == Policer::Verdict::kOverQuota &&
          quota_always_) {
        out[i] = RefuseOverQuota(&requests[i], 0, submit_ns);
        continue;
      }
      const Decision decision = shard.engine->CheckAccess(
          requests[i].session, requests[i].operation, requests[i].object,
          requests[i].purpose);
      out[i] = Convert(decision, 0,
                       shard.applied_epoch.load(std::memory_order_relaxed),
                       submit_ns);
    }
    if (audit_ != nullptr) DrainShardAudit(shard);
    return;
  }
  // Per-item zero-hop probe first: only the misses pay a mailbox hop, and
  // a batch answered entirely from snapshots involves no shard at all.
  std::vector<uint32_t> pending;
  pending.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!fastpath_ || !TryFastPath(requests[i], &out[i])) {
      pending.push_back(static_cast<uint32_t>(i));
    } else if (audit_ != nullptr) {
      OfferServiceRecord("service.fastpath", &requests[i], out[i]);
    }
  }
  if (pending.empty()) return;
  // Admission policing, per item: each miss debits its principal's bucket.
  // Under kAlways an over-quota item is refused right here; under
  // kOnOverload it is grouped into a separate envelope that takes the
  // restricted (never-block, reserved-depth) push below.
  std::vector<int64_t> deadlines(requests.size(), 0);
  std::vector<std::vector<uint32_t>> indices(shards_.size());
  std::vector<std::vector<uint32_t>> over_indices(shards_.size());
  for (const uint32_t i : pending) {
    bool over_quota = false;
    if (AdmitPrincipal(requests[i]) == Policer::Verdict::kOverQuota) {
      if (quota_always_) {
        out[i] = RefuseOverQuota(&requests[i], RouteRequest(requests[i]),
                                 submit_ns);
        continue;
      }
      over_quota = true;
    }
    // Deadlines are per item: expiry is judged request by request when the
    // envelope runs, so one slow item never spoils its batch-mates' budget.
    deadlines[i] = DeadlineNanos(
        requests[i].EffectiveDeadline(default_deadline_), submit_ns);
    (over_quota ? over_indices : indices)[RouteRequest(requests[i])]
        .push_back(i);
  }
  int involved = 0;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    if (!indices[shard].empty()) ++involved;
    if (!over_indices[shard].empty()) ++involved;
  }
  if (involved == 0) return;
  using PushResult = Mailbox<std::function<void(Shard&)>>::PushResult;
  Latch done(involved);
  // One envelope per involved (shard, quota-class) pair, carrying that
  // group's request indices.
  auto submit = [&](size_t shard, const std::vector<uint32_t>& group,
                    bool over_quota) {
    Shard& home = *shards_[shard];
    // A blocked admission may wait until the envelope's *latest* item
    // deadline: earlier-expiring items are answered kOverloaded by the
    // per-item check once the envelope runs. Any item without a deadline
    // makes the wait unbounded (0).
    int64_t push_deadline_ns = 0;
    for (const uint32_t i : group) {
      if (deadlines[i] == 0) {
        push_deadline_ns = 0;
        break;
      }
      push_deadline_ns = std::max(push_deadline_ns, deadlines[i]);
    }
    // Capture a copy: the lambda is built (and `mine` populated) before
    // the push decides, and the refusal fallbacks below still need the
    // list.
    auto envelope = [this, requests, &deadlines, out, &done, submit_ns,
                     mine = group](Shard& s) {
      const int64_t start_ns = NowNanos();
      s.queue_wait_hist->Record((start_ns - submit_ns) / 1000);
      const uint64_t epoch = s.applied_epoch.load(std::memory_order_relaxed);
      for (const uint32_t i : mine) {
        if (deadlines[i] != 0 && start_ns > deadlines[i]) {
          s.expired_counter->Add();
          out[i] = OverloadDecision(OverloadKind::kExpired, s.index,
                                    submit_ns);
          if (audit_ != nullptr) {
            OfferServiceRecord("service.overload", &requests[i], out[i]);
          }
          continue;
        }
        const Decision decision = s.engine->CheckAccess(
            requests[i].session, requests[i].operation, requests[i].object,
            requests[i].purpose);
        out[i] = Convert(decision, s.index, epoch, submit_ns);
      }
      done.Arrive();
    };
    size_t depth = 0;
    const bool block = !shed_on_full_ && !over_quota;
    switch (home.mailbox.PushBounded(std::move(envelope), block,
                                     push_deadline_ns, &depth,
                                     over_quota ? over_quota_max_depth_
                                                : size_t{0})) {
      case PushResult::kClosed:
        for (const uint32_t i : group) out[i] = ShutdownDecision();
        done.Arrive();
        return;
      case PushResult::kFull:
        home.shed_counter->Add(group.size());
        for (const uint32_t i : group) {
          if (over_quota) {
            out[i] = RefuseOverQuota(&requests[i], home.index, submit_ns);
            continue;
          }
          out[i] = OverloadDecision(OverloadKind::kShed, home.index,
                                    submit_ns);
          if (audit_ != nullptr) {
            OfferServiceRecord("service.overload", &requests[i], out[i]);
          }
        }
        done.Arrive();
        return;
      case PushResult::kExpired:
        home.expired_counter->Add(group.size());
        for (const uint32_t i : group) {
          out[i] = OverloadDecision(OverloadKind::kExpired, home.index,
                                    submit_ns);
          if (audit_ != nullptr) {
            OfferServiceRecord("service.overload", &requests[i], out[i]);
          }
        }
        done.Arrive();
        return;
      case PushResult::kOk:
        break;
    }
    home.queue_depth_hist->RecordShared(static_cast<int64_t>(depth));
  };
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    if (!indices[shard].empty()) submit(shard, indices[shard], false);
    if (!over_indices[shard].empty()) {
      submit(shard, over_indices[shard], true);
    }
  }
  done.Wait();
}

AdminResult AuthorizationService::CreateSession(const UserName& user,
                                                const SessionId& session) {
  const uint32_t shard = ShardOf(user);
  AccessDecision decision = RunOnShard(
      shard,
      [&user, &session](AuthorizationEngine& engine) {
        return engine.CreateSession(user, session);
      },
      default_deadline_);
  if (decision.allowed) {
    std::unique_lock<std::shared_mutex> lock(session_mu_);
    sessions_[session] = shard;
    sessions_gauge_->Set(static_cast<int64_t>(sessions_.size()));
  }
  return ToAdminResult(decision);
}

AdminResult AuthorizationService::DeleteSession(const SessionId& session) {
  const uint32_t shard = RouteSession(session);
  AccessDecision decision = RunOnShard(
      shard,
      [&session](AuthorizationEngine& engine) {
        return engine.DeleteSession(session);
      },
      default_deadline_);
  if (decision.allowed) {
    std::unique_lock<std::shared_mutex> lock(session_mu_);
    sessions_.erase(session);
    sessions_gauge_->Set(static_cast<int64_t>(sessions_.size()));
  }
  return ToAdminResult(decision);
}

AdminResult AuthorizationService::AddActiveRole(const UserName& user,
                                                const SessionId& session,
                                                const RoleName& role) {
  return ToAdminResult(
      RunOnShard(ShardOf(user),
                 [&user, &session, &role](AuthorizationEngine& engine) {
                   return engine.AddActiveRole(user, session, role);
                 },
                 default_deadline_));
}

AdminResult AuthorizationService::DropActiveRole(const UserName& user,
                                                 const SessionId& session,
                                                 const RoleName& role) {
  return ToAdminResult(
      RunOnShard(ShardOf(user),
                 [&user, &session, &role](AuthorizationEngine& engine) {
                   return engine.DropActiveRole(user, session, role);
                 },
                 default_deadline_));
}

// ---------------------------------------------------------- Administration

AdminResult AuthorizationService::AssignUser(const UserName& user,
                                             const RoleName& role) {
  return ToAdminResult(
      BroadcastRequest(ShardOf(user),
                       [&user, &role](AuthorizationEngine& engine) {
                         return engine.AssignUser(user, role);
                       }));
}

AdminResult AuthorizationService::DeassignUser(const UserName& user,
                                               const RoleName& role) {
  return ToAdminResult(
      BroadcastRequest(ShardOf(user),
                       [&user, &role](AuthorizationEngine& engine) {
                         return engine.DeassignUser(user, role);
                       }));
}

AdminResult AuthorizationService::EnableRole(const RoleName& role) {
  return ToAdminResult(
      BroadcastRequest(0, [&role](AuthorizationEngine& engine) {
        return engine.EnableRole(role);
      }));
}

AdminResult AuthorizationService::DisableRole(const RoleName& role) {
  return ToAdminResult(
      BroadcastRequest(0, [&role](AuthorizationEngine& engine) {
        return engine.DisableRole(role);
      }));
}

void AuthorizationService::SetContext(const std::string& key,
                                      const std::string& value) {
  Broadcast([&key, &value](AuthorizationEngine& engine, uint32_t) {
    engine.SetContext(key, value);
  });
}

// -------------------------------------------------------------------- Time

void AuthorizationService::ApplyAdvance(Time target) {
  // Not an admin broadcast for the decision cache: temporal firings
  // invalidate precisely via role/session generations.
  Broadcast(
      [target](AuthorizationEngine& engine, uint32_t) {
        engine.AdvanceTo(target);
      },
      /*admin=*/false);
  Time current = now_.load(std::memory_order_relaxed);
  while (target > current &&
         !now_.compare_exchange_weak(current, target,
                                     std::memory_order_release,
                                     std::memory_order_relaxed)) {
  }
}

Status AuthorizationService::AdvanceTo(Time t) {
  if (synchronous_) {
    if (shut_down_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition(
          "service is shut down; time not advanced");
    }
    ApplyAdvance(t);
    return Status::OK();
  }
  Latch done(1);
  // A closed timer mailbox means Shutdown already joined the timer thread:
  // the advance can never happen, and pretending it did would let callers
  // observe a time that no shard ever reached.
  if (!timer_mailbox_.Push(TimerCommand{t, &done})) {
    return Status::FailedPrecondition(
        "service is shut down; time not advanced");
  }
  done.Wait();
  return Status::OK();
}

// ---------------------------------------------------------- Introspection

void AuthorizationService::Inspect(
    uint32_t shard,
    const std::function<void(const AuthorizationEngine&)>& fn) {
  Shard& target = *shards_[shard];
  if (synchronous_) {
    fn(*target.engine);
    return;
  }
  Latch done(1);
  const bool pushed = target.mailbox.Push([&](Shard& s) {
    fn(*s.engine);
    done.Arrive();
  });
  if (pushed) {
    done.Wait();
    return;
  }
  // Mailbox closed: wait for shutdown to finish joining the shard threads
  // (shutdown_mu_ is held for the whole join), then inspect inline.
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  fn(*target.engine);
}

ServiceStats AuthorizationService::Stats() {
  ServiceStats stats;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    Inspect(static_cast<uint32_t>(shard), [&](const AuthorizationEngine& e) {
      stats.decisions += e.decisions_made();
      stats.denials += e.denials();
      stats.audit_overflow += e.decision_log_overflow();
      stats.cache_hits += e.decision_cache_hits();
      stats.cache_misses += e.decision_cache_misses();
      stats.cache_stale += e.decision_cache_stale();
    });
    // Overload and fast-path counters are plain atomics bumped at the
    // producer edge; no shard-thread quiescing needed to read them exactly.
    stats.shed += shards_[shard]->shed_counter->value();
    stats.expired += shards_[shard]->expired_counter->value();
    stats.fastpath_hits += shards_[shard]->fastpath_counter->value();
  }
  if (audit_ != nullptr) {
    const audit::AuditExporter::Counters counters = audit_->counters();
    stats.audit_records = counters.records;
    stats.audit_drops = counters.drops;
    stats.audit_bytes = counters.bytes;
  }
  stats.policy_swaps = policy_swaps_counter_->value();
  stats.policy_swap_failures = policy_swap_failures_counter_->value();
  stats.policer_admitted = policer_->admitted();
  stats.policer_over_quota = policer_->over_quota_verdicts();
  stats.policer_refused = policer_refused_counter_->value();
  stats.policer_refill_tokens = policer_->refilled_tokens();
  return stats;
}

size_t AuthorizationService::MailboxDepth(uint32_t shard) const {
  return shards_[shard]->mailbox.depth();
}

size_t AuthorizationService::MailboxPeakDepth(uint32_t shard) const {
  return shards_[shard]->mailbox.peak_depth();
}

bool AuthorizationService::InjectShardFault(uint32_t shard,
                                            std::function<void()> fn) {
  if (synchronous_) {
    fn();
    return true;
  }
  return shards_[shard]->mailbox.Push(
      [fn = std::move(fn)](Shard&) { fn(); });
}

// -------------------------------------------------------------- Telemetry

TelemetrySnapshot AuthorizationService::Snapshot() {
  TelemetrySnapshot snap;
  snap.now = Now();
  snap.admin_epoch = admin_epoch();
  snap.num_shards = num_shards();
  // Metrics merge without queueing behind the shards: registries are
  // structurally frozen after construction and reads are atomic loads, so
  // this is safe against concurrent shard-thread updates.
  snap.metrics = service_metrics_.Snapshot();
  for (const auto& shard : shards_) {
    snap.metrics.MergeFrom(shard->engine->metrics().Snapshot());
  }
  // The exporter is not a registry; splice its counters into the merged
  // view so the scrape endpoint carries the whole audit pipeline story
  // (decision_log_overflow_total arrives via the shard registries above).
  if (audit_ != nullptr) {
    const audit::AuditExporter::Counters counters = audit_->counters();
    snap.metrics.counters.push_back(telemetry::CounterSnapshot{
        "audit_export_records_total",
        "audit records durably written by the exporter", counters.records});
    snap.metrics.counters.push_back(telemetry::CounterSnapshot{
        "audit_export_drops_total",
        "audit records lost (hand-off full, write failure, or ring "
        "eviction before the tap)",
        counters.drops});
    snap.metrics.counters.push_back(telemetry::CounterSnapshot{
        "audit_export_bytes_total", "serialized audit bytes written",
        counters.bytes});
  }
  // The policer is not a registry either; splice its counters and a
  // point-in-time occupancy scan the same way (policer_refused_total lives
  // in service_metrics_ and is already merged above).
  snap.metrics.counters.push_back(telemetry::CounterSnapshot{
      "policer_admitted_total",
      "requests admitted within their principal's quota",
      policer_->admitted()});
  snap.metrics.counters.push_back(telemetry::CounterSnapshot{
      "policer_over_quota_total",
      "admission checks that found the principal's bucket empty",
      policer_->over_quota_verdicts()});
  snap.metrics.counters.push_back(telemetry::CounterSnapshot{
      "policer_refill_tokens_total",
      "tokens regained by refill-on-read across all buckets",
      policer_->refilled_tokens()});
  snap.metrics.counters.push_back(telemetry::CounterSnapshot{
      "policer_overflow_total",
      "admissions that failed open because the policer slot table was full",
      policer_->overflows()});
  const Policer::Occupancy occupancy = policer_->Occupy();
  snap.metrics.gauges.push_back(telemetry::GaugeSnapshot{
      "policer_tracked_principals", "principals with a claimed bucket",
      static_cast<int64_t>(occupancy.tracked)});
  snap.metrics.gauges.push_back(telemetry::GaugeSnapshot{
      "policer_over_quota_principals",
      "principals whose bucket is currently empty",
      static_cast<int64_t>(occupancy.over_quota)});
  snap.metrics.gauges.push_back(telemetry::GaugeSnapshot{
      "policer_throttled_principals",
      "principals under an explicit per-principal quota override",
      static_cast<int64_t>(occupancy.throttled)});
  // Spans hold strings the shard thread mutates freely, so they are copied
  // on the shard thread via Inspect.
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    Inspect(static_cast<uint32_t>(shard), [&](const AuthorizationEngine& e) {
      std::vector<telemetry::DecisionSpan> spans = e.tracer().Spans();
      for (telemetry::DecisionSpan& span : spans) {
        span.shard = static_cast<uint32_t>(shard);
      }
      snap.spans.insert(snap.spans.end(),
                        std::make_move_iterator(spans.begin()),
                        std::make_move_iterator(spans.end()));
    });
  }
  return snap;
}

std::string AuthorizationService::RenderMetrics() {
  const TelemetrySnapshot snap = Snapshot();
  std::ostringstream os;
  os << telemetry::RenderPrometheus(snap.metrics);
  for (const telemetry::DecisionSpan& span : snap.spans) {
    os << "# trace " << telemetry::DescribeSpan(span) << '\n';
  }
  return os.str();
}

std::string AuthorizationService::RenderMetricsJson() {
  const TelemetrySnapshot snap = Snapshot();
  std::ostringstream os;
  os << "{\"now\":" << snap.now << ",\"admin_epoch\":" << snap.admin_epoch
     << ",\"num_shards\":" << snap.num_shards
     << ",\"metrics\":" << telemetry::RenderJson(snap.metrics)
     << ",\"spans\":" << telemetry::RenderSpansJson(snap.spans) << '}';
  return os.str();
}

}  // namespace sentinel
