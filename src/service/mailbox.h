#ifndef SENTINELPP_SERVICE_MAILBOX_H_
#define SENTINELPP_SERVICE_MAILBOX_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

namespace sentinel {

/// \brief Multi-producer single-consumer mailbox for one shard thread, in
/// two independent lanes.
///
///  * `PushBounded` is the **decision lane**: a fixed-size MPSC ring with an
///    explicit admission counter. The happy path is lock-free — a CAS to
///    admit, a fetch_add to claim a slot, a release store to publish — so
///    decision producers never serialize on a mutex against each other or
///    against admin traffic. When a capacity is configured and the ring is
///    at it, the producer either fails fast (`kFull`, the shed policy) or
///    parks for space — optionally up to a deadline (`kExpired`).
///  * `Push` is the **exempt lane** — admin broadcasts, timer fan-outs and
///    inspections. It stays a mutex-protected deque: it never sheds and
///    never waits for space, because every shard must observe every admin
///    envelope for the epoch barrier to mean anything, and its condvar
///    handshake is what the service's latch-based barrier was proved
///    against. Exempt traffic is low-rate by construction.
///
/// The two lanes are drained together by `PopAll` (exempt backlog first,
/// then every published ring slot). Order is FIFO *within* each lane; the
/// lanes are not ordered against each other. That is sufficient for the
/// service: the epoch barrier is enforced by the broadcast latch (producers
/// wait for all shards to apply before returning), not by queue position,
/// and each decision producer has at most one envelope in flight.
///
/// Admission accounting is exact, not approximate: `depth()` and
/// `peak_depth()` report real enqueued counts, and a bounded lane never
/// overshoots its capacity even transiently — the overload tests pin this.
///
/// Memory ordering contract (the proof sketch the orderings hang off):
///  * Admission CAS on `ring_size_`, the producer's post-admit re-check of
///    `closed_`, Close's store, and the consumer's exit-time load of
///    `ring_size_` are all seq_cst: in the single total order either the
///    producer sees the close (rolls back its admission), or the consumer
///    sees the admission (waits for the slot to publish). An envelope can
///    therefore never be admitted and silently dropped at shutdown.
///  * A slot publish is `seq.store(pos + 1, release)`; the consumer reads it
///    with acquire, so the item write happens-before the consume. Sequence
///    values are the monotonic position + 1, never reset — no ABA across
///    ring wraps.
///  * The consumer decrements `ring_size_` (acq_rel) only *after* moving
///    items out; the next producer's admission CAS reads that value through
///    the RMW chain, so the consumer's read of a slot happens-before any
///    producer's reuse of it. No per-slot reset writes, no data race.
///  * Sleep/wake uses a Dekker handshake: the consumer sets
///    `consumer_waiting_`, fences seq_cst, then re-checks the ring before
///    sleeping; the producer publishes, fences seq_cst, then checks the
///    flag and notifies under the mutex. One side always sees the other.
///
/// Close() initiates shutdown: further pushes are refused (both lanes, and
/// parked producers wake with `kClosed`), but everything already queued is
/// still handed to the consumer — mailboxes drain, they don't drop.
template <typename T>
class Mailbox {
 public:
  /// Producer-edge outcome of a bounded push.
  enum class PushResult {
    kOk,       ///< Enqueued.
    kClosed,   ///< Mailbox closed (shutdown); item dropped.
    kFull,     ///< At capacity and not blocking; item shed.
    kExpired,  ///< Blocked for space until the deadline passed; item shed.
  };

  Mailbox() { AllocateRing(kDefaultRingSlots); }
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Caps the decision lane at `capacity` admitted envelopes (0 = unbounded,
  /// the default). Resizes the physical ring, so it must be called during
  /// construction wiring, before any producer or the consumer exists. The
  /// service validates capacities to powers of two; any other value is
  /// rounded up for the slot array while admission stays exact.
  void set_capacity(size_t capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    capacity_.store(capacity, std::memory_order_relaxed);
    size_t slots = kDefaultRingSlots;
    if (capacity > 0) {
      slots = 1;
      while (slots < capacity) slots <<= 1;
    }
    AllocateRing(slots);
  }

  size_t capacity() const { return capacity_.load(std::memory_order_relaxed); }

  /// Exempt-lane enqueue; returns false (item dropped) only when closed.
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_.load(std::memory_order_relaxed)) return false;
      exempt_.push_back(std::move(item));
      exempt_size_.store(exempt_.size(), std::memory_order_relaxed);
      UpdatePeak(total_size_.fetch_add(1, std::memory_order_relaxed) + 1);
    }
    cv_.notify_one();
    return true;
  }

  /// Decision-lane enqueue against the configured capacity.
  ///
  /// At capacity: returns `kFull` when `block` is false; otherwise waits
  /// for the consumer to make space. `deadline_ns` bounds that wait in
  /// std::chrono::steady_clock nanoseconds-since-epoch (the NowNanos
  /// timebase); 0 means wait indefinitely. On success `*depth_after` (when
  /// non-null) receives the queue depth including the new item — the
  /// producer-side congestion signal.
  ///
  /// `max_depth` (when nonzero and below the configured capacity) tightens
  /// the admission bound for THIS push only — the weighted-shedding hook:
  /// an over-quota producer admits against the reduced bound, so the top
  /// of the ring stays reserved for conformant traffic. Ignored on the
  /// unbounded lane, which never sheds anyway.
  PushResult PushBounded(T item, bool block, int64_t deadline_ns,
                         size_t* depth_after = nullptr,
                         size_t max_depth = 0) {
    if (closed_.load(std::memory_order_acquire)) return PushResult::kClosed;
    const size_t cap = capacity_.load(std::memory_order_relaxed);
    size_t bound = cap > 0 ? cap : slot_count_;
    if (cap > 0 && max_depth > 0 && max_depth < bound) bound = max_depth;
    size_t ring_after = 0;
    if (TryAdmit(bound, &ring_after)) {
      // Admitted lock-free: re-check closed (seq_cst, pairs with Close and
      // the consumer's exit check) so shutdown can't leak this admission.
      if (closed_.load(std::memory_order_seq_cst)) {
        ring_size_.fetch_sub(1, std::memory_order_acq_rel);
        return PushResult::kClosed;
      }
    } else if (cap == 0) {
      // Unbounded lane, physical ring full: spill into the exempt deque
      // rather than refuse. (Spilled items may drain ahead of ring items;
      // the service never has more than one envelope per producer in
      // flight, so no caller can observe its own reordering.)
      return SpillUnbounded(std::move(item), depth_after);
    } else {
      if (!block) return PushResult::kFull;
      const PushResult parked = ParkForSpace(bound, deadline_ns, &ring_after);
      if (parked != PushResult::kOk) return parked;
    }
    // The total-size increment happens after the admission won (so the
    // ring's contribution to the peak can never exceed the capacity, even
    // transiently) and before the publish (so the consumer's matching
    // decrement — which follows its read of the published slot — cannot
    // land first). The fetch_add result is therefore an exact queued-count
    // observation, which is what makes peak_depth() a measurement instead
    // of a racy two-counter approximation.
    const size_t after = total_size_.fetch_add(1, std::memory_order_relaxed)
                         + 1;
    UpdatePeak(after);
    Publish(std::move(item));
    if (depth_after != nullptr) *depth_after = after;
    WakeConsumer();
    return PushResult::kOk;
  }

  /// Blocks until items are available or the mailbox is closed, then moves
  /// the entire backlog into `*out` (previous contents replaced). Returns
  /// false only when closed AND fully drained — the consumer's exit signal.
  bool PopAll(std::deque<T>* out) {
    out->clear();
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      bool got = false;
      if (!exempt_.empty()) {
        size_t exempt_moved = 0;
        while (!exempt_.empty()) {
          out->push_back(std::move(exempt_.front()));
          exempt_.pop_front();
          ++exempt_moved;
        }
        exempt_size_.store(0, std::memory_order_relaxed);
        total_size_.fetch_sub(exempt_moved, std::memory_order_relaxed);
        got = true;
      }
      size_t moved = 0;
      for (;;) {
        Cell& cell = cells_[head_ & mask_];
        if (cell.seq.load(std::memory_order_acquire) != head_ + 1) break;
        out->push_back(std::move(cell.item));
        ++head_;
        ++moved;
      }
      if (moved > 0) {
        // Total before ring_size_: a producer's total increment follows
        // its admission, so keeping the decrements in the same order
        // bounds the ring's total-size contribution by ring_size_ (and
        // hence by the capacity) at every instant.
        total_size_.fetch_sub(moved, std::memory_order_relaxed);
        // After the moves: the RMW chain on ring_size_ hands the freed
        // slots to the next admitted producers.
        ring_size_.fetch_sub(moved, std::memory_order_acq_rel);
        if (space_waiters_ > 0) space_cv_.notify_all();
        got = true;
      }
      if (got) return true;
      if (closed_.load(std::memory_order_relaxed)) {
        if (ring_size_.load(std::memory_order_seq_cst) == 0) return false;
        // A producer admitted but hasn't published yet (or is about to
        // roll back against the close): give it the CPU and re-check.
        lock.unlock();
        std::this_thread::yield();
        lock.lock();
        continue;
      }
      consumer_waiting_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (cells_[head_ & mask_].seq.load(std::memory_order_acquire) ==
          head_ + 1) {
        consumer_waiting_.store(false, std::memory_order_relaxed);
        continue;  // Publish raced our flag; don't sleep.
      }
      cv_.wait(lock);
      consumer_waiting_.store(false, std::memory_order_relaxed);
    }
  }

  /// Refuses new pushes and wakes producers parked on capacity; queued
  /// items remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_.store(true, std::memory_order_seq_cst);
    }
    cv_.notify_all();
    space_cv_.notify_all();
  }

  /// Current queued-envelope count (both lanes).
  size_t depth() const {
    return ring_size_.load(std::memory_order_relaxed) +
           exempt_size_.load(std::memory_order_relaxed);
  }

  /// High-water mark of the queued-envelope count since construction —
  /// exact, not approximate: every enqueue on either lane increments one
  /// shared total counter (post-admission for the ring, under the mutex
  /// for the exempt lane) and takes its peak observation from that
  /// fetch_add result, so concurrent ring and exempt traffic can never
  /// under-report the combined high-water mark the way summing two
  /// independently-read counters could. The ring contribution never
  /// exceeds the capacity, even transiently.
  size_t peak_depth() const {
    return peak_depth_.load(std::memory_order_relaxed);
  }

 private:
  /// Physical ring slots in unbounded mode (capacity 0): deep enough that
  /// spilling is rare, small enough to stay cache-resident per shard.
  static constexpr size_t kDefaultRingSlots = 2048;

  struct Cell {
    std::atomic<uint64_t> seq{0};
    T item;
  };

  void AllocateRing(size_t slots) {
    cells_ = std::make_unique<Cell[]>(slots);
    slot_count_ = slots;
    mask_ = slots - 1;
  }

  /// Claims one admission against `bound` (CAS on the exact counter). On
  /// success `*ring_after` is the admitted ring depth including this item.
  bool TryAdmit(size_t bound, size_t* ring_after) {
    size_t cur = ring_size_.load(std::memory_order_relaxed);
    while (cur < bound) {
      if (ring_size_.compare_exchange_weak(cur, cur + 1,
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed)) {
        *ring_after = cur + 1;
        return true;
      }
    }
    return false;
  }

  /// Writes the item into its claimed slot and publishes it.
  void Publish(T item) {
    const uint64_t pos = tail_.fetch_add(1, std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    cell.item = std::move(item);
    cell.seq.store(pos + 1, std::memory_order_release);
  }

  /// Dekker wakeup: publish is visible (release above), fence, then the
  /// flag read. Notifying under the mutex closes the check-then-sleep gap.
  void WakeConsumer() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (consumer_waiting_.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_one();
    }
  }

  /// Unbounded overflow: enqueue on the exempt deque under the mutex.
  PushResult SpillUnbounded(T item, size_t* depth_after) {
    size_t after = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_.load(std::memory_order_relaxed)) return PushResult::kClosed;
      exempt_.push_back(std::move(item));
      exempt_size_.store(exempt_.size(), std::memory_order_relaxed);
      after = total_size_.fetch_add(1, std::memory_order_relaxed) + 1;
      UpdatePeak(after);
    }
    if (depth_after != nullptr) *depth_after = after;
    cv_.notify_one();
    return PushResult::kOk;
  }

  /// Blocked-producer path: parks on the space condvar, re-trying admission
  /// on every wake. Close wakes everyone; the consumer notifies per drained
  /// batch while anyone is registered.
  PushResult ParkForSpace(size_t bound, int64_t deadline_ns,
                          size_t* ring_after) {
    std::unique_lock<std::mutex> lock(mu_);
    ++space_waiters_;
    PushResult result = PushResult::kOk;
    bool admitted = false;
    for (;;) {
      if (closed_.load(std::memory_order_relaxed)) {
        result = PushResult::kClosed;
        break;
      }
      if (TryAdmit(bound, ring_after)) {
        admitted = true;
        break;
      }
      if (deadline_ns > 0) {
        const std::chrono::steady_clock::time_point deadline{
            std::chrono::nanoseconds(deadline_ns)};
        if (space_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
          if (closed_.load(std::memory_order_relaxed)) {
            result = PushResult::kClosed;
          } else if (TryAdmit(bound, ring_after)) {
            admitted = true;  // Space appeared exactly at the deadline.
          } else {
            result = PushResult::kExpired;
          }
          break;
        }
      } else {
        space_cv_.wait(lock);
      }
    }
    --space_waiters_;
    return admitted ? PushResult::kOk : result;
  }

  void UpdatePeak(size_t depth) {
    size_t seen = peak_depth_.load(std::memory_order_relaxed);
    while (depth > seen &&
           !peak_depth_.compare_exchange_weak(seen, depth,
                                              std::memory_order_relaxed)) {
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;        // Consumer wakeups.
  std::condition_variable space_cv_;  // Parked bounded producers.
  std::deque<T> exempt_;              // Exempt lane + unbounded spill.

  std::unique_ptr<Cell[]> cells_;  // Decision-lane ring.
  size_t slot_count_ = 0;
  size_t mask_ = 0;
  uint64_t head_ = 0;  // Consumer-only; next ring position to read.

  std::atomic<size_t> capacity_{0};
  std::atomic<size_t> ring_size_{0};  // Exact admitted-not-consumed count.
  std::atomic<uint64_t> tail_{0};     // Next ring position to claim.
  std::atomic<size_t> exempt_size_{0};
  /// Exact both-lane queued count: incremented once per enqueue (after ring
  /// admission / under the exempt mutex), decremented once per consumed
  /// item (before the matching ring_size_ release). Sole input to
  /// peak_depth_.
  std::atomic<size_t> total_size_{0};
  std::atomic<size_t> peak_depth_{0};
  std::atomic<bool> consumer_waiting_{false};
  std::atomic<bool> closed_{false};
  int space_waiters_ = 0;  // Guarded by mu_.
};

}  // namespace sentinel

#endif  // SENTINELPP_SERVICE_MAILBOX_H_
