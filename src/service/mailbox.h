#ifndef SENTINELPP_SERVICE_MAILBOX_H_
#define SENTINELPP_SERVICE_MAILBOX_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace sentinel {

/// \brief Multi-producer single-consumer mailbox for one shard thread.
///
/// Producers (request submitters, the admin broadcaster, the timer thread)
/// push envelopes under a short critical section; the owning shard thread
/// drains the whole queue in one swap per wakeup, so per-item consumer cost
/// is amortized to almost nothing. FIFO order is total per mailbox — that
/// ordering is what makes the service's epoch barrier sound: any envelope
/// pushed after an admin broadcast returns is behind the admin envelope on
/// every shard.
///
/// Overload protection happens at the producer edge, in two lanes:
///
///  * `Push` is the **exempt lane** — admin broadcasts, timer fan-outs and
///    inspections. It never sheds and never waits for space, because every
///    shard must observe every admin envelope for the epoch barrier to
///    mean anything. Exempt traffic is low-rate by construction.
///  * `PushBounded` is the **decision lane**. When a capacity is configured
///    and the queue is at it, the producer either fails fast (`kFull`, the
///    shed policy) or waits for the consumer to drain — optionally up to a
///    deadline (`kExpired`). A blocked producer wakes as soon as PopAll
///    swaps the backlog out, and immediately on Close.
///
/// Close() initiates shutdown: further pushes are refused (both lanes, and
/// blocked producers wake with `kClosed`), but everything already queued is
/// still handed to the consumer — mailboxes drain, they don't drop.
template <typename T>
class Mailbox {
 public:
  /// Producer-edge outcome of a bounded push.
  enum class PushResult {
    kOk,       ///< Enqueued.
    kClosed,   ///< Mailbox closed (shutdown); item dropped.
    kFull,     ///< At capacity and not blocking; item shed.
    kExpired,  ///< Blocked for space until the deadline passed; item shed.
  };

  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Caps the decision lane at `capacity` queued envelopes (0 = unbounded,
  /// the default). Exempt-lane pushes ignore the cap but still count
  /// against it, so admin bursts delay rather than starve decision
  /// producers. Set during construction wiring, before producers exist.
  void set_capacity(size_t capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = capacity;
  }

  size_t capacity() const {
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
  }

  /// Exempt-lane enqueue; returns false (item dropped) only when closed.
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      queue_.push_back(std::move(item));
      if (queue_.size() > peak_depth_) peak_depth_ = queue_.size();
    }
    cv_.notify_one();
    return true;
  }

  /// Decision-lane enqueue against the configured capacity.
  ///
  /// At capacity: returns `kFull` when `block` is false; otherwise waits
  /// for the consumer to make space. `deadline_ns` bounds that wait in
  /// std::chrono::steady_clock nanoseconds-since-epoch (the NowNanos
  /// timebase); 0 means wait indefinitely. On success `*depth_after` (when
  /// non-null) receives the queue depth including the new item — the
  /// producer-side congestion signal.
  PushResult PushBounded(T item, bool block, int64_t deadline_ns,
                         size_t* depth_after = nullptr) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (closed_) return PushResult::kClosed;
      if (capacity_ > 0 && queue_.size() >= capacity_) {
        if (!block) return PushResult::kFull;
        const auto has_space = [this] {
          return closed_ || queue_.size() < capacity_;
        };
        if (deadline_ns > 0) {
          const std::chrono::steady_clock::time_point deadline{
              std::chrono::nanoseconds(deadline_ns)};
          if (!space_cv_.wait_until(lock, deadline, has_space)) {
            return PushResult::kExpired;
          }
        } else {
          space_cv_.wait(lock, has_space);
        }
        if (closed_) return PushResult::kClosed;
      }
      queue_.push_back(std::move(item));
      if (queue_.size() > peak_depth_) peak_depth_ = queue_.size();
      if (depth_after != nullptr) *depth_after = queue_.size();
    }
    cv_.notify_one();
    return PushResult::kOk;
  }

  /// Blocks until items are available or the mailbox is closed, then moves
  /// the entire backlog into `*out` (previous contents replaced). Returns
  /// false only when closed AND fully drained — the consumer's exit signal.
  bool PopAll(std::deque<T>* out) {
    bool notify_producers = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
      if (queue_.empty()) return false;
      out->clear();
      queue_.swap(*out);
      // The whole backlog left at once: every producer blocked on capacity
      // can now be admitted.
      notify_producers = capacity_ > 0;
    }
    if (notify_producers) space_cv_.notify_all();
    return true;
  }

  /// Refuses new pushes and wakes producers blocked on capacity; queued
  /// items remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
    space_cv_.notify_all();
  }

  /// Current queued-envelope count (both lanes).
  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  /// High-water mark of the queued-envelope count since construction.
  /// Bounded-lane admissions keep it <= capacity + in-flight exempt pushes.
  size_t peak_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_depth_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;        // Consumer wakeups.
  std::condition_variable space_cv_;  // Blocked bounded producers.
  std::deque<T> queue_;
  size_t capacity_ = 0;
  size_t peak_depth_ = 0;
  bool closed_ = false;
};

}  // namespace sentinel

#endif  // SENTINELPP_SERVICE_MAILBOX_H_
