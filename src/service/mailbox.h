#ifndef SENTINELPP_SERVICE_MAILBOX_H_
#define SENTINELPP_SERVICE_MAILBOX_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>

namespace sentinel {

/// \brief Multi-producer single-consumer mailbox for one shard thread.
///
/// Producers (request submitters, the admin broadcaster, the timer thread)
/// push envelopes under a short critical section; the owning shard thread
/// drains the whole queue in one swap per wakeup, so per-item consumer cost
/// is amortized to almost nothing. FIFO order is total per mailbox — that
/// ordering is what makes the service's epoch barrier sound: any envelope
/// pushed after an admin broadcast returns is behind the admin envelope on
/// every shard.
///
/// Close() initiates shutdown: further pushes are refused, but everything
/// already queued is still handed to the consumer — mailboxes drain, they
/// don't drop.
template <typename T>
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues `item`; returns false (item dropped) when closed.
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      queue_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until items are available or the mailbox is closed, then moves
  /// the entire backlog into `*out` (previous contents replaced). Returns
  /// false only when closed AND fully drained — the consumer's exit signal.
  bool PopAll(std::deque<T>* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return false;
    out->clear();
    queue_.swap(*out);
    return true;
  }

  /// Refuses new pushes; queued items remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace sentinel

#endif  // SENTINELPP_SERVICE_MAILBOX_H_
