#ifndef SENTINELPP_SERVICE_AUTHORIZATION_SERVICE_H_
#define SENTINELPP_SERVICE_AUTHORIZATION_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/sentinelpp.h"
#include "audit/exporter.h"
#include "common/clock.h"
#include "common/status.h"
#include "core/engine.h"
#include "service/mailbox.h"
#include "service/policer.h"
#include "telemetry/reporter.h"

namespace sentinel {

/// Producer-side policy when a shard mailbox is at capacity.
enum class OverloadPolicy {
  /// Wait for the shard to drain, up to the request's deadline (forever
  /// when it has none). Backpressure: callers slow down, nothing is lost.
  kBlock,
  /// Fail fast with AccessOutcome::kOverloaded. Load shedding: callers
  /// stay responsive, excess traffic is refused explicitly.
  kShed,
};

/// When an over-quota verdict turns into a refusal.
enum class QuotaEnforcement {
  /// Work-conserving (the default): over-quota requests still run while the
  /// shard has headroom, but they may never block for space and are shut
  /// out of the mailbox's reserved top quarter — at saturation they are
  /// refused first, and conformant principals keep the PR-5 block/shed
  /// semantics over the full capacity.
  kOnOverload,
  /// Hard cap: an over-quota request is refused immediately at admission,
  /// idle shard or not. Deterministic (and the only mode with any effect in
  /// synchronous mode, where there is no queue to overload) — what the
  /// differential harness's policer arm runs.
  kAlways,
};

/// One principal's static quota override (ServiceConfig::quota_overrides).
struct PrincipalQuota {
  std::string principal;
  /// Sustained tokens per second; <= 0 marks the principal explicitly
  /// unpoliced (exempt from the default quota).
  double rate_per_s = 0;
  /// Bucket depth in requests (values < 1 behave as 1).
  int64_t burst = 1;
};

/// Shape of an AuthorizationService.
struct ServiceConfig {
  /// Sentinel for num_shards: one shard per hardware thread.
  static constexpr int kAutoShards = -1;

  /// Number of engine shards / shard threads. kAutoShards (the default)
  /// resolves to std::thread::hardware_concurrency(); explicit values must
  /// be >= 1 — 0 and other negatives are rejected by ValidateConfig with a
  /// Status error, not silently clamped.
  int num_shards = kAutoShards;
  /// Synchronous single-shard mode: one engine, every call runs inline on
  /// the caller's thread, no threads are spawned. Semantically identical to
  /// driving an AuthorizationEngine directly — the mode existing tests and
  /// benches (and the stress test's oracle) rely on.
  bool synchronous = false;
  /// Simulated start time for every shard clock.
  Time start_time = 0;
  /// Per-shard decision audit ring capacity (see DecisionLog).
  size_t decision_log_capacity = 256;
  /// When > 0, a PERIODIC-driven metrics reporter is installed on every
  /// shard engine: each simulated interval, the shard renders its registry
  /// and hands it to `telemetry_sink`. Ticks ride the shards' simulated
  /// clocks, so reports fire during AdvanceTo — deterministically.
  Duration telemetry_report_interval = 0;
  /// Destination for periodic reports (default: the INFO log). Reports are
  /// prefixed "# shard N"; the sink runs on shard threads, so a shared sink
  /// must be thread-safe.
  telemetry::ReportSink telemetry_sink;
  /// Per-shard hot-path sampling: wall-clock latency is measured on every
  /// Nth dispatch (0 disables) and every Mth request records a full trace
  /// span. See AuthorizationEngine::set_telemetry_sampling.
  uint32_t latency_sample_every = 32;
  uint32_t trace_sample_every = 256;
  /// Per-shard decision cache capacity in slots; 0 (the default) disables
  /// caching. Nonzero values must be a power of two (the cache is an
  /// open-addressed table) — anything else is rejected by ValidateConfig.
  /// See AuthorizationEngine::ConfigureDecisionCache for semantics.
  size_t decision_cache_capacity = 0;
  /// Zero-hop read path: purpose-free CheckAccess / CheckAccessBatch items
  /// first consult the home shard's published cache snapshot from the
  /// *caller's* thread — a cache hit whose validity stamp matches the
  /// shard's live published stamp is answered without a mailbox hop or any
  /// lock. Misses, stale entries, purpose-qualified requests and
  /// symbol-overflow keys fall back to the mailbox path unchanged. Requires
  /// decision_cache_capacity > 0 (rejected by ValidateConfig otherwise) and
  /// is ignored in synchronous mode, where every call is already inline.
  /// Caveat: fast-path hits are counted in decision_cache_fastpath_hits_total
  /// and service_requests_total but bypass the shard engine — they do not
  /// appear in its decisions_total or its decision audit log.
  bool decision_cache_fastpath = false;
  /// Per-shard mailbox capacity in queued envelopes for decision traffic
  /// (CheckAccess, session/role calls, one batch envelope per involved
  /// shard). 0 (the default) = unbounded, the pre-overload-protection
  /// behavior. Nonzero values must be a power of two (the decision lane is
  /// a slot ring) — anything else is rejected by ValidateConfig. Admin
  /// broadcasts and timer commands are exempt — the epoch barrier requires
  /// every shard to observe every admin envelope.
  size_t mailbox_capacity = 0;
  /// What a producer does when its shard mailbox is full. Only meaningful
  /// with mailbox_capacity > 0; kShed with capacity 0 is rejected by
  /// ValidateConfig as a misconfiguration (it could never shed).
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  /// Wall-clock decision budget in microseconds applied to every
  /// decision-path call that does not carry its own AccessRequest::deadline
  /// (0 = none). Expiry — in queue, or blocked waiting for mailbox space —
  /// yields AccessOutcome::kOverloaded, never a policy deny.
  Duration default_deadline = 0;
  /// Durable audit stream: when non-empty, an async JSONL exporter (see
  /// audit::AuditExporter) is attached and every shard's DecisionLog is
  /// tapped after each envelope it processes — on the shard thread, without
  /// copying the ring and without ever blocking on I/O. Fast-path hits and
  /// overload verdicts, which never reach an engine, are exported as
  /// service-level records (seq 0). Requires decision_log_capacity large
  /// enough that one envelope cannot wrap the ring (a batch envelope emits
  /// one record per request it carries); with the defaults that margin is
  /// 256 vs the wire server's 8-request batches.
  std::string audit_path;
  /// Rotate the audit file once it exceeds this size; 0 disables. See
  /// audit::AuditExporter::Options::rotate_bytes.
  uint64_t audit_rotate_bytes = 0;
  /// Exporter hand-off buffer, in records; beyond it the exporter drops
  /// (counted in audit_export_drops_total), never blocks a shard. Must be
  /// > 0 when audit_path is set.
  size_t audit_queue_capacity = 65536;
  /// Default per-principal quota at the decision-path admission edge:
  /// sustained tokens per second refilled on read (GCRA — no background
  /// thread), checked before the mailbox push. 0 (the default) applies no
  /// default quota; principals can still be throttled individually via
  /// quota_overrides or the policy's own threshold rules (see
  /// ThresholdDirective::throttle_rate_per_s). Negative rates are rejected
  /// by ValidateConfig.
  double quota_rate_per_s = 0;
  /// Bucket depth for the default quota, in requests (how large a burst a
  /// full bucket absorbs). 0 behaves as 1.
  int64_t quota_burst = 0;
  /// Static per-principal overrides, applied at construction. rate <= 0
  /// exempts that principal from the default quota.
  std::vector<PrincipalQuota> quota_overrides;
  /// When over-quota verdicts turn into refusals (see QuotaEnforcement).
  /// kOnOverload with an unbounded mailbox and a static quota is rejected
  /// by ValidateConfig: nothing would ever be refused.
  QuotaEnforcement quota_enforcement = QuotaEnforcement::kOnOverload;
  /// Policer slot-table capacity (principals tracked); must be a power of
  /// two. Principals beyond it fail open (unpoliced) and are counted.
  size_t policer_capacity = 1024;
  /// When non-zero, the policing key is the principal name truncated at the
  /// first occurrence of this delimiter — "tenant-a/alice" and
  /// "tenant-a/bob" then share the "tenant-a" bucket (role/tenant
  /// aggregation). 0 (the default) polices full principal names.
  char quota_key_delimiter = '\0';
  /// Nanosecond clock driving refill arithmetic; defaults to the steady
  /// wall clock. Injectable so tests and the differential harness control
  /// refill exactly.
  std::function<int64_t()> quota_clock;
  /// Pauseless policy swaps (the default): ApplyPolicyUpdate validates and
  /// diffs the update once on the caller's thread (PreparePolicyUpdate),
  /// then each shard commits the prebuilt plan as one ordinary exempt-lane
  /// envelope — an O(affected-rules) regenerate plus a pointer flip — with
  /// no epoch barrier and no blanket cache wipe (stamped entries die
  /// lazily through the rule-pool generation). Set false to restore the
  /// legacy stop-the-world epoch broadcast: every shard stalls while it
  /// re-validates and re-diffs the update, and the bumped cache epoch
  /// discards every cached verdict — the A/B arm bench_policy_swap
  /// measures against. LoadPolicy and SetContext always take the barrier:
  /// they rewrite truly-global state (full pool build / context keys) that
  /// has no incremental stamp to invalidate through.
  bool pauseless_updates = true;
};

/// Aggregated per-shard counters (gathered with a quiescing inspection).
struct ServiceStats {
  uint64_t decisions = 0;
  uint64_t denials = 0;
  uint64_t audit_overflow = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_stale = 0;
  /// Decision envelopes refused at a full mailbox (kShed policy). Every
  /// shed is a caller-visible kOverloaded decision — the counter and the
  /// caller-observed outcomes reconcile exactly.
  uint64_t shed = 0;
  /// Decision envelopes answered kOverloaded because their deadline passed
  /// — in queue, or while blocked waiting for mailbox space.
  uint64_t expired = 0;
  /// CheckAccess verdicts answered on the caller's thread from a shard's
  /// published cache snapshot — zero mailbox hops, zero locks.
  uint64_t fastpath_hits = 0;
  /// Audit export pipeline (zeros when no audit_path was configured).
  /// Completeness invariant when only engine-dispatched traffic runs:
  /// audit_records + audit_drops covers every decision made.
  uint64_t audit_records = 0;
  uint64_t audit_drops = 0;
  uint64_t audit_bytes = 0;
  /// Policy generations committed via the pauseless swap path, and update
  /// attempts rejected at Prepare (validation/diff failure) or Commit.
  uint64_t policy_swaps = 0;
  uint64_t policy_swap_failures = 0;
  /// Admission policer: requests admitted within quota, over-quota
  /// verdicts, caller-visible refusals ("overloaded: over quota"), and
  /// tokens regained by refill-on-read. refused <= over_quota always —
  /// under kOnOverload an over-quota request is still served while the
  /// shard has headroom.
  uint64_t policer_admitted = 0;
  uint64_t policer_over_quota = 0;
  uint64_t policer_refused = 0;
  uint64_t policer_refill_tokens = 0;
};

/// \brief One observability capture of the whole service: every shard
/// registry merged with the service-boundary registry, plus the sampled
/// decision spans gathered from each shard (shard-tagged, oldest first
/// within a shard).
struct TelemetrySnapshot {
  Time now = 0;
  uint64_t admin_epoch = 0;
  int num_shards = 0;
  telemetry::RegistrySnapshot metrics;
  std::vector<telemetry::DecisionSpan> spans;
};

/// \brief Sharded concurrent front-end over N AuthorizationEngines.
///
/// The actor-style design the paper's "thousands of events per second"
/// target asks for, built on the observation (Ali & Fernández) that
/// request-path state is read-mostly and partitionable per user:
///
///  * **Shard-per-core.** The service owns `num_shards` engines, each with
///    its own SimulatedClock, SymbolTable and rule pool, each driven by one
///    dedicated shard thread. Engines stay single-threaded internally —
///    there are no locks anywhere on the decision path: the mailbox
///    decision lane is a lock-free MPSC ring, and only the low-rate exempt
///    admin lane takes a mutex.
///  * **Zero-hop read path (opt-in).** With `decision_cache_fastpath` set,
///    each shard publishes a seqlock-stamped snapshot of its decision cache
///    plus its live validity-stamp components; purpose-free CheckAccess
///    calls probe that snapshot from the caller's thread and return
///    repeated verdicts without entering the mailbox at all. Any admin
///    broadcast, session change or role transition moves the published
///    stamp before the mutation is acknowledged, so a fast hit can never
///    replay across a change the caller has been told about.
///  * **Routing by user.** Every request carrying a user name is delivered
///    to `hash(user) % num_shards` (a fixed FNV-1a hash, so placement is
///    deterministic across runs and across service instances). Sessions,
///    DSD state, per-user caps and GTRBAC activations are therefore always
///    shard-local. Session-only calls (DeleteSession, legacy CheckAccess
///    without a user) resolve the home shard through a session registry
///    maintained at session create/delete.
///  * **Admin broadcast + epoch barrier.** Policy loads, user-role
///    administration, role enable/disable, and context changes are pushed
///    to *every* shard mailbox and stamped with a fresh epoch; the caller
///    blocks until all shards applied it. Because mailboxes are FIFO, any
///    request submitted after the broadcast returns is behind the admin
///    envelope on every shard — a request never observes a half-applied
///    update (it sees either the whole old or the whole new policy).
///  * **Pauseless policy swap (RCU).** Incremental policy updates skip the
///    barrier: the update is validated and diffed once off the shard
///    threads into an immutable shared generation, and each shard flips
///    its policy pointer + regenerates only affected rules inside one
///    mailbox envelope — requests on other shards keep flowing, and each
///    shard's in-flight envelope still sees entirely-old or entirely-new
///    policy (envelopes are atomic units on a single thread). Cached and
///    fast-path verdicts invalidate through the rule-pool generation in
///    their stamps, not an epoch wipe. The retired generation frees by
///    shared_ptr refcount once the last shard has flipped. Note
///    admin_epoch() deliberately does not move on swaps.
///  * **One timer thread.** Time advances fan out from a single timer
///    thread as epoch-barriered broadcasts, so all shards observe temporal
///    events (shift boundaries, duration expiries) in the same order
///    relative to admin operations.
///
/// Caveat (documented, by design): constraints whose scope is global across
/// users — role activation cardinalities, active-security denial thresholds
/// — are enforced per shard, since each shard only sees its own users'
/// activity. Per-user and per-session semantics are exact.
class AuthorizationService {
 public:
  /// Config checks applied before construction: num_shards must be >= 1 or
  /// kAutoShards, decision_cache_capacity must be 0 or a power of two.
  static Status ValidateConfig(const ServiceConfig& config);

  /// Validating factory — the Status-returning construction path. Rejects
  /// malformed configs instead of degrading.
  static Result<std::unique_ptr<AuthorizationService>> Create(
      const ServiceConfig& config = {});

  /// Constructs directly. A config ValidateConfig rejects does not throw:
  /// the service degrades loudly (1 shard, cache off, error logged) and
  /// records the rejection in init_status(). Prefer Create().
  explicit AuthorizationService(const ServiceConfig& config = {});
  ~AuthorizationService();

  /// OK unless the constructor was handed a config ValidateConfig rejects.
  const Status& init_status() const { return init_status_; }

  AuthorizationService(const AuthorizationService&) = delete;
  AuthorizationService& operator=(const AuthorizationService&) = delete;

  // ------------------------------------------------------ Policy (broadcast)

  /// Validates and installs `policy` on every shard. Call once.
  Status LoadPolicy(const Policy& policy);

  /// Applies an incremental policy update to every shard. With
  /// pauseless_updates (the default) this is the RCU swap: prepare once on
  /// this thread, commit per shard without a barrier — shards keep serving
  /// throughout, and on return every shard runs the new generation (the
  /// return is the linearization point: requests submitted afterwards see
  /// the new policy everywhere). With pauseless_updates=false it is the
  /// legacy epoch-barrier broadcast. Serialized against concurrent updates
  /// either way; the returned report is shard 0's.
  Result<RegenReport> ApplyPolicyUpdate(const Policy& updated);

  /// The policy generation the service currently serves (the last
  /// successfully loaded/applied policy). Null before LoadPolicy.
  std::shared_ptr<const Policy> current_policy() const;

  // ------------------------------------------------------- Request path

  /// Decides one access request on its home shard; blocks for the verdict.
  AccessDecision CheckAccess(const AccessRequest& request);

  /// Decides a batch with one mailbox hop per involved shard instead of one
  /// per request — the bulk-caller fast path. Results are positionally
  /// aligned with `requests`.
  std::vector<AccessDecision> CheckAccessBatch(
      std::span<const AccessRequest> requests);

  /// Allocation-free batch variant for callers that own a reusable result
  /// buffer (the wire server's reactor thread): decides `requests` into
  /// `results`, which must be exactly requests.size() long. Same admission,
  /// deadline and fast-path semantics as CheckAccessBatch.
  void CheckAccessBatchInto(std::span<const AccessRequest> requests,
                            std::span<AccessDecision> results);

  // --------------------------------------------- Session lifecycle (typed)
  //
  // Mutators return AdminResult — status + epoch + shard — not the
  // check-shaped AccessDecision (see AdminResult in api/sentinelpp.h).

  AdminResult CreateSession(const UserName& user, const SessionId& session);
  AdminResult DeleteSession(const SessionId& session);
  AdminResult AddActiveRole(const UserName& user, const SessionId& session,
                            const RoleName& role);
  AdminResult DropActiveRole(const UserName& user, const SessionId& session,
                             const RoleName& role);

  // ------------------------------------- Administration (broadcast + epoch)

  AdminResult AssignUser(const UserName& user, const RoleName& role);
  AdminResult DeassignUser(const UserName& user, const RoleName& role);
  AdminResult EnableRole(const RoleName& role);
  AdminResult DisableRole(const RoleName& role);
  /// Context-aware RBAC environment change, visible on all shards.
  void SetContext(const std::string& key, const std::string& value);

  // --------------------------------------------------------------- Time

  /// Advances simulated time on every shard via the timer thread; blocks
  /// until all shards fired their temporal events up to `t`. After
  /// Shutdown() the advance cannot happen — the timer thread is gone — and
  /// the call says so with FailedPrecondition instead of silently
  /// returning as if time had moved.
  Status AdvanceTo(Time t);
  Status AdvanceBy(Duration d) { return AdvanceTo(Now() + d); }
  Time Now() const { return now_.load(std::memory_order_acquire); }

  // ------------------------------------------------------ Introspection

  int num_shards() const { return static_cast<int>(shards_.size()); }
  bool synchronous() const { return synchronous_; }
  /// Epoch of the latest completed admin broadcast.
  uint64_t admin_epoch() const {
    return admin_epoch_.load(std::memory_order_acquire);
  }
  /// Home shard of `user` — deterministic in (user, num_shards).
  uint32_t ShardOf(const std::string& user) const;

  /// Runs `fn` against one shard's engine on that shard's thread (inline in
  /// synchronous mode) and blocks until done — the race-free window tests
  /// and stats use to look inside an engine.
  void Inspect(uint32_t shard,
               const std::function<void(const AuthorizationEngine&)>& fn);

  /// Aggregates decision/denial/audit-overflow counters across shards.
  ServiceStats Stats();

  /// Current / high-water queued-envelope depth of one shard mailbox
  /// (exempt admin envelopes included). Always 0 in synchronous mode.
  size_t MailboxDepth(uint32_t shard) const;
  size_t MailboxPeakDepth(uint32_t shard) const;

  /// The attached audit exporter, or nullptr when audit_path was empty.
  /// For tests (stall injection, flush) and tools (final counter lines);
  /// the exporter's own API is thread-safe.
  audit::AuditExporter* audit_exporter() { return audit_.get(); }

  /// The admission policer. Always present; thread-safe. Direct access is
  /// the operator/test surface (TokensAvailable, Occupy); prefer
  /// SetPrincipalQuota for installing quotas.
  Policer& policer() { return *policer_; }

  /// Installs (rate_per_s > 0) or lifts (rate_per_s <= 0, reverting to the
  /// default quota) a per-principal quota at runtime — the same path the
  /// policy's threshold rules use to throttle an abusive principal. Takes
  /// effect on the next admission; never blocks on shard threads.
  void SetPrincipalQuota(const std::string& principal, double rate_per_s,
                         int64_t burst);

  /// Test-only fault injection: enqueues `fn` on `shard`'s mailbox through
  /// the exempt lane (never shed, never expired) and returns immediately,
  /// without waiting for it to run. While `fn` runs, the shard thread is
  /// stalled: decision traffic behind it ages in queue and, with a bounded
  /// mailbox, producers shed or block — the deterministic way tests create
  /// overload. Returns false when the mailbox is already closed. In
  /// synchronous mode `fn` runs inline before returning.
  bool InjectShardFault(uint32_t shard, std::function<void()> fn);

  // -------------------------------------------------------- Telemetry

  /// Captures the merged metrics view plus sampled decision spans. Metric
  /// merging is lock-free (pure atomic loads against each shard registry);
  /// span gathering uses Inspect, briefly queueing behind each shard's
  /// in-flight work.
  TelemetrySnapshot Snapshot();

  /// The Prometheus text exposition of Snapshot(), with sampled spans
  /// appended as "# trace ..." comment lines — the scrape endpoint body.
  std::string RenderMetrics();

  /// The same capture as a JSON document ({"now", "admin_epoch",
  /// "num_shards", "metrics", "spans"}).
  std::string RenderMetricsJson();

  /// Closes every mailbox, drains queued envelopes (queued requests still
  /// get real decisions), then joins all threads. Idempotent; the
  /// destructor calls it. Requests submitted after shutdown are answered
  /// with a denied "service is shut down" decision.
  void Shutdown();

 private:
  struct Shard {
    uint32_t index = 0;
    std::unique_ptr<SimulatedClock> clock;
    std::unique_ptr<AuthorizationEngine> engine;
    /// Epoch of the last admin envelope this shard applied.
    std::atomic<uint64_t> applied_epoch{0};
    Mailbox<std::function<void(Shard&)>> mailbox;
    /// Overload instruments, registered in the shard engine's registry so
    /// they merge into RenderMetrics and the admin report like any other
    /// per-shard series. Shed/expired are bumped from producer threads as
    /// well as the shard thread — multi-writer, hence Add/RecordShared.
    telemetry::Counter* shed_counter = nullptr;     // Owned by the registry.
    telemetry::Counter* expired_counter = nullptr;  // Owned by the registry.
    telemetry::Counter* fastpath_counter = nullptr;
    telemetry::Histogram* queue_depth_hist = nullptr;
    telemetry::Histogram* queue_wait_hist = nullptr;
    /// On-shard-thread cost of one pauseless swap commit (delta replay +
    /// affected-rule regenerate + pointer flip), in microseconds — the
    /// stall a swap actually imposes on this shard's request stream.
    telemetry::Histogram* swap_commit_hist = nullptr;
    std::thread thread;
  };

  /// Countdown latch (mutex+condvar; C++20 <latch> kept out so TSan's view
  /// stays trivial).
  class Latch {
   public:
    explicit Latch(int count) : remaining_(count) {}
    void Arrive();
    void Wait();

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    int remaining_;
  };

  struct TimerCommand {
    Time target = 0;
    Latch* done = nullptr;
  };

  /// Runs `op` on shard `shard` and blocks for its Decision. `deadline_us`
  /// is the wall-clock budget from submission (<= 0 = none): admission is
  /// bounded by the overload policy, and an envelope still queued past its
  /// deadline is answered kOverloaded without touching the engine.
  /// `over_quota` marks a request whose principal exceeded its quota: it
  /// never blocks for space, admits only into the mailbox's non-reserved
  /// depth, and a refusal is attributed "over quota", not "shed".
  AccessDecision RunOnShard(
      uint32_t shard, const std::function<Decision(AuthorizationEngine&)>& op,
      Duration deadline_us, bool over_quota = false);

  /// Folds a mutator's internal AccessDecision into the typed AdminResult.
  static AdminResult ToAdminResult(const AccessDecision& decision);

  /// Zero-hop read path: answers `request` from its home shard's published
  /// cache snapshot, entirely on the caller's thread. Returns true and
  /// fills `*out` only on a hit whose stamp matches the shard's live
  /// published stamp; every other case (fast path off, purpose-qualified,
  /// unknown symbols, key overflow, miss, stale, torn publish) returns
  /// false and the caller takes the mailbox path. Does not bump
  /// service_requests_total — callers do, per their own accounting.
  bool TryFastPath(const AccessRequest& request, AccessDecision* out);

  /// Steady-clock expiry instant in ns for a budget of `deadline_us`
  /// starting at `submit_ns`; 0 = no deadline. Saturates at INT64_MAX — a
  /// huge but valid budget means "effectively never", not signed-overflow
  /// UB wrapping to an already-expired instant.
  static int64_t DeadlineNanos(Duration deadline_us, int64_t submit_ns);

  /// Why a request was answered kOverloaded without reaching an engine.
  enum class OverloadKind { kShed, kExpired, kOverQuota };

  /// Overload verdict (shed at admission, expired before dispatch, or
  /// refused over quota).
  AccessDecision OverloadDecision(OverloadKind kind, uint32_t shard,
                                  int64_t submit_ns) const;

  /// The policing key for `request`: user when present, else session, both
  /// optionally truncated at quota_key_delimiter (tenant aggregation). The
  /// view borrows from `request`.
  std::string_view PrincipalOf(const AccessRequest& request) const;

  /// Policer verdict for `request` (kUnpoliced when policing is inactive).
  Policer::Verdict AdmitPrincipal(const AccessRequest& request);

  /// Answers one caller-visible over-quota refusal: counters, audit marker,
  /// decision.
  AccessDecision RefuseOverQuota(const AccessRequest* request, uint32_t shard,
                                 int64_t submit_ns);

  /// Pushes `fn` to every shard with a fresh epoch and waits for all shards
  /// to apply it. Serialized by admin_mu_. `admin` distinguishes real
  /// administrative changes (which also bump each shard's decision-cache
  /// epoch) from timer-driven advances (which must not — temporal firings
  /// invalidate precisely through role/session generations, and wiping the
  /// cache every tick would defeat it).
  void Broadcast(
      const std::function<void(AuthorizationEngine&, uint32_t shard)>& fn,
      bool admin = true);

  /// Broadcast returning the Decision observed on `authoritative` (the home
  /// shard for user-scoped admin ops, shard 0 for role-scoped ones).
  AccessDecision BroadcastRequest(
      uint32_t authoritative,
      const std::function<Decision(AuthorizationEngine&)>& op);

  void ShardLoop(Shard* shard);
  void TimerLoop();
  void ApplyAdvance(Time target);

  /// Export tap: hands the shard's undrained DecisionLog tail to the audit
  /// exporter and accounts ring evictions as drops. Shard-thread only
  /// (inline callers in synchronous mode / after joins in Shutdown are the
  /// same single-threaded world). One comparison when nothing is new.
  void DrainShardAudit(Shard& shard);

  /// Exports a service-level audit marker (seq 0): a verdict that never
  /// reached an engine — fast-path hit or overload. Any-thread safe;
  /// `request` may be null when no attribution exists at the call site.
  void OfferServiceRecord(const char* kind, const AccessRequest* request,
                          const AccessDecision& decision);

  /// Resolves the shard handling `request` (user key, else session
  /// registry, else session hash).
  uint32_t RouteRequest(const AccessRequest& request) const;
  uint32_t RouteSession(const SessionId& session) const;

  static AccessDecision ShutdownDecision();
  AccessDecision Convert(const Decision& decision, uint32_t shard,
                         uint64_t epoch, int64_t submit_ns) const;

  bool synchronous_ = false;
  Status init_status_;
  /// Overload knobs, frozen at construction.
  bool shed_on_full_ = false;
  Duration default_deadline_ = 0;
  /// Admission policer — always constructed (rule-driven throttling can
  /// install quotas at runtime even with no static quota configured); one
  /// relaxed load per request while inactive.
  std::unique_ptr<Policer> policer_;
  /// QuotaEnforcement::kAlways — refuse over-quota at admission.
  bool quota_always_ = false;
  /// Tenant-aggregation delimiter (0 = full principal names).
  char quota_key_delimiter_ = '\0';
  /// Ring depth over-quota requests may fill under kOnOverload: capacity
  /// minus the reserved top quarter (0 with an unbounded mailbox). The
  /// reservation is what makes shedding weighted — conformant principals
  /// always find headroom an abuser cannot occupy.
  size_t over_quota_max_depth_ = 0;
  /// Zero-hop read path enabled (config flag, cache on, not synchronous).
  bool fastpath_ = false;
  /// Async audit writer; null when audit_path was empty. Created before the
  /// shard threads start and Closed (flushing) inside Shutdown, so every
  /// shard-thread Offer happens while it is alive.
  std::unique_ptr<audit::AuditExporter> audit_;
  /// Fast-path latency sampling interval (mirrors the engines' setting).
  uint32_t latency_sample_every_ = 32;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Service-boundary metrics (request/batch/broadcast counts), bumped from
  /// arbitrary caller threads — multi-writer instruments (Add/RecordShared),
  /// unlike the shards' single-writer registries.
  telemetry::Registry service_metrics_;
  telemetry::Counter* requests_counter_ = nullptr;  // Owned by the registry.
  telemetry::Counter* batches_counter_ = nullptr;
  telemetry::Counter* broadcasts_counter_ = nullptr;
  /// Caller-visible over-quota refusals ("overloaded: over quota").
  telemetry::Counter* policer_refused_counter_ = nullptr;
  telemetry::Gauge* sessions_gauge_ = nullptr;
  telemetry::Histogram* batch_size_hist_ = nullptr;
  /// Sampled fast-path hit latency. Same name and bounds as the engines'
  /// decision_latency_us, so snapshots merge hits and dispatches into one
  /// series — a cache-heavy workload's p50 must reflect the hits.
  telemetry::Histogram* fastpath_latency_hist_ = nullptr;

  /// Serializes admin broadcasts so epochs hit every mailbox in one order.
  std::mutex admin_mu_;
  std::atomic<uint64_t> admin_epoch_{0};

  /// Serializes policy updates (and orders them against LoadPolicy's
  /// installation of current_policy_); never held by shard threads.
  mutable std::mutex update_mu_;
  /// The installed shared generation — the identity base the next
  /// PreparePolicyUpdate pins its plan to. Guarded by update_mu_.
  std::shared_ptr<const Policy> current_policy_;
  bool pauseless_updates_ = true;
  telemetry::Counter* policy_swaps_counter_ = nullptr;  // Owned by registry.
  telemetry::Counter* policy_swap_failures_counter_ = nullptr;
  /// Off-thread prepare cost (validate + diff + delta), in microseconds.
  telemetry::Histogram* swap_build_hist_ = nullptr;

  Mailbox<TimerCommand> timer_mailbox_;
  std::thread timer_thread_;
  std::atomic<Time> now_{0};

  /// session -> home shard, for session-only calls.
  mutable std::shared_mutex session_mu_;
  std::unordered_map<SessionId, uint32_t> sessions_;

  std::mutex shutdown_mu_;
  /// Written under shutdown_mu_; read lock-free by synchronous-mode calls
  /// that must refuse after shutdown (AdvanceTo).
  std::atomic<bool> shut_down_{false};
};

}  // namespace sentinel

#endif  // SENTINELPP_SERVICE_AUTHORIZATION_SERVICE_H_
