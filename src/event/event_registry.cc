#include "event/event_registry.h"

#include <sstream>

namespace sentinel {

const char* EventKindToString(EventKind kind) {
  switch (kind) {
    case EventKind::kPrimitive:
      return "PRIMITIVE";
    case EventKind::kFilter:
      return "FILTER";
    case EventKind::kAnd:
      return "AND";
    case EventKind::kOr:
      return "OR";
    case EventKind::kSeq:
      return "SEQ";
    case EventKind::kNot:
      return "NOT";
    case EventKind::kPlus:
      return "PLUS";
    case EventKind::kAperiodic:
      return "APERIODIC";
    case EventKind::kAperiodicStar:
      return "APERIODIC*";
    case EventKind::kPeriodic:
      return "PERIODIC";
    case EventKind::kPeriodicStar:
      return "PERIODIC*";
    case EventKind::kAbsolute:
      return "ABSOLUTE";
  }
  return "UNKNOWN";
}

const char* ConsumptionModeToString(ConsumptionMode mode) {
  switch (mode) {
    case ConsumptionMode::kRecent:
      return "recent";
    case ConsumptionMode::kChronicle:
      return "chronicle";
    case ConsumptionMode::kContinuous:
      return "continuous";
    case ConsumptionMode::kCumulative:
      return "cumulative";
  }
  return "unknown";
}

Result<EventId> EventRegistry::Register(EventDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("event name must not be empty");
  }
  if (by_name_.count(def.name) > 0) {
    return Status::AlreadyExists("event already defined: " + def.name);
  }
  for (EventId child : def.children) {
    if (child < 0 || child >= size()) {
      return Status::InvalidArgument("unknown child event id for " + def.name);
    }
  }
  const EventId id = size();
  by_name_.emplace(def.name, id);
  defs_.push_back(std::move(def));
  return id;
}

Result<EventId> EventRegistry::Lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("unknown event: " + name);
  }
  return it->second;
}

std::string EventRegistry::Describe(EventId id) const {
  const EventDef& d = defs_[id];
  std::ostringstream os;
  os << d.name << " = " << EventKindToString(d.kind);
  if (!d.children.empty()) {
    os << '(';
    for (size_t i = 0; i < d.children.size(); ++i) {
      if (i) os << ", ";
      os << name(d.children[i]);
    }
    if (d.kind == EventKind::kPlus || d.kind == EventKind::kPeriodic ||
        d.kind == EventKind::kPeriodicStar) {
      os << ", " << (d.duration / kMillisecond) << "ms";
    }
    os << ')';
  }
  if (d.kind == EventKind::kFilter && symbols_ != nullptr) {
    os << ' ' << d.filter.ToString(*symbols_);
  }
  if (d.kind == EventKind::kAbsolute) os << " @" << d.pattern.ToString();
  if (d.kind != EventKind::kPrimitive && d.kind != EventKind::kOr &&
      d.kind != EventKind::kFilter && d.kind != EventKind::kAbsolute) {
    os << " [" << ConsumptionModeToString(d.mode) << ']';
  }
  return os.str();
}

}  // namespace sentinel
