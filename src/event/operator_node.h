#ifndef SENTINELPP_EVENT_OPERATOR_NODE_H_
#define SENTINELPP_EVENT_OPERATOR_NODE_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "event/event.h"
#include "event/event_registry.h"
#include "event/timer_service.h"

namespace sentinel {

/// \brief Services the detector provides to operator nodes: emitting
/// detections into the propagation queue, timers, time, and sequence
/// numbers. Implemented by EventDetector.
class NodeContext {
 public:
  virtual ~NodeContext() = default;

  /// Queues a composite detection for delivery to parents and subscribers.
  virtual void EmitDetected(Occurrence occ) = 0;

  virtual TimerId ScheduleTimer(Time when, TimerService::Callback cb) = 0;
  virtual void CancelTimer(TimerId id) = 0;
  virtual Time Now() const = 0;

  /// Next value of the detector-wide detection sequence counter.
  virtual uint64_t NextSeq() = 0;

  /// The detector-wide symbol table param keys/values are interned in.
  virtual SymbolTable& symbols() = 0;
};

/// \brief One node of the event-detection graph. Child occurrences are
/// pushed bottom-up: the detector calls OnChild for each parent of the
/// occurred event, identifying which operand slot the child fills.
class OperatorNode {
 public:
  OperatorNode(EventId id, const EventDef* def) : id_(id), def_(def) {}
  virtual ~OperatorNode() = default;

  OperatorNode(const OperatorNode&) = delete;
  OperatorNode& operator=(const OperatorNode&) = delete;

  /// Called once after construction with the owning detector. Nodes that
  /// need timers (PLUS/PERIODIC/ABSOLUTE) retain `ctx` (owned by the
  /// detector, which outlives all nodes).
  virtual void Initialize(NodeContext* ctx) { ctx_ = ctx; }

  /// A child occurrence arrived in operand slot `slot` (index into
  /// def().children).
  virtual void OnChild(int slot, const Occurrence& occ) = 0;

  /// Permanently deactivates the node: pending timers are cancelled and
  /// stored state dropped. Used when a policy regeneration replaces a
  /// temporal event (the registry is append-only; superseded nodes are
  /// orphaned but must stop firing).
  virtual void Deactivate() {}

  EventId id() const { return id_; }
  const EventDef& def() const { return *def_; }

 protected:
  /// True iff `a` is strictly before `b` in SnoopIB interval order;
  /// same-instant occurrences are ordered by detection sequence number.
  static bool StrictlyBefore(const Occurrence& a, const Occurrence& b) {
    if (a.end != b.start) return a.end < b.start;
    return a.seq < b.seq;
  }

  /// Merges `overlay` into `base` (overlay wins conflicts) and returns it.
  static FlatParamMap MergeParams(FlatParamMap base,
                                  const FlatParamMap& overlay);

  /// Builds a detection for this node and queues it.
  void Emit(Time start, Time end, FlatParamMap params, EventId source);

  EventId id_;
  const EventDef* def_;
  NodeContext* ctx_ = nullptr;
};

/// Leaf node; occurrences are injected by EventDetector::Raise.
class PrimitiveNode final : public OperatorNode {
 public:
  using OperatorNode::OperatorNode;
  void OnChild(int, const Occurrence&) override {}  // No children.
};

/// Passes through child occurrences whose params contain every (key, value)
/// pair of the filter. Used to specialize generic engine events per
/// user/role/session (the paper's specialized and localized rules).
class FilterNode final : public OperatorNode {
 public:
  using OperatorNode::OperatorNode;
  void OnChild(int slot, const Occurrence& occ) override;
};

/// N-ary OR: any child occurrence is a detection. `source` records which
/// alternative fired (the paper's TSOD rule dispatches on it).
class OrNode final : public OperatorNode {
 public:
  using OperatorNode::OperatorNode;
  void OnChild(int slot, const Occurrence& occ) override;
};

/// Binary AND: both children occurred in any order. Pairing and consumption
/// follow the node's ConsumptionMode.
class AndNode final : public OperatorNode {
 public:
  using OperatorNode::OperatorNode;
  void OnChild(int slot, const Occurrence& occ) override;

 private:
  void Pair(const Occurrence& stored, const Occurrence& fresh);

  std::deque<Occurrence> side_[2];
};

/// Binary SEQUENCE: children[0] strictly before children[1].
class SeqNode final : public OperatorNode {
 public:
  using OperatorNode::OperatorNode;
  void OnChild(int slot, const Occurrence& occ) override;

 private:
  void Pair(const Occurrence& left, const Occurrence& right);

  std::deque<Occurrence> lefts_;
};

/// NOT(A, B, C): detected at C provided no B occurred since the initiating
/// A. A B occurrence invalidates every open window (any open window
/// contains it), in all consumption modes.
class NotNode final : public OperatorNode {
 public:
  using OperatorNode::OperatorNode;
  void OnChild(int slot, const Occurrence& occ) override;

 private:
  std::deque<Occurrence> windows_;
};

/// PLUS(A, delta): detected `delta` after each A, carrying A's parameters.
/// Outstanding expiries can be cancelled by parameter match (used when a
/// duration-bounded activation ends early).
class PlusNode final : public OperatorNode {
 public:
  using OperatorNode::OperatorNode;
  void OnChild(int slot, const Occurrence& occ) override;

  /// Cancels pending expiries whose stored params contain every pair of
  /// `match`; returns how many were cancelled.
  int CancelMatching(const FlatParamMap& match);

  void Deactivate() override { CancelMatching({}); }

  size_t pending_count() const { return pending_.size(); }

 private:
  std::unordered_map<TimerId, Occurrence> pending_;
};

/// APERIODIC(A, B, C): B occurrences detected while a window opened by A
/// and not yet closed by C is in effect. The star variant accumulates B's
/// and emits once at C with a `_count` parameter.
class AperiodicNode final : public OperatorNode {
 public:
  AperiodicNode(EventId id, const EventDef* def)
      : OperatorNode(id, def),
        star_(def->kind == EventKind::kAperiodicStar) {}

  void OnChild(int slot, const Occurrence& occ) override;

  size_t open_window_count() const { return windows_.size(); }

 private:
  struct Window {
    Occurrence init;
    FlatParamMap accumulated;  // Star: merged middle params.
    int64_t count = 0;         // Star: number of middles.
  };

  void EmitMiddle(const Window& w, const Occurrence& middle);
  void EmitStarClose(const Window& w, const Occurrence& term);

  bool star_;
  std::deque<Window> windows_;
};

/// PERIODIC(A, tau, C): a detection every `tau` from A until C. The star
/// variant emits once at C with the tick count.
class PeriodicNode final : public OperatorNode {
 public:
  PeriodicNode(EventId id, const EventDef* def)
      : OperatorNode(id, def), star_(def->kind == EventKind::kPeriodicStar) {}
  ~PeriodicNode() override;

  void OnChild(int slot, const Occurrence& occ) override;
  void Deactivate() override;

  size_t open_window_count() const { return windows_.size(); }

 private:
  struct Window {
    Occurrence init;
    TimerId timer = 0;
    int64_t ticks = 0;
    uint64_t key = 0;  // Stable handle for the timer callback.
  };

  void OpenWindow(const Occurrence& init);
  void CloseWindow(size_t index, const Occurrence& term);
  void OnTick(uint64_t key, Time fire_time);

  bool star_;
  std::deque<Window> windows_;
  uint64_t next_key_ = 1;
};

/// ABSOLUTE(pattern): fires at every instant matching the calendar pattern.
class AbsoluteNode final : public OperatorNode {
 public:
  using OperatorNode::OperatorNode;

  void Initialize(NodeContext* ctx) override;
  void OnChild(int, const Occurrence&) override {}  // No children.
  void Deactivate() override { dead_ = true; }

 private:
  void ScheduleNext(Time after);

  bool dead_ = false;
};

/// Factory mapping an EventDef to its node implementation.
std::unique_ptr<OperatorNode> MakeOperatorNode(EventId id,
                                               const EventDef* def);

}  // namespace sentinel

#endif  // SENTINELPP_EVENT_OPERATOR_NODE_H_
