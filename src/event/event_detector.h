#ifndef SENTINELPP_EVENT_EVENT_DETECTOR_H_
#define SENTINELPP_EVENT_EVENT_DETECTOR_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/interner.h"
#include "common/status.h"
#include "event/consumption.h"
#include "event/event.h"
#include "event/event_registry.h"
#include "event/operator_node.h"
#include "event/timer_service.h"

namespace sentinel {

namespace telemetry {
class Counter;
class Gauge;
class Registry;
class TraceCollector;
}  // namespace telemetry

/// Handle returned by Subscribe, used to Unsubscribe.
using SubscriptionId = uint64_t;

/// \brief The composite event detector — the Sentinel+ analog.
///
/// Events are defined up front (primitive and composite, the Snoop(IB)
/// operator set), forming a detection DAG. At runtime the application
/// raises primitive events with parameters; detections propagate bottom-up
/// and subscribers (the rule manager) are notified in deterministic FIFO
/// order. Re-entrant raises from inside a subscriber (rule actions that
/// raise further events — the paper's cascaded rules) are queued and drained
/// before the outermost Raise returns, so a caller observes the full
/// cascade synchronously.
///
/// Single-threaded by design; all temporal behaviour flows through the
/// injected Clock and the internal TimerService.
class EventDetector final : public NodeContext {
 public:
  using Subscriber = std::function<void(const Occurrence&)>;

  /// `clock` must outlive the detector; not owned. `symbols` is the table
  /// event parameters are interned in — pass the engine's table so names are
  /// shared across layers; when null the detector owns a private one.
  /// `metrics`/`tracer` (both optional, not owned) attach the telemetry
  /// layer: the detector registers its own instruments on `metrics` and
  /// records occurrence steps on `tracer` while a span is active.
  explicit EventDetector(Clock* clock, SymbolTable* symbols = nullptr,
                         telemetry::Registry* metrics = nullptr,
                         telemetry::TraceCollector* tracer = nullptr);
  ~EventDetector() override;

  EventDetector(const EventDetector&) = delete;
  EventDetector& operator=(const EventDetector&) = delete;

  // ------------------------------------------------------ Definition API

  Result<EventId> DefinePrimitive(const std::string& name);
  /// Occurrences of `base` whose params contain every pair of `equals`.
  Result<EventId> DefineFilter(const std::string& name, EventId base,
                               ParamMap equals);
  Result<EventId> DefineAnd(const std::string& name, EventId a, EventId b,
                            ConsumptionMode mode = ConsumptionMode::kRecent);
  /// N-ary OR over `alternatives` (at least one).
  Result<EventId> DefineOr(const std::string& name,
                           std::vector<EventId> alternatives);
  Result<EventId> DefineSeq(const std::string& name, EventId first,
                            EventId second,
                            ConsumptionMode mode = ConsumptionMode::kRecent);
  Result<EventId> DefineNot(const std::string& name, EventId initiator,
                            EventId middle, EventId terminator,
                            ConsumptionMode mode = ConsumptionMode::kRecent);
  Result<EventId> DefinePlus(const std::string& name, EventId base,
                             Duration delta);
  Result<EventId> DefineAperiodic(
      const std::string& name, EventId initiator, EventId middle,
      EventId terminator, ConsumptionMode mode = ConsumptionMode::kRecent);
  Result<EventId> DefineAperiodicStar(
      const std::string& name, EventId initiator, EventId middle,
      EventId terminator, ConsumptionMode mode = ConsumptionMode::kRecent);
  Result<EventId> DefinePeriodic(
      const std::string& name, EventId initiator, Duration tau,
      EventId terminator, ConsumptionMode mode = ConsumptionMode::kRecent);
  Result<EventId> DefinePeriodicStar(
      const std::string& name, EventId initiator, Duration tau,
      EventId terminator, ConsumptionMode mode = ConsumptionMode::kRecent);
  /// Temporal event firing at every instant matching `pattern`.
  Result<EventId> DefineAbsolute(const std::string& name,
                                 const TimePattern& pattern);

  const EventRegistry& registry() const { return registry_; }
  Result<EventId> Lookup(const std::string& name) const {
    return registry_.Lookup(name);
  }
  const std::string& name(EventId id) const { return registry_.name(id); }

  // ---------------------------------------------------- Subscription API

  /// Calls `subscriber` for every occurrence of `event`. Subscribers added
  /// or removed during a notification take effect from the next occurrence.
  SubscriptionId Subscribe(EventId event, Subscriber subscriber);
  void Unsubscribe(EventId event, SubscriptionId id);

  /// Invoked each time a top-level cascade finishes draining (the detector
  /// becomes quiescent). The engine uses this to reset the rule manager's
  /// per-trigger cascade budget so independent triggers — each request,
  /// each timer firing — get a fresh budget while genuine runaway loops
  /// within one cascade are still caught.
  void SetQuiescentCallback(std::function<void()> callback) {
    quiescent_callback_ = std::move(callback);
  }

  // --------------------------------------------------------- Runtime API

  /// Injects a primitive occurrence at Now() and drains the full cascade
  /// (unless called re-entrantly from a subscriber, in which case the
  /// occurrence joins the in-progress drain).
  ///
  /// The ParamMap overloads intern keys and string values on the way in —
  /// the convenience path for tests and ad-hoc callers. Hot callers (the
  /// engine) build a FlatParamMap from pre-interned symbols and use
  /// RaiseInterned; string-typed values are still canonicalized to symbols
  /// there so occurrence params never carry raw strings.
  Status Raise(EventId event, ParamMap params);
  Status RaiseByName(const std::string& name, ParamMap params);
  Status RaiseInterned(EventId event, FlatParamMap params);

  /// Advances the simulated clock to `t`, firing due timers in order at
  /// their exact fire times. Requires the detector's clock to be the given
  /// SimulatedClock (the engine owns both).
  void AdvanceTo(Time t, SimulatedClock* clock);

  /// Fires timers due at Now(); for wall-clock deployments, call
  /// periodically.
  void PollTimers();

  /// Cancels pending PLUS expiries of `plus_event` whose initiating params
  /// contain `match`. Returns count, or error if the event is not a PLUS.
  /// The ParamMap form interns `match` first; the Interned form expects
  /// symbol keys/values (the engine's duration-cancel path).
  Result<int> CancelPendingPlus(EventId plus_event, const ParamMap& match);
  Result<int> CancelPendingPlusInterned(EventId plus_event,
                                        const FlatParamMap& match);

  /// Permanently deactivates an event: its node cancels timers/state, its
  /// occurrences stop propagating, and primitive raises are rejected. The
  /// registry keeps the (orphaned) definition — ids never shift. Used by
  /// policy regeneration when a temporal event is superseded.
  Status DeactivateEvent(EventId event);
  bool IsDeactivated(EventId event) const {
    return event >= 0 && static_cast<size_t>(event) < deactivated_.size() &&
           deactivated_[event];
  }

  /// Earliest pending timer fire time (for schedulers), if any.
  std::optional<Time> NextTimerTime() { return timers_.NextFireTime(); }

  // ------------------------------------------------------ Introspection

  /// Occurrences delivered (to parents/subscribers) per event id.
  /// Out-of-range ids count zero, mirroring IsDeactivated.
  uint64_t occurrence_count(EventId id) const {
    if (id < 0 || static_cast<size_t>(id) >= occ_counts_.size()) return 0;
    return occ_counts_[id];
  }
  uint64_t total_occurrences() const { return total_occurrences_; }
  size_t pending_timer_count() const { return timers_.pending_count(); }

  /// Number of attached consumers of `event`: external subscribers plus
  /// composite-operator parent links plus indexed filter nodes. The
  /// decision cache uses this to prove that suppressing a Raise (replaying
  /// a memoized verdict instead) is unobservable to everything except the
  /// one rule whose verdict is being replayed.
  size_t ConsumerCount(EventId event) const;

  // ------------------------------------------------- NodeContext (nodes)

  void EmitDetected(Occurrence occ) override;
  TimerId ScheduleTimer(Time when, TimerService::Callback cb) override;
  void CancelTimer(TimerId id) override;
  Time Now() const override { return clock_->Now(); }
  uint64_t NextSeq() override { return next_seq_++; }
  SymbolTable& symbols() override { return *symbols_; }
  const SymbolTable& symbols() const { return *symbols_; }

 private:
  struct SubscriberEntry {
    SubscriptionId id;
    Subscriber fn;
  };

  /// Registers the def, instantiates its node, wires parent links.
  Result<EventId> Install(EventDef def);

  /// Drains the occurrence queue, dispatching to parents and subscribers.
  void Drain();
  void Dispatch(const Occurrence& occ);

  /// One key's worth of the filter fast-path index: all single-key equality
  /// filters on a base event that test this key, bucketed by the (interned)
  /// value they require. Dispatch is one flat-map probe plus one integer
  /// hash lookup. `key_name` keeps bucket order deterministic (by key name,
  /// matching the seed's ordered-map iteration).
  struct FilterKeyBucket {
    Symbol key;
    std::string key_name;
    std::unordered_map<uint32_t, std::vector<int>> by_value;
  };

  /// Refreshes the pending-timer gauge after heap mutations (no-op when
  /// no registry is attached).
  void UpdateTimerGauge();

  Clock* clock_;          // Not owned.
  std::unique_ptr<SymbolTable> owned_symbols_;  // Set iff none was injected.
  SymbolTable* symbols_;  // Not owned (points at owned_symbols_ if set).
  telemetry::TraceCollector* tracer_ = nullptr;   // Not owned; may be null.
  telemetry::Counter* raises_counter_ = nullptr;  // Null iff no registry.
  telemetry::Counter* occurrences_counter_ = nullptr;
  telemetry::Gauge* pending_timers_gauge_ = nullptr;
  EventRegistry registry_;
  TimerService timers_;   // Declared before nodes_: nodes cancel in dtors.
  std::vector<std::unique_ptr<OperatorNode>> nodes_;
  /// parents_[child] = list of (parent node index, operand slot).
  std::vector<std::vector<std::pair<int, int>>> parents_;
  /// Fast path for the dominant generated shape: many single-key equality
  /// filters on one base event (one per role/user). Indexed filters are
  /// kept out of parents_ and dispatched by hash lookup on the occurrence's
  /// (interned) parameter value instead of a linear scan. Indexed by base
  /// event id, parallel to nodes_.
  std::vector<std::vector<FilterKeyBucket>> filter_index_;
  std::vector<std::vector<SubscriberEntry>> subscribers_;
  std::vector<uint64_t> occ_counts_;
  std::vector<bool> deactivated_;

  std::deque<Occurrence> queue_;
  std::function<void()> quiescent_callback_;
  bool draining_ = false;
  uint64_t next_seq_ = 1;
  SubscriptionId next_sub_id_ = 1;
  uint64_t total_occurrences_ = 0;
};

}  // namespace sentinel

#endif  // SENTINELPP_EVENT_EVENT_DETECTOR_H_
