#include "event/timer_service.h"

namespace sentinel {

TimerId TimerService::Schedule(Time when, Callback cb) {
  const TimerId id = next_id_++;
  heap_.push(Entry{when, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

void TimerService::Cancel(TimerId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return;  // Already fired or cancelled.
  callbacks_.erase(it);
  cancelled_.insert(id);
}

void TimerService::PruneCancelledTop() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

std::optional<Time> TimerService::NextFireTime() {
  PruneCancelledTop();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().when;
}

bool TimerService::FireDueOne(Time now) {
  PruneCancelledTop();
  if (heap_.empty() || heap_.top().when > now) return false;
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(entry.id);
  if (it == callbacks_.end()) return true;  // Raced with Cancel; skip.
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  cb(entry.id, entry.when);
  return true;
}

}  // namespace sentinel
