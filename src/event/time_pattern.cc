#include "event/time_pattern.h"

#include <cstdio>
#include <vector>

namespace sentinel {

namespace {

// Splits "a:b:c" or "a/b/c" into three raw field strings.
bool Split3(const std::string& text, char sep, std::string out[3]) {
  size_t p1 = text.find(sep);
  if (p1 == std::string::npos) return false;
  size_t p2 = text.find(sep, p1 + 1);
  if (p2 == std::string::npos) return false;
  if (text.find(sep, p2 + 1) != std::string::npos) return false;
  out[0] = text.substr(0, p1);
  out[1] = text.substr(p1 + 1, p2 - p1 - 1);
  out[2] = text.substr(p2 + 1);
  return true;
}

// Parses a field that is either "*" or a decimal in [lo, hi].
Result<int> ParseField(const std::string& raw, int lo, int hi,
                       const char* what) {
  if (raw == "*") return TimePattern::kAny;
  if (raw.empty()) {
    return Status::ParseError(std::string("empty ") + what + " field");
  }
  int value = 0;
  for (char c : raw) {
    if (c < '0' || c > '9') {
      return Status::ParseError(std::string("bad ") + what + " field: " + raw);
    }
    value = value * 10 + (c - '0');
    if (value > hi) break;
  }
  if (value < lo || value > hi) {
    return Status::ParseError(std::string("out-of-range ") + what +
                              " field: " + raw);
  }
  return value;
}

std::string FieldToString(int v) {
  if (v == TimePattern::kAny) return "*";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d", v);
  return buf;
}

}  // namespace

Result<TimePattern> TimePattern::Parse(const std::string& text) {
  // Layout: "hh:mi:ss" optionally followed by "/mm/dd/yyyy".
  std::string time_part = text;
  std::string date_part;
  const size_t slash = text.find('/');
  if (slash != std::string::npos) {
    time_part = text.substr(0, slash);
    date_part = text.substr(slash + 1);
  }

  std::string tf[3];
  if (!Split3(time_part, ':', tf)) {
    return Status::ParseError("expected hh:mi:ss in pattern: " + text);
  }
  SENTINEL_ASSIGN_OR_RETURN(hour, ParseField(tf[0], 0, 23, "hour"));
  SENTINEL_ASSIGN_OR_RETURN(minute, ParseField(tf[1], 0, 59, "minute"));
  SENTINEL_ASSIGN_OR_RETURN(second, ParseField(tf[2], 0, 59, "second"));

  int month = kAny, day = kAny, year = kAny;
  if (!date_part.empty()) {
    std::string df[3];
    if (!Split3(date_part, '/', df)) {
      return Status::ParseError("expected mm/dd/yyyy in pattern: " + text);
    }
    SENTINEL_ASSIGN_OR_RETURN(m, ParseField(df[0], 1, 12, "month"));
    SENTINEL_ASSIGN_OR_RETURN(d, ParseField(df[1], 1, 31, "day"));
    SENTINEL_ASSIGN_OR_RETURN(y, ParseField(df[2], 1970, 9999, "year"));
    month = m;
    day = d;
    year = y;
  }
  return TimePattern(hour, minute, second, month, day, year);
}

bool TimePattern::Matches(Time t) const {
  const CivilTime c = ToCivil(t);
  auto match = [](int field, int value) {
    return field == kAny || field == value;
  };
  return match(hour_, c.hour) && match(minute_, c.minute) &&
         match(second_, c.second) && match(month_, c.month) &&
         match(day_, c.day) && match(year_, c.year);
}

std::optional<Time> TimePattern::NextMatchAfter(Time t) const {
  // Candidates are whole seconds strictly after t.
  Time bound = (t / kSecond) * kSecond;
  if (bound <= t) bound += kSecond;

  CivilTime bc = ToCivil(bound);

  // Earliest matching time-of-day (in seconds) at or after `tod_low`
  // (seconds since midnight), or -1 when none exists that day.
  auto next_tod = [this](int tod_low) -> int {
    const int bh = tod_low / 3600;
    const int bm = (tod_low / 60) % 60;
    const int bs = tod_low % 60;
    const int h_first = (hour_ == kAny) ? bh : hour_;
    const int h_last = (hour_ == kAny) ? 23 : hour_;
    for (int h = h_first; h <= h_last; ++h) {
      if (h < bh) continue;
      const int m_low = (h == bh) ? bm : 0;
      const int m_first = (minute_ == kAny) ? m_low : minute_;
      const int m_last = (minute_ == kAny) ? 59 : minute_;
      for (int m = m_first; m <= m_last; ++m) {
        if (m < m_low) continue;
        const int s_low = (h == bh && m == bm) ? bs : 0;
        const int s = (second_ == kAny) ? s_low : second_;
        if (s < s_low || s > 59) continue;
        return h * 3600 + m * 60 + s;
      }
      if (minute_ != kAny && hour_ == kAny) continue;
    }
    return -1;
  };

  // Walk forward day by day. The horizon covers a full leap cycle so that
  // concrete month/day combinations (e.g. Feb 29) are always found if they
  // exist; beyond it, a concrete year is exhausted.
  constexpr int kHorizonDays = 4 * 366 + 2;
  CivilTime day_cursor = bc;
  for (int i = 0; i < kHorizonDays; ++i) {
    const bool date_ok = (year_ == kAny || year_ == day_cursor.year) &&
                         (month_ == kAny || month_ == day_cursor.month) &&
                         (day_ == kAny || day_ == day_cursor.day);
    if (year_ != kAny && day_cursor.year > year_) return std::nullopt;
    if (date_ok) {
      const int tod_low =
          (i == 0) ? bc.hour * 3600 + bc.minute * 60 + bc.second : 0;
      const int tod = next_tod(tod_low);
      if (tod >= 0) {
        return MakeTime(day_cursor.year, day_cursor.month, day_cursor.day) +
               static_cast<Time>(tod) * kSecond;
      }
    }
    // Advance one civil day.
    day_cursor.day += 1;
    if (day_cursor.day > DaysInMonth(day_cursor.year, day_cursor.month)) {
      day_cursor.day = 1;
      day_cursor.month += 1;
      if (day_cursor.month > 12) {
        day_cursor.month = 1;
        day_cursor.year += 1;
      }
    }
    day_cursor.hour = 0;
    day_cursor.minute = 0;
    day_cursor.second = 0;
  }
  return std::nullopt;
}

std::string TimePattern::ToString() const {
  std::string out = FieldToString(hour_) + ":" + FieldToString(minute_) + ":" +
                    FieldToString(second_);
  out += "/" + FieldToString(month_) + "/" + FieldToString(day_) + "/";
  out += (year_ == kAny) ? "*" : std::to_string(year_);
  return out;
}

}  // namespace sentinel
