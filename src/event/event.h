#ifndef SENTINELPP_EVENT_EVENT_H_
#define SENTINELPP_EVENT_EVENT_H_

#include <cstdint>
#include <string>

#include "common/interner.h"
#include "common/value.h"

namespace sentinel {

/// Dense handle for a registered event (primitive or composite).
/// Values are indices into the EventRegistry.
using EventId = int32_t;

constexpr EventId kInvalidEventId = -1;

/// \brief One detected occurrence of an event, with interval-based
/// (SnoopIB) timestamps.
///
/// Primitive occurrences have `start == end` (the instant they were raised).
/// Composite occurrences span from the start of their earliest constituent
/// to the detection instant. `params` is the merge of constituent parameter
/// maps; on key conflicts the latest-arriving constituent wins. `source` is
/// the event whose arrival completed the detection (for OR, which of the
/// alternatives occurred — the paper's TSOD rule dispatches on this).
///
/// Params are symbol-keyed: keys and name-valued entries are interned in the
/// detector's SymbolTable at the raise boundary, so everything downstream
/// (filter index, operator merging, rule conditions, RBAC lookups) compares
/// integers instead of strings.
struct Occurrence {
  EventId event = kInvalidEventId;
  EventId source = kInvalidEventId;
  Time start = 0;
  Time end = 0;
  /// Monotone per-detector sequence number; total order of detections.
  uint64_t seq = 0;
  FlatParamMap params;
};

/// Renders an occurrence as `name[start,end]{params}` given the display
/// name and symbol table (the detector supplies both).
std::string OccurrenceToString(const Occurrence& occ, const std::string& name,
                               const SymbolTable& symbols);

}  // namespace sentinel

#endif  // SENTINELPP_EVENT_EVENT_H_
