#ifndef SENTINELPP_EVENT_TIME_PATTERN_H_
#define SENTINELPP_EVENT_TIME_PATTERN_H_

#include <optional>
#include <string>

#include "common/calendar.h"
#include "common/status.h"
#include "common/value.h"

namespace sentinel {

/// \brief A wildcard calendar pattern in the paper's notation
/// "24h:mi:ss/mm/dd/yyyy" (footnote 10), e.g. "10:00:00/*/*/*" = 10 a.m.
/// every day. Each field is either a concrete value or a wildcard.
///
/// A pattern denotes the (possibly infinite) set of time instants whose
/// civil fields match all concrete fields. Absolute temporal events fire at
/// each matching instant; GTRBAC periodic expressions (I,P) are built from
/// pairs of patterns.
class TimePattern {
 public:
  /// Wildcard sentinel for any field.
  static constexpr int kAny = -1;

  TimePattern() = default;
  TimePattern(int hour, int minute, int second, int month, int day, int year)
      : hour_(hour),
        minute_(minute),
        second_(second),
        month_(month),
        day_(day),
        year_(year) {}

  /// Parses "hh:mi:ss/mm/dd/yyyy"; any field may be "*". The time part is
  /// mandatory; the date part defaults to "*/*/*" when omitted.
  static Result<TimePattern> Parse(const std::string& text);

  /// True iff the civil fields of `t` match every concrete field.
  /// Sub-second precision is ignored: an instant matches if its whole-second
  /// truncation does.
  bool Matches(Time t) const;

  /// Earliest matching instant strictly after `t`, or nullopt when the
  /// pattern has a concrete year/month/day combination entirely in the past.
  /// Matching instants are whole seconds.
  std::optional<Time> NextMatchAfter(Time t) const;

  int hour() const { return hour_; }
  int minute() const { return minute_; }
  int second() const { return second_; }
  int month() const { return month_; }
  int day() const { return day_; }
  int year() const { return year_; }

  std::string ToString() const;

  friend bool operator==(const TimePattern&, const TimePattern&) = default;

 private:
  int hour_ = kAny;
  int minute_ = kAny;
  int second_ = kAny;
  int month_ = kAny;
  int day_ = kAny;
  int year_ = kAny;
};

}  // namespace sentinel

#endif  // SENTINELPP_EVENT_TIME_PATTERN_H_
