#ifndef SENTINELPP_EVENT_EVENT_REGISTRY_H_
#define SENTINELPP_EVENT_EVENT_REGISTRY_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "common/value.h"
#include "event/consumption.h"
#include "event/event.h"
#include "event/time_pattern.h"

namespace sentinel {

/// Structural kind of a registered event.
enum class EventKind : int {
  kPrimitive = 0,   // Raised explicitly by the application/engine.
  kFilter,          // Child occurrences passing a parameter-equality filter.
  kAnd,             // Both children occurred (any order).
  kOr,              // Any child occurred (n-ary).
  kSeq,             // children[0] strictly before children[1] (SnoopIB).
  kNot,             // children[1] did NOT occur between [0] and [2].
  kPlus,            // children[0] occurred, then `duration` elapsed.
  kAperiodic,       // children[1] occurred between [0] and [2].
  kAperiodicStar,   // All [1]s between [0] and [2], emitted at [2].
  kPeriodic,        // Every `duration` between children[0] and [1].
  kPeriodicStar,    // Tick count accumulated, emitted at children[1].
  kAbsolute,        // Calendar pattern instants (temporal event).
};

const char* EventKindToString(EventKind kind);

/// \brief Immutable description of one registered event.
struct EventDef {
  EventKind kind = EventKind::kPrimitive;
  std::string name;
  std::vector<EventId> children;
  Duration duration = 0;            // kPlus delta; kPeriodic(/Star) tau.
  FlatParamMap filter;              // kFilter equality constraints (interned).
  TimePattern pattern;              // kAbsolute calendar pattern.
  ConsumptionMode mode = ConsumptionMode::kRecent;
};

/// \brief Name <-> id table plus definitions, for introspection and for the
/// detector to build its operator graph. Ids are dense and stable.
class EventRegistry {
 public:
  EventRegistry() = default;

  EventRegistry(const EventRegistry&) = delete;
  EventRegistry& operator=(const EventRegistry&) = delete;

  /// The table filter symbols resolve against (for Describe); the owning
  /// detector sets it once at construction. Not owned.
  void set_symbols(const SymbolTable* symbols) { symbols_ = symbols; }

  /// Registers a definition. Fails on duplicate name or unknown child id.
  Result<EventId> Register(EventDef def);

  /// Removes is not supported: generated rule pools are rebuilt by creating
  /// a fresh engine/detector; ids stay valid for a registry's lifetime.

  bool Contains(const std::string& name) const {
    return by_name_.count(name) > 0;
  }
  Result<EventId> Lookup(const std::string& name) const;

  const EventDef& def(EventId id) const { return defs_[id]; }
  const std::string& name(EventId id) const { return defs_[id].name; }
  int size() const { return static_cast<int>(defs_.size()); }

  /// Renders the full definition, e.g. "SEQ(e1, e2) [chronicle]".
  std::string Describe(EventId id) const;

 private:
  // Deque: stable references — operator nodes hold pointers to their defs.
  std::deque<EventDef> defs_;
  std::unordered_map<std::string, EventId> by_name_;
  const SymbolTable* symbols_ = nullptr;
};

}  // namespace sentinel

#endif  // SENTINELPP_EVENT_EVENT_REGISTRY_H_
