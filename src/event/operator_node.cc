#include "event/operator_node.h"

#include <algorithm>
#include <cassert>

namespace sentinel {

FlatParamMap OperatorNode::MergeParams(FlatParamMap base,
                                       const FlatParamMap& overlay) {
  base.MergeFrom(overlay);  // Overlay (later constituent) wins.
  return base;
}

void OperatorNode::Emit(Time start, Time end, FlatParamMap params,
                        EventId source) {
  Occurrence occ;
  occ.event = id_;
  occ.source = source;
  occ.start = start;
  occ.end = end;
  occ.seq = ctx_->NextSeq();
  occ.params = std::move(params);
  ctx_->EmitDetected(std::move(occ));
}

// ---------------------------------------------------------------- Filter

void FilterNode::OnChild(int slot, const Occurrence& occ) {
  (void)slot;
  if (!occ.params.ContainsAll(def_->filter)) return;
  Emit(occ.start, occ.end, occ.params, occ.source);
}

// -------------------------------------------------------------------- OR

void OrNode::OnChild(int slot, const Occurrence& occ) {
  (void)slot;
  Emit(occ.start, occ.end, occ.params, occ.source);
}

// ------------------------------------------------------------------- AND

void AndNode::Pair(const Occurrence& stored, const Occurrence& fresh) {
  // Parameters merge in arrival order: the stored (earlier) occurrence
  // first, the fresh (detecting) one winning conflicts.
  Emit(std::min(stored.start, fresh.start), fresh.end,
       MergeParams(stored.params, fresh.params), fresh.source);
}

void AndNode::OnChild(int slot, const Occurrence& occ) {
  assert(slot == 0 || slot == 1);
  std::deque<Occurrence>& mine = side_[slot];
  std::deque<Occurrence>& other = side_[1 - slot];

  switch (def_->mode) {
    case ConsumptionMode::kRecent:
      if (!other.empty()) Pair(other.back(), occ);
      mine.clear();
      mine.push_back(occ);
      break;
    case ConsumptionMode::kChronicle:
      if (!other.empty()) {
        Pair(other.front(), occ);
        other.pop_front();
      } else {
        mine.push_back(occ);
      }
      break;
    case ConsumptionMode::kContinuous:
      if (!other.empty()) {
        for (const Occurrence& partner : other) Pair(partner, occ);
        other.clear();
      } else {
        mine.push_back(occ);
      }
      break;
    case ConsumptionMode::kCumulative:
      if (!other.empty()) {
        FlatParamMap merged;
        Time start = occ.start;
        for (const Occurrence& partner : other) {
          merged = MergeParams(std::move(merged), partner.params);
          start = std::min(start, partner.start);
        }
        merged = MergeParams(std::move(merged), occ.params);
        other.clear();
        Emit(start, occ.end, std::move(merged), occ.source);
      } else {
        mine.push_back(occ);
      }
      break;
  }
}

// ------------------------------------------------------------------- SEQ

void SeqNode::Pair(const Occurrence& left, const Occurrence& right) {
  Emit(left.start, right.end, MergeParams(left.params, right.params),
       right.source);
}

void SeqNode::OnChild(int slot, const Occurrence& occ) {
  if (slot == 0) {
    if (def_->mode == ConsumptionMode::kRecent) lefts_.clear();
    lefts_.push_back(occ);
    return;
  }

  switch (def_->mode) {
    case ConsumptionMode::kRecent:
      if (!lefts_.empty() && StrictlyBefore(lefts_.back(), occ)) {
        Pair(lefts_.back(), occ);  // Initiator retained in recent mode.
      }
      break;
    case ConsumptionMode::kChronicle: {
      for (auto it = lefts_.begin(); it != lefts_.end(); ++it) {
        if (StrictlyBefore(*it, occ)) {
          Pair(*it, occ);
          lefts_.erase(it);
          break;
        }
      }
      break;
    }
    case ConsumptionMode::kContinuous: {
      std::deque<Occurrence> keep;
      for (const Occurrence& left : lefts_) {
        if (StrictlyBefore(left, occ)) {
          Pair(left, occ);
        } else {
          keep.push_back(left);
        }
      }
      lefts_.swap(keep);
      break;
    }
    case ConsumptionMode::kCumulative: {
      FlatParamMap merged;
      Time start = occ.start;
      bool any = false;
      std::deque<Occurrence> keep;
      for (const Occurrence& left : lefts_) {
        if (StrictlyBefore(left, occ)) {
          merged = MergeParams(std::move(merged), left.params);
          start = std::min(start, left.start);
          any = true;
        } else {
          keep.push_back(left);
        }
      }
      if (any) {
        lefts_.swap(keep);
        merged = MergeParams(std::move(merged), occ.params);
        Emit(start, occ.end, std::move(merged), occ.source);
      }
      break;
    }
  }
}

// ------------------------------------------------------------------- NOT

void NotNode::OnChild(int slot, const Occurrence& occ) {
  switch (slot) {
    case 0:  // Initiator.
      if (def_->mode == ConsumptionMode::kRecent) windows_.clear();
      windows_.push_back(occ);
      break;
    case 1:  // Middle: every open window now contains a B.
      windows_.clear();
      break;
    case 2: {  // Terminator.
      switch (def_->mode) {
        case ConsumptionMode::kRecent:
          if (!windows_.empty() && StrictlyBefore(windows_.back(), occ)) {
            const Occurrence& a = windows_.back();
            Emit(a.start, occ.end, MergeParams(a.params, occ.params),
                 occ.source);
          }
          break;
        case ConsumptionMode::kChronicle:
          if (!windows_.empty() && StrictlyBefore(windows_.front(), occ)) {
            const Occurrence a = windows_.front();
            windows_.pop_front();
            Emit(a.start, occ.end, MergeParams(a.params, occ.params),
                 occ.source);
          }
          break;
        case ConsumptionMode::kContinuous:
          for (const Occurrence& a : windows_) {
            if (StrictlyBefore(a, occ)) {
              Emit(a.start, occ.end, MergeParams(a.params, occ.params),
                   occ.source);
            }
          }
          windows_.clear();
          break;
        case ConsumptionMode::kCumulative: {
          FlatParamMap merged;
          Time start = occ.start;
          bool any = false;
          for (const Occurrence& a : windows_) {
            if (StrictlyBefore(a, occ)) {
              merged = MergeParams(std::move(merged), a.params);
              start = std::min(start, a.start);
              any = true;
            }
          }
          windows_.clear();
          if (any) {
            merged = MergeParams(std::move(merged), occ.params);
            Emit(start, occ.end, std::move(merged), occ.source);
          }
          break;
        }
      }
      break;
    }
    default:
      break;
  }
}

// ------------------------------------------------------------------ PLUS

void PlusNode::OnChild(int slot, const Occurrence& occ) {
  (void)slot;
  const Time when = occ.end + def_->duration;
  const TimerId id = ctx_->ScheduleTimer(
      when, [this](TimerId timer_id, Time fire_time) {
        auto it = pending_.find(timer_id);
        if (it == pending_.end()) return;
        const Occurrence init = std::move(it->second);
        pending_.erase(it);
        Emit(init.start, fire_time, init.params, id_);
      });
  pending_.emplace(id, occ);
}

int PlusNode::CancelMatching(const FlatParamMap& match) {
  int cancelled = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.params.ContainsAll(match)) {
      ctx_->CancelTimer(it->first);
      it = pending_.erase(it);
      ++cancelled;
    } else {
      ++it;
    }
  }
  return cancelled;
}

// ------------------------------------------------------------- APERIODIC

void AperiodicNode::EmitMiddle(const Window& w, const Occurrence& middle) {
  Emit(w.init.start, middle.end, MergeParams(w.init.params, middle.params),
       middle.source);
}

void AperiodicNode::EmitStarClose(const Window& w, const Occurrence& term) {
  FlatParamMap params = MergeParams(w.init.params, w.accumulated);
  params = MergeParams(std::move(params), term.params);
  params.Set(ctx_->symbols().Intern("_count"), Value(w.count));
  Emit(w.init.start, term.end, std::move(params), term.source);
}

void AperiodicNode::OnChild(int slot, const Occurrence& occ) {
  switch (slot) {
    case 0:  // Initiator opens a window.
      if (def_->mode == ConsumptionMode::kRecent) windows_.clear();
      windows_.push_back(Window{occ, {}, 0});
      break;
    case 1:  // Middle.
      if (windows_.empty()) return;
      if (star_) {
        // Accumulate into every open window; emission happens at close.
        for (Window& w : windows_) {
          if (!StrictlyBefore(w.init, occ)) continue;
          w.accumulated = MergeParams(std::move(w.accumulated), occ.params);
          ++w.count;
        }
        return;
      }
      switch (def_->mode) {
        case ConsumptionMode::kRecent:
          if (StrictlyBefore(windows_.back().init, occ)) {
            EmitMiddle(windows_.back(), occ);
          }
          break;
        case ConsumptionMode::kChronicle:
          if (StrictlyBefore(windows_.front().init, occ)) {
            EmitMiddle(windows_.front(), occ);
          }
          break;
        case ConsumptionMode::kContinuous:
        case ConsumptionMode::kCumulative: {
          if (def_->mode == ConsumptionMode::kContinuous) {
            for (const Window& w : windows_) {
              if (StrictlyBefore(w.init, occ)) EmitMiddle(w, occ);
            }
          } else {
            FlatParamMap merged;
            Time start = occ.start;
            bool any = false;
            for (const Window& w : windows_) {
              if (!StrictlyBefore(w.init, occ)) continue;
              merged = MergeParams(std::move(merged), w.init.params);
              start = std::min(start, w.init.start);
              any = true;
            }
            if (any) {
              merged = MergeParams(std::move(merged), occ.params);
              Emit(start, occ.end, std::move(merged), occ.source);
            }
          }
          break;
        }
      }
      break;
    case 2: {  // Terminator closes window(s).
      if (windows_.empty()) return;
      switch (def_->mode) {
        case ConsumptionMode::kRecent:
          if (star_) EmitStarClose(windows_.back(), occ);
          windows_.clear();
          break;
        case ConsumptionMode::kChronicle:
          if (star_) EmitStarClose(windows_.front(), occ);
          windows_.pop_front();
          break;
        case ConsumptionMode::kContinuous:
        case ConsumptionMode::kCumulative:
          if (star_) {
            for (const Window& w : windows_) EmitStarClose(w, occ);
          }
          windows_.clear();
          break;
      }
      break;
    }
    default:
      break;
  }
}

// -------------------------------------------------------------- PERIODIC

PeriodicNode::~PeriodicNode() {
  if (ctx_ == nullptr) return;
  for (Window& w : windows_) {
    if (w.timer != 0) ctx_->CancelTimer(w.timer);
  }
}

void PeriodicNode::OpenWindow(const Occurrence& init) {
  Window w;
  w.init = init;
  w.key = next_key_++;
  const uint64_t key = w.key;
  w.timer = ctx_->ScheduleTimer(init.end + def_->duration,
                                [this, key](TimerId, Time fire_time) {
                                  OnTick(key, fire_time);
                                });
  windows_.push_back(std::move(w));
}

void PeriodicNode::CloseWindow(size_t index, const Occurrence& term) {
  Window& w = windows_[index];
  if (w.timer != 0) ctx_->CancelTimer(w.timer);
  if (star_) {
    FlatParamMap params = MergeParams(w.init.params, term.params);
    params.Set(ctx_->symbols().Intern("_ticks"), Value(w.ticks));
    Emit(w.init.start, term.end, std::move(params), term.source);
  }
  windows_.erase(windows_.begin() + static_cast<ptrdiff_t>(index));
}

void PeriodicNode::OnTick(uint64_t key, Time fire_time) {
  for (Window& w : windows_) {
    if (w.key != key) continue;
    ++w.ticks;
    if (!star_) {
      Emit(fire_time, fire_time, w.init.params, id_);
    }
    w.timer = ctx_->ScheduleTimer(fire_time + def_->duration,
                                  [this, key](TimerId, Time t) {
                                    OnTick(key, t);
                                  });
    return;
  }
}

void PeriodicNode::Deactivate() {
  if (ctx_ != nullptr) {
    for (Window& w : windows_) {
      if (w.timer != 0) ctx_->CancelTimer(w.timer);
    }
  }
  windows_.clear();
}

void PeriodicNode::OnChild(int slot, const Occurrence& occ) {
  if (slot == 0) {  // Initiator.
    if (def_->mode == ConsumptionMode::kRecent) {
      while (!windows_.empty()) {
        if (windows_.back().timer != 0) ctx_->CancelTimer(windows_.back().timer);
        windows_.pop_back();
      }
    }
    OpenWindow(occ);
    return;
  }
  // Terminator.
  if (windows_.empty()) return;
  switch (def_->mode) {
    case ConsumptionMode::kRecent:
      CloseWindow(windows_.size() - 1, occ);
      break;
    case ConsumptionMode::kChronicle:
      CloseWindow(0, occ);
      break;
    case ConsumptionMode::kContinuous:
    case ConsumptionMode::kCumulative:
      while (!windows_.empty()) CloseWindow(windows_.size() - 1, occ);
      break;
  }
}

// -------------------------------------------------------------- ABSOLUTE

void AbsoluteNode::Initialize(NodeContext* ctx) {
  OperatorNode::Initialize(ctx);
  ScheduleNext(ctx->Now());
}

void AbsoluteNode::ScheduleNext(Time after) {
  if (dead_) return;
  const std::optional<Time> next = def_->pattern.NextMatchAfter(after);
  if (!next.has_value()) return;  // Pattern exhausted (concrete past date).
  ctx_->ScheduleTimer(*next, [this](TimerId, Time fire_time) {
    if (dead_) return;
    Emit(fire_time, fire_time, {}, id_);
    ScheduleNext(fire_time);
  });
}

// --------------------------------------------------------------- Factory

std::unique_ptr<OperatorNode> MakeOperatorNode(EventId id,
                                               const EventDef* def) {
  switch (def->kind) {
    case EventKind::kPrimitive:
      return std::make_unique<PrimitiveNode>(id, def);
    case EventKind::kFilter:
      return std::make_unique<FilterNode>(id, def);
    case EventKind::kAnd:
      return std::make_unique<AndNode>(id, def);
    case EventKind::kOr:
      return std::make_unique<OrNode>(id, def);
    case EventKind::kSeq:
      return std::make_unique<SeqNode>(id, def);
    case EventKind::kNot:
      return std::make_unique<NotNode>(id, def);
    case EventKind::kPlus:
      return std::make_unique<PlusNode>(id, def);
    case EventKind::kAperiodic:
    case EventKind::kAperiodicStar:
      return std::make_unique<AperiodicNode>(id, def);
    case EventKind::kPeriodic:
    case EventKind::kPeriodicStar:
      return std::make_unique<PeriodicNode>(id, def);
    case EventKind::kAbsolute:
      return std::make_unique<AbsoluteNode>(id, def);
  }
  return nullptr;
}

}  // namespace sentinel
