#ifndef SENTINELPP_EVENT_CONSUMPTION_H_
#define SENTINELPP_EVENT_CONSUMPTION_H_

namespace sentinel {

/// \brief Snoop parameter contexts: which initiator occurrences pair with a
/// detecting/terminating occurrence, and which are consumed afterwards.
///
/// - kRecent:     only the most recent initiator participates; it stays
///                usable until a newer initiator replaces it.
/// - kChronicle:  the oldest unconsumed initiator participates and is
///                consumed (FIFO pairing).
/// - kContinuous: every open initiator participates; one detection is
///                emitted per initiator and all are consumed.
/// - kCumulative: all open initiators are merged into a single detection
///                (parameters accumulated oldest-to-newest) and consumed.
///
/// Access-control rules in the paper rely on Recent (state-like constraints:
/// "the latest activation") and Chronicle (transaction-like pairing); the
/// detector implements all four for fidelity to Sentinel.
enum class ConsumptionMode : int {
  kRecent = 0,
  kChronicle = 1,
  kContinuous = 2,
  kCumulative = 3,
};

const char* ConsumptionModeToString(ConsumptionMode mode);

}  // namespace sentinel

#endif  // SENTINELPP_EVENT_CONSUMPTION_H_
