#include "event/event_detector.h"

#include <cassert>

namespace sentinel {

EventDetector::EventDetector(Clock* clock) : clock_(clock) {
  assert(clock != nullptr);
}

EventDetector::~EventDetector() = default;

Result<EventId> EventDetector::Install(EventDef def) {
  SENTINEL_ASSIGN_OR_RETURN(id, registry_.Register(std::move(def)));
  const EventDef* stored = &registry_.def(id);
  nodes_.push_back(MakeOperatorNode(id, stored));
  parents_.emplace_back();
  subscribers_.emplace_back();
  occ_counts_.push_back(0);
  deactivated_.push_back(false);
  // Single-key string-equality filters go into the hash index instead of
  // the linear parent list (see filter_index_).
  const bool indexable_filter =
      stored->kind == EventKind::kFilter && stored->filter.size() == 1 &&
      stored->filter.begin()->second.is_string();
  if (indexable_filter) {
    const auto& [key, value] = *stored->filter.begin();
    filter_index_[stored->children[0]][key][value.AsString()].push_back(
        static_cast<int>(id));
  } else {
    for (size_t slot = 0; slot < stored->children.size(); ++slot) {
      parents_[stored->children[slot]].push_back(
          {static_cast<int>(id), static_cast<int>(slot)});
    }
  }
  nodes_.back()->Initialize(this);
  return id;
}

Result<EventId> EventDetector::DefinePrimitive(const std::string& name) {
  EventDef def;
  def.kind = EventKind::kPrimitive;
  def.name = name;
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefineFilter(const std::string& name,
                                            EventId base, ParamMap equals) {
  EventDef def;
  def.kind = EventKind::kFilter;
  def.name = name;
  def.children = {base};
  def.filter = std::move(equals);
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefineAnd(const std::string& name, EventId a,
                                         EventId b, ConsumptionMode mode) {
  EventDef def;
  def.kind = EventKind::kAnd;
  def.name = name;
  def.children = {a, b};
  def.mode = mode;
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefineOr(const std::string& name,
                                        std::vector<EventId> alternatives) {
  if (alternatives.empty()) {
    return Status::InvalidArgument("OR needs at least one alternative: " +
                                   name);
  }
  EventDef def;
  def.kind = EventKind::kOr;
  def.name = name;
  def.children = std::move(alternatives);
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefineSeq(const std::string& name,
                                         EventId first, EventId second,
                                         ConsumptionMode mode) {
  EventDef def;
  def.kind = EventKind::kSeq;
  def.name = name;
  def.children = {first, second};
  def.mode = mode;
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefineNot(const std::string& name,
                                         EventId initiator, EventId middle,
                                         EventId terminator,
                                         ConsumptionMode mode) {
  EventDef def;
  def.kind = EventKind::kNot;
  def.name = name;
  def.children = {initiator, middle, terminator};
  def.mode = mode;
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefinePlus(const std::string& name,
                                          EventId base, Duration delta) {
  if (delta <= 0) {
    return Status::InvalidArgument("PLUS duration must be positive: " + name);
  }
  EventDef def;
  def.kind = EventKind::kPlus;
  def.name = name;
  def.children = {base};
  def.duration = delta;
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefineAperiodic(const std::string& name,
                                               EventId initiator,
                                               EventId middle,
                                               EventId terminator,
                                               ConsumptionMode mode) {
  EventDef def;
  def.kind = EventKind::kAperiodic;
  def.name = name;
  def.children = {initiator, middle, terminator};
  def.mode = mode;
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefineAperiodicStar(const std::string& name,
                                                   EventId initiator,
                                                   EventId middle,
                                                   EventId terminator,
                                                   ConsumptionMode mode) {
  EventDef def;
  def.kind = EventKind::kAperiodicStar;
  def.name = name;
  def.children = {initiator, middle, terminator};
  def.mode = mode;
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefinePeriodic(const std::string& name,
                                              EventId initiator, Duration tau,
                                              EventId terminator,
                                              ConsumptionMode mode) {
  if (tau <= 0) {
    return Status::InvalidArgument("PERIODIC tau must be positive: " + name);
  }
  EventDef def;
  def.kind = EventKind::kPeriodic;
  def.name = name;
  def.children = {initiator, terminator};
  def.duration = tau;
  def.mode = mode;
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefinePeriodicStar(const std::string& name,
                                                  EventId initiator,
                                                  Duration tau,
                                                  EventId terminator,
                                                  ConsumptionMode mode) {
  if (tau <= 0) {
    return Status::InvalidArgument("PERIODIC* tau must be positive: " + name);
  }
  EventDef def;
  def.kind = EventKind::kPeriodicStar;
  def.name = name;
  def.children = {initiator, terminator};
  def.duration = tau;
  def.mode = mode;
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefineAbsolute(const std::string& name,
                                              const TimePattern& pattern) {
  EventDef def;
  def.kind = EventKind::kAbsolute;
  def.name = name;
  def.pattern = pattern;
  return Install(std::move(def));
}

SubscriptionId EventDetector::Subscribe(EventId event,
                                        Subscriber subscriber) {
  const SubscriptionId id = next_sub_id_++;
  subscribers_[event].push_back({id, std::move(subscriber)});
  return id;
}

void EventDetector::Unsubscribe(EventId event, SubscriptionId id) {
  auto& subs = subscribers_[event];
  for (auto it = subs.begin(); it != subs.end(); ++it) {
    if (it->id == id) {
      subs.erase(it);
      return;
    }
  }
}

Status EventDetector::Raise(EventId event, ParamMap params) {
  if (event < 0 || event >= registry_.size()) {
    return Status::InvalidArgument("unknown event id");
  }
  if (registry_.def(event).kind != EventKind::kPrimitive) {
    return Status::InvalidArgument("only primitive events can be raised: " +
                                   registry_.name(event));
  }
  if (deactivated_[event]) {
    return Status::FailedPrecondition("event is deactivated: " +
                                      registry_.name(event));
  }
  Occurrence occ;
  occ.event = event;
  occ.source = event;
  occ.start = occ.end = clock_->Now();
  occ.seq = NextSeq();
  occ.params = std::move(params);
  queue_.push_back(std::move(occ));
  Drain();
  return Status::OK();
}

Status EventDetector::RaiseByName(const std::string& name, ParamMap params) {
  SENTINEL_ASSIGN_OR_RETURN(id, registry_.Lookup(name));
  return Raise(id, std::move(params));
}

void EventDetector::EmitDetected(Occurrence occ) {
  queue_.push_back(std::move(occ));
  Drain();
}

void EventDetector::Drain() {
  if (draining_) return;  // Re-entrant emit joins the in-progress drain.
  draining_ = true;
  while (!queue_.empty()) {
    const Occurrence occ = std::move(queue_.front());
    queue_.pop_front();
    Dispatch(occ);
  }
  draining_ = false;
  if (quiescent_callback_) quiescent_callback_();
}

void EventDetector::Dispatch(const Occurrence& occ) {
  if (deactivated_[occ.event]) return;  // Orphaned by regeneration.
  ++occ_counts_[occ.event];
  ++total_occurrences_;
  // Parents first (detection propagates up the DAG), then subscribers.
  // Both iterate over index snapshots so that definitions/subscriptions
  // added mid-dispatch do not invalidate iteration.
  const auto parent_links = parents_[occ.event];
  for (const auto& [parent, slot] : parent_links) {
    if (deactivated_[parent]) continue;
    nodes_[parent]->OnChild(slot, occ);
  }
  // Indexed single-key filters: direct lookup by parameter value instead
  // of scanning every per-role/per-user filter node. Iterating the maps by
  // reference is safe against mid-dispatch definitions (node-based maps
  // never invalidate live iterators on insert); only the small match
  // vector is snapshotted because a push_back could reallocate it.
  auto index_it = filter_index_.find(occ.event);
  if (index_it != filter_index_.end()) {
    for (const auto& [key, by_value] : index_it->second) {
      auto param_it = occ.params.find(key);
      if (param_it == occ.params.end() || !param_it->second.is_string()) {
        continue;
      }
      auto match_it = by_value.find(param_it->second.AsString());
      if (match_it == by_value.end()) continue;
      const std::vector<int> matches = match_it->second;
      for (int filter : matches) {
        if (deactivated_[filter]) continue;
        nodes_[filter]->OnChild(0, occ);
      }
    }
  }
  // Copy subscriber list: rule actions may subscribe/unsubscribe.
  const auto subs = subscribers_[occ.event];
  for (const auto& entry : subs) {
    entry.fn(occ);
  }
}

void EventDetector::AdvanceTo(Time t, SimulatedClock* clock) {
  assert(clock == clock_ && "AdvanceTo requires the detector's own clock");
  for (;;) {
    const std::optional<Time> next = timers_.NextFireTime();
    if (!next.has_value() || *next > t) break;
    clock->SetTime(*next);
    timers_.FireDueOne(*next);  // Callbacks emit; Drain runs inside.
  }
  clock->SetTime(t);
}

void EventDetector::PollTimers() {
  const Time now = clock_->Now();
  while (timers_.FireDueOne(now)) {
  }
}

Result<int> EventDetector::CancelPendingPlus(EventId plus_event,
                                             const ParamMap& match) {
  if (plus_event < 0 || plus_event >= registry_.size()) {
    return Status::InvalidArgument("unknown event id");
  }
  if (registry_.def(plus_event).kind != EventKind::kPlus) {
    return Status::InvalidArgument("not a PLUS event: " +
                                   registry_.name(plus_event));
  }
  auto* node = static_cast<PlusNode*>(nodes_[plus_event].get());
  return node->CancelMatching(match);
}

Status EventDetector::DeactivateEvent(EventId event) {
  if (event < 0 || event >= registry_.size()) {
    return Status::InvalidArgument("unknown event id");
  }
  if (!deactivated_[event]) {
    deactivated_[event] = true;
    nodes_[event]->Deactivate();
  }
  return Status::OK();
}

TimerId EventDetector::ScheduleTimer(Time when, TimerService::Callback cb) {
  return timers_.Schedule(when, std::move(cb));
}

void EventDetector::CancelTimer(TimerId id) { timers_.Cancel(id); }

}  // namespace sentinel
