#include "event/event_detector.h"

#include <algorithm>
#include <cassert>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace sentinel {

EventDetector::EventDetector(Clock* clock, SymbolTable* symbols,
                             telemetry::Registry* metrics,
                             telemetry::TraceCollector* tracer)
    : clock_(clock),
      owned_symbols_(symbols == nullptr ? std::make_unique<SymbolTable>()
                                        : nullptr),
      symbols_(symbols == nullptr ? owned_symbols_.get() : symbols),
      tracer_(tracer) {
  assert(clock != nullptr);
  registry_.set_symbols(symbols_);
  if (metrics != nullptr) {
    raises_counter_ = metrics->AddCounter(
        "events_raised_total", "primitive event occurrences raised");
    occurrences_counter_ = metrics->AddCounter(
        "event_occurrences_total",
        "occurrences dispatched, primitive and composite");
    pending_timers_gauge_ = metrics->AddGauge(
        "pending_timers", "temporal-event timers waiting to fire");
  }
}

EventDetector::~EventDetector() = default;

Result<EventId> EventDetector::Install(EventDef def) {
  SENTINEL_ASSIGN_OR_RETURN(id, registry_.Register(std::move(def)));
  const EventDef* stored = &registry_.def(id);
  nodes_.push_back(MakeOperatorNode(id, stored));
  parents_.emplace_back();
  subscribers_.emplace_back();
  occ_counts_.push_back(0);
  deactivated_.push_back(false);
  filter_index_.emplace_back();
  // Single-key name-equality filters (values interned to symbols at
  // definition time) go into the hash index instead of the linear parent
  // list (see filter_index_).
  const bool indexable_filter =
      stored->kind == EventKind::kFilter && stored->filter.size() == 1 &&
      stored->filter.begin()->value.is_symbol();
  if (indexable_filter) {
    const Symbol key = stored->filter.begin()->key;
    const uint32_t value_id = stored->filter.begin()->value.AsSymbol().id();
    std::vector<FilterKeyBucket>& buckets = filter_index_[stored->children[0]];
    const std::string& key_name = symbols_->NameOf(key);
    auto bucket_it = std::find_if(
        buckets.begin(), buckets.end(),
        [&](const FilterKeyBucket& b) { return b.key == key; });
    if (bucket_it == buckets.end()) {
      // Keep buckets ordered by key name so dispatch order matches the
      // seed's ordered-map behaviour regardless of intern order.
      bucket_it = buckets.insert(
          std::upper_bound(buckets.begin(), buckets.end(), key_name,
                           [](const std::string& name,
                              const FilterKeyBucket& b) {
                             return name < b.key_name;
                           }),
          FilterKeyBucket{key, key_name, {}});
    }
    bucket_it->by_value[value_id].push_back(static_cast<int>(id));
  } else {
    for (size_t slot = 0; slot < stored->children.size(); ++slot) {
      parents_[stored->children[slot]].push_back(
          {static_cast<int>(id), static_cast<int>(slot)});
    }
  }
  nodes_.back()->Initialize(this);
  return id;
}

Result<EventId> EventDetector::DefinePrimitive(const std::string& name) {
  EventDef def;
  def.kind = EventKind::kPrimitive;
  def.name = name;
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefineFilter(const std::string& name,
                                            EventId base, ParamMap equals) {
  EventDef def;
  def.kind = EventKind::kFilter;
  def.name = name;
  def.children = {base};
  def.filter = InternParams(*symbols_, equals);
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefineAnd(const std::string& name, EventId a,
                                         EventId b, ConsumptionMode mode) {
  EventDef def;
  def.kind = EventKind::kAnd;
  def.name = name;
  def.children = {a, b};
  def.mode = mode;
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefineOr(const std::string& name,
                                        std::vector<EventId> alternatives) {
  if (alternatives.empty()) {
    return Status::InvalidArgument("OR needs at least one alternative: " +
                                   name);
  }
  EventDef def;
  def.kind = EventKind::kOr;
  def.name = name;
  def.children = std::move(alternatives);
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefineSeq(const std::string& name,
                                         EventId first, EventId second,
                                         ConsumptionMode mode) {
  EventDef def;
  def.kind = EventKind::kSeq;
  def.name = name;
  def.children = {first, second};
  def.mode = mode;
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefineNot(const std::string& name,
                                         EventId initiator, EventId middle,
                                         EventId terminator,
                                         ConsumptionMode mode) {
  EventDef def;
  def.kind = EventKind::kNot;
  def.name = name;
  def.children = {initiator, middle, terminator};
  def.mode = mode;
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefinePlus(const std::string& name,
                                          EventId base, Duration delta) {
  if (delta <= 0) {
    return Status::InvalidArgument("PLUS duration must be positive: " + name);
  }
  EventDef def;
  def.kind = EventKind::kPlus;
  def.name = name;
  def.children = {base};
  def.duration = delta;
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefineAperiodic(const std::string& name,
                                               EventId initiator,
                                               EventId middle,
                                               EventId terminator,
                                               ConsumptionMode mode) {
  EventDef def;
  def.kind = EventKind::kAperiodic;
  def.name = name;
  def.children = {initiator, middle, terminator};
  def.mode = mode;
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefineAperiodicStar(const std::string& name,
                                                   EventId initiator,
                                                   EventId middle,
                                                   EventId terminator,
                                                   ConsumptionMode mode) {
  EventDef def;
  def.kind = EventKind::kAperiodicStar;
  def.name = name;
  def.children = {initiator, middle, terminator};
  def.mode = mode;
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefinePeriodic(const std::string& name,
                                              EventId initiator, Duration tau,
                                              EventId terminator,
                                              ConsumptionMode mode) {
  if (tau <= 0) {
    return Status::InvalidArgument("PERIODIC tau must be positive: " + name);
  }
  EventDef def;
  def.kind = EventKind::kPeriodic;
  def.name = name;
  def.children = {initiator, terminator};
  def.duration = tau;
  def.mode = mode;
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefinePeriodicStar(const std::string& name,
                                                  EventId initiator,
                                                  Duration tau,
                                                  EventId terminator,
                                                  ConsumptionMode mode) {
  if (tau <= 0) {
    return Status::InvalidArgument("PERIODIC* tau must be positive: " + name);
  }
  EventDef def;
  def.kind = EventKind::kPeriodicStar;
  def.name = name;
  def.children = {initiator, terminator};
  def.duration = tau;
  def.mode = mode;
  return Install(std::move(def));
}

Result<EventId> EventDetector::DefineAbsolute(const std::string& name,
                                              const TimePattern& pattern) {
  EventDef def;
  def.kind = EventKind::kAbsolute;
  def.name = name;
  def.pattern = pattern;
  return Install(std::move(def));
}

SubscriptionId EventDetector::Subscribe(EventId event,
                                        Subscriber subscriber) {
  const SubscriptionId id = next_sub_id_++;
  subscribers_[event].push_back({id, std::move(subscriber)});
  return id;
}

size_t EventDetector::ConsumerCount(EventId event) const {
  if (event < 0) return 0;
  const size_t id = static_cast<size_t>(event);
  size_t count = 0;
  if (id < subscribers_.size()) count += subscribers_[id].size();
  if (id < parents_.size()) count += parents_[id].size();
  if (id < filter_index_.size()) {
    for (const FilterKeyBucket& bucket : filter_index_[id]) {
      for (const auto& [value, nodes] : bucket.by_value) {
        count += nodes.size();
      }
    }
  }
  return count;
}

void EventDetector::Unsubscribe(EventId event, SubscriptionId id) {
  auto& subs = subscribers_[event];
  for (auto it = subs.begin(); it != subs.end(); ++it) {
    if (it->id == id) {
      subs.erase(it);
      return;
    }
  }
}

Status EventDetector::Raise(EventId event, ParamMap params) {
  return RaiseInterned(event, InternParams(*symbols_, params));
}

Status EventDetector::RaiseInterned(EventId event, FlatParamMap params) {
  if (event < 0 || event >= registry_.size()) {
    return Status::InvalidArgument("unknown event id");
  }
  if (registry_.def(event).kind != EventKind::kPrimitive) {
    return Status::InvalidArgument("only primitive events can be raised: " +
                                   registry_.name(event));
  }
  if (deactivated_[event]) {
    return Status::FailedPrecondition("event is deactivated: " +
                                      registry_.name(event));
  }
  // Invariant: occurrence params never carry raw strings — name-valued
  // entries are symbols, so downstream matching is integer-only.
  params.InternStringValues(*symbols_);
  Occurrence occ;
  occ.event = event;
  occ.source = event;
  occ.start = occ.end = clock_->Now();
  occ.seq = NextSeq();
  occ.params = std::move(params);
  if (raises_counter_) raises_counter_->Inc();
  queue_.push_back(std::move(occ));
  Drain();
  return Status::OK();
}

Status EventDetector::RaiseByName(const std::string& name, ParamMap params) {
  SENTINEL_ASSIGN_OR_RETURN(id, registry_.Lookup(name));
  return Raise(id, std::move(params));
}

void EventDetector::EmitDetected(Occurrence occ) {
  queue_.push_back(std::move(occ));
  Drain();
}

void EventDetector::Drain() {
  if (draining_) return;  // Re-entrant emit joins the in-progress drain.
  draining_ = true;
  while (!queue_.empty()) {
    const Occurrence occ = std::move(queue_.front());
    queue_.pop_front();
    Dispatch(occ);
  }
  draining_ = false;
  if (quiescent_callback_) quiescent_callback_();
}

void EventDetector::Dispatch(const Occurrence& occ) {
  if (deactivated_[occ.event]) return;  // Orphaned by regeneration.
  ++occ_counts_[occ.event];
  ++total_occurrences_;
  if (occurrences_counter_) occurrences_counter_->Inc();
  if (tracer_ != nullptr && tracer_->active()) {
    tracer_->AddEventStep(registry_.name(occ.event));
  }
  // Parents first (detection propagates up the DAG), then subscribers.
  // Both iterate over index snapshots so that definitions/subscriptions
  // added mid-dispatch do not invalidate iteration.
  const auto parent_links = parents_[occ.event];
  for (const auto& [parent, slot] : parent_links) {
    if (deactivated_[parent]) continue;
    nodes_[parent]->OnChild(slot, occ);
  }
  // Indexed single-key filters: direct lookup by interned parameter value
  // instead of scanning every per-role/per-user filter node. Buckets are
  // re-fetched by index each iteration because a mid-dispatch definition
  // may reallocate the index vectors; the small match vector is snapshotted
  // before OnChild for the same reason.
  for (size_t bi = 0; bi < filter_index_[occ.event].size(); ++bi) {
    const FilterKeyBucket& bucket = filter_index_[occ.event][bi];
    const Value* param = occ.params.Find(bucket.key);
    if (param == nullptr || !param->is_symbol()) continue;
    auto match_it = bucket.by_value.find(param->AsSymbol().id());
    if (match_it == bucket.by_value.end()) continue;
    const std::vector<int> matches = match_it->second;
    for (int filter : matches) {
      if (deactivated_[filter]) continue;
      nodes_[filter]->OnChild(0, occ);
    }
  }
  // Copy subscriber list: rule actions may subscribe/unsubscribe.
  const auto subs = subscribers_[occ.event];
  for (const auto& entry : subs) {
    entry.fn(occ);
  }
}

void EventDetector::AdvanceTo(Time t, SimulatedClock* clock) {
  assert(clock == clock_ && "AdvanceTo requires the detector's own clock");
  for (;;) {
    const std::optional<Time> next = timers_.NextFireTime();
    if (!next.has_value() || *next > t) break;
    clock->SetTime(*next);
    timers_.FireDueOne(*next);  // Callbacks emit; Drain runs inside.
  }
  clock->SetTime(t);
  UpdateTimerGauge();
}

void EventDetector::PollTimers() {
  const Time now = clock_->Now();
  while (timers_.FireDueOne(now)) {
  }
  UpdateTimerGauge();
}

Result<int> EventDetector::CancelPendingPlus(EventId plus_event,
                                             const ParamMap& match) {
  return CancelPendingPlusInterned(plus_event, InternParams(*symbols_, match));
}

Result<int> EventDetector::CancelPendingPlusInterned(
    EventId plus_event, const FlatParamMap& match) {
  if (plus_event < 0 || plus_event >= registry_.size()) {
    return Status::InvalidArgument("unknown event id");
  }
  if (registry_.def(plus_event).kind != EventKind::kPlus) {
    return Status::InvalidArgument("not a PLUS event: " +
                                   registry_.name(plus_event));
  }
  auto* node = static_cast<PlusNode*>(nodes_[plus_event].get());
  return node->CancelMatching(match);
}

Status EventDetector::DeactivateEvent(EventId event) {
  if (event < 0 || event >= registry_.size()) {
    return Status::InvalidArgument("unknown event id");
  }
  if (!deactivated_[event]) {
    deactivated_[event] = true;
    nodes_[event]->Deactivate();
  }
  return Status::OK();
}

TimerId EventDetector::ScheduleTimer(Time when, TimerService::Callback cb) {
  const TimerId id = timers_.Schedule(when, std::move(cb));
  UpdateTimerGauge();
  return id;
}

void EventDetector::CancelTimer(TimerId id) {
  timers_.Cancel(id);
  UpdateTimerGauge();
}

void EventDetector::UpdateTimerGauge() {
  if (pending_timers_gauge_) {
    pending_timers_gauge_->Set(static_cast<int64_t>(timers_.pending_count()));
  }
}

}  // namespace sentinel
