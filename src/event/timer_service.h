#ifndef SENTINELPP_EVENT_TIMER_SERVICE_H_
#define SENTINELPP_EVENT_TIMER_SERVICE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/value.h"

namespace sentinel {

/// Handle to a scheduled timer; used to cancel it.
using TimerId = uint64_t;

/// \brief Min-heap of one-shot timers keyed by fire time.
///
/// PLUS, PERIODIC and absolute temporal events schedule timers here. The
/// service does not read a clock: the owner (EventDetector) drains due
/// timers as its clock advances, so firing order is fully deterministic —
/// by (fire_time, timer_id) — under simulated time. Cancellation is lazy
/// (tombstone set) to keep cancel O(1).
class TimerService {
 public:
  using Callback = std::function<void(TimerId, Time fire_time)>;

  TimerService() = default;

  TimerService(const TimerService&) = delete;
  TimerService& operator=(const TimerService&) = delete;

  /// Schedules `cb` to fire at absolute time `when`. Returns the timer id.
  TimerId Schedule(Time when, Callback cb);

  /// Cancels a pending timer; no-op if it already fired or was cancelled.
  void Cancel(TimerId id);

  /// Fire time of the earliest pending (non-cancelled) timer, or nullopt.
  std::optional<Time> NextFireTime();

  /// Pops and runs the earliest timer if its fire time is <= `now`.
  /// Returns true when a timer fired (callers loop until false).
  bool FireDueOne(Time now);

  /// Number of pending (non-cancelled) timers.
  size_t pending_count() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Entry {
    Time when;
    TimerId id;
    // Min-heap on (when, id): priority_queue is a max-heap, so invert.
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  void PruneCancelledTop();

  std::priority_queue<Entry> heap_;
  std::unordered_map<TimerId, Callback> callbacks_;
  std::unordered_set<TimerId> cancelled_;
  TimerId next_id_ = 1;
};

}  // namespace sentinel

#endif  // SENTINELPP_EVENT_TIMER_SERVICE_H_
