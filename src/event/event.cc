#include "event/event.h"

#include <sstream>

#include "common/calendar.h"

namespace sentinel {

std::string OccurrenceToString(const Occurrence& occ, const std::string& name,
                               const SymbolTable& symbols) {
  std::ostringstream os;
  os << name << '[' << FormatTime(occ.start);
  if (occ.end != occ.start) os << " .. " << FormatTime(occ.end);
  os << ']' << occ.params.ToString(symbols);
  return os.str();
}

}  // namespace sentinel
