// sentinelpp-replay — policy-change shadow evaluation over a captured
// audit stream.
//
// Loads a JSONL decision capture (as written by the audit exporter) plus a
// candidate policy file, re-executes the decision sequence through fresh
// engines (one per originating shard, time-warped through the simulated
// clock so temporal rules fire as they did at capture time), and reports
// the verdict diff: what the candidate policy would have decided
// differently, with per-rule attribution.
//
//   sentinelpp-replay --capture=decisions.jsonl --policy=candidate.acp
//                     [--json] [--parse-only] [--expect-zero-diffs]
//
// Exit status: 0 on success, 1 on load/replay failure, 3 when
// --expect-zero-diffs was given and the replay found verdict flips —
// scripts gate policy rollouts on that code.

#include <cstdio>
#include <cstring>
#include <string>

#include "audit/replay.h"
#include "core/policy_parser.h"

namespace {

bool StrFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string capture_path, policy_path;
  bool json = false, parse_only = false, expect_zero = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (StrFlag(arg, "--capture", &capture_path) ||
        StrFlag(arg, "--policy", &policy_path)) {
      continue;
    }
    if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--parse-only") == 0) {
      parse_only = true;
    } else if (std::strcmp(arg, "--expect-zero-diffs") == 0) {
      expect_zero = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    }
  }
  if (capture_path.empty() || (!parse_only && policy_path.empty())) {
    std::fprintf(stderr,
                 "usage: sentinelpp-replay --capture=FILE --policy=FILE.acp "
                 "[--json] [--parse-only] [--expect-zero-diffs]\n");
    return 2;
  }

  uint64_t parse_errors = 0;
  auto records =
      sentinel::audit::LoadCaptureFile(capture_path, &parse_errors);
  if (!records.ok()) {
    std::fprintf(stderr, "capture load failed: %s\n",
                 std::string(records.status().message()).c_str());
    return 1;
  }
  if (parse_only) {
    std::printf("records: %zu\nparse_errors: %llu\n", records->size(),
                static_cast<unsigned long long>(parse_errors));
    return parse_errors == 0 ? 0 : 1;
  }
  if (parse_errors > 0) {
    std::fprintf(stderr, "warning: %llu unparseable lines skipped\n",
                 static_cast<unsigned long long>(parse_errors));
  }

  auto policy = sentinel::PolicyParser::ParseFile(policy_path);
  if (!policy.ok()) {
    std::fprintf(stderr, "policy load failed: %s\n",
                 std::string(policy.status().message()).c_str());
    return 1;
  }

  auto report = sentinel::audit::ReplayCapture(*records, *policy);
  if (!report.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 std::string(report.status().message()).c_str());
    return 1;
  }

  if (json) {
    std::printf("%s\n", sentinel::audit::ReportToJson(*report).c_str());
  } else {
    std::printf("%s", sentinel::audit::ReportToText(*report).c_str());
  }
  if (expect_zero && report->flips() > 0) return 3;
  return 0;
}
