// policy_inspector — an administrator's tool for .acp policy files.
//
// Usage:  policy_inspector [<policy.acp>]
//
// Parses the policy (reads the built-in enterprise-XYZ policy when no file
// is given), runs the consistency checker (the paper's §5 work-in-progress
// mechanism), loads it into an engine, verifies the generated rule pool
// against the policy (§7's "the generated rules should be verified"), and
// prints the full OWTE rule listing.

#include <cstdio>
#include <string>

#include "common/calendar.h"
#include "common/clock.h"
#include "core/consistency.h"
#include "core/engine.h"
#include "core/policy_parser.h"

namespace {

using namespace sentinel;  // Example code; the library never does this.

constexpr const char* kDefaultPolicy = R"(
policy "enterprise-xyz"

role Clerk { permission: read(ledger) }
role PC { senior-of: Clerk  permission: write(purchase-order) }
role PM { senior-of: PC }
role AC { senior-of: Clerk  permission: write(approval) }
role AM { senior-of: AC }

ssd SoD1 { roles: PC, AC  n: 2 }

user alice { assign: PM }
user bob { assign: AC }
)";

}  // namespace

int main(int argc, char** argv) {
  Result<Policy> parsed = argc > 1 ? PolicyParser::ParseFile(argv[1])
                                   : PolicyParser::Parse(kDefaultPolicy);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const Policy& policy = *parsed;
  std::printf("policy \"%s\": %zu roles, %zu users, %zu SSD, %zu DSD, "
              "%zu directives\n\n",
              policy.name().c_str(), policy.roles().size(),
              policy.users().size(), policy.ssd_sets().size(),
              policy.dsd_sets().size(),
              policy.thresholds().size() + policy.audits().size());

  std::printf("== Consistency check ==\n");
  const auto issues = CheckPolicyConsistency(policy);
  if (issues.empty()) {
    std::printf("  no issues found\n");
  }
  for (const ConsistencyIssue& issue : issues) {
    std::printf("  %s\n", issue.ToString().c_str());
  }
  if (!NoErrors(issues)) {
    std::printf("policy has errors; refusing to load\n");
    return 1;
  }

  SimulatedClock clock(MakeTime(2026, 7, 6, 12, 0, 0));
  AuthorizationEngine engine(&clock);
  if (Status s = engine.LoadPolicy(policy); !s.ok()) {
    std::printf("load error: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("\n== Generated pool verification ==\n");
  const auto pool_issues = VerifyGeneratedPool(engine);
  if (pool_issues.empty()) {
    std::printf("  pool (%zu rules over %d events) matches the policy "
                "exactly\n",
                engine.rule_manager().rule_count(),
                engine.detector().registry().size());
  }
  for (const ConsistencyIssue& issue : pool_issues) {
    std::printf("  %s\n", issue.ToString().c_str());
  }

  std::printf("\n== OWTE rule listing ==\n\n%s",
              engine.rule_manager().DescribePool().c_str());
  return 0;
}
