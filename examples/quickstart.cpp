// Quickstart: the paper's Rule 1 and Rule 2, spelled twice.
//
// Part 1 drives the OWTE substrate directly (events + rules, the Sentinel+
// analog): user Bob opens "patient.dat" with vi; a rule checks access and
// either opens the file or raises the paper's error; a PLUS event closes
// the file forcefully after 2 hours.
//
// Part 2 shows the same protection expressed as a high-level policy loaded
// into the AuthorizationEngine, where the rules are *generated*.

#include <cstdio>
#include <string>

#include "common/calendar.h"
#include "common/clock.h"
#include "core/engine.h"
#include "core/policy_parser.h"
#include "event/event_detector.h"
#include "rules/rule_manager.h"

namespace {

using namespace sentinel;  // Example code; the library never does this.

void Part1_HandWrittenOwteRules() {
  std::printf("== Part 1: hand-written OWTE rules on the substrate ==\n");

  SimulatedClock clock(MakeTime(2026, 7, 6, 9, 0, 0));
  EventDetector detector(&clock);
  RuleManager rules(&detector);

  // Whether Bob currently holds the permission, and the "file system".
  bool bob_has_access = true;
  bool file_open = false;

  // EVENT E1 = Bob -> vi(patient.dat)
  const EventId e1 = *detector.DefinePrimitive("Bob->vi(patient.dat)");
  // EVENT E2 = PLUS(E1, 2 hours)
  const EventId e2 = *detector.DefinePlus("PLUS(E1, 2h)", e1, 2 * kHour);

  // RULE R1: ON E1 WHEN checkaccess THEN open ELSE error.
  Rule r1("R1", e1);
  r1.When("checkaccess(Bob, patient.dat) IS TRUE",
          [&](RuleContext&) { return bob_has_access; })
      .Then("allow opening patient.dat",
            [&](RuleContext&) {
              file_open = true;
              std::printf("  [%s] patient.dat opened for Bob\n",
                          FormatTime(clock.Now()).c_str());
            })
      .Else("raise error \"insufficient privileges\"", [&](RuleContext&) {
        std::printf("  [%s] ERROR insufficient privileges\n",
                    FormatTime(clock.Now()).c_str());
      });
  (void)rules.AddRule(std::move(r1));

  // RULE C1: ON PLUS(E1, 2h) WHEN TRUE THEN <Closefile>.
  Rule c1("C1", e2);
  c1.Then("Closefile", [&](RuleContext&) {
    if (file_open) {
      file_open = false;
      std::printf("  [%s] patient.dat closed forcefully (2h elapsed)\n",
                  FormatTime(clock.Now()).c_str());
    }
  });
  (void)rules.AddRule(std::move(c1));

  // Bob opens the file at 09:00...
  (void)detector.Raise(e1, {{"user", Value("Bob")}});
  // ...and keeps working. At 11:00 the PLUS event fires.
  detector.AdvanceTo(clock.Now() + 3 * kHour, &clock);
  std::printf("  file open at end: %s\n\n", file_open ? "yes" : "no");
}

void Part2_GeneratedRulesFromPolicy() {
  std::printf("== Part 2: the same protection from a high-level policy ==\n");

  auto policy = PolicyParser::Parse(R"(
policy "clinic"

# Staff may read patient records, but an activation lasts at most 2h.
role Staff { max-activation: 2h  permission: read(patient.dat) }
user Bob { assign: Staff }
)");
  if (!policy.ok()) {
    std::printf("policy error: %s\n", policy.status().ToString().c_str());
    return;
  }

  SimulatedClock clock(MakeTime(2026, 7, 6, 9, 0, 0));
  AuthorizationEngine engine(&clock);
  if (Status s = engine.LoadPolicy(*policy); !s.ok()) {
    std::printf("load error: %s\n", s.ToString().c_str());
    return;
  }
  std::printf("  generated %zu rules from %zu-role policy\n",
              engine.rule_manager().rule_count(), policy->roles().size());

  (void)engine.CreateSession("Bob", "s1");
  Decision activation = engine.AddActiveRole("Bob", "s1", "Staff");
  std::printf("  activate Staff: %s (rule %s)\n",
              activation.allowed ? "ALLOW" : "DENY",
              activation.rule.c_str());

  Decision read = engine.CheckAccess("s1", "read", "patient.dat");
  std::printf("  read patient.dat: %s\n", read.allowed ? "ALLOW" : "DENY");

  // Three hours later the generated DUR rule has force-deactivated Staff.
  engine.AdvanceBy(3 * kHour);
  Decision later = engine.CheckAccess("s1", "read", "patient.dat");
  std::printf("  read after 3h: %s (%s)\n",
              later.allowed ? "ALLOW" : "DENY", later.reason.c_str());
}

}  // namespace

int main() {
  Part1_HandWrittenOwteRules();
  Part2_GeneratedRulesFromPolicy();
  return 0;
}
