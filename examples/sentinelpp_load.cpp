// sentinelpp-load — load generator for sentinelpp-serve.
//
//   sentinelpp-load --port=PORT [--host=127.0.0.1] [--mode=closed|open]
//                   [--connections=4] [--requests=1000] [--batch=1]
//                   [--rate=0] [--users=16] [--deadline-us=0]
//                   [--user-base=0] [--user-count=0]
//
// --user-base/--user-count restrict the principal mix: requests rotate over
// user indices [base, base+count) instead of [0, users). count=0 means "all
// users from base up" — the default spreads over every serving user. Two
// load instances with disjoint ranges give per-principal attribution of the
// server's refusals (the policer fairness harness runs exactly that).
//
// Closed loop: each connection keeps exactly `batch` requests in flight
// (Check for batch=1, pipelined CheckBatch otherwise) until it has issued
// `requests` of them; latency is the full wire round-trip. Open loop: each
// connection *schedules* sends at `rate` requests/second split across
// connections and never waits for a response before the next send — a
// reader thread drains verdicts concurrently, so queueing delay shows up
// in the measured latency instead of throttling the offered load (this is
// the arm that makes shed-vs-block visible end to end).
//
// Prints one summary line ending in `protocol_errors=N`; the exit code is
// nonzero iff a transport/protocol failure occurred, so scripts can assert
// a clean run.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "workload/policy_gen.h"

namespace {

using Clock = std::chrono::steady_clock;

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

int64_t IntFlag(const char* arg, const char* name, int64_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return 0;
  *out = std::strtoll(arg + len + 1, nullptr, 10);
  return 1;
}

int64_t Percentile(std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = std::min(
      sorted.size() - 1, static_cast<size_t>(p * (sorted.size() - 1)));
  return sorted[index];
}

struct WorkerResult {
  std::vector<int64_t> latencies_us;
  uint64_t decided = 0;
  uint64_t overloaded = 0;
  uint64_t protocol_errors = 0;
  uint64_t transport_errors = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int64_t port = 0, connections = 4, requests = 1'000, batch = 1;
  int64_t rate = 0, users = 16, deadline_us = 0;
  int64_t user_base = 0, user_count = 0;
  std::string host = "127.0.0.1";
  std::string mode = "closed";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (IntFlag(arg, "--port", &port) ||
        IntFlag(arg, "--connections", &connections) ||
        IntFlag(arg, "--requests", &requests) ||
        IntFlag(arg, "--batch", &batch) || IntFlag(arg, "--rate", &rate) ||
        IntFlag(arg, "--users", &users) ||
        IntFlag(arg, "--deadline-us", &deadline_us) ||
        IntFlag(arg, "--user-base", &user_base) ||
        IntFlag(arg, "--user-count", &user_count)) {
      continue;
    }
    if (std::strncmp(arg, "--host=", 7) == 0) {
      host = arg + 7;
      continue;
    }
    if (std::strncmp(arg, "--mode=", 7) == 0) {
      mode = arg + 7;
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", arg);
    return 2;
  }
  if (port == 0) {
    std::fprintf(stderr, "--port is required\n");
    return 2;
  }
  if (mode == "open" && rate <= 0) {
    std::fprintf(stderr, "--mode=open requires --rate\n");
    return 2;
  }
  batch = std::max<int64_t>(1, batch);

  if (user_base < 0 || user_base >= users) {
    std::fprintf(stderr, "--user-base out of range\n");
    return 2;
  }
  const int64_t user_span =
      user_count > 0 ? std::min(user_count, users - user_base)
                     : users - user_base;

  auto request_for = [&](int64_t i) {
    const int u = static_cast<int>(user_base + i % user_span);
    sentinel::AccessRequest request{sentinel::SyntheticUserName(u),
                                    "sess" + std::to_string(u), "read",
                                    "ledger", ""};
    request.deadline = deadline_us;
    return request;
  };

  std::vector<WorkerResult> results(static_cast<size_t>(connections));
  std::vector<std::thread> workers;
  const int64_t start_us = NowUs();

  for (int64_t c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      WorkerResult& result = results[static_cast<size_t>(c)];
      auto connected = sentinel::net::WireClient::Connect(
          host, static_cast<uint16_t>(port));
      if (!connected.ok()) {
        ++result.transport_errors;
        return;
      }
      std::unique_ptr<sentinel::net::WireClient> client =
          std::move(connected).value();

      if (mode == "closed") {
        std::vector<sentinel::AccessRequest> window;
        for (int64_t sent = 0; sent < requests;) {
          window.clear();
          for (int64_t b = 0; b < batch && sent + b < requests; ++b) {
            window.push_back(request_for(sent + b));
          }
          const int64_t before = NowUs();
          auto decisions = client->CheckBatch(window);
          const int64_t rtt = NowUs() - before;
          if (!decisions.ok()) {
            ++result.transport_errors;
            break;
          }
          for (const sentinel::AccessDecision& decision :
               decisions.value()) {
            result.latencies_us.push_back(
                rtt / static_cast<int64_t>(window.size()));
            if (decision.outcome == sentinel::AccessOutcome::kDecided) {
              ++result.decided;
            } else {
              ++result.overloaded;
            }
          }
          sent += static_cast<int64_t>(window.size());
        }
      } else {
        // Open loop: the sender paces raw encoded frames onto the socket;
        // the reader drains verdicts concurrently. The send timestamp
        // array is indexed by request_id and handed across threads with
        // release/acquire atomics.
        const size_t total = static_cast<size_t>(requests);
        std::vector<std::atomic<int64_t>> send_us(total);
        std::atomic<uint64_t> sent_count{0};
        std::atomic<bool> sender_failed{false};
        const double interval_us =
            1e6 * static_cast<double>(connections) / static_cast<double>(rate);

        std::thread reader([&] {
          size_t received = 0;
          while (received < total && !client->eof()) {
            auto frame = client->ReadRawFrame();
            if (!frame.ok()) {
              if (sender_failed.load(std::memory_order_acquire)) break;
              // Timeout while the sender is still pacing: keep reading.
              if (received + client->protocol_errors() <
                  sent_count.load(std::memory_order_acquire)) {
                ++result.transport_errors;
                break;
              }
              continue;
            }
            sentinel::wire::ProtocolError perror;
            if (frame.value().type == sentinel::wire::MsgType::kDecision) {
              sentinel::wire::DecisionMsg msg;
              if (!sentinel::wire::DecodeDecision(frame.value(), &msg,
                                                  &perror)) {
                ++result.transport_errors;
                break;
              }
              const size_t index = static_cast<size_t>(msg.request_id - 1);
              if (index < total) {
                result.latencies_us.push_back(
                    NowUs() -
                    send_us[index].load(std::memory_order_acquire));
              }
              if (msg.decision.outcome ==
                  sentinel::AccessOutcome::kDecided) {
                ++result.decided;
              } else {
                ++result.overloaded;
              }
              ++received;
            } else if (frame.value().type ==
                       sentinel::wire::MsgType::kError) {
              ++result.protocol_errors;
              ++received;
            }
          }
        });

        std::string encoded;
        const int64_t t0 = NowUs();
        for (size_t i = 0; i < total; ++i) {
          const int64_t due =
              t0 + static_cast<int64_t>(interval_us * static_cast<double>(i));
          int64_t now = NowUs();
          if (due > now) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(due - now));
          }
          encoded.clear();
          const sentinel::Status enc = sentinel::wire::EncodeCheckRequest(
              static_cast<uint64_t>(i + 1), request_for(static_cast<int64_t>(i)),
              &encoded);
          send_us[i].store(NowUs(), std::memory_order_release);
          sentinel::Status sent_status =
              enc.ok() ? client->SendRaw(encoded) : enc;
          if (!sent_status.ok()) {
            ++result.transport_errors;
            sender_failed.store(true, std::memory_order_release);
            break;
          }
          sent_count.fetch_add(1, std::memory_order_release);
        }
        reader.join();
      }
      result.protocol_errors += client->protocol_errors();
    });
  }
  for (std::thread& worker : workers) worker.join();
  const int64_t elapsed_us = std::max<int64_t>(1, NowUs() - start_us);

  WorkerResult total;
  for (WorkerResult& result : results) {
    total.decided += result.decided;
    total.overloaded += result.overloaded;
    total.protocol_errors += result.protocol_errors;
    total.transport_errors += result.transport_errors;
    total.latencies_us.insert(total.latencies_us.end(),
                              result.latencies_us.begin(),
                              result.latencies_us.end());
  }
  std::sort(total.latencies_us.begin(), total.latencies_us.end());
  const uint64_t answered = total.decided + total.overloaded;
  std::printf(
      "mode=%s connections=%lld answered=%llu decided=%llu overloaded=%llu "
      "throughput_rps=%.0f p50_us=%lld p99_us=%lld transport_errors=%llu "
      "protocol_errors=%llu\n",
      mode.c_str(), static_cast<long long>(connections),
      static_cast<unsigned long long>(answered),
      static_cast<unsigned long long>(total.decided),
      static_cast<unsigned long long>(total.overloaded),
      1e6 * static_cast<double>(answered) /
          static_cast<double>(elapsed_us),
      static_cast<long long>(Percentile(total.latencies_us, 0.50)),
      static_cast<long long>(Percentile(total.latencies_us, 0.99)),
      static_cast<unsigned long long>(total.transport_errors),
      static_cast<unsigned long long>(total.protocol_errors));
  std::fflush(stdout);
  return (total.transport_errors > 0 || total.protocol_errors > 0) ? 1 : 0;
}
