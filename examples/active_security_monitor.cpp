// Active security — monitoring, alerts and transaction-based activation.
//
// Demonstrates Section 4.3.3: (1) the threshold directive from the paper's
// introduction ("when access requests by unauthorized roles are more than
// a certain number of times within a duration, an internal security alert
// is triggered and some critical authorization rules are disabled"), (2)
// Rule 9's transaction-based activation (JuniorEmp only while a Manager is
// active), and (3) periodic audit reports (PERIODIC events).

#include <cstdio>

#include "common/calendar.h"
#include "common/clock.h"
#include "common/logging.h"
#include "core/engine.h"
#include "core/policy_parser.h"
#include "core/report.h"

namespace {

using namespace sentinel;  // Example code; the library never does this.

constexpr const char* kPolicy = R"(
policy "guarded-enterprise"

role Manager { permission: read(payroll), write(payroll) }
role JuniorEmp { permission: read(timesheet) }
role Analyst { permission: read(report) }

user mia { assign: Manager }
user jay { assign: JuniorEmp }
user ann { assign: Analyst }

transaction supervision { controller: Manager  dependent: JuniorEmp }
threshold intrusion { count: 4  window: 30s  disable: CA }
audit hourly { interval: 1h }
)";

void Show(AuthorizationEngine& engine, const char* what,
          const Decision& decision) {
  std::printf("  [%s] %-44s -> %s%s%s\n",
              FormatTime(engine.Now()).c_str(), what,
              decision.allowed ? "ALLOW" : "DENY",
              decision.reason.empty() ? "" : ": ",
              decision.reason.c_str());
}

}  // namespace

int main() {
  // Route administrator alerts to stdout for the demo.
  Logger::Global().SetMinLevel(LogLevel::kInfo);
  Logger::Global().SetSink([](LogLevel level, const std::string& message) {
    std::printf("  >>> [%s] %s\n", LogLevelToString(level), message.c_str());
  });

  SimulatedClock clock(MakeTime(2026, 7, 6, 9, 0, 0));
  AuthorizationEngine engine(&clock);
  auto policy = PolicyParser::Parse(kPolicy);
  if (!policy.ok() || !engine.LoadPolicy(*policy).ok()) {
    std::printf("failed to load policy\n");
    return 1;
  }

  std::printf("== Rule 9: transaction-based activation ==\n");
  (void)engine.CreateSession("mia", "sm");
  (void)engine.CreateSession("jay", "sj");
  Show(engine, "jay activates JuniorEmp (no manager yet)",
       engine.AddActiveRole("jay", "sj", "JuniorEmp"));
  Show(engine, "mia activates Manager",
       engine.AddActiveRole("mia", "sm", "Manager"));
  Show(engine, "jay activates JuniorEmp (window open)",
       engine.AddActiveRole("jay", "sj", "JuniorEmp"));
  Show(engine, "mia deactivates Manager",
       engine.DropActiveRole("mia", "sm", "Manager"));
  std::printf("  [%s] jay still active as JuniorEmp: %s\n",
              FormatTime(engine.Now()).c_str(),
              engine.rbac().db().IsSessionRoleActive("sj", "JuniorEmp")
                  ? "yes"
                  : "no (cascaded deactivation)");

  std::printf("\n== Threshold directive: burst of denied accesses ==\n");
  (void)engine.CreateSession("ann", "sa");
  (void)engine.AddActiveRole("ann", "sa", "Analyst");
  for (int i = 1; i <= 4; ++i) {
    char label[64];
    std::snprintf(label, sizeof(label), "ann probes payroll (attempt %d)", i);
    Show(engine, label, engine.CheckAccess("sa", "read", "payroll"));
    engine.AdvanceBy(2 * kSecond);
  }
  std::printf("  alerts recorded: %d\n", engine.security().alert_count());
  Show(engine, "ann reads report (CA rule now disabled)",
       engine.CheckAccess("sa", "read", "report"));
  std::printf("  (fail-safe: with CA disabled, even valid requests deny)\n");

  std::printf("\n== Periodic audit reports ==\n");
  engine.AdvanceBy(3 * kHour);
  std::printf("  audit reports after 3h: %d\n",
              engine.security().audit_report_count("hourly"));

  std::printf("\n== Full administrator report ==\n%s",
              GenerateAdminReport(engine).c_str());
  return 0;
}
