// Enterprise XYZ — the paper's Section 5 / Figure 1 walk-through.
//
// Builds the purchase/approval enterprise from the policy DSL (the
// RBAC-Manager stand-in), prints the generated OWTE rule pool, exercises
// the static-SoD-with-hierarchy semantics, then changes the policy and
// shows incremental regeneration.

#include <cstdio>
#include <string>

#include "common/calendar.h"
#include "common/clock.h"
#include "core/engine.h"
#include "core/policy_parser.h"

namespace {

using namespace sentinel;  // Example code; the library never does this.

constexpr const char* kXyzPolicy = R"(
policy "enterprise-xyz"

# Figure 1: two chains meeting at Clerk, SSD between PC and AC.
role Clerk { permission: read(ledger) }
role PC { senior-of: Clerk  permission: write(purchase-order) }
role PM { senior-of: PC  permission: approve(budget-request) }
role AC { senior-of: Clerk  permission: write(approval) }
role AM { senior-of: AC  permission: approve(purchase-order) }

ssd SoD1 { roles: PC, AC  n: 2 }

user alice { assign: PM }
user bob { assign: AC }
user carol { assign: Clerk }
)";

void Show(const char* what, const Decision& decision) {
  std::printf("  %-44s -> %s%s%s\n", what,
              decision.allowed ? "ALLOW" : "DENY",
              decision.reason.empty() ? "" : ": ",
              decision.reason.c_str());
}

}  // namespace

int main() {
  SimulatedClock clock(MakeTime(2026, 7, 6, 9, 0, 0));
  AuthorizationEngine engine(&clock);

  auto policy = PolicyParser::Parse(kXyzPolicy);
  if (!policy.ok()) {
    std::printf("policy error: %s\n", policy.status().ToString().c_str());
    return 1;
  }
  if (Status s = engine.LoadPolicy(*policy); !s.ok()) {
    std::printf("load error: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("== Generated rule pool (%zu rules) ==\n\n",
              engine.rule_manager().rule_count());
  std::printf("%s", engine.rule_manager().DescribePool().c_str());

  std::printf("== Static SoD with role hierarchies ==\n");
  // alice is PM; PM inherits PC's SoD constraint against AC/AM.
  Show("assign alice (PM) to AM", engine.AssignUser("alice", "AM"));
  Show("assign alice (PM) to Clerk", engine.AssignUser("alice", "Clerk"));
  Show("assign bob (AC) to PC", engine.AssignUser("bob", "PC"));

  std::printf("\n== Purchase-order separation at work ==\n");
  (void)engine.CreateSession("alice", "sa");
  (void)engine.CreateSession("bob", "sb");
  Show("alice activates PM", engine.AddActiveRole("alice", "sa", "PM"));
  Show("alice writes purchase-order",
       engine.CheckAccess("sa", "write", "purchase-order"));
  Show("alice approves purchase-order",
       engine.CheckAccess("sa", "approve", "purchase-order"));
  Show("bob activates AM (not assigned)",
       engine.AddActiveRole("bob", "sb", "AM"));
  Show("bob activates AC", engine.AddActiveRole("bob", "sb", "AC"));
  Show("bob approves purchase-order",
       engine.CheckAccess("sb", "approve", "purchase-order"));
  Show("bob reads ledger (inherited from Clerk)",
       engine.CheckAccess("sb", "read", "ledger"));

  std::printf("\n== Policy change: cap concurrent PC activations at 1 ==\n");
  Policy updated = engine.policy();
  auto pc = updated.MutableRole("PC");
  if (pc.ok()) (*pc)->activation_cardinality = 1;
  auto report = engine.ApplyPolicyUpdate(updated);
  if (report.ok()) {
    std::printf(
        "  regenerated: %d role(s) affected, %d rule(s) removed, %d added "
        "(pool untouched otherwise)\n",
        report->roles_affected, report->rules_removed, report->rules_added);
  }
  Show("alice activates PC", engine.AddActiveRole("alice", "sa", "PC"));
  (void)engine.CreateSession("alice", "sa2");
  Show("alice activates PC again elsewhere",
       engine.AddActiveRole("alice", "sa2", "PC"));
  return 0;
}
