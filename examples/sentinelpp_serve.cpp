// sentinelpp-serve — the network front door as a runnable binary.
//
// Stands up an AuthorizationService over a synthetic flat policy (N users
// all granted `read ledger` through one role, sessions pre-created and
// activated) and serves the versioned binary wire API on an epoll reactor.
//
//   sentinelpp-serve [--port=0] [--shards=1] [--users=16]
//                    [--cache=0] [--fastpath=0]
//                    [--capacity=0] [--policy=block|shed]
//                    [--deadline-us=0] [--idle-ms=30000]
//                    [--audit=PATH] [--audit-rotate=0] [--audit-queue=65536]
//                    [--update-churn=0]
//                    [--quota-rate=0] [--quota-burst=8]
//                    [--quota-user=NAME:RATE[:BURST]]...
//                    [--quota-mode=overload|always]
//
// --quota-rate attaches per-principal token-bucket admission policing: every
// principal gets RATE tokens/s (fractional ok) with a burst of --quota-burst.
// --quota-user pins one principal to its own quota (RATE=0 exempts it); the
// flag repeats. --quota-mode picks when over-quota verdicts refuse:
// `overload` (default) only under backpressure — requires --capacity>0 —
// while `always` refuses at the admission edge unconditionally. The final
// stats line gains `policer_refused=` so harnesses can attribute refusals.
//
// --audit attaches the async JSONL audit exporter (see audit/exporter.h):
// every decision the service makes is exported, and the final stats line
// gains `audit_records=`/`audit_drops=` fields so harnesses can assert a
// complete stream.
//
// --update-churn=N (milliseconds) runs an in-process admin thread that
// applies a policy update every N ms while serving — each update toggles a
// spare role's permission, exercising the pauseless swap path under real
// network load. The final stats line gains a `swaps=` field.
//
// Prints exactly one `listening on <addr>:<port>` line once the socket is
// bound (port 0 binds an ephemeral port — scripts parse the real one from
// this line), then serves until SIGINT/SIGTERM. Shutdown is graceful: the
// reactor answers everything already read, flushes write buffers, and the
// final stats line ends with `drained` so harnesses can assert a clean
// exit.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/server.h"
#include "workload/policy_gen.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

int64_t IntFlag(const char* arg, const char* name, int64_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return 0;
  *out = std::strtoll(arg + len + 1, nullptr, 10);
  return 1;
}

int64_t DoubleFlag(const char* arg, const char* name, double* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return 0;
  *out = std::strtod(arg + len + 1, nullptr);
  return 1;
}

/// Parses NAME:RATE[:BURST] into a PrincipalQuota; false on malformed input.
bool ParseQuotaUser(const char* text, sentinel::PrincipalQuota* out) {
  const char* colon = std::strchr(text, ':');
  if (colon == nullptr || colon == text) return false;
  out->principal.assign(text, static_cast<size_t>(colon - text));
  char* end = nullptr;
  out->rate_per_s = std::strtod(colon + 1, &end);
  if (end == colon + 1 || out->rate_per_s < 0) return false;
  out->burst = 1;
  if (*end == ':') {
    out->burst = std::strtoll(end + 1, nullptr, 10);
    if (out->burst < 1) return false;
  } else if (*end != '\0') {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t port = 0, shards = 1, users = 16, cache = 0, fastpath = 0;
  int64_t capacity = 0, deadline_us = 0, idle_ms = 30'000;
  int64_t audit_rotate = 0, audit_queue = 65536, update_churn_ms = 0;
  int64_t quota_burst = 8;
  double quota_rate = 0;
  std::string overload = "block", audit_path, quota_mode = "overload";
  std::vector<sentinel::PrincipalQuota> quota_users;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (IntFlag(arg, "--port", &port) || IntFlag(arg, "--shards", &shards) ||
        IntFlag(arg, "--users", &users) || IntFlag(arg, "--cache", &cache) ||
        IntFlag(arg, "--fastpath", &fastpath) ||
        IntFlag(arg, "--capacity", &capacity) ||
        IntFlag(arg, "--deadline-us", &deadline_us) ||
        IntFlag(arg, "--idle-ms", &idle_ms) ||
        IntFlag(arg, "--audit-rotate", &audit_rotate) ||
        IntFlag(arg, "--audit-queue", &audit_queue) ||
        IntFlag(arg, "--update-churn", &update_churn_ms) ||
        IntFlag(arg, "--quota-burst", &quota_burst) ||
        DoubleFlag(arg, "--quota-rate", &quota_rate)) {
      continue;
    }
    if (std::strncmp(arg, "--policy=", 9) == 0) {
      overload = arg + 9;
      continue;
    }
    if (std::strncmp(arg, "--audit=", 8) == 0) {
      audit_path = arg + 8;
      continue;
    }
    if (std::strncmp(arg, "--quota-mode=", 13) == 0) {
      quota_mode = arg + 13;
      continue;
    }
    if (std::strncmp(arg, "--quota-user=", 13) == 0) {
      sentinel::PrincipalQuota quota;
      if (!ParseQuotaUser(arg + 13, &quota)) {
        std::fprintf(stderr, "bad --quota-user (want NAME:RATE[:BURST]): %s\n",
                     arg);
        return 2;
      }
      quota_users.push_back(std::move(quota));
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", arg);
    return 2;
  }
  if (quota_mode != "overload" && quota_mode != "always") {
    std::fprintf(stderr, "bad --quota-mode (want overload|always)\n");
    return 2;
  }

  sentinel::ServiceConfig config;
  config.num_shards = static_cast<int>(shards);
  config.synchronous = false;
  config.start_time = sentinel::MakeTime(2026, 7, 6, 12, 0, 0);
  config.decision_cache_capacity = static_cast<size_t>(cache);
  config.decision_cache_fastpath = fastpath != 0;
  config.mailbox_capacity = static_cast<size_t>(capacity);
  config.overload_policy = overload == "shed"
                               ? sentinel::OverloadPolicy::kShed
                               : sentinel::OverloadPolicy::kBlock;
  config.default_deadline = deadline_us;
  config.audit_path = audit_path;
  config.audit_rotate_bytes = static_cast<uint64_t>(audit_rotate);
  config.audit_queue_capacity = static_cast<size_t>(audit_queue);
  config.quota_rate_per_s = quota_rate;
  config.quota_burst = quota_burst;
  config.quota_overrides = std::move(quota_users);
  config.quota_enforcement = quota_mode == "always"
                                 ? sentinel::QuotaEnforcement::kAlways
                                 : sentinel::QuotaEnforcement::kOnOverload;
  sentinel::AuthorizationService service(config);
  if (!service.init_status().ok()) {
    std::fprintf(stderr, "bad config: %s\n",
                 std::string(service.init_status().message()).c_str());
    return 2;
  }

  // `spare` absorbs the --update-churn stream: no serving user is assigned
  // to it, so toggling its permission swaps generations without changing
  // any served verdict.
  const auto build_policy = [users](bool toggled) {
    sentinel::Policy policy("serve");
    sentinel::RoleSpec role;
    role.name = "worker";
    role.permissions.insert(sentinel::Permission{"read", "ledger"});
    (void)policy.AddRole(std::move(role));
    sentinel::RoleSpec spare;
    spare.name = "spare";
    spare.permissions.insert(sentinel::Permission{"read", "scratch"});
    if (toggled) {
      spare.permissions.insert(sentinel::Permission{"write", "scratch"});
    }
    (void)policy.AddRole(std::move(spare));
    for (int u = 0; u < users; ++u) {
      sentinel::UserSpec user;
      user.name = sentinel::SyntheticUserName(u);
      user.assignments.insert("worker");
      (void)policy.AddUser(std::move(user));
    }
    return policy;
  };
  if (!service.LoadPolicy(build_policy(false)).ok()) {
    std::fprintf(stderr, "policy load failed\n");
    return 1;
  }
  for (int u = 0; u < users; ++u) {
    const std::string name = sentinel::SyntheticUserName(u);
    const std::string session = "sess" + std::to_string(u);
    if (!service.CreateSession(name, session).ok() ||
        !service.AddActiveRole(name, session, "worker").ok()) {
      std::fprintf(stderr, "session setup failed for %s\n", name.c_str());
      return 1;
    }
  }

  sentinel::net::ServerConfig net_config;
  net_config.port = static_cast<uint16_t>(port);
  net_config.idle_timeout_ms = idle_ms;
  sentinel::net::WireServer server(&service, net_config);
  const sentinel::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 std::string(started.message()).c_str());
    return 1;
  }
  std::printf("listening on %s:%u\n", net_config.bind_address.c_str(),
              server.port());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  std::thread churner;
  std::atomic<bool> churn_stop{false};
  if (update_churn_ms > 0) {
    churner = std::thread([&] {
      bool flip = true;
      while (!churn_stop.load(std::memory_order_acquire)) {
        (void)service.ApplyPolicyUpdate(build_policy(flip));
        flip = !flip;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(update_churn_ms));
      }
    });
  }

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  if (churner.joinable()) {
    churn_stop.store(true, std::memory_order_release);
    churner.join();
  }
  server.Stop();
  // Shut the service down before reading audit counters: Shutdown drains
  // every shard's decision ring into the exporter and flush-closes it, so
  // the printed numbers describe the complete stream.
  service.Shutdown();
  unsigned long long audit_records = 0, audit_drops = 0;
  if (auto* exporter = service.audit_exporter()) {
    const auto counters = exporter->counters();
    audit_records = counters.records;
    audit_drops = counters.drops;
  }
  const sentinel::net::ServerStats stats = server.stats();
  const sentinel::ServiceStats service_stats = service.Stats();
  std::printf(
      "accepted=%llu requests=%llu decisions=%llu batches=%llu "
      "protocol_errors=%llu idle_closed=%llu bytes_in=%llu bytes_out=%llu "
      "swaps=%llu audit_records=%llu audit_drops=%llu "
      "policer_admitted=%llu policer_over_quota=%llu policer_refused=%llu "
      "drained\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.decisions),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.protocol_errors),
      static_cast<unsigned long long>(stats.idle_closed),
      static_cast<unsigned long long>(stats.bytes_in),
      static_cast<unsigned long long>(stats.bytes_out),
      static_cast<unsigned long long>(service_stats.policy_swaps),
      audit_records, audit_drops,
      static_cast<unsigned long long>(service_stats.policer_admitted),
      static_cast<unsigned long long>(service_stats.policer_over_quota),
      static_cast<unsigned long long>(service_stats.policer_refused));
  std::fflush(stdout);
  return 0;
}
