// Hospital — Generalized Temporal RBAC features driven by simulated time.
//
// Demonstrates the paper's GTRBAC enforcement (Section 4.3.2): a shift-
// limited DayDoctor role (periodic enabling), a duration-bounded OnCall
// role (Rule 7, PLUS events), and the Rule 6 disabling-time SoD between
// Doctor and Nurse ("both cannot be disabled between 10:00 and 17:00").

#include <cstdio>

#include "common/calendar.h"
#include "common/clock.h"
#include "core/engine.h"
#include "core/policy_parser.h"

namespace {

using namespace sentinel;  // Example code; the library never does this.

constexpr const char* kHospitalPolicy = R"(
policy "hospital"

role Doctor { permission: read(patient.dat), write(patient.dat) }
role Nurse { permission: read(patient.dat) }
role DayDoctor { enable: 08:00:00 - 16:00:00  permission: read(ward.log) }
role OnCall { max-activation: 2h  permission: write(pager) }

user dave { assign: Doctor, OnCall }
user nina { assign: Nurse }
user dana { assign: DayDoctor }

time-sod availability { kind: disabling  roles: Doctor, Nurse
                        window: 10:00:00 - 17:00:00 }
)";

void Show(AuthorizationEngine& engine, const char* what,
          const Decision& decision) {
  std::printf("  [%s] %-40s -> %s%s%s\n",
              FormatTime(engine.Now()).c_str(), what,
              decision.allowed ? "ALLOW" : "DENY",
              decision.reason.empty() ? "" : ": ",
              decision.reason.c_str());
}

void State(AuthorizationEngine& engine, const char* role) {
  std::printf("  [%s] role %-10s is %s\n", FormatTime(engine.Now()).c_str(),
              role,
              engine.role_state().IsEnabled(role) ? "ENABLED" : "disabled");
}

}  // namespace

int main() {
  SimulatedClock clock(MakeTime(2026, 7, 6, 7, 0, 0));  // 07:00.
  AuthorizationEngine engine(&clock);
  auto policy = PolicyParser::Parse(kHospitalPolicy);
  if (!policy.ok() || !engine.LoadPolicy(*policy).ok()) {
    std::printf("failed to load hospital policy\n");
    return 1;
  }

  std::printf("== Shift-limited DayDoctor (periodic enabling) ==\n");
  (void)engine.CreateSession("dana", "sd");
  State(engine, "DayDoctor");  // 07:00: before the shift.
  Show(engine, "dana activates DayDoctor at 07:00",
       engine.AddActiveRole("dana", "sd", "DayDoctor"));
  engine.AdvanceTo(MakeTime(2026, 7, 6, 8, 0, 0));
  State(engine, "DayDoctor");
  Show(engine, "dana activates DayDoctor at 08:00",
       engine.AddActiveRole("dana", "sd", "DayDoctor"));
  engine.AdvanceTo(MakeTime(2026, 7, 6, 16, 0, 0));
  State(engine, "DayDoctor");
  std::printf("  [%s] dana's activation auto-dropped: %s\n",
              FormatTime(engine.Now()).c_str(),
              engine.rbac().db().IsSessionRoleActive("sd", "DayDoctor")
                  ? "no"
                  : "yes");

  std::printf("\n== Duration-bounded OnCall (Rule 7, PLUS) ==\n");
  (void)engine.CreateSession("dave", "sv");
  Show(engine, "dave activates OnCall",
       engine.AddActiveRole("dave", "sv", "OnCall"));
  engine.AdvanceBy(kHour);
  std::printf("  [%s] 1h later, still on call: %s\n",
              FormatTime(engine.Now()).c_str(),
              engine.rbac().db().IsSessionRoleActive("sv", "OnCall")
                  ? "yes"
                  : "no");
  engine.AdvanceBy(kHour + kMinute);
  std::printf("  [%s] 2h01 later, still on call: %s\n",
              FormatTime(engine.Now()).c_str(),
              engine.rbac().db().IsSessionRoleActive("sv", "OnCall")
                  ? "yes"
                  : "no");

  std::printf("\n== Rule 6: disabling-time SoD (10:00-17:00) ==\n");
  // It's past 17:00 by now; wind to the next morning inside the window.
  engine.AdvanceTo(MakeTime(2026, 7, 7, 11, 0, 0));
  Show(engine, "disable Nurse at 11:00", engine.DisableRole("Nurse"));
  Show(engine, "disable Doctor at 11:00 too", engine.DisableRole("Doctor"));
  Show(engine, "re-enable Nurse", engine.EnableRole("Nurse"));
  Show(engine, "disable Doctor now", engine.DisableRole("Doctor"));
  // After hours both may go down.
  engine.AdvanceTo(MakeTime(2026, 7, 7, 18, 0, 0));
  Show(engine, "re-enable Doctor", engine.EnableRole("Doctor"));
  Show(engine, "disable Nurse at 18:00", engine.DisableRole("Nurse"));
  Show(engine, "disable Doctor at 18:00", engine.DisableRole("Doctor"));
  State(engine, "Doctor");
  State(engine, "Nurse");
  return 0;
}
