// sentinelpp-soak — the enterprise scenario soak driver / corpus generator.
//
// Generates a synthetic enterprise (org forest, GTRBAC shifts, SoD sets,
// large user population — see workload/scenario_gen.h), loads it into an
// AuthorizationService, and replays the scenario's deterministic request
// stream. With --audit set the service exports every decision as a JSONL
// audit stream — the canonical capture corpus for sentinelpp-replay.
//
//   sentinelpp-soak [--scale=smoke|enterprise] [--seed=2026]
//                   [--users=N] [--requests=N] [--shards=0]
//                   [--audit=PATH] [--audit-rotate=N] [--audit-queue=N]
//                   [--policy-out=PATH] [--mutated-policy-out=PATH]
//                   [--expect-no-drops]
//
// --shards=0 (the default) runs the service in synchronous mode: one
// engine, every call inline — the deterministic configuration the
// replay-determinism check relies on. --policy-out writes the generated
// policy as .acp text (the replay candidate); --mutated-policy-out writes
// the same policy with one added DSD edge ("DSD_SHADOW") for verdict-flip
// experiments. The final stats line is machine-greppable and ends in `ok`.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "api/sentinelpp.h"
#include "workload/scenario_gen.h"

namespace {

int64_t IntFlag(const char* arg, const char* name, int64_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return 0;
  *out = std::strtoll(arg + len + 1, nullptr, 10);
  return 1;
}

int StrFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return 0;
  *out = arg + len + 1;
  return 1;
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  out.close();
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  int64_t seed = 2026, users = -1, requests = -1, shards = 0;
  int64_t audit_rotate = 0, audit_queue = 65536;
  std::string scale = "smoke", audit_path, policy_out, mutated_out;
  bool expect_no_drops = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (IntFlag(arg, "--seed", &seed) || IntFlag(arg, "--users", &users) ||
        IntFlag(arg, "--requests", &requests) ||
        IntFlag(arg, "--shards", &shards) ||
        IntFlag(arg, "--audit-rotate", &audit_rotate) ||
        IntFlag(arg, "--audit-queue", &audit_queue) ||
        StrFlag(arg, "--scale", &scale) ||
        StrFlag(arg, "--audit", &audit_path) ||
        StrFlag(arg, "--policy-out", &policy_out) ||
        StrFlag(arg, "--mutated-policy-out", &mutated_out)) {
      continue;
    }
    if (std::strcmp(arg, "--expect-no-drops") == 0) {
      expect_no_drops = true;
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", arg);
    return 2;
  }

  sentinel::ScenarioParams params = scale == "enterprise"
                                        ? sentinel::EnterpriseScenarioParams()
                                        : sentinel::SmokeScenarioParams();
  params.seed = static_cast<uint64_t>(seed);
  if (users >= 0) params.num_users = static_cast<int>(users);
  if (requests >= 0) params.num_requests = static_cast<int>(requests);

  sentinel::Scenario scenario = sentinel::GenerateScenario(params);
  std::printf("scenario: roles=%d users=%zu requests=%zu\n",
              scenario.num_roles, scenario.policy.users().size(),
              scenario.requests.size());
  std::fflush(stdout);

  if (!policy_out.empty() &&
      !WriteFile(policy_out, sentinel::PolicyToText(scenario.policy))) {
    std::fprintf(stderr, "cannot write %s\n", policy_out.c_str());
    return 1;
  }
  if (!mutated_out.empty()) {
    auto mutated =
        sentinel::WithAddedDsdEdge(scenario.policy, "DSD_SHADOW");
    if (!mutated.ok() ||
        !WriteFile(mutated_out, sentinel::PolicyToText(*mutated))) {
      std::fprintf(stderr, "cannot produce mutated policy at %s\n",
                   mutated_out.c_str());
      return 1;
    }
  }

  sentinel::ServiceConfig config;
  config.synchronous = shards <= 0;
  config.num_shards = shards <= 0 ? 1 : static_cast<int>(shards);
  config.start_time = sentinel::MakeTime(2026, 7, 6, 9, 0, 0);
  config.audit_path = audit_path;
  config.audit_rotate_bytes = static_cast<uint64_t>(audit_rotate);
  config.audit_queue_capacity = static_cast<size_t>(audit_queue);
  sentinel::AuthorizationService service(config);
  if (!service.init_status().ok()) {
    std::fprintf(stderr, "bad config: %s\n",
                 std::string(service.init_status().message()).c_str());
    return 1;
  }
  if (!service.LoadPolicy(scenario.policy).ok()) {
    std::fprintf(stderr, "policy load failed\n");
    return 1;
  }

  uint64_t allows = 0, denials = 0;
  for (const sentinel::Request& request : scenario.requests) {
    switch (request.kind) {
      case sentinel::RequestKind::kCreateSession:
        service.CreateSession(request.user, request.session).ok() ? ++allows
                                                                  : ++denials;
        break;
      case sentinel::RequestKind::kDeleteSession:
        service.DeleteSession(request.session).ok() ? ++allows : ++denials;
        break;
      case sentinel::RequestKind::kAddActiveRole:
        service.AddActiveRole(request.user, request.session, request.role)
                .ok()
            ? ++allows
            : ++denials;
        break;
      case sentinel::RequestKind::kDropActiveRole:
        service.DropActiveRole(request.user, request.session, request.role)
                .ok()
            ? ++allows
            : ++denials;
        break;
      case sentinel::RequestKind::kCheckAccess: {
        sentinel::AccessRequest access;
        access.session = request.session;
        access.operation = request.operation;
        access.object = request.object;
        access.purpose = request.purpose;
        service.CheckAccess(access).allowed ? ++allows : ++denials;
        break;
      }
      case sentinel::RequestKind::kAssignUser:
        service.AssignUser(request.user, request.role).ok() ? ++allows
                                                            : ++denials;
        break;
      case sentinel::RequestKind::kDeassignUser:
        service.DeassignUser(request.user, request.role).ok() ? ++allows
                                                              : ++denials;
        break;
      case sentinel::RequestKind::kEnableRole:
        service.EnableRole(request.role).ok() ? ++allows : ++denials;
        break;
      case sentinel::RequestKind::kDisableRole:
        service.DisableRole(request.role).ok() ? ++allows : ++denials;
        break;
      case sentinel::RequestKind::kAdvanceTime:
        (void)service.AdvanceBy(request.advance);
        break;
      case sentinel::RequestKind::kSetContext:
        service.SetContext(request.context_key, request.context_value);
        break;
    }
  }

  const sentinel::ServiceStats live = service.Stats();
  service.Shutdown();
  // Audit counters are final only after Shutdown flushed the exporter.
  uint64_t audit_records = 0, audit_drops = 0, audit_bytes = 0;
  if (auto* exporter = service.audit_exporter()) {
    const auto counters = exporter->counters();
    audit_records = counters.records;
    audit_drops = counters.drops;
    audit_bytes = counters.bytes;
  }

  std::printf(
      "soak: requests=%zu allows=%llu denials=%llu decisions=%llu "
      "overflow=%llu audit_records=%llu audit_drops=%llu audit_bytes=%llu "
      "ok\n",
      scenario.requests.size(), static_cast<unsigned long long>(allows),
      static_cast<unsigned long long>(denials),
      static_cast<unsigned long long>(live.decisions),
      static_cast<unsigned long long>(live.audit_overflow),
      static_cast<unsigned long long>(audit_records),
      static_cast<unsigned long long>(audit_drops),
      static_cast<unsigned long long>(audit_bytes));
  std::fflush(stdout);
  if (expect_no_drops && audit_drops != 0) {
    std::fprintf(stderr, "audit drops detected: %llu\n",
                 static_cast<unsigned long long>(audit_drops));
    return 1;
  }
  return 0;
}
